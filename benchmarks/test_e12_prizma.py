"""E12 — Pipelined vs PRIZMA-style interleaved shared buffer (paper §5.3).

Paper quotes: "the shared-buffer crossbars would cost 16 times more in the
PRIZMA architecture relative to the Telegraphos III architecture" (n x M vs
n x 2n, M = 256, 2n = 16); "one (dynamic) shift-register bit is 4 times
larger than one (3-transistor dynamic) RAM bit"; "placing more than one
packets per bank ... would complicate control and scheduling and may hurt
performance" — the last point checked behaviourally.
"""

from conftest import show

from repro.switches import InterleavedSharedBuffer
from repro.switches.harness import format_table
from repro.traffic import BernoulliUniform
from repro.vlsi.comparisons import pipelined_vs_prizma


def _experiment():
    cost = pipelined_vs_prizma()
    # Behavioural half: one-packet-per-bank vs multi-packet banks.
    n = 8
    perf = {}
    for cells_per_bank, m_banks in [(1, 64), (8, 8)]:
        sw = InterleavedSharedBuffer(
            n, n, m_banks=m_banks, cells_per_bank=cells_per_bank,
            warmup=2000, seed=13,
        )
        stats = sw.run(BernoulliUniform(n, n, 1.0, seed=14), 25_000)
        perf[(cells_per_bank, m_banks)] = (stats.throughput, sw.read_conflicts)
    return cost, perf


def test_e12_prizma(run_once):
    cost, perf = run_once(_experiment)
    show(format_table(
        ["quantity", "PRIZMA (n x M)", "pipelined (n x 2n)"],
        [
            ["crosspoints", cost["prizma_crosspoints"], cost["pipelined_crosspoints"]],
            ["crossbar area (mm^2)", round(cost["prizma_crossbar_mm2"], 1),
             round(cost["pipelined_crossbar_mm2"], 2)],
        ],
        title=f"E12: §5.3 crossbar cost, ratio = {cost['crosspoint_ratio']:.0f}x (paper: 16x)",
    ))
    assert cost["crosspoint_ratio"] == 16.0
    assert cost["shift_register_penalty"] == 4.0

    rows = [
        [f"{c} cell(s)/bank, {m} banks", thr, conflicts]
        for (c, m), (thr, conflicts) in perf.items()
    ]
    show(format_table(
        ["bank organization (same capacity)", "saturation throughput", "read conflicts"],
        rows,
        title="E12 ablation: multi-packet banks hurt performance (paper §5.3)",
    ))
    (thr_1, conf_1), (thr_m, conf_m) = perf[(1, 64)], perf[(8, 8)]
    assert conf_1 == 0 and conf_m > 0
    assert thr_m < thr_1
