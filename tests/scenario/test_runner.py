"""Tests for the parallel ScenarioRunner.

The load-bearing property: a sweep's merged results are bit-identical for
any job count — parallelism must never change the numbers, only the wall
time.  The E13-style grid below mirrors benchmarks/test_e13_architecture_
sweep.py at a test-sized horizon.
"""

import json

import pytest

from repro.scenario import Scenario, ScenarioError, ScenarioRunner


def e13_grid() -> list[Scenario]:
    """The E13 architecture-sweep grid, scaled for a unit test."""
    base = Scenario(
        name="e13", arch="shared", horizon=1_500, params={"n": 4},
        traffic={"kind": "uniform", "load": 0.6}, seeds=[1, 2],
    )
    return base.expand({
        "arch": ["fifo", "voq", "crosspoint", "output", "shared"],
        "traffic.load": [0.6, 0.9],
    })


def test_parallel_sweep_bit_identical_to_sequential():
    scenarios = e13_grid()
    sequential = ScenarioRunner(jobs=1).run(scenarios)
    parallel = ScenarioRunner(jobs=2).run(scenarios)
    assert parallel == sequential
    # merge order is submission order: scenario-major, seed-minor
    assert [(r["scenario"], r["seed"]) for r in sequential] == [
        (sc.name, seed) for sc in scenarios for seed in sc.seeds
    ]


def test_word_kernels_parallel_identical():
    base = Scenario(
        name="kernels", arch="pipelined", horizon=800, params={"n": 4},
        traffic={"kind": "renewal", "load": 0.7}, seeds=[1], drain=True,
    )
    scenarios = base.expand({"arch": ["pipelined", "pipelined_fast", "wide"]})
    sequential = ScenarioRunner(jobs=1).run(scenarios)
    parallel = ScenarioRunner(jobs=3).run(scenarios)
    assert parallel == sequential


def test_artifacts_written_and_merged(tmp_path):
    scenarios = e13_grid()[:2]
    results = ScenarioRunner(jobs=2, out_dir=tmp_path).run(scenarios)
    merged = json.loads((tmp_path / "results.json").read_text())
    assert merged == results
    for r in results:
        single = json.loads(
            (tmp_path / f"{r['scenario']}-seed{r['seed']}.json").read_text())
        assert single == r


def test_validates_everything_before_running(tmp_path):
    good = e13_grid()[0]
    bad = Scenario(name="bad", arch="nope", horizon=100)
    with pytest.raises(ScenarioError, match="unknown architecture"):
        ScenarioRunner(out_dir=tmp_path).run([good, bad])
    assert not list(tmp_path.iterdir()), "failed validation must not run jobs"


def test_duplicate_name_seed_rejected():
    sc = e13_grid()[0]
    with pytest.raises(ScenarioError, match="duplicate job"):
        ScenarioRunner().run([sc, sc])


def test_empty_run_rejected():
    with pytest.raises(ScenarioError, match="no scenarios"):
        ScenarioRunner().run([])


def test_bad_jobs_rejected():
    with pytest.raises(ScenarioError, match="jobs"):
        ScenarioRunner(jobs=0)


def test_single_scenario_accepted_bare():
    sc = e13_grid()[0]
    results = ScenarioRunner().run(sc)
    assert len(results) == len(sc.seeds)
