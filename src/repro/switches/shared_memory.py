"""Shared (centralized) buffering — the architecture the paper implements.

A single memory pool of ``capacity`` cells is shared by all outputs; cells are
kept in per-output FIFO order (linked lists in a real chip, deques here).  A
cell is dropped only when the *whole* pool is full, which is why shared
buffering needs far fewer total cells than output queueing for the same loss
probability ([HlKa88]; bench E3).

This is the slot-level idealization of the pipelined-memory switch; the
word-level model in :mod:`repro.core` refines it to clock-cycle granularity.
Equivalence between the two (same departures under the same arrivals, up to
the pipeline latency) is checked by ``tests/integration``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.errors import ConfigError
from repro.policy import AdmissionPolicy, parse_policy
from repro.sim.packet import Cell
from repro.sim.rng import make_rng
from repro.switches.base import SlottedSwitch
from repro.telemetry import DROP_POLICY


class SharedBuffer(SlottedSwitch):
    """Shared memory pool with per-output FIFO discipline.

    Parameters
    ----------
    capacity:
        Total pool size in cells (``None`` = infinite).  [HlKa88]'s headline
        number: 86 cells suffice for a 16x16 switch at load 0.8 for loss 1e-3.
    policy:
        Admission policy (spec string or :class:`~repro.policy.AdmissionPolicy`)
        consulted per cell at slot granularity, before the pool-full check.
        A refusal is a late drop with cause ``policy``.  Non-trivial policies
        require a finite ``capacity`` — free-space-scaled thresholds are
        meaningless over an infinite pool.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        capacity: int | None = None,
        warmup: int = 0,
        seed: int | np.random.Generator | None = None,
        policy: AdmissionPolicy | str | None = "complete",
    ) -> None:
        super().__init__(n_in, n_out, warmup)
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.policy = parse_policy(policy)
        if not self.policy.trivial:
            if capacity is None:
                raise ConfigError(
                    f"admission policy '{self.policy.spec}' needs a finite "
                    f"capacity; an infinite shared pool has no free space "
                    f"to ration"
                )
            self.policy.validate(n=n_out, addresses=capacity, quanta=1)
        self._policy_trivial = self.policy.trivial
        self.policy_drops = 0
        self.queues: list[deque[Cell]] = [deque() for _ in range(n_out)]
        self._total = 0
        self.rng = make_rng(seed)
        self._pending: list[Cell] = []

    def _admit(self, cell: Cell) -> bool:
        self._pending.append(cell)
        return True  # provisional; adjusted in _select_departures

    def _select_departures(self) -> list[Cell | None]:
        if self._pending:
            order = self.rng.permutation(len(self._pending))
            for k in order:
                cell = self._pending[int(k)]
                if self.capacity is not None and self._total >= self.capacity:
                    self._record_late_drop(cell)
                elif not self._policy_trivial and not self.policy.admit(
                    cell.dst,
                    self.capacity - self._total,
                    [len(q) for q in self.queues],
                    1,
                ):
                    self.policy_drops += 1
                    self._record_late_drop(cell, cause=DROP_POLICY)
                else:
                    self.queues[cell.dst].append(cell)
                    self._total += 1
            self._pending = []
        departures: list[Cell | None] = []
        for q in self.queues:
            if q:
                departures.append(q.popleft())
                self._total -= 1
            else:
                departures.append(None)
        return departures

    def occupancy(self) -> int:
        return self._total
