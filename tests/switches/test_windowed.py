"""Tests for windowed input queueing."""

import pytest

from repro.analysis.hol import KAROL_TABLE
from repro.switches import FifoInputQueued
from repro.switches.windowed import WindowedInputQueued
from repro.traffic import BernoulliUniform, FixedPermutation


def test_validation():
    with pytest.raises(ValueError):
        WindowedInputQueued(4, 4, window=0)
    with pytest.raises(ValueError):
        WindowedInputQueued(4, 4, window=4, capacity=2)


def test_window_one_equals_fifo_saturation():
    n = 8
    win = WindowedInputQueued(n, n, window=1, warmup=2000, seed=1)
    sat = win.run(BernoulliUniform(n, n, 1.0, seed=2), 20_000).throughput
    assert sat == pytest.approx(KAROL_TABLE[n], abs=0.02)


def test_saturation_monotone_in_window():
    """Deeper windows relieve more HoL blocking — the classic curve."""
    n = 8
    sats = []
    for w in (1, 2, 4, 8):
        sw = WindowedInputQueued(n, n, window=w, warmup=1500, seed=3)
        sats.append(sw.run(BernoulliUniform(n, n, 1.0, seed=4), 15_000).throughput)
    assert all(b >= a - 0.01 for a, b in zip(sats, sats[1:]))
    assert sats[-1] > sats[0] + 0.15


def test_large_window_approaches_voq():
    n = 8
    sw = WindowedInputQueued(n, n, window=64, warmup=2000, seed=5)
    sat = sw.run(BernoulliUniform(n, n, 1.0, seed=6), 20_000).throughput
    assert sat > 0.9


def test_permutation_full_throughput():
    sw = WindowedInputQueued(4, 4, window=2, seed=7)
    stats = sw.run(FixedPermutation([1, 2, 3, 0]), 400)
    assert stats.throughput == pytest.approx(1.0, abs=0.01)


def test_cells_within_window_can_overtake():
    """A cell behind a blocked head departs first — the point of windowing.

    Whether input 0's head wins its output-0 contention is a coin flip; with
    this seed it loses, so the dst-1 cell behind it overtakes.
    """
    # Input 0: cell for output 0, then cell for output 1.
    # Input 1: a long burst for output 0 keeps output 0 contended.
    trace = [[0, 0], [1, 0], [None, 0], [None, 0]]
    sw = WindowedInputQueued(2, 2, window=2, seed=1)
    overtook = False
    for t in range(12):
        arr = trace[t] if t < len(trace) else [None, None]
        for cell in sw.step(arr):
            if cell is not None and cell.src == 0 and cell.dst == 1:
                # the dst-1 cell left while the older dst-0 cell may remain
                if any(c.dst == 0 for c in sw.queues[0]):
                    overtook = True
    assert overtook


def test_conservation():
    sw = WindowedInputQueued(4, 4, window=3, seed=8)
    sw.run(BernoulliUniform(4, 4, 0.9, seed=9), 3000)
    assert sw.occupancy() == sw.stats.accepted - sw.stats.delivered


def test_beats_fifo_on_same_trace():
    from repro.traffic import TraceSource, record_trace

    n = 8
    trace = record_trace(BernoulliUniform(n, n, 0.9, seed=10), 10_000)
    fifo = FifoInputQueued(n, n, warmup=1000, seed=12)
    win = WindowedInputQueued(n, n, window=4, warmup=1000, seed=12)
    t_fifo = fifo.run(TraceSource(trace, n), 10_000).throughput
    t_win = win.run(TraceSource(trace, n), 10_000).throughput
    assert t_win > t_fifo
