"""Little's-law and conservation checks applied to simulator output.

Used by the test suite as an *independent* consistency oracle: whatever the
architecture, time-average occupancy must equal arrival rate times mean
sojourn time, and every admitted cell must either depart or still be queued.
A simulator bug (lost cell, double delivery, mis-timed stamp) breaks one of
these identities long before it shows up in a throughput curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.stats import SwitchStats
from repro.switches.base import SlottedSwitch


@dataclass(frozen=True, slots=True)
class LittlesLawReport:
    """Outcome of a Little's-law check: L vs lambda * W."""

    mean_occupancy: float  # L: time-averaged cells in the system
    arrival_rate: float  # lambda: admitted cells per slot
    mean_delay: float  # W: mean sojourn (slots); delay+1 in our convention
    lhs: float  # L
    rhs: float  # lambda * W
    relative_error: float

    @property
    def holds(self) -> bool:
        return self.relative_error < 0.1  # sampling noise allowance


def littles_law_check(switch: SlottedSwitch) -> LittlesLawReport:
    """Check L = lambda * W on a finished run with occupancy sampling on.

    Under the arrivals-then-service slot convention a cell departing the
    slot it arrived has recorded delay 0 but occupied the buffer for part of
    one slot; occupancy is sampled *after* departures, so such a cell
    contributes 0 occupancy samples and the matching sojourn is exactly its
    recorded delay.
    """
    if not switch.occupancy_samples:
        raise ValueError("run the switch with sample_occupancy=True first")
    stats = switch.stats
    slots = stats.measured_slots
    if slots <= 0 or stats.delay.count == 0:
        raise ValueError("not enough measured data for a Little's-law check")
    l_avg = sum(switch.occupancy_samples) / len(switch.occupancy_samples)
    lam = stats.accepted / slots
    w = stats.mean_delay
    rhs = lam * w
    denom = max(abs(l_avg), abs(rhs), 1e-12)
    return LittlesLawReport(
        mean_occupancy=l_avg,
        arrival_rate=lam,
        mean_delay=w,
        lhs=l_avg,
        rhs=rhs,
        relative_error=abs(l_avg - rhs) / denom,
    )


def conservation_check(stats: SwitchStats, still_buffered: int) -> bool:
    """Accepted cells = delivered + still buffered (+ post-warmup fuzz).

    The identity is exact only when warmup is 0 (otherwise cells straddling
    the warmup boundary are counted on one side only), so tests use it on
    warmup-free runs.
    """
    if stats.warmup != 0:
        raise ValueError("conservation check requires warmup == 0")
    return stats.accepted == stats.delivered + still_buffered


def throughput_delay_consistency(stats: SwitchStats) -> float:
    """Return delivered/accepted ratio; ~1.0 on a drained, warmup-free run."""
    if stats.accepted == 0:
        return math.nan
    return stats.delivered / stats.accepted
