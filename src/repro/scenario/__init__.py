"""Declarative scenario layer: one spec + registry for every kernel.

A :class:`Scenario` names an architecture from the registry, its config
parameters, a traffic spec, a horizon and seeds — everything needed to
reproduce a run from a JSON/TOML file.  :func:`run_scenario` executes one;
:class:`ScenarioRunner` sweeps many across processes with bit-identical
results regardless of job count.  See ARCHITECTURE.md §12.
"""

from repro.scenario.registry import (
    REGISTRY,
    ArchitectureDef,
    architectures,
    prepare,
    run_scenario,
    slotted_factory,
    validate_scenario,
)
from repro.scenario.runner import ScenarioRunner
from repro.scenario.spec import (
    Scenario,
    ScenarioError,
    TelemetrySpec,
    TrafficSpec,
    load_scenarios,
)

__all__ = [
    "Scenario",
    "ScenarioError",
    "TrafficSpec",
    "TelemetrySpec",
    "load_scenarios",
    "ArchitectureDef",
    "REGISTRY",
    "architectures",
    "validate_scenario",
    "prepare",
    "run_scenario",
    "slotted_factory",
    "ScenarioRunner",
]
