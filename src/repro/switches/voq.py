"""Non-FIFO input buffering: virtual output queues + a crossbar scheduler.

The paper's section 2.1 "non-FIFO input buffering": buffers keep a single
read port (one cell out per input per slot), but any buffered cell — not just
the head of a FIFO — may be selected.  The standard implementation keeps one
virtual output queue (VOQ) per (input, output) pair and runs a matching
scheduler each slot (see :mod:`repro.switches.schedulers`).

This is the architecture the paper argues *against* on cost-performance
grounds (section 5.1): it removes head-of-line blocking but needs a complex
scheduler, and its latency remains worse than shared/output buffering
whenever an output idles while all inputs holding its cells are busy
elsewhere — the effect the E4 bench measures.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sim.packet import Cell
from repro.switches.base import SlottedSwitch
from repro.switches.schedulers import Scheduler


class VoqInputBuffered(SlottedSwitch):
    """VOQ switch with a pluggable scheduler.

    Parameters
    ----------
    scheduler:
        Any :class:`~repro.switches.schedulers.Scheduler`.
    capacity_per_input:
        Total cells one input's buffer may hold across all its VOQs
        (``None`` = infinite).  Models the single physical input buffer the
        paper discusses; per-VOQ limits can be imposed with
        ``capacity_per_voq``.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        scheduler: Scheduler,
        capacity_per_input: int | None = None,
        capacity_per_voq: int | None = None,
        warmup: int = 0,
    ) -> None:
        super().__init__(n_in, n_out, warmup)
        if capacity_per_input is not None and capacity_per_input < 1:
            raise ValueError(f"capacity_per_input must be >= 1, got {capacity_per_input}")
        if capacity_per_voq is not None and capacity_per_voq < 1:
            raise ValueError(f"capacity_per_voq must be >= 1, got {capacity_per_voq}")
        self.scheduler = scheduler
        self.capacity_per_input = capacity_per_input
        self.capacity_per_voq = capacity_per_voq
        self.voqs: list[list[deque[Cell]]] = [
            [deque() for _ in range(n_out)] for _ in range(n_in)
        ]
        self._input_occupancy = [0] * n_in

    def _admit(self, cell: Cell) -> bool:
        if (
            self.capacity_per_input is not None
            and self._input_occupancy[cell.src] >= self.capacity_per_input
        ):
            return False
        voq = self.voqs[cell.src][cell.dst]
        if self.capacity_per_voq is not None and len(voq) >= self.capacity_per_voq:
            return False
        voq.append(cell)
        self._input_occupancy[cell.src] += 1
        return True

    def _select_departures(self) -> list[Cell | None]:
        requests = np.zeros((self.n_in, self.n_out), dtype=bool)
        for i in range(self.n_in):
            for j in range(self.n_out):
                if self.voqs[i][j]:
                    requests[i, j] = True
        departures: list[Cell | None] = [None] * self.n_out
        for i, j in self.scheduler.match(requests):
            if departures[j] is not None:
                raise AssertionError(
                    f"{self.scheduler.name} matched output {j} twice"
                )
            cell = self.voqs[i][j].popleft()
            self._input_occupancy[i] -= 1
            departures[j] = cell
        return departures

    def occupancy(self) -> int:
        return sum(self._input_occupancy)
