"""Shared error types for the word-level switch kernels.

Every invalid static configuration — bad :class:`PipelinedSwitchConfig`
fields, a source whose shape does not match the switch, a kernel that does
not model the requested policy — raises :class:`ConfigError` (a
``ValueError``), so callers building switches programmatically (the CLI, the
scenario registry, sweep drivers) can catch one exception type and surface
its message instead of a traceback.
"""

from __future__ import annotations


class ConfigError(ValueError):
    """An invalid switch configuration (see module docstring).

    Subclasses ``ValueError`` so existing ``pytest.raises(ValueError)``
    call sites and defensive ``except ValueError`` blocks keep working.
    """
