"""Equivalence of the array-batched kernel with the checked and fast kernels.

`BatchPipelinedSwitch` must reproduce the checked `PipelinedSwitch` *bit
for bit* — statistics, latency accumulators (Welford means compared as
exact floats), wave/idle/drop counters, drain lengths, and the telemetry
event stream — on every configuration it claims to model, for every batch
size.  Correctness must be independent of ``batch_cycles``, which the
matrix asserts by sweeping it (including ``batch_cycles=1`` and windows
larger than the horizon); batch-boundary edge cases (a wave straddling a
window, drain or warmup landing mid-batch) are pinned explicitly.

The tape-consumable sources are part of the contract: `BatchRenewalSource`
must produce the same arrival stream whether polled cycle by cycle
(checked/fast kernels) or consumed in vectorized batches (batch kernel),
which is what makes cross-kernel equivalence on the same object possible.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchPipelinedSwitch,
    BatchRenewalSource,
    FastPathUnsupportedError,
    FastPipelinedSwitch,
    PipelinedSwitch,
    PipelinedSwitchConfig,
    RenewalPacketSource,
    SaturatingSource,
    make_pipelined_switch,
    resolve_jit,
)
from repro.drc.sanitizer import Sanitizer
from repro.sim.packet import reset_packet_ids
from repro.telemetry import Telemetry


def _renewal(cfg, load, seed):
    return BatchRenewalSource(
        n_out=cfg.n, packet_words=cfg.packet_words, load=load,
        width_bits=cfg.width_bits, seed=seed,
    )


def _saturating(cfg, load, seed):
    return SaturatingSource(n_out=cfg.n, packet_words=cfg.packet_words, seed=seed)


def _fingerprint(sw) -> dict:
    return {
        "stats": sw.stats,
        "ct_latency": sw.ct_latency,
        "ct_latency_hist": sw.ct_latency_hist,
        "total_latency": sw.total_latency,
        "stagger_extra": sw.stagger_extra,
        "cut_through_waves": sw.cut_through_waves,
        "plain_read_waves": sw.plain_read_waves,
        "write_waves": sw.write_waves,
        "idle_cycles": sw.idle_cycles,
        "deadline_overrides": sw.deadline_overrides,
        "overrun_drops": sw.overrun_drops,
        "cycle": sw.cycle,
        "link_utilization": sw.link_utilization,
    }


#: the shapes the batch kernel supports, E15/E13-flavoured plus every
#: feature interaction it models (quanta chains, store-and-forward,
#: downstream credits, wire pipelining, >12 ports past the lean engine)
MATRIX = [
    pytest.param(dict(n=8, addresses=128), _renewal, 0.6, 1, 400,
                 id="e15-8x8-drop-tail"),
    pytest.param(dict(n=4, addresses=8), _saturating, 1.0, 3, 0,
                 id="e15-4x4-droppy"),
    pytest.param(dict(n=4, addresses=64, cut_through=False), _renewal,
                 0.7, 2, 0, id="store-and-forward"),
    pytest.param(dict(n=4, addresses=32, quanta=2), _renewal, 0.6, 1, 100,
                 id="multi-quantum"),
    pytest.param(dict(n=4, addresses=64, downstream_credits=2,
                      downstream_rtt=7), _renewal, 0.8, 4, 0,
                 id="downstream-credits"),
    pytest.param(dict(n=4, addresses=64, link_pipeline_stages=2), _renewal,
                 0.6, 1, 0, id="wire-pipelined"),
    pytest.param(dict(n=16, addresses=256), _saturating, 1.0, 6, 200,
                 id="16x16-saturated-general-engine"),
]

BATCH_SIZES = (1, 7, 256, 4096)


def _run_reference(kernel_cls, cfg, make_source, load, seed, warmup,
                   cycles=1200, rerun=500):
    reset_packet_ids()
    sw = kernel_cls(cfg, make_source(cfg, load, seed))
    sw.warmup = warmup
    sw.run(cycles)
    d1 = sw.drain()
    sw.run(rerun)
    d2 = sw.drain()
    return sw, (d1, d2)


def _run_batch(cfg, make_source, load, seed, warmup, batch,
               cycles=1200, rerun=500):
    reset_packet_ids()
    sw = BatchPipelinedSwitch(cfg, make_source(cfg, load, seed),
                              batch_cycles=batch)
    sw.warmup = warmup
    sw.run(cycles)
    d1 = sw.drain()
    sw.run(rerun)
    d2 = sw.drain()
    return sw, (d1, d2)


def _assert_fp_equal(want_fp, got_fp, label):
    for key, want in want_fp.items():
        got = got_fp[key]
        assert got == want, f"{label} {key}: want={want!r} got={got!r}"


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("cfg_kwargs,make_source,load,seed,warmup", MATRIX)
    def test_bit_identical_to_checked_and_fast(self, cfg_kwargs, make_source,
                                               load, seed, warmup):
        cfg = PipelinedSwitchConfig(**cfg_kwargs)
        checked, drains_c = _run_reference(PipelinedSwitch, cfg, make_source,
                                           load, seed, warmup)
        fast, drains_f = _run_reference(FastPipelinedSwitch, cfg, make_source,
                                        load, seed, warmup)
        fp = _fingerprint(checked)
        _assert_fp_equal(fp, _fingerprint(fast), "fast")
        assert drains_f == drains_c
        for batch in BATCH_SIZES:
            batch_sw, drains_b = _run_batch(cfg, make_source, load, seed,
                                            warmup, batch)
            _assert_fp_equal(fp, _fingerprint(batch_sw), f"batch={batch}")
            assert drains_b == drains_c, f"batch={batch} drain lengths differ"


class TestTelemetryEquivalence:
    @pytest.mark.parametrize("cfg_kwargs,make_source,load,seed,warmup",
                             MATRIX[:6])
    def test_event_streams_and_samples_identical(self, cfg_kwargs,
                                                 make_source, load, seed,
                                                 warmup, cycles=1500):
        def run(kernel):
            reset_packet_ids()
            cfg = PipelinedSwitchConfig(**cfg_kwargs)
            tel = Telemetry.on(sample_interval=32)
            if kernel == "batch":
                sw = BatchPipelinedSwitch(cfg, make_source(cfg, load, seed),
                                          telemetry=tel, batch_cycles=256)
            else:
                cls = PipelinedSwitch if kernel == "checked" else FastPipelinedSwitch
                sw = cls(cfg, make_source(cfg, load, seed), telemetry=tel)
            sw.warmup = warmup
            sw.run(cycles)
            sw.drain()
            return tel

        ref = run("checked")
        for kernel in ("fast", "batch"):
            tel = run(kernel)
            assert ref.events.sorted_events() == tel.events.sorted_events(), \
                f"checked/{kernel} event streams diverge"
            assert ref.events.drop_taxonomy() == tel.events.drop_taxonomy()
            assert ref.samples == tel.samples
            assert ref.metrics.as_dict() == tel.metrics.as_dict()


class TestBatchBoundaries:
    """Batch-window edges: the cases where batching could plausibly leak."""

    def test_wave_straddles_window_boundary(self):
        # batch_cycles=10 with 16-word packets guarantees every wave spans
        # a window edge; the due/pending machinery must carry it across.
        cfg = PipelinedSwitchConfig(n=4, addresses=32)
        ref, drains_ref = _run_batch(cfg, _renewal, 0.7, 9, 0, 4096,
                                     cycles=800)
        sw, drains = _run_batch(cfg, _renewal, 0.7, 9, 0, 10, cycles=800)
        _assert_fp_equal(_fingerprint(ref), _fingerprint(sw), "straddle")
        assert drains == drains_ref

    def test_warmup_lands_mid_batch(self):
        # warmup=333 inside a 256-cycle window: admission/delivery gating
        # must follow the cycle, not the window.
        cfg = PipelinedSwitchConfig(n=4, addresses=32)
        reset_packet_ids()
        checked = PipelinedSwitch(cfg, _renewal(cfg, 0.8, 5))
        checked.warmup = 333
        checked.run(1000)
        checked.drain()
        sw, _ = _run_batch(cfg, _renewal, 0.8, 5, 333, 256, cycles=1000,
                           rerun=0)
        _assert_fp_equal(_fingerprint(checked), _fingerprint(sw), "warmup")

    def test_drain_then_rerun_at_every_small_batch(self):
        # run/drain/run/drain at batch sizes 1..5: the drain loop's
        # closed-form final step and the tape's resume_idle re-anchor must
        # agree with the per-cycle oracle regardless of window phase.
        cfg = PipelinedSwitchConfig(n=3, addresses=24)
        checked, drains_c = _run_reference(PipelinedSwitch, cfg, _renewal,
                                           0.9, 7, 50, cycles=357, rerun=123)
        fp = _fingerprint(checked)
        for batch in range(1, 6):
            sw, drains_b = _run_batch(cfg, _renewal, 0.9, 7, 50, batch,
                                      cycles=357, rerun=123)
            _assert_fp_equal(fp, _fingerprint(sw), f"batch={batch}")
            assert drains_b == drains_c

    def test_window_larger_than_horizon(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=32)
        ref, _ = _run_batch(cfg, _renewal, 0.6, 2, 0, 1, cycles=600, rerun=0)
        sw, _ = _run_batch(cfg, _renewal, 0.6, 2, 0, 1 << 20, cycles=600,
                           rerun=0)
        _assert_fp_equal(_fingerprint(ref), _fingerprint(sw), "huge-window")


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 6),
    addr_factor=st.integers(1, 8),
    quanta=st.integers(1, 3),
    cut_through=st.booleans(),
    credit_flow=st.booleans(),
    wirepipe=st.integers(0, 2),
    load=st.floats(0.2, 1.0),
    seed=st.integers(0, 2**16),
    batch=st.sampled_from((1, 3, 64, 1024, 4096)),
)
def test_random_configs_and_batch_sizes_identical(
    n, addr_factor, quanta, cut_through, credit_flow, wirepipe, load, seed,
    batch,
):
    cfg = PipelinedSwitchConfig(
        n=n, addresses=n * quanta * addr_factor, quanta=quanta,
        cut_through=cut_through, credit_flow=credit_flow,
        link_pipeline_stages=wirepipe,
    )
    if credit_flow:
        with pytest.raises(FastPathUnsupportedError):
            BatchPipelinedSwitch(cfg, _renewal(cfg, load, seed))
        return
    checked, drains_c = _run_reference(PipelinedSwitch, cfg, _renewal,
                                       load, seed, 100)
    sw, drains_b = _run_batch(cfg, _renewal, load, seed, 100, batch)
    _assert_fp_equal(_fingerprint(checked), _fingerprint(sw),
                     f"batch={batch}")
    assert drains_b == drains_c


class TestTapeSources:
    def test_tape_matches_scalar_polling(self):
        # The same BatchRenewalSource must describe the same arrival stream
        # through both protocols.
        src_tape = BatchRenewalSource(n_out=4, packet_words=8, load=0.7,
                                      seed=3)
        src_poll = BatchRenewalSource(n_out=4, packet_words=8, load=0.7,
                                      seed=3)
        cycles, links, dsts = src_tape.batch_arrivals(0, 400)
        tape = list(zip(cycles.tolist(), links.tolist(), dsts.tolist()))
        polled = []
        busy = [0] * 4
        for t in range(400):
            for link in range(4):
                if t < busy[link]:
                    continue
                dst = src_poll.maybe_start(t, link)
                if dst is not None:
                    polled.append((t, link, dst))
                    busy[link] = t + 8
        assert tape == polled

    def test_tape_sorted_by_cycle_then_link(self):
        src = BatchRenewalSource(n_out=8, packet_words=16, load=0.9, seed=1)
        cycles, links, _ = src.batch_arrivals(0, 2000)
        keys = list(zip(cycles.tolist(), links.tolist()))
        assert keys == sorted(keys)


class TestRefusals:
    """Refuse-don't-approximate: every unsupported shape raises cleanly."""

    def test_rejects_credit_flow(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=32, credit_flow=True)
        with pytest.raises(FastPathUnsupportedError, match="credit"):
            BatchPipelinedSwitch(cfg, _renewal(cfg, 0.5, 1))

    def test_rejects_unbatchable_source(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=32)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words,
                                  load=0.5, seed=1)
        with pytest.raises(FastPathUnsupportedError, match="arrival tape"):
            BatchPipelinedSwitch(cfg, src)

    def test_rejects_enabled_sanitizer(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=32)
        with pytest.raises(FastPathUnsupportedError, match="sanitizer"):
            BatchPipelinedSwitch(cfg, _renewal(cfg, 0.5, 1),
                                 sanitizer=Sanitizer())

    def test_rejects_bad_batch_cycles(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=32)
        with pytest.raises(FastPathUnsupportedError, match="batch_cycles"):
            BatchPipelinedSwitch(cfg, _renewal(cfg, 0.5, 1), batch_cycles=0)


class TestArrayCore:
    """The numba-optional array core must be bit-identical uncompiled."""

    def test_resolve_jit_states(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        assert resolve_jit(None) == "off"
        assert resolve_jit(False) == "off"
        monkeypatch.setenv("REPRO_JIT", "1")
        assert resolve_jit(None) in ("active", "unavailable")
        monkeypatch.setenv("REPRO_JIT", "0")
        assert resolve_jit(None) == "off"

    def test_jit_gate_follows_shape(self):
        cfg = PipelinedSwitchConfig(n=8, addresses=128)
        sw = BatchPipelinedSwitch(cfg, _renewal(cfg, 0.6, 1), jit=True)
        assert sw.jit_state in ("active", "unavailable")
        assert sw._array_core
        for unsupported in (dict(quanta=2, addresses=64),
                            dict(addresses=32, cut_through=False)):
            cfg2 = PipelinedSwitchConfig(n=4, **unsupported)
            sw2 = BatchPipelinedSwitch(cfg2, _renewal(cfg2, 0.6, 1), jit=True)
            assert sw2.jit_state == "unsupported"
            assert not sw2._array_core

    @pytest.mark.parametrize("cfg_kwargs,make_source,load,seed,warmup", [
        MATRIX[0], MATRIX[1], MATRIX[4], MATRIX[5],
    ])
    def test_array_core_bit_identical(self, cfg_kwargs, make_source, load,
                                      seed, warmup):
        # jit=True exercises _batchcore.advance_window regardless of whether
        # numba is installed ("unavailable" runs the same kernel uncompiled).
        cfg = PipelinedSwitchConfig(**cfg_kwargs)
        checked, drains_c = _run_reference(PipelinedSwitch, cfg, make_source,
                                           load, seed, warmup)
        reset_packet_ids()
        sw = BatchPipelinedSwitch(cfg, make_source(cfg, load, seed),
                                  batch_cycles=256, jit=True)
        assert sw._array_core
        sw.warmup = warmup
        sw.run(1200)
        d1 = sw.drain()
        sw.run(500)
        d2 = sw.drain()
        _assert_fp_equal(_fingerprint(checked), _fingerprint(sw), "jit")
        assert (d1, d2) == drains_c

    def test_telemetry_disables_array_core(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=32)
        sw = BatchPipelinedSwitch(cfg, _renewal(cfg, 0.6, 1), jit=True,
                                  telemetry=Telemetry.on(sample_interval=32))
        assert sw.jit_state == "unsupported"
        assert not sw._array_core


class TestFactory:
    def test_factory_selects_batch_kernel(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=32)
        sw = make_pipelined_switch(cfg, _renewal(cfg, 0.5, 1), kernel="batch",
                                   batch_cycles=128)
        assert isinstance(sw, BatchPipelinedSwitch)
        assert sw.batch_cycles == 128

    def test_factory_rejects_batch_options_elsewhere(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=32)
        with pytest.raises(ValueError, match="batch_cycles"):
            make_pipelined_switch(cfg, _renewal(cfg, 0.5, 1), kernel="fast",
                                  batch_cycles=128)
        with pytest.raises(ValueError, match="jit"):
            make_pipelined_switch(cfg, _renewal(cfg, 0.5, 1), jit=True)
        with pytest.raises(ValueError, match="unknown kernel"):
            make_pipelined_switch(cfg, _renewal(cfg, 0.5, 1), kernel="warp")
