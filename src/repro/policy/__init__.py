"""Shared-buffer admission policies (see :mod:`repro.policy.admission`)."""

from repro.policy.admission import (
    POLICIES,
    AdmissionPolicy,
    CompleteSharing,
    DynamicThreshold,
    K_COMPLETE,
    K_DYNAMIC,
    K_RESERVATION,
    K_STATIC,
    PortReservation,
    StaticThreshold,
    parse_policy,
)

__all__ = [
    "AdmissionPolicy",
    "CompleteSharing",
    "StaticThreshold",
    "DynamicThreshold",
    "PortReservation",
    "POLICIES",
    "parse_policy",
    "K_COMPLETE",
    "K_STATIC",
    "K_DYNAMIC",
    "K_RESERVATION",
]
