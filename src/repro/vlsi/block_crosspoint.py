"""Silicon model of block-crosspoint buffering built from pipelined memories.

Paper §3.5: "if more links or more throughput is desired, one can always go
to block-crosspoint buffering, still using pipelined memory to construct
each of the buffers."  This module prices that design: an ``n x n`` switch
partitioned into ``(n/g)^2`` blocks, each a ``g x g`` pipelined shared
buffer (``2g`` banks of ``w`` bits).

The model captures the §3.5 trade:

* the per-buffer **throughput quantum** shrinks from ``2nw`` to ``2gw`` —
  the scaling escape hatch;
* the wire-dominated **datapath area** stays ~constant: each block's
  peripheral is ∝ (2gw)^2 and there are (n/g)^2 blocks, so the total is
  ∝ (2nw)^2 regardless of g (first order);
* **memory** grows as g shrinks: smaller pools share less, so the capacity
  needed for a loss target rises (quantified with the
  :mod:`repro.analysis.buffer_sizing` machinery).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.queueing import batch_pmf, convolve_queues
from repro.vlsi.datapath import pipelined_peripheral_area
from repro.vlsi.memory import pipelined_memory_area
from repro.vlsi.technology import TELEGRAPHOS_III_TECH, Technology


@dataclass(frozen=True, slots=True)
class BlockCrosspointCost:
    """Cost summary of one block-crosspoint configuration."""

    n: int
    g: int  # block size (g x g blocks)
    blocks: int  # (n/g)^2
    quantum_bits: int  # per-buffer width = packet quantum
    capacity_per_block: int  # packets, sized for the loss target
    total_capacity: int
    memory_mm2: float
    datapath_mm2: float
    total_mm2: float


def block_crosspoint_cost(
    tech: Technology = TELEGRAPHOS_III_TECH,
    n: int = 16,
    g: int = 8,
    width_bits: int = 16,
    load: float = 0.8,
    loss_target: float = 1e-3,
) -> BlockCrosspointCost:
    """Price an ``n x n`` switch built of ``g x g`` pipelined-buffer blocks.

    Buffer sizing: output ``j``'s traffic arrives through its column of
    ``n/g`` blocks, which *share* output ``j``'s link — so each block's
    per-output queue receives ``load * g / n`` cells/slot but is served only
    ``g/n`` of the slots (modeled Bernoulli, slightly conservative versus
    round-robin).  The utilization per queue is therefore ``load`` at every
    block size, but partitioned queues cannot share memory, which is why the
    total capacity grows as blocks shrink — the §2 sharing argument in cost
    form.
    """
    if g < 1 or n % g:
        raise ValueError(f"block size {g} must divide n={n}")
    columns = n // g
    blocks = columns * columns
    per_block_target = loss_target / columns
    queue = _slow_served_queue_distribution(
        g, load * g / n, service_prob=g / n
    )
    pool = convolve_queues(queue, max(g, 1))
    cdf = np.cumsum(pool)
    capacity = int(np.searchsorted(cdf, 1.0 - per_block_target)) + 1
    depth = 2 * g
    mem = pipelined_memory_area(tech, depth, max(capacity, 1), width_bits)
    dp = pipelined_peripheral_area(tech, g, width_bits, depth)
    return BlockCrosspointCost(
        n=n,
        g=g,
        blocks=blocks,
        quantum_bits=depth * width_bits,
        capacity_per_block=capacity,
        total_capacity=capacity * blocks,
        memory_mm2=mem.total_mm2 * blocks,
        datapath_mm2=dp.area_mm2 * blocks,
        total_mm2=(mem.total_mm2 + dp.area_mm2) * blocks,
    )


def _slow_served_queue_distribution(
    g: int,
    arrival_load: float,
    service_prob: float,
    truncate: int = 1024,
    tol: float = 1e-12,
    max_iter: int = 60_000,
) -> np.ndarray:
    """Stationary distribution of one block-output queue.

    Arrivals: ``Bin(g, arrival_load/g)`` per slot (the block's input group);
    service: one cell with probability ``service_prob`` per slot (the output
    link visiting this column block).  ``Q' = max(Q + A - S, 0)``.
    """
    a = batch_pmf(g, min(arrival_load, 1.0))
    q = np.zeros(truncate)
    q[0] = 1.0
    s = service_prob
    for _ in range(max_iter):
        x = np.convolve(q, a)[:truncate]
        served = np.empty_like(x)
        served[:-1] = x[1:]
        served[-1] = 0.0
        served[0] += x[0]
        nxt = s * served + (1.0 - s) * x
        if np.abs(nxt - q).max() < tol:
            q = nxt
            break
        q = nxt
    return q / q.sum()


def block_size_sweep(
    tech: Technology = TELEGRAPHOS_III_TECH,
    n: int = 16,
    width_bits: int = 16,
    load: float = 0.8,
    loss_target: float = 1e-3,
) -> list[BlockCrosspointCost]:
    """All valid block sizes from full sharing (g = n) down to g = 2."""
    out = []
    g = n
    while g >= 2:
        if n % g == 0:
            out.append(
                block_crosspoint_cost(tech, n, g, width_bits, load, loss_target)
            )
        g //= 2
    return out
