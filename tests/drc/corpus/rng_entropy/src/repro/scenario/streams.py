import time

import numpy as np

from repro.sim.rng import make_rng


def unseeded():
    return np.random.default_rng()


def clock_seeded():
    return make_rng(int(time.time()))
