"""Design-rule checker for the pipelined-memory reproduction.

Two halves, one catalog of stable codes:

* **static** (``DRC1xx``) — AST lint rules over the repository source
  (:mod:`repro.drc.rules`, driven by :func:`repro.drc.run_lint` and the
  ``repro lint`` CLI);
* **runtime** (``DRC2xx``) — the opt-in per-cycle invariant sanitizer
  threaded through the kernels (:mod:`repro.drc.sanitizer`, enabled with
  ``--sanitize``).

See ``ARCHITECTURE.md`` §13 for the full rule catalog and the mapping of
sanitizer invariants to paper sections.
"""

from repro.drc.linter import (
    FORMATTERS,
    LintResult,
    discover_files,
    format_json,
    format_sarif,
    format_text,
    parse_suppressions,
    run_lint,
)
from repro.drc.rules import RULES, LintModule, Rule, Violation, rule_catalog
from repro.drc.sanitizer import (
    ADDRESS_MISMATCH,
    BANK_CONFLICT,
    CONSERVATION,
    DOUBLE_INITIATION,
    INVARIANTS,
    NULL_SANITIZER,
    NullSanitizer,
    Sanitizer,
    SanitizerError,
)

__all__ = [
    "ADDRESS_MISMATCH",
    "BANK_CONFLICT",
    "CONSERVATION",
    "DOUBLE_INITIATION",
    "FORMATTERS",
    "INVARIANTS",
    "LintModule",
    "LintResult",
    "NULL_SANITIZER",
    "NullSanitizer",
    "RULES",
    "Rule",
    "Sanitizer",
    "SanitizerError",
    "Violation",
    "discover_files",
    "format_json",
    "format_sarif",
    "format_text",
    "parse_suppressions",
    "rule_catalog",
    "run_lint",
]
