class SlottedSwitch:
    def _admit(self):
        pass

    def _select_departures(self):
        pass

    def occupancy(self):
        pass


class AlphaSwitch(SlottedSwitch):
    def __init__(self, rng):
        self.rng = rng
