"""Tests for the timing models and floorplan arithmetic."""

import pytest

from repro.vlsi import (
    Block,
    Floorplan,
    TELEGRAPHOS_II_TECH,
    TELEGRAPHOS_III_TECH,
    aggregate_buffer_throughput_gbps,
    clock_cycle_ns,
    link_throughput_gbps,
    optimal_split,
    row,
    stack,
    wide_vs_pipelined_wordline_ratio,
    wordline_delay,
)


class TestWordline:
    def test_validation(self):
        with pytest.raises(ValueError):
            wordline_delay(TELEGRAPHOS_III_TECH, 0)

    def test_delay_superlinear_in_span(self):
        """§4.3: word-line RC delay grows with the square of the length."""
        tech = TELEGRAPHOS_III_TECH
        d1 = wordline_delay(tech, 16)
        d2 = wordline_delay(tech, 256)
        assert d2.wire_delay_ns / d1.wire_delay_ns == pytest.approx(256.0, rel=0.01)
        assert d2.total_ns > 16 * d1.total_ns  # much worse than linear

    def test_wide_vs_pipelined_ratio_large(self):
        ratio = wide_vs_pipelined_wordline_ratio(TELEGRAPHOS_III_TECH, 8, 16)
        assert ratio > 10  # the §4.3 argument: wide word lines are untenable

    def test_optimal_split_reaches_figure_7a(self):
        """A wide word line must be split into many blocks (each with its
        own decoder) to meet the pipelined memory's per-bank delay —
        'arriving at a floorplan and area similar to figure 7(a)'."""
        tech = TELEGRAPHOS_III_TECH
        budget = wordline_delay(tech, 16).total_ns
        blocks = optimal_split(tech, 256, budget)
        assert blocks >= 8  # close to the 16 banks of the pipelined design

    def test_split_of_fast_line_is_one(self):
        tech = TELEGRAPHOS_III_TECH
        assert optimal_split(tech, 16, wordline_delay(tech, 16).total_ns) == 1


class TestClock:
    def test_telegraphos_clocks(self):
        assert clock_cycle_ns(TELEGRAPHOS_III_TECH) == pytest.approx(16.0)
        assert clock_cycle_ns(TELEGRAPHOS_III_TECH, worst_case=False) == pytest.approx(10.0)
        assert clock_cycle_ns(TELEGRAPHOS_II_TECH) == pytest.approx(40.0, rel=0.01)

    def test_telegraphos3_link_throughput(self):
        """§4.4: 1 Gb/s per link worst case, 1.6 Gb/s typical."""
        assert link_throughput_gbps(TELEGRAPHOS_III_TECH, 16) == pytest.approx(1.0)
        assert link_throughput_gbps(
            TELEGRAPHOS_III_TECH, 16, worst_case=False
        ) == pytest.approx(1.6)

    def test_aggregate_16gbps(self):
        assert aggregate_buffer_throughput_gbps(
            TELEGRAPHOS_III_TECH, 16, 16
        ) == pytest.approx(16.0)


class TestFloorplan:
    def test_block_area(self):
        assert Block("b", 2.0, 3.0).area_mm2 == 6.0
        with pytest.raises(ValueError):
            Block("bad", -1.0, 1.0)

    def test_row_and_stack(self):
        blocks = [Block("a", 1.0, 2.0), Block("b", 3.0, 1.0)]
        r = row("r", blocks)
        assert (r.width_mm, r.height_mm) == (4.0, 2.0)
        s = stack("s", blocks)
        assert (s.width_mm, s.height_mm) == (3.0, 3.0)
        with pytest.raises(ValueError):
            row("empty", [])

    def test_rotation(self):
        b = Block("b", 1.0, 2.0).rotated()
        assert (b.width_mm, b.height_mm) == (2.0, 1.0)

    def test_fits_and_utilization(self):
        fp = Floorplan(8.5, 8.5)
        fp.add(Block("buffer", 6.0, 5.5))
        assert fp.fits()
        assert fp.utilization == pytest.approx(33.0 / 72.25)
        fp.add(Block("huge", 9.0, 9.0))
        assert not fp.fits()

    def test_telegraphos2_die_budget(self):
        """Figure 6 arithmetic: 8 megacells + peripheral + routing fit the
        8.5 x 8.5 mm die with room for the link/control blocks."""
        from repro.vlsi import megacell_area_mm2, pipelined_peripheral_area

        tech = TELEGRAPHOS_II_TECH
        fp = Floorplan(8.5, 8.5)
        sram = megacell_area_mm2(tech, 256, 16)
        for k in range(8):
            fp.add(Block(f"DB{k}", 1.5, sram / 1.5))
        # Figure 6 places the peripheral standard cells in *two* regions in
        # the middle of the chip; fold the strip accordingly.
        dp = pipelined_peripheral_area(tech, 4, 16, 8)
        half_w = dp.width_mm / 2
        fp.add(Block("periph region A", half_w, dp.area_mm2 / dp.width_mm))
        fp.add(Block("periph region B", half_w, dp.area_mm2 / dp.width_mm))
        assert fp.fits()
        buffer_total = fp.used_area_mm2
        assert buffer_total == pytest.approx(32.0, rel=0.07)
        assert fp.utilization < 0.5  # the rest hosts RT/HM/link logic
