"""Admission policies on the slot-level SharedBuffer.

The slotted model consults the same policy objects as the word-level
kernels, per cell, in `_select_departures` — after the pool-full check,
so a `policy` drop is always a deliberate refusal, never a disguised
capacity drop.  CompleteSharing must leave the seed behaviour untouched.
"""

import pytest

from repro.core.errors import ConfigError
from repro.switches import SharedBuffer
from repro.telemetry import DROP_POLICY, Telemetry
from repro.traffic import BernoulliUniform, Hotspot


def _run(policy, *, capacity=24, n=4, load=0.9, slots=4000, seed=9,
         traffic=None, telemetry=None):
    sw = SharedBuffer(n, n, capacity=capacity, seed=seed, policy=policy)
    if telemetry is not None:
        sw.attach_telemetry(telemetry)
    src = traffic or Hotspot(n, n, load, hot=0, hot_fraction=0.6, seed=seed)
    sw.run(src, slots)
    return sw


class TestSharedBufferPolicy:
    def test_complete_sharing_matches_seed(self):
        seed_sw = SharedBuffer(4, 4, capacity=24, seed=9)
        src = BernoulliUniform(4, 4, 0.9, seed=9)
        seed_sw.run(src, 4000)
        pol_sw = _run("complete", traffic=BernoulliUniform(4, 4, 0.9, seed=9))
        assert pol_sw.stats.summary() == seed_sw.stats.summary()
        assert pol_sw.policy_drops == 0

    def test_dynamic_threshold_protects_cold_outputs(self):
        """Under a hotspot, complete sharing lets the hot output starve
        everyone; a dynamic threshold must deliver strictly more."""
        complete = _run("complete")
        dynamic = _run("dynamic:alpha=1.0")
        assert dynamic.policy_drops > 0
        assert dynamic.stats.delivered > complete.stats.delivered

    def test_policy_drop_cause_in_taxonomy(self):
        tel = Telemetry.on(sample_interval=64)
        sw = _run("static:cap=3", telemetry=tel)
        assert sw.policy_drops > 0
        taxonomy = tel.events.drop_taxonomy()
        assert taxonomy.get(DROP_POLICY, 0) == sw.policy_drops

    def test_refusal_is_not_a_capacity_drop(self):
        """With an ample pool every drop is a deliberate policy refusal —
        the static cap bounds occupancy at n*cap, far below capacity, so
        the pool-full branch can never fire."""
        sw = SharedBuffer(4, 4, capacity=100, seed=9, policy="static:cap=2")
        src = Hotspot(4, 4, 0.9, hot=0, hot_fraction=0.6, seed=9)
        sw.run(src, 2000)
        assert sw.policy_drops > 0
        assert sw.stats.dropped == sw.policy_drops

    def test_infinite_pool_refuses_non_trivial_policy(self):
        with pytest.raises(ConfigError, match="finite"):
            SharedBuffer(4, 4, capacity=None, policy="dynamic:alpha=1.0")
        SharedBuffer(4, 4, capacity=None, policy="complete")  # fine

    def test_impossible_reservation_refused_at_construction(self):
        with pytest.raises(ConfigError, match="addresses"):
            SharedBuffer(8, 8, capacity=8, policy="reservation:reserve=2")
