"""Timing models: clock cycle and word-line RC delay (paper §4.3, §4.4).

Two levels of model:

* a calibrated **clock model** — worst-case 16 ns / typical 10 ns for the
  1.0 um full-custom datapath (HSPICE-validated in the paper), scaling
  linearly with feature size and by a fixed factor for standard cells
  (Telegraphos II: 40 ns at 0.7 um standard cell);

* an Elmore **word-line model** for the §4.3 argument: the distributed RC
  delay of a word line grows with the *square* of its length, so the wide
  memory's ``B*w``-bit word line is ``B^2`` x slower to activate than the
  pipelined memory's ``w``-bit one — which is why real wide memories are
  split into blocks with replicated decoders, arriving at the figure-7a
  floorplan anyway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.vlsi.technology import Technology

# Per-um wire parasitics at f = 1 um (polysilicon word line with metal strap
# is ~10x better; these are order-of-magnitude constants for the *ratio*
# argument, which is what §4.3 uses them for).
_R_PER_UM_OHM = 0.15
_C_PER_UM_FF = 0.2
_DRIVER_R_OHM = 2_000.0
_CELL_LOAD_FF = 2.0  # gate load of one bit cell on the word line


@dataclass(frozen=True, slots=True)
class WordlineDelay:
    """Elmore delay breakdown of one word line."""

    length_um: float
    wire_delay_ns: float  # distributed RC: 0.38 * r * c * L^2
    driver_delay_ns: float  # R_drv * C_total
    total_ns: float


def wordline_delay(tech: Technology, span_bits: int) -> WordlineDelay:
    """Elmore delay of a word line spanning ``span_bits`` bit cells."""
    if span_bits < 1:
        raise ValueError(f"word line must span >= 1 bit, got {span_bits}")
    length = span_bits * tech.bit_width_um()
    r = _R_PER_UM_OHM / tech.feature_um  # thinner wires, higher resistance
    c = _C_PER_UM_FF * 1.0  # per-um capacitance roughly feature-independent
    wire = 0.38 * r * c * length * length * 1e-6  # ohm*fF*um^2 -> ns
    total_c = c * length + span_bits * _CELL_LOAD_FF
    driver = _DRIVER_R_OHM * total_c * 1e-6
    return WordlineDelay(
        length_um=length,
        wire_delay_ns=wire,
        driver_delay_ns=driver,
        total_ns=wire + driver,
    )


def wide_vs_pipelined_wordline_ratio(tech: Technology, n: int, width_bits: int) -> float:
    """Word-line activation delay ratio, wide memory / pipelined memory."""
    wide = wordline_delay(tech, 2 * n * width_bits)
    pipe = wordline_delay(tech, width_bits)
    return wide.total_ns / pipe.total_ns


def optimal_split(tech: Technology, total_bits: int, budget_ns: float) -> int:
    """Blocks a wide word line must be split into to meet a delay budget.

    Each block needs its own decoder — the §4.3 observation that wide
    memories converge to the pipelined floorplan (figure 7a).
    """
    for blocks in range(1, total_bits + 1):
        span = math.ceil(total_bits / blocks)
        if wordline_delay(tech, span).total_ns <= budget_ns:
            return blocks
    return total_bits


def clock_cycle_ns(tech: Technology, worst_case: bool = True) -> float:
    """Calibrated datapath clock for a pipelined-memory switch."""
    return tech.clock_ns(worst_case)


def link_throughput_gbps(tech: Technology, width_bits: int, worst_case: bool = True) -> float:
    """Per-link throughput: ``w`` bits every clock (paper: 16 bit / 16 ns =
    1 Gb/s worst case for Telegraphos III)."""
    return width_bits / clock_cycle_ns(tech, worst_case)


def aggregate_buffer_throughput_gbps(
    tech: Technology, n_banks: int, width_bits: int, worst_case: bool = True
) -> float:
    """Shared-buffer aggregate throughput: one word per bank per cycle."""
    return n_banks * width_bits / clock_cycle_ns(tech, worst_case)
