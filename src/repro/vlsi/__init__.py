"""Parametric silicon area/timing models calibrated to the Telegraphos dies."""

from repro.vlsi.block_crosspoint import (
    BlockCrosspointCost,
    block_crosspoint_cost,
    block_size_sweep,
)
from repro.vlsi.comparisons import (
    SharedVsInputReport,
    pipelined_vs_prizma,
    pipelined_vs_wide,
    shared_vs_input_buffering,
)
from repro.vlsi.crossbar import (
    CrossbarCost,
    crossbar_cost,
    pipelined_crossbars,
    prizma_crossbars,
    prizma_vs_pipelined_ratio,
)
from repro.vlsi.datapath import (
    DatapathArea,
    input_buffer_peripheral_area,
    pipelined_peripheral_area,
    wide_peripheral_area,
)
from repro.vlsi.floorplan import Block, Floorplan, row, stack
from repro.vlsi.memory import (
    MemoryArea,
    bank_dimensions_um,
    decoder_area_um2,
    megacell_area_mm2,
    pipelined_memory_area,
    pipereg_area_um2,
    shift_register_buffer_area_mm2,
    wide_memory_area,
)
from repro.vlsi.technology import (
    TELEGRAPHOS_II_TECH,
    TELEGRAPHOS_III_TECH,
    Style,
    Technology,
    scaled,
)
from repro.vlsi.telegraphos import (
    TELEGRAPHOS_I,
    TELEGRAPHOS_II,
    TELEGRAPHOS_III,
    TelegraphosConfig,
    factor_of_22_report,
    telegraphos1_report,
    telegraphos2_report,
    telegraphos3_report,
)
from repro.vlsi.timing import (
    WordlineDelay,
    aggregate_buffer_throughput_gbps,
    clock_cycle_ns,
    link_throughput_gbps,
    optimal_split,
    wide_vs_pipelined_wordline_ratio,
    wordline_delay,
)

__all__ = [
    "BlockCrosspointCost",
    "block_crosspoint_cost",
    "block_size_sweep",
    "Technology",
    "Style",
    "scaled",
    "TELEGRAPHOS_II_TECH",
    "TELEGRAPHOS_III_TECH",
    "MemoryArea",
    "bank_dimensions_um",
    "decoder_area_um2",
    "pipereg_area_um2",
    "pipelined_memory_area",
    "wide_memory_area",
    "megacell_area_mm2",
    "shift_register_buffer_area_mm2",
    "DatapathArea",
    "pipelined_peripheral_area",
    "wide_peripheral_area",
    "input_buffer_peripheral_area",
    "CrossbarCost",
    "crossbar_cost",
    "prizma_crossbars",
    "pipelined_crossbars",
    "prizma_vs_pipelined_ratio",
    "Block",
    "Floorplan",
    "row",
    "stack",
    "WordlineDelay",
    "wordline_delay",
    "wide_vs_pipelined_wordline_ratio",
    "optimal_split",
    "clock_cycle_ns",
    "link_throughput_gbps",
    "aggregate_buffer_throughput_gbps",
    "TelegraphosConfig",
    "TELEGRAPHOS_I",
    "TELEGRAPHOS_II",
    "TELEGRAPHOS_III",
    "telegraphos1_report",
    "telegraphos2_report",
    "telegraphos3_report",
    "factor_of_22_report",
    "SharedVsInputReport",
    "shared_vs_input_buffering",
    "pipelined_vs_prizma",
    "pipelined_vs_wide",
]
