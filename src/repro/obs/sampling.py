"""Deterministic, seed-stable packet sampling for lifecycle tracing.

A packet is sampled iff ``packet_hash(seed, uid) < threshold`` where the
threshold is ``rate`` scaled to the full 64-bit hash range.  The hash is a
pure function of ``(seed, uid)``, so:

* every kernel tier (checked, fast, batch) selects the *same* packets for
  the same scenario — the sampled event streams are bit-identical because
  the full streams already are;
* the selection is stable across processes, ``--jobs`` values, checkpoints
  and resumes (nothing about wall time or process identity enters);
* sampled sets are *nested*: a lower rate selects a subset of what any
  higher rate selects (the threshold only moves), so traces taken at
  different rates agree on the packets they share.

The mixer is the splitmix64 finalizer — cheap, and uniform enough that the
realized sampling fraction tracks ``rate`` closely for sequential uids.
"""

from __future__ import annotations

from repro.telemetry.events import Event, EventLog

_MASK = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def packet_hash(seed: int, uid: int) -> int:
    """64-bit seed-stable hash of a packet uid (splitmix64 finalizer)."""
    x = (uid + (seed + 1) * _GOLDEN) & _MASK
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK
    x ^= x >> 31
    return x


def sample_threshold(rate: float) -> int:
    """``rate`` in [0, 1] scaled to the 64-bit hash range."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"sample rate must be in [0, 1], got {rate!r}")
    return int(rate * float(1 << 64))


def is_sampled(seed: int, uid: int, rate: float) -> bool:
    """Whether ``uid`` is traced at ``rate`` under ``seed``."""
    return packet_hash(seed, uid) < sample_threshold(rate)


class SampledEventLog(EventLog):
    """An :class:`EventLog` that keeps only sampled packets' events.

    Drops non-sampled events at emit time, so memory scales with the
    sampled fraction, not the run length.  Everything downstream of
    ``EventLog`` (sorting, taxonomy, span assembly, exporters) works
    unchanged on the filtered stream.

    Note the aggregations (``drop_taxonomy`` etc.) then describe the
    *sampled* population only; whole-run aggregates come from the metrics
    registry, which is never sampled.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        super().__init__()
        self.rate = float(rate)
        self.seed = int(seed)
        self._threshold = sample_threshold(self.rate)

    def sampled(self, uid: int) -> bool:
        return packet_hash(self.seed, uid) < self._threshold

    def emit(self, cycle: int, kind: str, uid: int, src: int = -1,
             dst: int = -1, cause: str = "", aux: int = -1) -> None:
        if packet_hash(self.seed, uid) < self._threshold:
            self.events.append(Event(cycle, kind, uid, src, dst, cause, aux))
