"""Trace replay and trace recording.

A *trace* is a list of slots; each slot is a list of length ``n_in`` of
``None``-or-destination entries — exactly what :meth:`TrafficSource.arrivals`
returns.  Traces let tests replay a pathological arrival pattern bit-for-bit
against several architectures, and let the benches pin down crossover points
with identical inputs for every contender.
"""

from __future__ import annotations

from repro.traffic.base import TrafficSource


class TraceSource(TrafficSource):
    """Replay a recorded trace; slots beyond the end are empty.

    ``loop=True`` wraps around instead (useful for periodic stress patterns).
    """

    def __init__(
        self,
        trace: list[list[int | None]],
        n_out: int,
        loop: bool = False,
    ) -> None:
        if not trace:
            raise ValueError("trace must contain at least one slot")
        n_in = len(trace[0])
        for t, slot in enumerate(trace):
            if len(slot) != n_in:
                raise ValueError(
                    f"trace slot {t} has {len(slot)} entries, expected {n_in}"
                )
            for dst in slot:
                if dst is not None and not 0 <= dst < n_out:
                    raise ValueError(f"trace slot {t}: destination {dst} out of range")
        super().__init__(n_in, n_out)
        self.trace = trace
        self.loop = loop

    def arrivals(self, slot: int) -> list[int | None]:
        if slot < len(self.trace):
            return list(self.trace[slot])
        if self.loop:
            return list(self.trace[slot % len(self.trace)])
        return [None] * self.n_in

    @property
    def offered_load(self) -> float:
        cells = sum(1 for slot in self.trace for d in slot if d is not None)
        return cells / (len(self.trace) * self.n_in)


def record_trace(source: TrafficSource, slots: int, start: int = 0) -> list[list[int | None]]:
    """Materialize ``slots`` slots of ``source`` into a replayable trace."""
    return [source.arrivals(t) for t in range(start, start + slots)]
