"""RNG-provenance rules: firings and — just as important — the
sanctioned idioms that must stay clean."""

from pathlib import Path

from repro.drc import run_lint

_SIM_RNG = (
    "import numpy as np\n"
    "def make_rng(seed):\n"
    "    if hasattr(seed, 'integers'):\n"
    "        return seed\n"
    "    return np.random.default_rng(seed)\n"
    "def spawn(rng, n):\n"
    "    return [np.random.default_rng(int(rng.integers(2**32)))\n"
    "            for _ in range(n)]\n"
)

_CONSUMERS = (
    "class SlottedSwitch:\n"
    "    def _admit(self):\n        pass\n"
    "    def _select_departures(self):\n        pass\n"
    "    def occupancy(self):\n        pass\n"
    "class AlphaSwitch(SlottedSwitch):\n"
    "    def __init__(self, rng):\n"
    "        self.rng = rng\n"
)


def _lint(tmp_path: Path, files: dict[str, str]):
    base = {
        "src/repro/sim/rng.py": _SIM_RNG,
        "src/repro/switches/models.py": _CONSUMERS,
    }
    for rel, source in {**base, **files}.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)
    return run_lint(["src"], root=tmp_path)


def _codes(result):
    return [v.code for v in result.all_findings()]


def test_drc141_same_stream_two_instances(tmp_path):
    result = _lint(tmp_path, {
        "src/repro/scenario/b.py": (
            "from repro.sim.rng import make_rng\n"
            "from repro.switches.models import AlphaSwitch\n"
            "def build():\n"
            "    rng = make_rng(7)\n"
            "    return AlphaSwitch(rng), AlphaSwitch(rng)\n"
        ),
    })
    hits = [v for v in result.all_findings() if v.code == "DRC141"]
    assert len(hits) == 1 and hits[0].line == 5


def test_drc141_integer_seed_twice_is_clean(tmp_path):
    # matched kernels from the same integer seed are the equivalence-
    # benchmark idiom: only Generator *objects* are tracked
    result = _lint(tmp_path, {
        "src/repro/scenario/b.py": (
            "from repro.sim.rng import make_rng\n"
            "from repro.switches.models import AlphaSwitch\n"
            "def build(seed):\n"
            "    a = AlphaSwitch(make_rng(seed))\n"
            "    b = AlphaSwitch(make_rng(seed))\n"
            "    return a, b\n"
        ),
    })
    assert _codes(result) == []


def test_drc141_spawn_per_consumer_is_clean(tmp_path):
    result = _lint(tmp_path, {
        "src/repro/scenario/b.py": (
            "from repro.sim.rng import make_rng, spawn\n"
            "from repro.switches.models import AlphaSwitch\n"
            "def build(n):\n"
            "    rng = make_rng(7)\n"
            "    return [AlphaSwitch(g) for g in spawn(rng, n)]\n"
        ),
    })
    assert _codes(result) == []


def test_drc141_one_spawn_element_shared_fires(tmp_path):
    result = _lint(tmp_path, {
        "src/repro/scenario/b.py": (
            "from repro.sim.rng import make_rng, spawn\n"
            "from repro.switches.models import AlphaSwitch\n"
            "def build():\n"
            "    streams = spawn(make_rng(7), 4)\n"
            "    g = streams[0]\n"
            "    return AlphaSwitch(g), AlphaSwitch(g)\n"
        ),
    })
    assert "DRC141" in _codes(result)


def test_drc141_make_rng_passthrough_tracks_origin(tmp_path):
    result = _lint(tmp_path, {
        "src/repro/scenario/b.py": (
            "from repro.sim.rng import make_rng\n"
            "from repro.switches.models import AlphaSwitch\n"
            "def build():\n"
            "    rng = make_rng(7)\n"
            "    a = AlphaSwitch(make_rng(rng))\n"
            "    b = AlphaSwitch(rng)\n"
            "    return a, b\n"
        ),
    })
    assert "DRC141" in _codes(result)


def test_drc142_unseeded_default_rng(tmp_path):
    result = _lint(tmp_path, {
        "src/repro/scenario/s.py": (
            "import numpy as np\n"
            "def fresh():\n"
            "    return np.random.default_rng()\n"
        ),
    })
    assert _codes(result) == ["DRC142"]


def test_drc142_wall_clock_seed(tmp_path):
    result = _lint(tmp_path, {
        "src/repro/scenario/s.py": (
            "import time\n"
            "from repro.sim.rng import make_rng\n"
            "def fresh():\n"
            "    return make_rng(int(time.time()) % 1000)\n"
        ),
    })
    assert _codes(result) == ["DRC142"]


def test_drc142_explicit_seed_is_clean(tmp_path):
    result = _lint(tmp_path, {
        "src/repro/scenario/s.py": (
            "import numpy as np\n"
            "from repro.sim.rng import make_rng\n"
            "def fresh(seed):\n"
            "    return make_rng(seed), np.random.default_rng(seed + 1)\n"
        ),
    })
    assert _codes(result) == []


def test_drc143_closure_to_pool(tmp_path):
    result = _lint(tmp_path, {
        "src/repro/scenario/f.py": (
            "from repro.sim.rng import make_rng\n"
            "def launch(pool):\n"
            "    rng = make_rng(3)\n"
            "    def task():\n"
            "        return int(rng.integers(10))\n"
            "    return pool.submit(task)\n"
        ),
    })
    assert _codes(result) == ["DRC143"]


def test_drc143_lambda_to_pool(tmp_path):
    result = _lint(tmp_path, {
        "src/repro/scenario/f.py": (
            "from repro.sim.rng import make_rng\n"
            "def launch(pool):\n"
            "    rng = make_rng(3)\n"
            "    return pool.map(lambda _: int(rng.integers(10)), range(4))\n"
        ),
    })
    assert _codes(result) == ["DRC143"]


def test_drc143_seed_in_task_tuple_is_clean(tmp_path):
    # the ScenarioRunner discipline: module-level worker, seeds shipped
    # as data, stream built inside the worker
    result = _lint(tmp_path, {
        "src/repro/scenario/f.py": (
            "from repro.sim.rng import make_rng\n"
            "def _worker(seed):\n"
            "    rng = make_rng(seed)\n"
            "    return int(rng.integers(10))\n"
            "def launch(pool, seeds):\n"
            "    return [pool.submit(_worker, s) for s in seeds]\n"
        ),
    })
    assert _codes(result) == []


def test_suppression_works_on_project_rules(tmp_path):
    result = _lint(tmp_path, {
        "src/repro/scenario/s.py": (
            "import numpy as np\n"
            "def fresh():\n"
            "    return np.random.default_rng()  # drc: disable=DRC142\n"
        ),
    })
    assert _codes(result) == []
    assert result.suppressed == 1
