"""Tests for the dateline virtual-channel scheme on the torus [Dally90].

Dimension-order wormhole routing deadlocks on torus rings; Dally's dateline
virtual channels (switch from class-0 to class-1 lanes on crossing a ring's
wraparound edge) break the cycle.  These tests demonstrate the deadlock and
its cure — the historical raison d'être of virtual channels.
"""

import pytest

from repro.network import KAryNCube, WormholeNetwork


def _run(wrap, lanes, dateline, load=0.9, cycles=6000, seed=5):
    topo = KAryNCube(4, 2, wrap=wrap)
    net = WormholeNetwork(
        topo, lanes=lanes, buffer_flits=16, message_flits=8,
        load=load, seed=seed, dateline=dateline,
    )
    net.warmup = 500
    net.run(cycles)
    return net


def test_dateline_requires_two_lanes():
    topo = KAryNCube(4, 2, wrap=True)
    with pytest.raises(ValueError):
        WormholeNetwork(topo, lanes=1, dateline=True)


def test_torus_single_lane_deadlocks():
    """The classic failure: ring cycles wedge the whole network."""
    net = _run(wrap=True, lanes=1, dateline=False)
    assert net.delivered_messages == 0 or net.delivered_fraction_of_capacity() < 0.02


def test_torus_two_plain_lanes_still_deadlock():
    """Extra lanes alone do not help — the classes must be *restricted*."""
    net = _run(wrap=True, lanes=2, dateline=False)
    assert net.delivered_messages == 0 or net.delivered_fraction_of_capacity() < 0.02


def test_torus_dateline_flows():
    net = _run(wrap=True, lanes=2, dateline=True)
    assert net.delivered_messages > 1000
    assert net.delivered_fraction_of_capacity() > 0.1


def test_dateline_delivers_everything_at_light_load():
    topo = KAryNCube(4, 2, wrap=True)
    net = WormholeNetwork(
        topo, lanes=2, buffer_flits=16, message_flits=8,
        load=0.2, seed=6, dateline=True,
    )
    net.run(5000)
    net.injection_rate = 0.0
    net.run(3000)
    in_flight = sum(
        len(l.flits) for node in net.lanes for pl in node for l in pl
    ) + sum(len(l.flits) for l in net.injection_lanes)
    assert in_flight == 0
    assert net.refused_messages == 0
    assert net.delivered_messages > 0


def test_mesh_unaffected_by_dateline():
    """On the mesh the dateline never triggers; results stay healthy."""
    a = _run(wrap=False, lanes=2, dateline=True, load=0.5)
    b = _run(wrap=False, lanes=2, dateline=False, load=0.5)
    assert a.delivered_messages > 1000
    assert b.delivered_messages > 1000
