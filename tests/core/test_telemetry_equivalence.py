"""Checked-vs-fast telemetry equivalence, and trace-vs-tracer agreement.

The fast kernel derives every lifecycle event in closed form from wave
admission cycles; the checked kernel emits them as the words actually move.
These tests pin the two streams to each other *event for event* on the
benchmark suite's E15/E13 workload shapes — a much finer equivalence than
the end-of-run statistics `test_fastpath.py` already enforces.  Intra-cycle
emission order is not part of the contract, so streams are compared in
canonical sorted order.
"""

from __future__ import annotations

import pytest

from repro.core import (
    FastPipelinedSwitch,
    PipelinedSwitch,
    PipelinedSwitchConfig,
    RenewalPacketSource,
    SaturatingSource,
)
from repro.core.tracing import WaveTracer
from repro.sim.packet import reset_packet_ids
from repro.telemetry import Telemetry
from repro.telemetry.export import (
    chrome_trace_from_events,
    chrome_trace_from_tracer,
    validate_chrome_trace,
)

# The benchmark suite's experiment shapes (benchmarks/record.py): E15 is the
# paper's drop-tail shared buffer, E13 adds credit flow control.
MATRIX = [
    pytest.param(dict(n=8, addresses=128), "renewal", 0.6, 1, True,
                 id="e15-8x8-drop-tail"),
    pytest.param(dict(n=8, addresses=64, credit_flow=True), "saturating",
                 1.0, 2, False, id="e15-8x8-credits-saturating"),
    pytest.param(dict(n=4, addresses=8), "saturating", 1.0, 3, True,
                 id="e15-4x4-droppy"),
    pytest.param(dict(n=8, addresses=256, credit_flow=True), "renewal",
                 1.0, 2, False, id="e13-8x8-credits-load1.0"),
    pytest.param(dict(n=8, addresses=256, credit_flow=True), "renewal",
                 0.8, 3, False, id="e13-8x8-credits-load0.8"),
    pytest.param(dict(n=4, addresses=32, quanta=2), "renewal", 0.6, 1, True,
                 id="multi-quantum"),
    pytest.param(dict(n=4, addresses=64, link_pipeline_stages=2), "renewal",
                 0.6, 1, True, id="wire-pipelined"),
]


def _run(fast: bool, cfg_kwargs: dict, source: str, load: float, seed: int,
         drain: bool, cycles: int = 1500):
    # Both kernels must number packets identically for the streams to be
    # comparable; the checked model draws uids from the global counter.
    reset_packet_ids()
    cfg = PipelinedSwitchConfig(**cfg_kwargs)
    if source == "saturating":
        src = SaturatingSource(n_out=cfg.n, packet_words=cfg.packet_words,
                               seed=seed)
    else:
        src = RenewalPacketSource(n_out=cfg.n, packet_words=cfg.packet_words,
                                  load=load, width_bits=cfg.width_bits,
                                  seed=seed)
    tel = Telemetry.on(sample_interval=32)
    cls = FastPipelinedSwitch if fast else PipelinedSwitch
    sw = cls(cfg, src, telemetry=tel)
    sw.run(cycles)
    if drain:
        sw.drain()
    return sw, tel


class TestCheckedVsFastTelemetry:
    @pytest.mark.parametrize("cfg_kwargs,source,load,seed,drain", MATRIX)
    def test_event_streams_identical(self, cfg_kwargs, source, load, seed,
                                     drain):
        _, tel_slow = _run(False, cfg_kwargs, source, load, seed, drain)
        _, tel_fast = _run(True, cfg_kwargs, source, load, seed, drain)
        assert tel_slow.events.sorted_events() == tel_fast.events.sorted_events()

    @pytest.mark.parametrize("cfg_kwargs,source,load,seed,drain", MATRIX)
    def test_aggregations_and_metrics_identical(self, cfg_kwargs, source,
                                                load, seed, drain):
        _, tel_slow = _run(False, cfg_kwargs, source, load, seed, drain)
        _, tel_fast = _run(True, cfg_kwargs, source, load, seed, drain)
        assert tel_slow.events.per_port_counts() == tel_fast.events.per_port_counts()
        assert tel_slow.events.drop_taxonomy() == tel_fast.events.drop_taxonomy()
        assert tel_slow.samples == tel_fast.samples
        assert tel_slow.metrics.as_dict() == tel_fast.metrics.as_dict()

    def test_droppy_run_actually_drops(self):
        """Guard: the droppy matrix row exercises the drop taxonomy."""
        _, tel = _run(True, dict(n=4, addresses=8), "saturating", 1.0, 3, True)
        assert sum(tel.events.drop_taxonomy().values()) > 0

    def test_event_counts_match_stats(self):
        sw, tel = _run(True, dict(n=8, addresses=128), "renewal", 0.6, 1, True)
        counts = tel.events.counts_by_kind()
        assert counts.get("arrive", 0) == sw.stats.offered
        assert counts.get("depart", 0) == sw.stats.delivered
        assert counts.get("drop", 0) == sw.stats.dropped
        assert counts.get("cut_through", 0) == sw.cut_through_waves
        assert counts.get("read_wave", 0) == sw.plain_read_waves
        assert counts.get("store_wave", 0) == sw.write_waves

    def test_telemetry_off_by_default_and_state_unchanged(self):
        """A telemetry-carrying run is the *same simulation*: identical
        statistics to a bare run, and the default bundle collects nothing."""
        reset_packet_ids()
        cfg = PipelinedSwitchConfig(n=4, addresses=32)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words,
                                  load=0.6, seed=1)
        bare = PipelinedSwitch(cfg, src)
        bare.run(1000)
        assert not bare.telemetry.enabled
        assert len(bare.telemetry.events) == 0
        sw, tel = _run(False, dict(n=4, addresses=32), "renewal", 0.6, 1,
                       False, cycles=1000)
        assert sw.stats == bare.stats


class TestSampledObservability:
    """The observability plane must not depend on the kernel tier: sampled
    span streams and series rows are bit-identical across checked, fast and
    batch, and sampling composes with the existing event equivalence."""

    OBS_MATRIX = [
        pytest.param(dict(n=8, addresses=128), 0.6, 1, id="e15-8x8"),
        pytest.param(dict(n=4, addresses=8), 1.0, 3, id="4x4-droppy"),
        pytest.param(dict(n=4, addresses=32, quanta=2), 0.6, 1,
                     id="multi-quantum"),
    ]

    def _run_obs(self, kernel: str, cfg_kwargs: dict, load: float, seed: int,
                 cycles: int = 1200, rate: float = 0.3):
        from repro.core import BatchPipelinedSwitch, BatchRenewalSource
        from repro.obs.sampling import SampledEventLog
        from repro.obs.series import SeriesRing

        reset_packet_ids()
        cfg = PipelinedSwitchConfig(**cfg_kwargs)
        # the tape-consumable source feeds all three kernels identically
        src = BatchRenewalSource(n_out=cfg.n, packet_words=cfg.packet_words,
                                 load=load, width_bits=cfg.width_bits,
                                 seed=seed)
        tel = Telemetry.on(sample_interval=32,
                           events=SampledEventLog(rate, seed=seed),
                           series=SeriesRing(capacity=64))
        cls = {"checked": PipelinedSwitch, "fast": FastPipelinedSwitch,
               "batch": BatchPipelinedSwitch}[kernel]
        sw = cls(cfg, src, telemetry=tel)
        sw.run(cycles)
        sw.drain()
        return sw, cfg, tel

    @pytest.mark.parametrize("cfg_kwargs,load,seed", OBS_MATRIX)
    def test_sampled_streams_and_spans_identical_three_kernels(
            self, cfg_kwargs, load, seed):
        from repro.obs.spans import spans_from_events

        runs = {k: self._run_obs(k, cfg_kwargs, load, seed)
                for k in ("checked", "fast", "batch")}
        streams = {k: tel.events.sorted_events()
                   for k, (_, _, tel) in runs.items()}
        assert streams["checked"] == streams["fast"] == streams["batch"]
        assert streams["checked"]  # the rate actually sampled something
        spans = {}
        for k, (sw, cfg, tel) in runs.items():
            spans[k] = spans_from_events(tel.events.sorted_events(),
                                         depth=cfg.depth, quanta=cfg.quanta,
                                         horizon=sw.cycle)
        assert spans["checked"] == spans["fast"] == spans["batch"]

    @pytest.mark.parametrize("cfg_kwargs,load,seed", OBS_MATRIX)
    def test_series_rows_identical_three_kernels(self, cfg_kwargs, load,
                                                 seed):
        rows = {}
        for k in ("checked", "fast", "batch"):
            _, _, tel = self._run_obs(k, cfg_kwargs, load, seed)
            rows[k] = list(tel.series.rows)
            assert tel.series.to_jsonl() == tel.series.to_jsonl()
        assert rows["checked"] == rows["fast"] == rows["batch"]
        assert rows["checked"]

    def test_droppy_series_sees_taxonomy(self):
        """Guard: the droppy row exercises cumulative per-cause columns at
        the sample instant (drops stamped <= t-1 visible at sample t)."""
        sw, _, tel = self._run_obs("batch", dict(n=4, addresses=8), 1.0, 3)
        last = tel.series.latest()
        assert sum(dict(last[4]).values()) > 0
        assert sum(dict(last[4]).values()) <= sw.stats.dropped

    def test_sampling_composes_with_statistics(self):
        """A sampled-tracing run is the same simulation as an untraced one."""
        sw_obs, _, _ = self._run_obs("fast", dict(n=8, addresses=128), 0.6, 1)
        reset_packet_ids()
        from repro.core import BatchRenewalSource

        cfg = PipelinedSwitchConfig(n=8, addresses=128)
        src = BatchRenewalSource(n_out=8, packet_words=cfg.packet_words,
                                 load=0.6, width_bits=cfg.width_bits, seed=1)
        bare = FastPipelinedSwitch(cfg, src)
        bare.run(1200)
        bare.drain()
        assert sw_obs.stats == bare.stats


class TestTraceVsTracer:
    def test_closed_form_bank_slices_match_word_level_truth(self):
        """chrome_trace_from_events (figure-5 arithmetic) must paint exactly
        the bank occupancy the checked model's WaveTracer recorded."""
        reset_packet_ids()
        cfg = PipelinedSwitchConfig(n=4, addresses=64)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words,
                                  load=0.6, seed=1)
        tel = Telemetry.on()
        tracer = WaveTracer(PipelinedSwitch(cfg, src, telemetry=tel))
        tracer.run(400)
        horizon = tracer.switch.cycle

        def bank_cells(trace):
            return {
                (e["tid"], e["ts"], e["args"]["uid"], e["args"]["kind"])
                for e in trace["traceEvents"]
                if e["ph"] == "X" and e.get("cat") == "wave"
            }

        from_events = chrome_trace_from_events(
            tel.events, depth=cfg.depth, quanta=cfg.quanta, n=cfg.n,
            horizon=horizon,
        )
        from_tracer = chrome_trace_from_tracer(tracer)
        validate_chrome_trace(from_events)
        validate_chrome_trace(from_tracer)
        assert bank_cells(from_events) == bank_cells(from_tracer)

    def test_trace_shows_staggered_diagonal(self):
        """Acceptance shape: one track per bank, at most one slice starting
        per cycle on M0 (validate_chrome_trace raises otherwise)."""
        reset_packet_ids()
        cfg = PipelinedSwitchConfig(n=4, addresses=64)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words,
                                  load=0.9, seed=2)
        tel = Telemetry.on()
        sw = FastPipelinedSwitch(cfg, src, telemetry=tel)
        sw.run(300)
        sw.drain()
        trace = chrome_trace_from_events(
            tel.events, depth=cfg.depth, quanta=cfg.quanta, n=cfg.n,
            horizon=sw.cycle,
        )
        validate_chrome_trace(trace)
        bank_tids = {e["tid"] for e in trace["traceEvents"]
                     if e["ph"] == "X" and e.get("cat") == "wave"}
        assert bank_tids == set(range(cfg.depth))
