"""Tests for the wave arbiter and the buffer manager."""

import pytest

from repro.core.arbiter import Priority, ReadCandidate, WaveArbiter, WriteRequest
from repro.core.buffer_manager import BufferFullError, BufferManager


def _w(link, dst, uid, arrival):
    return WriteRequest(in_link=link, dst=dst, uid=uid, arrival_cycle=arrival)


class TestWaveArbiter:
    def test_idle_without_candidates(self):
        arb = WaveArbiter(2, 2, 4)
        assert arb.decide(0, [], []).kind == "idle"

    def test_reads_win_by_default(self):
        """The paper: 'normally, higher priority is given to the outgoing
        links'."""
        arb = WaveArbiter(2, 2, 4)
        d = arb.decide(
            10, [ReadCandidate(1, queued_since=5)], [_w(0, 0, 1, 9)]
        )
        assert d.kind == "read" and d.out_link == 1

    def test_writes_first_ablation(self):
        arb = WaveArbiter(2, 2, 4, priority=Priority.WRITES_FIRST)
        d = arb.decide(
            10, [ReadCandidate(1, queued_since=5)], [_w(0, 0, 1, 9)]
        )
        assert d.kind == "write"

    def test_oldest_first_ablation(self):
        # Keep the write inside its window (deadline 8+4=12) so the
        # deadline override stays out of the picture.
        arb = WaveArbiter(2, 2, 4, priority=Priority.OLDEST_FIRST)
        d = arb.decide(10, [ReadCandidate(1, queued_since=9)], [_w(0, 0, 1, 8)])
        assert d.kind == "write"  # write requested at 8, read queued at 9
        d = arb.decide(11, [ReadCandidate(1, queued_since=7)], [_w(0, 0, 1, 8)])
        assert d.kind == "read"  # read queued at 7 is older

    def test_deadline_write_overrides_reads(self):
        """A store at its deadline must beat departures, or a latch overruns."""
        arb = WaveArbiter(2, 2, depth=4)
        w = _w(0, 0, 1, arrival=6)  # deadline = 6 + 4 = 10
        d = arb.decide(10, [ReadCandidate(1, queued_since=0)], [w])
        assert d.kind == "write" and d.write is w

    def test_deadline_write_still_cuts_through_if_possible(self):
        arb = WaveArbiter(2, 2, depth=4)
        w = _w(0, 1, 1, arrival=6)
        ct = ReadCandidate(1, queued_since=6, cut_through_write=w)
        d = arb.decide(10, [ct], [w])
        assert d.kind == "write_ct" and d.out_link == 1

    def test_cut_through_decision(self):
        arb = WaveArbiter(2, 2, 4)
        w = _w(0, 1, 1, arrival=5)
        d = arb.decide(7, [ReadCandidate(1, queued_since=5, cut_through_write=w)], [w])
        assert d.kind == "write_ct"
        assert d.write is w

    def test_round_robin_fairness_over_outputs(self):
        arb = WaveArbiter(4, 4, 8)
        reads = [ReadCandidate(j, queued_since=0) for j in range(4)]
        picks = [arb.decide(t, list(reads), []).out_link for t in range(8)]
        assert sorted(picks[:4]) == [0, 1, 2, 3]  # all served within one round

    def test_earliest_deadline_first_among_writes(self):
        arb = WaveArbiter(4, 4, 8)
        writes = [_w(0, 0, 1, 5), _w(1, 1, 2, 3), _w(2, 2, 3, 4)]
        d = arb.decide(6, [], writes)
        assert d.write.uid == 2  # arrival 3 => earliest deadline


class TestBufferManager:
    def test_validation(self):
        with pytest.raises(ValueError):
            BufferManager(0, 4)

    def test_allocate_release_cycle(self):
        bm = BufferManager(2, 2)
        rec = bm.allocate(uid=1, src=0, dst=1, arrival=0, cycle=1)
        assert bm.occupancy == 1
        assert bm.head(1) is rec
        got = bm.start_departure(1, cycle=5)
        assert got is rec and rec.read_init_cycle == 5
        bm.release(rec)
        assert bm.occupancy == 0 and bm.free_count == 2

    def test_fifo_order_per_output(self):
        bm = BufferManager(4, 1)
        recs = [bm.allocate(uid=i, src=0, dst=0, arrival=i, cycle=i) for i in range(3)]
        assert bm.start_departure(0, 10) is recs[0]
        assert bm.start_departure(0, 11) is recs[1]

    def test_exhaustion_raises(self):
        bm = BufferManager(1, 1)
        bm.allocate(uid=1, src=0, dst=0, arrival=0, cycle=0)
        with pytest.raises(BufferFullError):
            bm.allocate(uid=2, src=0, dst=0, arrival=1, cycle=1)

    def test_double_release_raises(self):
        bm = BufferManager(1, 1)
        rec = bm.allocate(uid=1, src=0, dst=0, arrival=0, cycle=0)
        bm.start_departure(0, 1)
        bm.release(rec)
        with pytest.raises(ValueError):
            bm.release(rec)

    def test_departure_from_empty_queue_raises(self):
        bm = BufferManager(2, 2)
        with pytest.raises(ValueError):
            bm.start_departure(0, 0)

    def test_peak_occupancy_tracked(self):
        bm = BufferManager(4, 1)
        a = bm.allocate(uid=1, src=0, dst=0, arrival=0, cycle=0)
        bm.allocate(uid=2, src=0, dst=0, arrival=0, cycle=1)
        bm.start_departure(0, 2)
        bm.release(a)
        assert bm.peak_occupancy == 2

    def test_addresses_recycled_fifo(self):
        bm = BufferManager(2, 1)
        a = bm.allocate(uid=1, src=0, dst=0, arrival=0, cycle=0)
        addr_a = a.addr
        bm.start_departure(0, 1)
        bm.release(a)
        b = bm.allocate(uid=2, src=0, dst=0, arrival=2, cycle=2)
        c = bm.allocate(uid=3, src=0, dst=0, arrival=2, cycle=3)
        assert {b.addr, c.addr} == {0, 1}
        assert c.addr == addr_a  # the freed address went to the back

    def test_multi_quanta_free_list_deterministic(self):
        """Releasing multi-quanta packets returns their addresses to the
        free list in release order, each packet's block in allocation
        order — so a later run replays the exact same address sequence
        (the checkpoint and equivalence planes both rely on this)."""
        bm = BufferManager(8, 2)
        a = bm.allocate(uid=1, src=0, dst=0, arrival=0, cycle=0, quanta=3)
        b = bm.allocate(uid=2, src=1, dst=1, arrival=0, cycle=1, quanta=2)
        c = bm.allocate(uid=3, src=0, dst=0, arrival=1, cycle=2, quanta=3)
        assert a.addrs == [0, 1, 2]
        assert b.addrs == [3, 4]
        assert c.addrs == [5, 6, 7]
        assert bm.free_count == 0
        # release out of allocation order: b, then c, then a
        bm.start_departure(1, 3)
        bm.release(b)
        bm.start_departure(0, 4)
        bm.start_departure(0, 5)
        bm.release(c)
        bm.release(a)
        assert list(bm._free) == [3, 4, 5, 6, 7, 0, 1, 2]
        # reallocation consumes that exact sequence front-to-back
        d = bm.allocate(uid=4, src=0, dst=0, arrival=6, cycle=6, quanta=4)
        e = bm.allocate(uid=5, src=0, dst=1, arrival=6, cycle=7, quanta=4)
        assert d.addrs == [3, 4, 5, 6]
        assert e.addrs == [7, 0, 1, 2]

    def test_buffer_full_message_names_geometry(self):
        """The BufferFullError line alone must triage a capacity drop:
        demand, free/total addresses, and the destination queue depth."""
        bm = BufferManager(4, 2)
        for uid in range(3):
            bm.allocate(uid=uid, src=0, dst=1, arrival=0, cycle=uid)
        with pytest.raises(BufferFullError) as exc:
            bm.allocate(uid=9, src=0, dst=1, arrival=7, cycle=8, quanta=2)
        msg = str(exc.value)
        assert "need 2 addresses" in msg
        assert "packet 9" in msg
        assert "cycle 8" in msg
        assert "only 1 of 4 free" in msg
        assert "3 packets queued for output 1" in msg
