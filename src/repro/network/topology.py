"""k-ary n-cube topologies and dimension-order routing.

Substrate for the paper's §2.1 wormhole citation ([Dally90] figure 8): input
queueing degrades catastrophically "with multi-flit packets in wormhole
routing" — 20-flit messages against 16-flit buffers saturate near 25 % of
link capacity with a single lane, and virtual channels (lanes) recover the
loss.  We reproduce that on a k-ary n-cube with deterministic e-cube
(dimension-order) routing, as in Dally's study.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Port:
    """One unidirectional inter-node channel: move along ``dim`` in ``sign``."""

    dim: int
    sign: int  # +1 or -1

    def __post_init__(self) -> None:
        if self.sign not in (-1, 1):
            raise ValueError(f"sign must be +/-1, got {self.sign}")


class KAryNCube:
    """A k-ary n-cube: ``k**n`` nodes, up to ``2n`` channels per node.

    ``wrap=True`` gives the torus; the default is the *mesh* (no wraparound
    links), on which dimension-order routing is deadlock-free — torus rings
    deadlock under single-lane wormhole routing, which is exactly the
    problem [Dally90]'s virtual channels were invented to solve.  The E2
    bench therefore runs on the mesh, where the lane count isolates the
    buffer-organization effect the paper cites.
    """

    def __init__(self, k: int, n: int, wrap: bool = False) -> None:
        if k < 2 or n < 1:
            raise ValueError(f"need k >= 2 and n >= 1, got k={k}, n={n}")
        self.k = k
        self.n = n
        self.wrap = wrap
        self.num_nodes = k**n
        self.ports = [Port(d, s) for d in range(n) for s in (+1, -1)]

    def coords(self, node: int) -> tuple[int, ...]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        out = []
        for _ in range(self.n):
            node, c = divmod(node, self.k)
            out.append(c)
        return tuple(out)

    def node_at(self, coords: tuple[int, ...]) -> int:
        if len(coords) != self.n:
            raise ValueError(f"need {self.n} coordinates, got {len(coords)}")
        node = 0
        for c in reversed(coords):
            if not 0 <= c < self.k:
                raise ValueError(f"coordinate {c} out of range")
            node = node * self.k + c
        return node

    def neighbor(self, node: int, port: Port) -> int:
        c = list(self.coords(node))
        nxt = c[port.dim] + port.sign
        if self.wrap:
            nxt %= self.k
        elif not 0 <= nxt < self.k:
            raise ValueError(f"no {port} link at mesh edge node {node}")
        c[port.dim] = nxt
        return self.node_at(tuple(c))

    def route_dimension_order(self, node: int, dst: int) -> Port | None:
        """Next hop under e-cube routing; ``None`` when node == dst.

        Corrects the lowest unmatched dimension first, taking the shorter
        way around the ring (ties go the positive direction).
        """
        if node == dst:
            return None
        cur = self.coords(node)
        target = self.coords(dst)
        for d in range(self.n):
            if cur[d] == target[d]:
                continue
            if not self.wrap:
                return Port(d, +1 if target[d] > cur[d] else -1)
            fwd = (target[d] - cur[d]) % self.k
            bwd = (cur[d] - target[d]) % self.k
            return Port(d, +1 if fwd <= bwd else -1)
        raise AssertionError("unreachable: coords equal but nodes differ")

    def hop_count(self, src: int, dst: int) -> int:
        """Dimension-order path length."""
        a, b = self.coords(src), self.coords(dst)
        total = 0
        for d in range(self.n):
            if self.wrap:
                fwd = (b[d] - a[d]) % self.k
                total += min(fwd, self.k - fwd)
            else:
                total += abs(b[d] - a[d])
        return total

    def average_hops(self) -> float:
        """Mean dimension-order distance over uniform random (src, dst) pairs
        (including src == dst): ~k/4 per dimension for even k."""
        if self.wrap:
            per_dim = sum(min(i, self.k - i) for i in range(self.k)) / self.k
        else:
            k = self.k
            per_dim = sum(
                abs(i - j) for i in range(k) for j in range(k)
            ) / (k * k)
        return self.n * per_dim

    def channels_per_node(self) -> float:
        """Average unidirectional channels per node (mesh edges have fewer)."""
        if self.wrap:
            return 2.0 * self.n
        return 2.0 * self.n * (self.k - 1) / self.k

    def capacity_message_rate(self, message_flits: int) -> float:
        """Messages/node/cycle at 100 % channel utilization under uniform
        traffic: ``channels / (avg_hops * flits)`` — the normalization used
        for the "fraction of capacity" axis of [Dally90 fig 8]."""
        return self.channels_per_node() / (self.average_hops() * message_flits)
