"""Interrupt safety, checkpointed sweeps and warmup-prefix forks.

Satellite bugfix coverage: a KeyboardInterrupt (or SIGTERM) mid-sweep
keeps every finished cell on disk plus a ``results.partial.json``
manifest, and ``resume=True`` re-runs only the missing cells with a
merged output bit-identical to an uninterrupted sweep.
"""

import json

import pytest

from repro.scenario.runner import ScenarioRunner, _run_task
from repro.scenario.spec import Scenario, ScenarioError


def _scenario(name, horizon, warmup=200, arch="pipelined_fast", load=0.7,
              seed=3, telemetry=False):
    spec = dict(name=name, arch=arch, horizon=horizon, warmup=warmup,
                params={"n": 4, "addresses": 32},
                traffic={"kind": "renewal", "load": load}, seeds=[seed])
    if telemetry:
        spec["telemetry"] = {"metrics": True, "events": True}
    return Scenario.from_dict(spec)


GRID = [_scenario("cell-a", 1000), _scenario("cell-b", 2000),
        _scenario("cell-c", 1500, load=0.9)]


def test_interrupt_flushes_finished_cells_and_manifest(tmp_path, monkeypatch):
    import repro.scenario.runner as runner_mod

    calls = {"n": 0}

    # cell-a and cell-b share a warmup prefix, so the grid becomes two
    # tasks: the (a, b) fork group, then the c singleton — interrupt there
    def interrupting(task):
        calls["n"] += 1
        if calls["n"] == 2:
            raise KeyboardInterrupt
        return _run_task(task)

    monkeypatch.setattr(runner_mod, "_run_task", interrupting)
    runner = ScenarioRunner(jobs=1, out_dir=tmp_path)
    with pytest.raises(KeyboardInterrupt):
        runner.run(GRID)
    manifest = json.loads((tmp_path / "results.partial.json").read_text())
    done_names = [r["scenario"] for r in manifest["completed"]]
    assert done_names == ["cell-a", "cell-b"]
    for name in done_names:
        assert (tmp_path / f"{name}-seed3.json").exists()
    assert manifest["missing"] == [["cell-c", 3]]


def test_resume_runs_only_missing_and_merges_identically(tmp_path):
    full_dir = tmp_path / "full"
    part_dir = tmp_path / "part"
    full = ScenarioRunner(jobs=1, out_dir=full_dir).run(GRID)

    # run only the first two cells, as an interrupted sweep would leave them
    ScenarioRunner(jobs=1, out_dir=part_dir).run(GRID[:2])
    (part_dir / "results.json").unlink()

    ran = []
    orig = ScenarioRunner._task_list

    def spying(self, jobs, pending):
        tasks = orig(self, jobs, pending)
        ran.extend(i for _, idx in tasks for i in idx)
        return tasks

    ScenarioRunner._task_list = spying
    try:
        resumed = ScenarioRunner(jobs=1, out_dir=part_dir, resume=True).run(GRID)
    finally:
        ScenarioRunner._task_list = orig
    assert ran == [2]  # only the missing cell executed
    assert resumed == full
    assert (json.loads((part_dir / "results.json").read_text())
            == json.loads((full_dir / "results.json").read_text()))


def test_checkpoint_every_resumes_mid_run(tmp_path):
    grid = [_scenario("long", 2000, telemetry=True)]
    full = ScenarioRunner(jobs=1, out_dir=tmp_path / "full",
                          checkpoint_every=300).run(grid)
    ckpt = tmp_path / "full" / "checkpoints" / "long-seed3.ckpt.json"
    assert ckpt.exists()

    # interrupt after the first checkpoint step: the snapshot is on disk
    # but the per-job result is not
    part_dir = tmp_path / "part"
    import repro.scenario.runner as runner_mod

    class StopAfterSave(Exception):
        pass

    from repro import checkpoint

    saves = {"n": 0}
    orig_save = checkpoint.save

    def save_once(switch, path):
        saves["n"] += 1
        doc = orig_save(switch, path)
        if saves["n"] == 1:
            raise KeyboardInterrupt
        return doc

    checkpoint.save = save_once
    try:
        with pytest.raises(KeyboardInterrupt):
            ScenarioRunner(jobs=1, out_dir=part_dir,
                           checkpoint_every=300).run(grid)
    finally:
        checkpoint.save = orig_save
    part_ckpt = part_dir / "checkpoints" / "long-seed3.ckpt.json"
    assert part_ckpt.exists()
    assert json.loads(part_ckpt.read_text())["cycle"] == 300

    resumed = ScenarioRunner(jobs=1, out_dir=part_dir, checkpoint_every=300,
                             resume=True).run(grid)
    assert resumed == full


def test_warmup_prefix_fork_matches_cold_runs():
    """Cells sharing (config, traffic, seed, warmup) fork from one warm
    snapshot; results must equal per-cell cold runs exactly."""
    from repro.scenario.registry import run_scenario

    grid = [_scenario("fork-a", 1000, telemetry=True),
            _scenario("fork-b", 2000, telemetry=True)]
    runner = ScenarioRunner(jobs=1)
    tasks = runner._task_list(runner._job_list(grid), [0, 1])
    assert [t[0][0] for t in tasks] == ["group"]  # grouping engaged
    forked = runner.run(grid)
    cold = [run_scenario(sc, 3) for sc in grid]
    assert forked == cold


def test_fork_requires_identical_prefix():
    """Different load (or warmup) means different prefixes: no grouping."""
    runner = ScenarioRunner(jobs=1)
    grid = [_scenario("a", 1000), _scenario("b", 2000, load=0.9)]
    tasks = runner._task_list(runner._job_list(grid), [0, 1])
    assert [t[0][0] for t in tasks] == ["job", "job"]
    grid = [_scenario("a", 1000, warmup=100), _scenario("b", 2000, warmup=200)]
    tasks = runner._task_list(runner._job_list(grid), [0, 1])
    assert [t[0][0] for t in tasks] == ["job", "job"]


def test_checkpoint_flags_validated():
    with pytest.raises(ScenarioError):
        ScenarioRunner(jobs=1, checkpoint_every=100)  # needs out_dir
    with pytest.raises(ScenarioError):
        ScenarioRunner(jobs=1, resume=True)  # needs out_dir
    with pytest.raises(ScenarioError):
        ScenarioRunner(jobs=1, out_dir="x", checkpoint_every=0)
    runner = ScenarioRunner(jobs=1, out_dir="x", checkpoint_every=100)
    with pytest.raises(ScenarioError):
        # slotted architectures have no checkpoint codec: refuse up front
        runner.run([Scenario.from_dict(dict(
            name="slotted", arch="shared", horizon=1000,
            params={"n": 4}, traffic={"kind": "uniform", "load": 0.5},
            seeds=[1]))])


def test_parallel_sweep_with_groups_is_bit_identical(tmp_path):
    grid = GRID + [_scenario("cell-d", 1200)]  # a+b+d share a prefix
    seq = ScenarioRunner(jobs=1).run(grid)
    par = ScenarioRunner(jobs=2, out_dir=tmp_path).run(grid)
    assert par == seq
