"""Tests for the slotted traffic generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    BernoulliMatrix,
    BernoulliUniform,
    BurstyOnOff,
    FixedPermutation,
    Hotspot,
    RandomPermutation,
    RotatingPermutation,
    TraceSource,
    record_trace,
)


def _measure_load(source, slots=4000):
    cells = 0
    for t in range(slots):
        cells += sum(1 for d in source.arrivals(t) if d is not None)
    return cells / (slots * source.n_in)


class TestBernoulliUniform:
    def test_rejects_bad_load(self):
        with pytest.raises(ValueError):
            BernoulliUniform(4, 4, 1.5)

    @pytest.mark.parametrize("load", [0.0, 0.3, 0.8, 1.0])
    def test_empirical_load(self, load):
        src = BernoulliUniform(8, 8, load, seed=1)
        assert _measure_load(src) == pytest.approx(load, abs=0.02)
        assert src.offered_load == load

    def test_destinations_uniform(self):
        src = BernoulliUniform(4, 4, 1.0, seed=2)
        counts = np.zeros(4)
        for t in range(2000):
            for d in src.arrivals(t):
                counts[d] += 1
        freq = counts / counts.sum()
        assert np.allclose(freq, 0.25, atol=0.02)

    def test_destinations_in_range(self):
        src = BernoulliUniform(3, 5, 1.0, seed=3)
        for t in range(100):
            for d in src.arrivals(t):
                assert 0 <= d < 5


class TestBernoulliMatrix:
    def test_row_sum_validation(self):
        with pytest.raises(ValueError):
            BernoulliMatrix([[0.7, 0.7]])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            BernoulliMatrix([[-0.1, 0.2]])

    def test_matrix_rates_respected(self):
        rates = [[0.5, 0.0], [0.0, 0.25]]
        src = BernoulliMatrix(rates, seed=4)
        counts = np.zeros((2, 2))
        slots = 6000
        for t in range(slots):
            for i, d in enumerate(src.arrivals(t)):
                if d is not None:
                    counts[i][d] += 1
        assert counts[0][0] / slots == pytest.approx(0.5, abs=0.03)
        assert counts[0][1] == 0
        assert counts[1][1] / slots == pytest.approx(0.25, abs=0.03)

    def test_uniform_special_case_load(self):
        rates = np.full((4, 4), 0.8 / 4)
        src = BernoulliMatrix(rates, seed=5)
        assert src.offered_load == pytest.approx(0.8)


class TestBurstyOnOff:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyOnOff(2, 2, 0.5, mean_burst=0.5)

    @pytest.mark.parametrize("load,burst", [(0.3, 4.0), (0.6, 10.0), (1.0, 5.0)])
    def test_long_run_load(self, load, burst):
        src = BurstyOnOff(8, 8, load, mean_burst=burst, seed=6)
        assert _measure_load(src, slots=20_000) == pytest.approx(load, abs=0.03)

    def test_bursts_share_destination(self):
        src = BurstyOnOff(1, 8, 0.5, mean_burst=8.0, seed=7)
        runs = []
        current = None
        length = 0
        for t in range(5000):
            d = src.arrivals(t)[0]
            if d is None:
                if length:
                    runs.append(length)
                current, length = None, 0
            elif d == current:
                length += 1
            else:
                if length:
                    runs.append(length)
                current, length = d, 1
        # Mean run at one destination should be near the configured burst.
        assert np.mean(runs) == pytest.approx(8.0, rel=0.3)


class TestHotspot:
    def test_hot_output_attracts_fraction(self):
        src = Hotspot(8, 8, load=1.0, hot=2, hot_fraction=0.5, seed=8)
        counts = np.zeros(8)
        for t in range(3000):
            for d in src.arrivals(t):
                counts[d] += 1
        hot_share = counts[2] / counts.sum()
        expected = 0.5 + 0.5 / 8
        assert hot_share == pytest.approx(expected, abs=0.03)

    def test_output_load_formula(self):
        src = Hotspot(8, 8, load=0.8, hot=0, hot_fraction=0.3)
        total = sum(src.output_load(j) for j in range(8))
        assert total == pytest.approx(0.8 * 8)
        assert src.output_load(0) > src.output_load(1)


class TestPermutations:
    def test_fixed_permutation_no_conflicts(self):
        src = FixedPermutation([2, 0, 1], load=1.0)
        for t in range(10):
            arr = src.arrivals(t)
            assert sorted(arr) == [0, 1, 2]

    def test_fixed_permutation_duplicate_rejected(self):
        with pytest.raises(ValueError):
            FixedPermutation([0, 0, 1])

    def test_fixed_permutation_thinning_is_exact(self):
        src = FixedPermutation([1, 0], load=0.5)
        loads = [src.arrivals(t) for t in range(100)]
        busy = sum(1 for a in loads if a[0] is not None)
        assert busy == 50

    def test_rotating_permutation_covers_all_pairs(self):
        n = 4
        src = RotatingPermutation(n)
        seen = set()
        for t in range(n):
            for i, d in enumerate(src.arrivals(t)):
                seen.add((i, d))
        assert len(seen) == n * n

    def test_random_permutation_conflict_free(self):
        src = RandomPermutation(6, load=1.0, seed=9)
        for t in range(50):
            arr = src.arrivals(t)
            assert sorted(arr) == list(range(6))


class TestTrace:
    def test_replay_and_padding(self):
        trace = [[0, None], [1, 1]]
        src = TraceSource(trace, n_out=2)
        assert src.arrivals(0) == [0, None]
        assert src.arrivals(1) == [1, 1]
        assert src.arrivals(2) == [None, None]

    def test_loop_mode(self):
        src = TraceSource([[0], [1]], n_out=2, loop=True)
        assert src.arrivals(5) == [1]

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceSource([], n_out=1)
        with pytest.raises(ValueError):
            TraceSource([[0], [0, 1]], n_out=2)
        with pytest.raises(ValueError):
            TraceSource([[7]], n_out=2)

    def test_offered_load(self):
        src = TraceSource([[0, None], [None, None]], n_out=2)
        assert src.offered_load == pytest.approx(0.25)

    @given(st.integers(2, 6), st.integers(1, 40))
    @settings(max_examples=20)
    def test_record_trace_roundtrip(self, n, slots):
        src = BernoulliUniform(n, n, 0.5, seed=10)
        trace = record_trace(src, slots)
        replay = TraceSource(trace, n_out=n)
        for t in range(slots):
            assert replay.arrivals(t) == trace[t]
