"""Discrete-time queueing models for output/shared buffering.

The slotted output queue of an ``n x n`` switch under uniform Bernoulli
traffic receives a binomial batch ``A ~ Bin(n, p/n)`` of cells per slot and
serves one cell per slot.  This module computes its stationary queue-length
distribution (exactly, by truncated power iteration) and the classical
closed-form results the literature quotes:

* mean waiting time ``W = ((n-1)/n) * p / (2 (1-p))`` slots for output
  queueing [KaHM87, eq. for finite n], approaching the M/D/1 value as
  ``n -> infinity``;
* the queue-tail distribution used by [HlKa88] for shared-buffer sizing
  (see :mod:`repro.analysis.buffer_sizing`).

Two slot conventions exist in the literature; we use *arrivals first, then
one departure* — the same convention as the simulators in
:mod:`repro.switches` — so analytic and simulated distributions are
comparable without off-by-one fudging.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats as sstats


def batch_pmf(n: int, p: float, max_k: int | None = None) -> np.ndarray:
    """PMF of the per-slot arrival batch ``A ~ Bin(n, p/n)`` at one output."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"load must be in [0, 1], got {p}")
    kmax = n if max_k is None else min(max_k, n)
    return sstats.binom.pmf(np.arange(kmax + 1), n, p / n)


def stationary_queue_distribution(
    n: int,
    p: float,
    truncate: int = 2048,
    tol: float = 1e-14,
    max_iter: int = 200_000,
) -> np.ndarray:
    """Stationary distribution of the infinite-buffer output queue.

    Queue recursion (arrivals first, then service):
    ``Q' = max(Q + A - 1, 0)``.  The distribution is computed by power
    iteration on a truncated support; ``truncate`` must comfortably exceed
    the occupancies of interest (the [HlKa88] capacities are < 200).
    """
    if p >= 1.0:
        raise ValueError("queue is unstable at load >= 1")
    a = batch_pmf(n, p)
    q = np.zeros(truncate)
    q[0] = 1.0
    for _ in range(max_iter):
        nxt = np.convolve(q, a)[:truncate]
        # service: shift down by one; states 0 and 1 both map to 0
        served = np.empty_like(q)
        served[:-1] = nxt[1:truncate]
        served[-1] = 0.0
        served[0] += nxt[0]
        delta = np.abs(served - q).max()
        q = served
        if delta < tol:
            break
    return q / q.sum()


def mean_queue_length(n: int, p: float, **kwargs) -> float:
    """Mean stationary occupancy of one output queue."""
    q = stationary_queue_distribution(n, p, **kwargs)
    return float(np.arange(len(q)) @ q)


def output_queue_wait(n: int, p: float) -> float:
    """[KaHM87] closed-form mean wait (slots) for output queueing.

    ``W = ((n-1)/n) * p / (2 (1 - p))``; the M/D/1 result is the
    ``n -> infinity`` limit.  This is the *waiting* time; a cell's total
    in-switch delay in the simulators equals its wait (service happens in
    the departure slot itself under the arrivals-then-service convention).
    """
    if p >= 1.0:
        return math.inf
    return (n - 1) / n * p / (2.0 * (1.0 - p))


def md1_wait(p: float) -> float:
    """M/D/1 mean wait in service-time units (the n -> infinity limit)."""
    if p >= 1.0:
        return math.inf
    return p / (2.0 * (1.0 - p))


def convolve_queues(q: np.ndarray, n: int, truncate: int | None = None) -> np.ndarray:
    """Distribution of the *total* occupancy of ``n`` independent queues.

    This is the [HlKa88] shared-buffer approximation: the n output queues of
    a shared-memory switch are treated as independent; the shared pool
    overflows when their sum exceeds the pool size.  FFT-based convolution
    keeps this fast for n = 16, support ~2k.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    size = len(q) if truncate is None else truncate
    # Zero-pad to avoid circular wrap-around, then FFT-power.
    full = n * (len(q) - 1) + 1
    nfft = 1 << (full - 1).bit_length()
    f = np.fft.rfft(q, nfft)
    total = np.fft.irfft(f**n, nfft)[:full]
    total = np.clip(total, 0.0, None)
    total /= total.sum()
    return total[:size]


def tail_probability(dist: np.ndarray, threshold: int) -> float:
    """P(X > threshold) for a PMF array indexed by value."""
    if threshold < 0:
        return 1.0
    if threshold >= len(dist) - 1:
        return 0.0
    return float(dist[threshold + 1 :].sum())
