from repro.core.minikernel import MiniKernel


def _kernel_of(switch):
    if type(switch) is MiniKernel:
        return "mini"
    raise TypeError("unsupported kernel")


def _snap_mini(sw):
    return {"cycle": sw.cycle, "backlog": list(sw.backlog)}


def snapshot_switch(switch):
    kernel = _kernel_of(switch)
    if kernel == "mini":
        body = _snap_mini(switch)
    else:
        body = None
    return {"kernel": kernel, "body": body}
