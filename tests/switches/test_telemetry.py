"""Telemetry emitted by the slot-level switch models."""

from repro.switches import (
    KnockoutSwitch,
    OutputQueued,
    SharedBuffer,
)
from repro.switches.harness import run_switch
from repro.telemetry import DROP_BUFFER_FULL, DROP_KNOCKOUT, Telemetry
from repro.traffic.bernoulli import BernoulliUniform


def _run(switch, load=0.95, slots=2000, seed=7, sample_interval=16):
    tel = Telemetry.on(sample_interval=sample_interval)
    src = BernoulliUniform(switch.n_in, switch.n_out, load, seed=seed)
    stats = run_switch(switch, src, slots, telemetry=tel)
    return stats, tel


class TestSlottedTelemetry:
    def test_event_counts_match_stats(self):
        stats, tel = _run(SharedBuffer(4, 4, capacity=8))
        counts = tel.events.counts_by_kind()
        assert counts.get("arrive", 0) == stats.offered
        assert counts.get("depart", 0) == stats.delivered
        assert counts.get("drop", 0) == stats.dropped
        assert stats.dropped > 0  # the workload must exercise the drop path

    def test_late_drops_use_buffer_full_cause(self):
        _, tel = _run(OutputQueued(4, 4, capacity=2))
        taxonomy = tel.events.drop_taxonomy()
        assert set(taxonomy) == {DROP_BUFFER_FULL}

    def test_knockout_distinguishes_concentrator_losses(self):
        sw = KnockoutSwitch(8, 8, l_paths=2, capacity=4)
        _, tel = _run(sw)
        taxonomy = tel.events.drop_taxonomy()
        assert taxonomy.get(DROP_KNOCKOUT, 0) == sw.knockout_drops > 0
        assert DROP_BUFFER_FULL in taxonomy

    def test_occupancy_sampling_and_gauge(self):
        stats, tel = _run(SharedBuffer(4, 4, capacity=8), sample_interval=10)
        assert len(tel.samples) == 200  # slots 0,10,...,1990
        capacity_bound = all(0 <= occ <= 8 for _, occ in tel.samples)
        assert capacity_bound
        d = tel.metrics.as_dict()
        assert "repro_buffer_occupancy" in d

    def test_per_port_drop_counters_sum_to_stats(self):
        stats, tel = _run(SharedBuffer(4, 4, capacity=8))
        total = sum(
            m.value for m in tel.metrics
            if m.name == "repro_port_drops_total"
        )
        assert total == stats.dropped

    def test_telemetry_off_costs_nothing_visible(self):
        sw = SharedBuffer(4, 4, capacity=8)
        assert not sw.telemetry.enabled
        src = BernoulliUniform(4, 4, 0.9, seed=3)
        stats = sw.run(src, 500)
        assert len(sw.telemetry.events) == 0
        assert stats.offered > 0
