"""PRIZMA-style interleaved shared buffer [Turn93], [DeEI95] (paper §5.3).

The shared buffer consists of ``m_banks`` independent single-ported memory
banks; *each cell is stored entirely within one bank* and each bank holds at
most ``cells_per_bank`` cells.  An n x M "router" crossbar writes arriving
cells to free banks; an n x M "selector" crossbar reads departing cells.

Behaviourally this is nearly a shared buffer of capacity
``m_banks * cells_per_bank``; the differences the model captures:

* a bank is single-ported: it cannot be read and written in the same slot,
  and with ``cells_per_bank > 1`` two outputs wanting cells that landed in
  the same bank conflict — the scheduling complication the paper predicts
  ("placing more than one packets per bank ... would complicate control and
  scheduling and may hurt performance");
* the crossbars have complexity ``n x M`` (vs the pipelined memory's
  ``n x 2n``) — quantified by :mod:`repro.vlsi.comparisons` (bench E12).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sim.packet import Cell
from repro.sim.rng import make_rng
from repro.switches.base import SlottedSwitch


class InterleavedSharedBuffer(SlottedSwitch):
    """One-cell-per-bank interleaved shared buffer (PRIZMA model).

    Parameters
    ----------
    m_banks:
        Number of memory banks M (= buffer capacity in cells when
        ``cells_per_bank == 1``, the [DeEI95] design point).
    cells_per_bank:
        Cells each bank can hold; >1 enables the cheaper-crossbar variant the
        paper mentions, at the price of read conflicts.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        m_banks: int,
        cells_per_bank: int = 1,
        warmup: int = 0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_in, n_out, warmup)
        if m_banks < 1:
            raise ValueError(f"need >= 1 bank, got {m_banks}")
        if cells_per_bank < 1:
            raise ValueError(f"need >= 1 cell per bank, got {cells_per_bank}")
        self.m_banks = m_banks
        self.cells_per_bank = cells_per_bank
        self.bank_occ = [0] * m_banks  # cells currently stored per bank
        # Logical per-output FIFO of (cell, bank) records.
        self.queues: list[deque[tuple[Cell, int]]] = [deque() for _ in range(n_out)]
        self.rng = make_rng(seed)
        self._pending: list[Cell] = []
        self._free_banks: list[int] = list(range(m_banks))  # occ == 0 fast path
        self.read_conflicts = 0  # outputs stalled by same-slot bank conflicts

    def _admit(self, cell: Cell) -> bool:
        self._pending.append(cell)
        return True  # provisional

    def _find_bank(self, busy: set[int]) -> int | None:
        """Pick a writable bank: free port this slot and spare capacity."""
        candidates = [
            b
            for b in range(self.m_banks)
            if b not in busy and self.bank_occ[b] < self.cells_per_bank
        ]
        if not candidates:
            return None
        # Least-occupied-first keeps cells spread out, minimizing future
        # read conflicts (matters only when cells_per_bank > 1).
        return min(candidates, key=lambda b: self.bank_occ[b])

    def _select_departures(self) -> list[Cell | None]:
        busy: set[int] = set()  # banks whose single port is used this slot

        # Reads first (paper: priority to outgoing links).
        departures: list[Cell | None] = [None] * self.n_out
        for j in range(self.n_out):
            if not self.queues[j]:
                continue
            cell, bank = self.queues[j][0]
            if bank in busy:
                self.read_conflicts += 1
                continue  # head blocked this slot by a port conflict
            self.queues[j].popleft()
            busy.add(bank)
            self.bank_occ[bank] -= 1
            departures[j] = cell

        # Then writes, in randomized same-slot order.
        if self._pending:
            order = self.rng.permutation(len(self._pending))
            for k in order:
                cell = self._pending[int(k)]
                bank = self._find_bank(busy)
                if bank is None:
                    self._record_late_drop(cell)
                    continue
                busy.add(bank)
                self.bank_occ[bank] += 1
                self.queues[cell.dst].append((cell, bank))
            self._pending = []
        return departures

    def occupancy(self) -> int:
        return sum(self.bank_occ)
