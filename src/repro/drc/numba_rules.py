"""Numba-compatibility rules (DRC161-162).

``repro.core._batchcore`` compiles its cycle kernel with ``@njit`` when
numba is installed, but CI runs mostly without numba — so a kernel edit
that trips nopython mode (a dict literal, an f-string, a stray
``print``) passes every test locally and only explodes on the one
runner with numba, deep inside a type-inference traceback.  These rules
reject the same constructs *statically*, without importing numba.

**Jit roots** are functions whose decorator list contains a name ending
in ``njit`` or ``jit`` — this covers ``numba.njit``, ``_batchcore``'s
local ``njit`` shim, and parametrised forms like ``@njit(cache=True)``.
Analysis walks each root's body and recurses into project functions the
root calls *that are themselves jit-decorated* (numba inlines those).

**DRC161** flags constructs outside the supported nopython subset:
dict/set literals and comprehensions, generator expressions,
try/raise/with, lambdas, nested def/class, f-strings, yield/await,
global/nonlocal/del, string or bytes constants (other than the
docstring), calls to non-whitelisted builtins, and ``numpy`` calls
outside a conservative allow-list.

**DRC162** flags calls from a jit kernel to a resolved in-project
function that is *not* jit-decorated: numba falls back to an object-mode
dispatch (or refuses outright), defeating the kernel's purpose.

Both rules are intentionally conservative about what they cannot
resolve: calls through local variables or unknown attributes are skipped
rather than guessed at.
"""

from __future__ import annotations

import ast
import builtins
from collections.abc import Iterator

from repro.drc.graph import FunctionInfo, ProjectGraph, imports_in, module_qname
from repro.drc.rules import Project, Rule, Violation, register

_JIT_LEAVES = {"njit", "jit"}

_ALLOWED_BUILTINS = {
    "range", "len", "min", "max", "abs", "int", "float", "bool",
    "divmod", "enumerate", "zip", "round", "tuple",
}

_ALLOWED_NUMPY = {
    "zeros", "ones", "empty", "full", "arange",
    "zeros_like", "ones_like", "empty_like",
    "searchsorted", "argsort", "sort", "dot", "sum", "prod", "cumsum",
    "minimum", "maximum", "sqrt", "floor", "ceil", "abs",
    "int32", "int64", "uint64", "float32", "float64", "bool_", "intp",
}

_DENIED_NODES: dict[type[ast.AST], str] = {
    ast.Dict: "dict literal",
    ast.DictComp: "dict comprehension",
    ast.Set: "set literal",
    ast.SetComp: "set comprehension",
    ast.GeneratorExp: "generator expression",
    ast.Try: "try/except block",
    ast.Raise: "raise statement",
    ast.With: "with block",
    ast.AsyncWith: "async with block",
    ast.Lambda: "lambda",
    ast.ClassDef: "class definition",
    ast.JoinedStr: "f-string",
    ast.Yield: "yield",
    ast.YieldFrom: "yield from",
    ast.Await: "await",
    ast.Global: "global statement",
    ast.Nonlocal: "nonlocal statement",
    ast.Delete: "del statement",
}


def is_jit(fn: FunctionInfo) -> bool:
    return any(name.rsplit(".", 1)[-1] in _JIT_LEAVES
               for name in fn.decorator_names())


class _NumbaAnalysis:
    def __init__(self, project: Project) -> None:
        self.graph: ProjectGraph = project.graph
        self.findings: dict[str, list[Violation]] = {
            "DRC161": [], "DRC162": [],
        }
        roots = [fn for fn in sorted(self.graph.functions.values(),
                                     key=lambda f: f.qname)
                 if fn.module.in_src and is_jit(fn)]
        seen: set[str] = set()
        queue = list(roots)
        while queue:
            fn = queue.pop(0)
            if fn.qname in seen:
                continue
            seen.add(fn.qname)
            queue.extend(self._walk_kernel(fn))

    def _walk_kernel(self, fn: FunctionInfo) -> list[FunctionInfo]:
        """Flag unsupported constructs; return jit callees to recurse on."""
        mod = fn.module
        local_env = imports_in(
            [s for s in ast.walk(fn.node) if isinstance(s, ast.stmt)],
            module_qname(mod.relpath), False,
        )
        local_names = {a.arg for a in fn.node.args.args}
        local_names.update(a.arg for a in fn.node.args.posonlyargs)
        local_names.update(a.arg for a in fn.node.args.kwonlyargs)
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Name, ast.Attribute)):
                continue
            for target in getattr(node, "targets", []):
                if isinstance(target, ast.Name):
                    local_names.add(target.id)
            target = getattr(node, "target", None)
            if isinstance(target, ast.Name):
                local_names.add(target.id)
        body = fn.node.body
        docstring: ast.AST | None = None
        if (body and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            docstring = body[0].value
        callees: list[FunctionInfo] = []
        for stmt in body:
            for node in ast.walk(stmt):
                kind = _DENIED_NODES.get(type(node))
                if (kind is None and isinstance(node, ast.FunctionDef)
                        and node is not fn.node):
                    kind = "nested function definition"
                if kind is not None:
                    self._flag161(mod, node, fn,
                                  f"{kind} is outside the nopython subset")
                    continue
                if (isinstance(node, ast.Constant)
                        and isinstance(node.value, (str, bytes))
                        and node is not docstring):
                    self._flag161(
                        mod, node, fn,
                        "string/bytes constant forces python-object "
                        "handling in nopython mode")
                    continue
                if isinstance(node, ast.Call):
                    callees.extend(
                        self._check_call(mod, node, fn, local_env,
                                         local_names))
        return callees

    def _check_call(self, mod: object, node: ast.Call, fn: FunctionInfo,
                    local_env: dict[str, str],
                    local_names: set[str]) -> list[FunctionInfo]:
        from repro.drc.rules import LintModule

        assert isinstance(mod, LintModule)
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in local_names:
                return []
            if name in _ALLOWED_BUILTINS:
                return []
            qname = self.graph.resolve_node(mod, func, local_env)
            callee = self.graph.functions.get(qname or "")
            if callee is not None:
                return self._project_call(mod, node, fn, callee)
            if hasattr(builtins, name):
                self._flag161(
                    mod, node, fn,
                    f"builtin {name}() is outside the supported nopython "
                    f"subset")
            return []
        if isinstance(func, ast.Attribute):
            qname = self.graph.resolve_node(mod, func, local_env)
            if qname is None:
                return []
            if qname.startswith("numpy."):
                leaf = qname.rsplit(".", 1)[-1]
                if leaf not in _ALLOWED_NUMPY:
                    self._flag161(
                        mod, node, fn,
                        f"numpy.{leaf}() is outside the numba-supported "
                        f"numpy subset")
                return []
            callee = self.graph.functions.get(qname)
            if callee is not None:
                return self._project_call(mod, node, fn, callee)
        return []

    def _project_call(self, mod: object, node: ast.Call, fn: FunctionInfo,
                      callee: FunctionInfo) -> list[FunctionInfo]:
        from repro.drc.rules import LintModule

        assert isinstance(mod, LintModule)
        if is_jit(callee):
            return [callee]
        self.findings["DRC162"].append(Violation(
            "DRC162", mod.relpath, node.lineno, node.col_offset + 1,
            f"jit kernel {fn.name} calls project function "
            f"{callee.name}(), which is not jit-decorated; numba cannot "
            f"compile the call in nopython mode — decorate "
            f"{callee.name} with @njit or inline it",
        ))
        return []

    def _flag161(self, mod: object, node: ast.AST, fn: FunctionInfo,
                 detail: str) -> None:
        from repro.drc.rules import LintModule

        assert isinstance(mod, LintModule)
        self.findings["DRC161"].append(Violation(
            "DRC161", mod.relpath, getattr(node, "lineno", fn.node.lineno),
            getattr(node, "col_offset", 0) + 1,
            f"jit kernel {fn.name}: {detail}; this compiles only in "
            f"object mode (or not at all) and will fail on the numba "
            f"runner",
        ))


def _analysis(project: Project) -> _NumbaAnalysis:
    cached = getattr(project, "_numba_analysis", None)
    if isinstance(cached, _NumbaAnalysis):
        return cached
    analysis = _NumbaAnalysis(project)
    project._numba_analysis = analysis  # type: ignore[attr-defined]
    return analysis


@register
class NumbaConstructRule(Rule):
    code = "DRC161"
    name = "numba-unsupported-construct"
    summary = ("jit kernels must stay inside the nopython subset: no "
               "dict/set/str objects, exceptions, closures, or "
               "unsupported numpy/builtin calls")
    scope = "project"
    version = 1

    def check_project(self, project: Project) -> Iterator[Violation]:
        yield from _analysis(project).findings["DRC161"]


@register
class NumbaUntypedCallRule(Rule):
    code = "DRC162"
    name = "numba-untyped-call"
    summary = ("jit kernels may only call other jit-decorated project "
               "functions")
    scope = "project"
    version = 1

    def check_project(self, project: Project) -> Iterator[Violation]:
        yield from _analysis(project).findings["DRC162"]


__all__ = ["NumbaConstructRule", "NumbaUntypedCallRule", "is_jit"]
