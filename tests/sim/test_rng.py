"""Tests for deterministic RNG helpers."""

import numpy as np

from repro.sim.rng import DEFAULT_SEED, make_rng, spawn


def test_default_seed_reproducible():
    a = make_rng(None).random(8)
    b = make_rng(None).random(8)
    assert (a == b).all()


def test_explicit_seed_reproducible():
    assert (make_rng(7).random(8) == make_rng(7).random(8)).all()


def test_generator_passthrough():
    g = np.random.default_rng(1)
    assert make_rng(g) is g


def test_spawn_independent_streams():
    children = spawn(make_rng(3), 4)
    draws = [c.random(16) for c in children]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not (draws[i] == draws[j]).all()


def test_spawn_reproducible():
    a = [c.random(4) for c in spawn(make_rng(3), 2)]
    b = [c.random(4) for c in spawn(make_rng(3), 2)]
    for x, y in zip(a, b):
        assert (x == y).all()


def test_default_seed_is_stable_constant():
    # Changing the default seed silently breaks recorded experiment numbers.
    assert DEFAULT_SEED == 0x5161_C0_1995
