"""Tests for the omega multistage fabric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import OmegaFabric, perfect_shuffle
from repro.switches import FifoInputQueued, OutputQueued, SharedBuffer
from repro.traffic import BernoulliUniform


def _single_cell_route(fab, src, dst):
    n = fab.n
    dests = [None] * n
    dests[src] = dst
    fab.step(dests)
    for _ in range(fab.stages * 4):
        out = fab.step([None] * n)
        for pos, cell in enumerate(out):
            if cell is not None:
                return pos, cell
    return None, None


def test_validation():
    with pytest.raises(ValueError):
        OmegaFabric(1, 3, lambda: SharedBuffer(1, 1))
    with pytest.raises(ValueError):
        OmegaFabric(2, 3, lambda: SharedBuffer(4, 4))  # wrong element radix


def test_perfect_shuffle_is_permutation():
    for n, k in [(8, 2), (16, 4), (27, 3)]:
        image = {perfect_shuffle(p, n, k) for p in range(n)}
        assert image == set(range(n))


@given(st.integers(0, 63), st.integers(0, 63))
@settings(max_examples=40, deadline=None)
def test_routing_correct_on_64_port_fabric(src, dst):
    fab = OmegaFabric(4, 3, lambda: SharedBuffer(4, 4, seed=1))
    pos, cell = _single_cell_route(fab, src, dst)
    assert pos == dst and cell.dst == dst
    assert fab.misrouted == 0


def test_latency_one_slot_per_stage():
    """An uncontended cell spends exactly one slot per rank."""
    fab = OmegaFabric(2, 3, lambda: SharedBuffer(2, 2, seed=1))
    dests = [None] * 8
    dests[3] = 5
    fab.step(dests)
    for extra in range(10):
        out = fab.step([None] * 8)
        if any(c is not None for c in out):
            break
    cell = next(c for c in out if c is not None)
    # Injected at slot 0 it traverses ranks at slots 0, 1, 2: delivered slot 2.
    assert cell.created == 0
    assert cell.delivered == fab.stages - 1


def test_conservation_with_infinite_buffers():
    fab = OmegaFabric(2, 3, lambda: SharedBuffer(2, 2, seed=2))
    src = BernoulliUniform(8, 8, 0.6, seed=3)
    fab.run(src, 2000)
    fab.drain()
    assert fab.delivered == fab.offered
    assert fab.dropped == 0
    assert fab.in_flight() == 0
    assert fab.misrouted == 0


def test_finite_element_buffers_drop():
    fab = OmegaFabric(2, 3, lambda: SharedBuffer(2, 2, capacity=1, seed=4))
    src = BernoulliUniform(8, 8, 0.9, seed=5)
    fab.run(src, 3000)
    assert fab.dropped > 0
    assert fab.loss_probability > 0


def test_shared_elements_beat_fifo_elements():
    """The paper's architecture ranking carries over to fabric scale:
    internal contention head-of-line-blocks FIFO elements."""
    k, stages = 4, 2
    n = k**stages
    results = {}
    for name, factory in {
        "fifo": lambda: FifoInputQueued(k, k, seed=6),
        "shared": lambda: SharedBuffer(k, k, seed=6),
    }.items():
        fab = OmegaFabric(k, stages, factory)
        fab.warmup = 1000
        fab.run(BernoulliUniform(n, n, 1.0, seed=7), 8000)
        results[name] = fab.throughput
    assert results["shared"] > results["fifo"] + 0.05


def test_output_queued_elements_work():
    fab = OmegaFabric(2, 2, lambda: OutputQueued(2, 2, seed=8))
    src = BernoulliUniform(4, 4, 0.7, seed=9)
    fab.run(src, 1500)
    fab.drain()
    assert fab.delivered == fab.offered
    assert fab.misrouted == 0


def test_summary_keys():
    fab = OmegaFabric(2, 2, lambda: SharedBuffer(2, 2, seed=10))
    fab.run(BernoulliUniform(4, 4, 0.5, seed=11), 200)
    s = fab.summary()
    for key in ("offered", "delivered", "throughput", "mean_delay", "misrouted"):
        assert key in s
