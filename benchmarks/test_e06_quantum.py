"""E6 — Packet-size quantum arithmetic and the half-quantum split (paper §3.5).

Paper quote: "consider a quantum as small as 32 to 64 bytes ... buffer widths
of 256 to 1024 bits.  With an (on-chip) memory cycle time of 5 ns ... the
aggregate throughput of such a buffer is 50 to 200 Gbits/s (12 to 25
GBytes/s) — enough for 16 incoming and 16 outgoing links near the Giga-Byte
per second range, each."

Plus the functional half of §3.5: the two-memory split buffer sustains full
line rate with packets of *half* the quantum.
"""

from conftest import show

from repro.analysis.quantum import quantum_table
from repro.core import SaturatingSource
from repro.core.split_buffer import SplitBufferConfig, SplitPipelinedBuffer
from repro.switches.harness import format_table


def _experiment():
    table = quantum_table([32, 64, 128], cycle_ns=5.0, n_links=16)
    n = 8
    cfg = SplitBufferConfig(n=n, addresses_each=64)
    src = SaturatingSource(n_out=n, packet_words=cfg.packet_words, seed=2)
    sw = SplitPipelinedBuffer(cfg, src)
    sw.warmup = 4000
    sw.run(50_000)
    util = sw.stats.delivered * cfg.packet_words / (sw.stats.measured_slots * n)
    return table, util


def test_e06_quantum(run_once):
    table, split_util = run_once(_experiment)
    rows = [
        [q.quantum_bytes, q.width_bits, q.aggregate_gbps, q.aggregate_gbytes,
         q.per_link_gbps]
        for q in table
    ]
    show(
        format_table(
            ["quantum (B)", "width (bits)", "aggregate Gb/s", "GB/s", "per-link Gb/s (16+16)"],
            rows,
            title="E6: §3.5 quantum arithmetic at 5 ns memory cycle",
        )
    )
    # the paper's 50-200 Gb/s (12-25 GB/s) range for 32-128B quanta:
    assert 50 <= rows[0][2] <= 52
    assert 200 <= rows[2][2] <= 205
    assert 6 <= rows[0][3] and rows[2][3] <= 26
    # half-quantum split sustains full line rate:
    show(format_table(["split-buffer utilization at full load"], [[split_util]]))
    assert split_util > 0.93
