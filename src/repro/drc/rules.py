"""Static half of the design-rule checker: the AST lint rules.

Each rule has a stable ``DRC1xx`` code and checks one piece of repository
discipline that keeps the reproduction trustworthy:

* **determinism** (DRC101-DRC104) — the simulation packages (``sim``,
  ``core``, ``switches``, ``fabric``, ``network``) must be bit-repeatable
  per seed, so wall-clock time, the global :mod:`random` module, numpy's
  global RNG state, and iteration over unordered sets are banned there;
  all randomness flows through :func:`repro.sim.rng.make_rng`;
* **telemetry discipline** (DRC111-DRC112) — metrics are created through
  the :class:`~repro.telemetry.metrics.MetricsRegistry`, and every call
  site of a metric name uses one consistent label set, so exported series
  merge instead of fragmenting;
* **scenario-registry coverage** (DRC121-DRC122) — every public switch
  kernel is reachable through :mod:`repro.scenario.registry` and the
  registry never references a kernel that does not exist; every admission
  policy is registered in :data:`repro.policy.POLICIES` and every drop
  cause appears in the ``DROP_CAUSES`` taxonomy map;
* **API shape** (DRC131) — every switch model exposes the harness/run
  interface (the slotted hook trio, ``run`` on the word-level kernels).

Rules are *modules in, violations out*: per-module rules get one parsed
:class:`LintModule`; project rules get the whole collection and can
cross-reference files.  Suppress a finding on its line with
``# drc: disable=DRC101`` (comma-separate several codes; a bare
``# drc: disable`` silences every rule on that line) — see
:mod:`repro.drc.linter`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.drc.graph import ClassInfo, ProjectGraph

#: top-level ``repro`` subpackages whose code must be seed-deterministic
DETERMINISM_PACKAGES = frozenset({"sim", "core", "switches", "fabric", "network"})

#: wall-clock calls that make a run irreproducible (DRC101)
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})

#: the only ``numpy.random`` attributes that do not touch global state (DRC103)
_NUMPY_RNG_OK = frozenset({
    "Generator", "default_rng", "SeedSequence", "BitGenerator",
    "PCG64", "Philox", "SFC64", "MT19937",
})

#: metric classes that must only be instantiated by the registry (DRC111)
_METRIC_CLASSES = frozenset({"CounterMetric", "GaugeMetric", "HistogramMetric"})

#: registry factory method names whose label keywords DRC112 compares
_REGISTRY_FACTORIES = frozenset({"counter", "gauge", "histogram"})

#: non-label keyword arguments of the registry factories
_FACTORY_OPTION_KEYWORDS = frozenset({"edges"})

#: word-level kernels that must expose the harness ``run`` interface (DRC131)
#: and be reachable from the scenario registry (DRC121)
_WORD_KERNELS = frozenset({
    "PipelinedSwitch", "FastPipelinedSwitch", "BatchPipelinedSwitch",
    "WideMemorySwitch", "SplitPipelinedBuffer",
})


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what to do about it."""

    code: str
    path: str  # posix-style path as given to the linter
    line: int  # 1-based
    col: int  # 1-based (SARIF convention)
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class LintModule:
    """One parsed Python file plus the location facts rules key off."""

    path: Path
    relpath: str  # posix path relative to the lint invocation
    tree: ast.Module
    source: str
    package: str | None  # top-level subpackage under ``repro`` ("core", ...)
    in_src: bool  # lives under src/repro (product code, not tests/examples)

    @classmethod
    def parse(cls, path: Path, relpath: str, source: str) -> "LintModule":
        parts = Path(relpath).parts
        package: str | None = None
        in_src = False
        if "repro" in parts:
            i = parts.index("repro")
            in_src = i > 0 and parts[i - 1] == "src"
            rest = parts[i + 1:]
            package = rest[0] if len(rest) > 1 else ""
        return cls(path=path, relpath=relpath, tree=ast.parse(source),
                   source=source, package=package, in_src=in_src)


@dataclass
class Project:
    """The whole lint invocation: parsed modules plus the lazily built
    whole-program graph project rules resolve names through."""

    mods: list[LintModule]
    _graph: "ProjectGraph | None" = field(default=None, repr=False)

    @property
    def graph(self) -> "ProjectGraph":
        if self._graph is None:
            from repro.drc.graph import ProjectGraph

            self._graph = ProjectGraph(self.mods)
        return self._graph


class Rule:
    """Base class: per-module or project-wide checks (see module doc).

    ``scope`` decides where the engine runs the rule ("module" rules run
    per file, possibly in worker processes, and their findings are cached
    per file; "project" rules run once over the whole collection).
    ``version`` feeds the incremental-cache fingerprint: bump it whenever
    a change to the rule can alter its findings, so stale cached results
    are invalidated.
    """

    code: str = "DRC000"
    name: str = ""
    summary: str = ""
    scope: str = "module"
    version: int = 1

    def check_module(self, mod: LintModule) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Violation]:
        return iter(())

    def _hit(self, mod: LintModule, node: ast.AST, message: str) -> Violation:
        return Violation(self.code, mod.relpath, getattr(node, "lineno", 1),
                         getattr(node, "col_offset", 0) + 1, message)


RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    if cls.code in RULES:
        raise AssertionError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls()
    return cls


def rule_catalog() -> list[Rule]:
    """Every registered rule, in code order (for docs, SARIF, ``--help``)."""
    return [RULES[code] for code in sorted(RULES)]


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a plain name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _deterministic_scope(mod: LintModule) -> bool:
    return mod.in_src and mod.package in DETERMINISM_PACKAGES


@register
class WallClockRule(Rule):
    code = "DRC101"
    name = "wall-clock-in-sim"
    summary = ("simulation packages must not read the wall clock; simulated "
               "time is the cycle counter")

    def check_module(self, mod: LintModule) -> Iterator[Violation]:
        if not _deterministic_scope(mod):
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Attribute):
                name = _dotted(node)
                if name in _WALL_CLOCK:
                    yield self._hit(
                        mod, node,
                        f"wall-clock call {name}() in deterministic package "
                        f"{mod.package!r}; simulated time is the cycle counter",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if f"time.{alias.name}" in _WALL_CLOCK:
                        yield self._hit(
                            mod, node,
                            f"import of time.{alias.name} in deterministic "
                            f"package {mod.package!r}",
                        )


@register
class GlobalRandomRule(Rule):
    code = "DRC102"
    name = "global-random-module"
    summary = ("the stdlib random module carries hidden global state; use "
               "repro.sim.rng.make_rng(seed)")

    def check_module(self, mod: LintModule) -> Iterator[Violation]:
        if not _deterministic_scope(mod):
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self._hit(
                            mod, node,
                            "import of the global-state stdlib random module; "
                            "all randomness flows through repro.sim.rng.make_rng",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self._hit(
                    mod, node,
                    "import from the global-state stdlib random module; "
                    "all randomness flows through repro.sim.rng.make_rng",
                )


@register
class NumpyGlobalRandomRule(Rule):
    code = "DRC103"
    name = "numpy-global-rng"
    summary = ("numpy.random.<fn> uses the hidden global generator; take a "
               "Generator from repro.sim.rng.make_rng(seed)")

    def check_module(self, mod: LintModule) -> Iterator[Violation]:
        if not _deterministic_scope(mod):
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Attribute):
                name = _dotted(node)
                if name is None:
                    continue
                for prefix in ("np.random.", "numpy.random."):
                    if name.startswith(prefix):
                        attr = name[len(prefix):].split(".", 1)[0]
                        if attr not in _NUMPY_RNG_OK:
                            yield self._hit(
                                mod, node,
                                f"{name} touches numpy's global RNG state; "
                                f"use a seeded Generator from "
                                f"repro.sim.rng.make_rng",
                            )
                        break
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _NUMPY_RNG_OK:
                        yield self._hit(
                            mod, node,
                            f"import of numpy.random.{alias.name} (global RNG "
                            f"state); use a seeded Generator from "
                            f"repro.sim.rng.make_rng",
                        )


@register
class SetIterationRule(Rule):
    code = "DRC104"
    name = "unordered-set-iteration"
    summary = ("iterating a set makes order hash-dependent; sort first so "
               "runs are bit-identical across processes")

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def check_module(self, mod: LintModule) -> Iterator[Violation]:
        if not _deterministic_scope(mod):
            return
        for node in ast.walk(mod.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield self._hit(
                        mod, it,
                        "iteration over an unordered set; wrap in sorted() so "
                        "the visit order is deterministic",
                    )


@register
class DirectMetricRule(Rule):
    code = "DRC111"
    name = "metric-outside-registry"
    summary = ("metrics are created via MetricsRegistry.counter/gauge/"
               "histogram so handles dedupe and exporters see one catalog")

    def check_module(self, mod: LintModule) -> Iterator[Violation]:
        if not mod.in_src or mod.package == "telemetry":
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in _METRIC_CLASSES:
                yield self._hit(
                    mod, node,
                    f"direct {name}(...) construction outside the telemetry "
                    f"package; get the handle from MetricsRegistry."
                    f"{name.removesuffix('Metric').lower()}(...)",
                )


@dataclass
class _LabelSite:
    mod: LintModule
    node: ast.Call
    labels: tuple[str, ...]


@register
class LabelConsistencyRule(Rule):
    code = "DRC112"
    name = "inconsistent-metric-labels"
    summary = ("every call site of one metric name must use the same label "
               "keys, or exported series fragment")
    scope = "project"

    def check_project(self, project: Project) -> Iterator[Violation]:
        sites: dict[str, list[_LabelSite]] = {}
        for mod in project.mods:
            if not mod.in_src:
                continue
            for node in ast.walk(mod.tree):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _REGISTRY_FACTORIES
                        and node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)):
                    continue
                labels = tuple(sorted(
                    kw.arg for kw in node.keywords
                    if kw.arg is not None and kw.arg not in _FACTORY_OPTION_KEYWORDS
                ))
                if any(kw.arg is None for kw in node.keywords):
                    continue  # **labels: keys are dynamic, nothing to compare
                sites.setdefault(node.args[0].value, []).append(
                    _LabelSite(mod, node, labels)
                )
        for metric, metric_sites in sorted(sites.items()):
            metric_sites.sort(key=lambda s: (s.mod.relpath, s.node.lineno))
            baseline = metric_sites[0]
            for site in metric_sites[1:]:
                if site.labels != baseline.labels:
                    yield self._hit(
                        site.mod, site.node,
                        f"metric {metric!r} created with labels "
                        f"{list(site.labels)} here but {list(baseline.labels)} "
                        f"at {baseline.mod.relpath}:{baseline.node.lineno}; "
                        f"one metric name needs one label set",
                    )


def _hierarchy_classes(project: Project, root_name: str,
                       package: str) -> list["ClassInfo"]:
    """Exact transitive subclasses (roots included) of every in-src class
    named ``root_name`` in ``package``, resolved through the graph —
    restricted to in-src classes defined in that package (the public
    surface the registry contracts cover)."""
    graph = project.graph
    seen: dict[str, "ClassInfo"] = {}
    for root in graph.classes_named(root_name, package=package):
        for qname in graph.subclasses_of(root.qname):
            info = graph.classes[qname]
            if info.module.in_src and info.module.package == package:
                seen[qname] = info
    return sorted(seen.values(), key=lambda c: c.qname)


@register
class RegistryCoverageRule(Rule):
    code = "DRC121"
    name = "registry-coverage"
    summary = ("every public switch kernel is registered in "
               "repro.scenario.registry, and the registry references only "
               "kernels that exist")
    scope = "project"
    version = 2  # re-grounded on the exact class-hierarchy resolver

    @staticmethod
    def _switches_alias_refs(tree: ast.Module) -> list[ast.Attribute]:
        """``<alias>.X`` references in scopes where ``<alias>`` is bound by a
        ``repro.switches`` import (and never rebound to anything else)."""
        refs: list[ast.Attribute] = []
        scopes: list[ast.Module | ast.FunctionDef | ast.AsyncFunctionDef] = [tree]
        scopes.extend(
            n for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            aliases: set[str] = set()
            body = scope.body
            for stmt in body:
                if (isinstance(stmt, ast.ImportFrom) and stmt.module == "repro"
                        and any(a.name == "switches" for a in stmt.names)):
                    aliases.update(a.asname or a.name for a in stmt.names
                                   if a.name == "switches")
                elif isinstance(stmt, ast.Import):
                    aliases.update(
                        a.asname for a in stmt.names
                        if a.name == "repro.switches" and a.asname
                    )
            if not aliases:
                continue
            rebound = {
                t.id
                for stmt in body
                for t in ast.walk(stmt)
                if isinstance(t, ast.Name) and isinstance(t.ctx, ast.Store)
            }
            usable = aliases - rebound
            for stmt in body:
                for node in ast.walk(stmt):
                    if (isinstance(node, ast.Attribute)
                            and isinstance(node.value, ast.Name)
                            and node.value.id in usable):
                        refs.append(node)
        return refs

    def check_project(self, project: Project) -> Iterator[Violation]:
        mods = project.mods
        registry = next(
            (m for m in mods
             if m.in_src and m.package == "scenario"
             and m.path.name == "registry.py"),
            None,
        )
        if registry is None:
            return  # lint scope does not cover both sides of the contract
        yield from self._check_word_kernels(project, registry)
        kernels = {
            info.name: info
            for info in _hierarchy_classes(project, "SlottedSwitch", "switches")
            # the abstract root is the contract, not a registrable kernel
            if not info.name.startswith("_") and info.name != "SlottedSwitch"
        }
        alias_refs = self._switches_alias_refs(registry.tree)
        referenced = {node.attr for node in alias_refs}
        for name in sorted(set(kernels) - referenced):
            info = kernels[name]
            yield self._hit(
                info.module, info.node,
                f"public switch kernel {name} is not reachable from any "
                f"repro.scenario.registry builder; register it (or prefix "
                f"the class with '_' if it is internal)",
            )
        switches_names = {
            info.name for info in project.graph.classes.values()
            if info.module.in_src and info.module.package == "switches"
        }
        switches_names.update(
            fn.name for fn in project.graph.functions.values()
            if fn.module.in_src and fn.module.package == "switches"
        )
        for name in sorted(referenced - switches_names):
            for node in alias_refs:
                if node.attr == name:
                    yield self._hit(
                        registry, node,
                        f"registry builder references repro.switches.{name}, "
                        f"which does not exist",
                    )
                    break

    def _check_word_kernels(
        self, project: Project, registry: LintModule
    ) -> Iterator[Violation]:
        """Every word-level kernel (``_WORD_KERNELS``) defined under
        ``repro.core`` must be reachable from the registry — referenced by
        name in ``registry.py`` itself or in a ``make_pipelined_switch``
        factory (the registry builders' front door for the pipelined
        kernel tiers)."""
        graph = project.graph
        core_classes = {
            info.name: info for info in graph.classes.values()
            if info.module.in_src and info.module.package == "core"
        }
        word_kernels = _WORD_KERNELS & set(core_classes)
        if not word_kernels:
            return
        reachable: set[str] = set()
        trees: list[ast.AST] = [registry.tree]
        trees.extend(
            fn.node for fn in graph.functions.values()
            if fn.name == "make_pipelined_switch"
            and fn.module.in_src and fn.module.package == "core"
        )
        for tree in trees:
            for node in ast.walk(tree):
                if isinstance(node, ast.Name):
                    reachable.add(node.id)
                elif isinstance(node, ast.Attribute):
                    reachable.add(node.attr)
        for name in sorted(word_kernels - reachable):
            info = core_classes[name]
            yield self._hit(
                info.module, info.node,
                f"word-level kernel {name} is not reachable from "
                f"repro.scenario.registry (directly or through "
                f"make_pipelined_switch); register an architecture for it",
            )


@register
class PolicyCoverageRule(Rule):
    code = "DRC122"
    name = "policy-coverage"
    summary = ("every admission policy implementation is registered in "
               "repro.policy.POLICIES (so the scenario registry and CLI can "
               "reach it), and every DROP_* cause constant appears in the "
               "DROP_CAUSES taxonomy map")
    scope = "project"
    version = 2  # subclass walk re-grounded on the class-hierarchy resolver

    @staticmethod
    def _dict_value_names(tree: ast.Module, target: str) -> list[ast.Name]:
        """Name nodes used as values of the module-level ``target = {...}``."""
        for node in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if (value is not None and isinstance(value, ast.Dict)
                    and any(isinstance(t, ast.Name) and t.id == target
                            for t in targets)):
                return [v for v in value.values if isinstance(v, ast.Name)]
        return []

    def check_project(self, project: Project) -> Iterator[Violation]:
        yield from self._check_policies(project)
        yield from self._check_drop_causes(project.mods)

    def _check_policies(self, project: Project) -> Iterator[Violation]:
        mods = project.mods
        admission = next(
            (m for m in mods if m.in_src and m.package == "policy"
             and m.path.name == "admission.py"),
            None,
        )
        if admission is None:
            return  # lint scope does not cover the policy package
        policy_classes = {
            info.name for info in project.graph.classes.values()
            if info.module.in_src and info.module.package == "policy"
        }
        impls = {
            info.name: info
            for info in _hierarchy_classes(project, "AdmissionPolicy", "policy")
        }
        if not impls:
            return
        public = {name for name in impls if not name.startswith("_")}
        # the protocol root itself is the contract, not an implementation
        public.discard("AdmissionPolicy")
        registered_refs = self._dict_value_names(admission.tree, "POLICIES")
        registered = {node.id for node in registered_refs}
        for name in sorted(public - registered):
            info = impls[name]
            yield self._hit(
                info.module, info.node,
                f"admission policy {name} is not registered in "
                f"repro.policy.POLICIES; the scenario registry and "
                f"--policy specs cannot reach it (or prefix the class "
                f"with '_' if it is internal)",
            )
        for node in registered_refs:
            if node.id not in policy_classes:
                yield self._hit(
                    admission, node,
                    f"POLICIES references {node.id}, which is not an "
                    f"AdmissionPolicy class in the policy package",
                )

    def _check_drop_causes(self, mods: list[LintModule]) -> Iterator[Violation]:
        events = next(
            (m for m in mods if m.in_src and m.package == "telemetry"
             and m.path.name == "events.py"),
            None,
        )
        if events is None:
            return
        causes: dict[str, ast.Assign] = {}
        taxonomy: set[str] | None = None
        for node in events.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "DROP_CAUSES" in names and isinstance(node.value, ast.Tuple):
                taxonomy = {e.id for e in node.value.elts
                            if isinstance(e, ast.Name)}
            else:
                for name in names:
                    if (name.startswith("DROP_") and name != "DROP"
                            and isinstance(node.value, ast.Constant)
                            and isinstance(node.value.value, str)):
                        causes[name] = node
        if taxonomy is None:
            yield self._hit(
                events, events.tree,
                "telemetry/events.py defines no DROP_CAUSES tuple; exporters "
                "and this lint treat it as the drop-taxonomy map of record",
            )
            return
        for name in sorted(set(causes) - taxonomy):
            yield self._hit(
                events, causes[name],
                f"drop cause {name} is missing from the DROP_CAUSES "
                f"taxonomy tuple; exporters iterate that map of record",
            )


@register
class ApiShapeRule(Rule):
    code = "DRC131"
    name = "switch-api-shape"
    summary = ("every switch model exposes the harness interface: the "
               "slotted hook trio, and run() on the word-level kernels")

    _SLOTTED_HOOKS = ("_admit", "_select_departures", "occupancy")
    scope = "project"
    version = 2  # method lookup re-grounded on resolved project MROs

    def check_project(self, project: Project) -> Iterator[Violation]:
        graph = project.graph
        for info in _hierarchy_classes(project, "SlottedSwitch", "switches"):
            if info.name == "SlottedSwitch":
                continue  # the abstract root declares the hooks
            methods = graph.methods_of(info.qname)
            missing = [h for h in self._SLOTTED_HOOKS if h not in methods]
            if missing:
                yield self._hit(
                    info.module, info.node,
                    f"slotted switch {info.name} does not implement "
                    f"{', '.join(missing)}; the harness drives every "
                    f"architecture through these hooks",
                )
        core_classes = {
            info.name: info for info in graph.classes.values()
            if info.module.in_src and info.module.package == "core"
        }
        for name in sorted(_WORD_KERNELS & set(core_classes)):
            info = core_classes[name]
            if "run" not in graph.methods_of(info.qname):
                yield self._hit(
                    info.module, info.node,
                    f"word-level kernel {name} does not define run(); the "
                    f"harness and scenario executors require it",
                )
