"""E13 — The architecture ranking (paper §2, conclusion).

"Shared (centralized) buffering is the best architecture ... shared
buffering should be the architecture of choice."  One sweep, identical
traffic machinery: saturation throughput and delay at 0.8 load for every
§2 architecture, plus the word-level pipelined switch itself, which must
match the idealized shared buffer it implements.
"""

from conftest import show

from repro.core import FastPipelinedSwitch, PipelinedSwitchConfig, RenewalPacketSource
from repro.switches import (
    BlockCrosspoint,
    CrosspointQueued,
    FifoInputQueued,
    Islip,
    OutputQueued,
    SharedBuffer,
    SpeedupSwitch,
    VoqInputBuffered,
)
from repro.switches.harness import (
    format_table,
    run_switch,
    saturation_throughput,
    uniform_source_factory,
)

N = 8
SLOTS = 20_000

ARCHITECTURES = {
    "FIFO input queueing": lambda: FifoInputQueued(N, N, seed=1),
    "VOQ + iSLIP": lambda: VoqInputBuffered(N, N, Islip(iterations=4)),
    "speedup-2 + output queues": lambda: SpeedupSwitch(N, N, speedup=2, seed=1),
    "crosspoint queueing": lambda: CrosspointQueued(N, N, seed=1),
    "block-crosspoint (2x2 blocks)": lambda: BlockCrosspoint(N, N, block=4, seed=1),
    "output queueing": lambda: OutputQueued(N, N, seed=1),
    "shared buffering (ideal)": lambda: SharedBuffer(N, N, seed=1),
}


def _pipelined_point():
    # The fast kernel is bit-identical to PipelinedSwitch here (same seed,
    # same arbitration), so the asserts below see the exact same numbers.
    cfg = PipelinedSwitchConfig(n=N, addresses=256, credit_flow=True)
    b = cfg.packet_words
    sat_sw = FastPipelinedSwitch(
        cfg, RenewalPacketSource(n_out=N, packet_words=b, load=1.0, seed=2)
    )
    sat_sw.warmup = 4000
    sat_sw.run(SLOTS * b // 2)
    cfg2 = PipelinedSwitchConfig(n=N, addresses=256, credit_flow=True)
    lat_sw = FastPipelinedSwitch(
        cfg2, RenewalPacketSource(n_out=N, packet_words=b, load=0.8, seed=3)
    )
    lat_sw.warmup = 4000
    lat_sw.run(SLOTS * b // 2)
    # delay in slot units (packet times) for comparability
    return sat_sw.link_utilization, (lat_sw.ct_latency.mean - 2.0) / b


def _experiment():
    # fast=True batches the traffic draws (different sample path, same
    # distribution) — the asserts below all carry statistical margin.
    f = uniform_source_factory(N, N)
    rows = []
    for name, factory in ARCHITECTURES.items():
        sat = saturation_throughput(factory, f, slots=SLOTS, fast=True)
        sw = factory()
        sw.stats.warmup = SLOTS // 5
        delay = run_switch(sw, f(0.8, 7), SLOTS, fast=True).mean_delay
        rows.append([name, sat, delay])
    sat_p, delay_p = _pipelined_point()
    rows.append(["pipelined memory (word-level)", sat_p, delay_p])
    return rows


def test_e13_architecture_sweep(run_once):
    rows = run_once(_experiment)
    show(format_table(
        ["architecture", "saturation throughput", "mean delay @ 0.8 (packet times)"],
        rows,
        title=f"E13: architecture ranking, {N}x{N}, uniform traffic",
    ))
    by_name = {r[0]: (r[1], r[2]) for r in rows}
    # FIFO input queueing is the clear loser (the paper's premise):
    assert by_name["FIFO input queueing"][0] < 0.65
    # Everything work-conserving saturates near 1:
    for name in ("crosspoint queueing", "output queueing", "shared buffering (ideal)",
                 "speedup-2 + output queues", "block-crosspoint (2x2 blocks)"):
        assert by_name[name][0] > 0.93, name
    # The pipelined implementation matches the ideal shared buffer:
    assert by_name["pipelined memory (word-level)"][0] > 0.93
    # Output/shared queueing beat scheduled input buffering on delay:
    assert by_name["output queueing"][1] < by_name["VOQ + iSLIP"][1]
    assert abs(by_name["output queueing"][1] - by_name["shared buffering (ideal)"][1]) < 0.5
