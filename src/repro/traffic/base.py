"""Common interface for slotted traffic generators.

A traffic source models the ``n`` incoming links of an ``n_in``-port switch.
Each call to :meth:`TrafficSource.arrivals` returns, for one time slot, a list
of length ``n_in`` whose entry ``i`` is either ``None`` (no cell arrived on
input ``i`` this slot) or the destination output port of the arriving cell.

The word-level model of :mod:`repro.core` reuses the same sources: a slot
there corresponds to one packet time (``B`` clock cycles), and the arriving
"cell" becomes a ``B``-word packet whose head shows up at the slot boundary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.sim.rng import make_rng


class TrafficSource(ABC):
    """Base class: per-slot arrival pattern for ``n_in`` inputs, ``n_out`` outputs."""

    def __init__(self, n_in: int, n_out: int) -> None:
        if n_in < 1 or n_out < 1:
            raise ValueError(f"need at least one input and output, got {n_in}x{n_out}")
        self.n_in = n_in
        self.n_out = n_out

    @abstractmethod
    def arrivals(self, slot: int) -> list[int | None]:
        """Destinations (or ``None``) for each input in this slot.

        ``slot`` is provided for sources with time structure (traces, frames);
        stochastic sources advance their own RNG state and must be called with
        monotonically increasing slots.
        """

    @property
    def offered_load(self) -> float:
        """Long-run probability that a given input carries a cell in a slot.

        Subclasses with a well-defined load override this; the default raises
        so that harness code never silently assumes a load.
        """
        raise NotImplementedError(f"{type(self).__name__} has no analytic load")


class RandomTrafficSource(TrafficSource):
    """Base for stochastic sources; owns a numpy Generator."""

    def __init__(
        self, n_in: int, n_out: int, seed: int | np.random.Generator | None = None
    ) -> None:
        super().__init__(n_in, n_out)
        self.rng = make_rng(seed)
