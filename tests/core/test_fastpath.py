"""Equivalence of the wave-level fast kernel with the checked model.

`FastPipelinedSwitch` must reproduce `PipelinedSwitch` *bit for bit* — not
just statistically — on every configuration it claims to model: same wave
counts, same delivered/dropped totals, same per-packet latency accumulators
(Welford means compared as exact floats), same drain length.  The checked
model stays the oracle; the fast kernel is only trustworthy because this
matrix pins it to the oracle across every feature interaction.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FastPathUnsupportedError,
    FastPipelinedSwitch,
    PipelinedSwitch,
    PipelinedSwitchConfig,
    Priority,
    RenewalPacketSource,
    SaturatingSource,
    make_pipelined_switch,
)


def _renewal(cfg, load, seed):
    return RenewalPacketSource(
        n_out=cfg.n, packet_words=cfg.packet_words, load=load,
        width_bits=cfg.width_bits, seed=seed,
    )


def _saturating(cfg, load, seed):
    return SaturatingSource(n_out=cfg.n, packet_words=cfg.packet_words, seed=seed)


def _fingerprint(sw) -> dict:
    return {
        "stats": sw.stats,
        "ct_latency": sw.ct_latency,
        "ct_latency_hist": sw.ct_latency_hist,
        "total_latency": sw.total_latency,
        "stagger_extra": sw.stagger_extra,
        "cut_through_waves": sw.cut_through_waves,
        "plain_read_waves": sw.plain_read_waves,
        "write_waves": sw.write_waves,
        "idle_cycles": sw.idle_cycles,
        "deadline_overrides": sw.deadline_overrides,
        "overrun_drops": sw.overrun_drops,
        "cycle": sw.cycle,
        "link_utilization": sw.link_utilization,
    }


def _assert_equivalent(cfg, make_source, cycles, load=0.6, seed=1, warmup=0):
    slow = PipelinedSwitch(cfg, make_source(cfg, load, seed))
    fast = FastPipelinedSwitch(cfg, make_source(cfg, load, seed))
    for sw in (slow, fast):
        sw.warmup = warmup
        sw.run(cycles)
        if not cfg.credit_flow:
            sw.drain()
    slow_fp, fast_fp = _fingerprint(slow), _fingerprint(fast)
    for key, want in slow_fp.items():
        assert fast_fp[key] == want, f"{key}: checked={want!r} fast={fast_fp[key]!r}"


# One row per feature interaction the fast kernel claims to model.  Kept
# short (few thousand cycles) — record.py covers the long-horizon versions.
MATRIX = [
    pytest.param(PipelinedSwitchConfig(n=8, addresses=128),
                 _renewal, 4000, 0.6, 1, 400, id="8x8-load0.6-droptail"),
    pytest.param(PipelinedSwitchConfig(n=8, addresses=64, credit_flow=True),
                 _saturating, 4000, 1.0, 2, 400, id="8x8-saturated-credits"),
    pytest.param(PipelinedSwitchConfig(n=4, addresses=8),
                 _saturating, 3000, 1.0, 3, 0, id="4x4-tiny-saturated"),
    pytest.param(PipelinedSwitchConfig(n=4, addresses=32, cut_through=False),
                 _renewal, 3000, 0.7, 4, 300, id="4x4-store-and-forward"),
    pytest.param(PipelinedSwitchConfig(n=4, addresses=32, quanta=2),
                 _renewal, 3000, 0.7, 5, 0, id="4x4-quanta2"),
    pytest.param(
        PipelinedSwitchConfig(n=4, addresses=16, downstream_credits=2,
                              downstream_rtt=7),
        _renewal, 3000, 0.9, 6, 0, id="4x4-downstream-credits"),
    pytest.param(PipelinedSwitchConfig(n=4, addresses=32, link_pipeline_stages=2),
                 _renewal, 3000, 0.8, 7, 0, id="4x4-wirepipe"),
    pytest.param(
        PipelinedSwitchConfig(n=3, addresses=30, quanta=3, credit_flow=True),
        _renewal, 3000, 0.9, 8, 0, id="3x3-quanta3-credits"),
    pytest.param(PipelinedSwitchConfig(n=16, addresses=256, credit_flow=True),
                 _saturating, 2000, 1.0, 9, 200, id="16x16-saturated-credits"),
]


@pytest.mark.parametrize("cfg,make_source,cycles,load,seed,warmup", MATRIX)
def test_bit_identical_to_checked_model(cfg, make_source, cycles, load, seed, warmup):
    _assert_equivalent(cfg, make_source, cycles, load=load, seed=seed, warmup=warmup)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 6),
    addr_factor=st.integers(1, 8),
    quanta=st.integers(1, 3),
    cut_through=st.booleans(),
    credit_flow=st.booleans(),
    wirepipe=st.integers(0, 2),
    load=st.floats(0.2, 1.0),
    seed=st.integers(0, 2**16),
)
def test_random_configs_identical(
    n, addr_factor, quanta, cut_through, credit_flow, wirepipe, load, seed
):
    cfg = PipelinedSwitchConfig(
        n=n, addresses=n * quanta * addr_factor, quanta=quanta,
        cut_through=cut_through, credit_flow=credit_flow,
        link_pipeline_stages=wirepipe,
    )
    _assert_equivalent(cfg, _renewal, 1200, load=load, seed=seed,
                       warmup=100)


def test_drain_and_is_empty_match():
    cfg = PipelinedSwitchConfig(n=4, addresses=32)
    slow = PipelinedSwitch(cfg, _renewal(cfg, 0.8, 11))
    fast = FastPipelinedSwitch(cfg, _renewal(cfg, 0.8, 11))
    for sw in (slow, fast):
        sw.run(500)
    assert fast.is_empty() == slow.is_empty()
    slow.drain()
    fast.drain()
    assert fast.cycle == slow.cycle
    assert fast.is_empty() and slow.is_empty()


@pytest.mark.parametrize("priority", [Priority.WRITES_FIRST, Priority.OLDEST_FIRST])
def test_refuses_unmodeled_priority(priority):
    cfg = PipelinedSwitchConfig(n=4, addresses=32, priority=priority)
    with pytest.raises(FastPathUnsupportedError):
        FastPipelinedSwitch(cfg, _renewal(cfg, 0.5, 1))


def test_factory_selects_kernel():
    cfg = PipelinedSwitchConfig(n=4, addresses=32)
    assert isinstance(make_pipelined_switch(cfg, _renewal(cfg, 0.5, 1)),
                      PipelinedSwitch)
    assert isinstance(make_pipelined_switch(cfg, _renewal(cfg, 0.5, 1), fast=True),
                      FastPipelinedSwitch)
