"""E14 — Input queueing with internal fabric speedup (paper §2.1, [PaBr93]).

"Another method to improve the performance of input queueing is to provide
an internal switching fabric of higher throughput than that of the incoming
links; figure 1 shows an example with a double internal switch."  The sweep:
saturation throughput vs speedup factor — speedup 1 reproduces the HoL limit,
speedup 2 is already near 100 %.
"""

from conftest import show

from repro.analysis.hol import KAROL_TABLE
from repro.switches import SpeedupSwitch
from repro.switches.harness import (
    format_table,
    saturation_throughput,
    uniform_source_factory,
)


def _experiment():
    n = 8
    f = uniform_source_factory(n, n)
    rows = []
    for s in (1, 2, 3, 4):
        sat = saturation_throughput(
            lambda: SpeedupSwitch(n, n, speedup=s, seed=1), f, slots=20_000
        )
        rows.append([s, sat])
    return rows


def test_e14_speedup(run_once):
    rows = run_once(_experiment)
    show(format_table(
        ["fabric speedup", "saturation throughput"],
        rows,
        title="E14: input queueing + internal speedup, 8x8 [PaBr93]",
    ))
    by_s = {r[0]: r[1] for r in rows}
    assert abs(by_s[1] - KAROL_TABLE[8]) < 0.02  # speedup 1 == plain HoL
    assert by_s[2] > 0.95  # the paper's "double internal switch" point
    sats = [r[1] for r in rows]
    assert all(b >= a - 0.01 for a, b in zip(sats, sats[1:]))  # monotone
