"""Common machinery for slotted (cell-per-slot) switch models.

These models operate at the granularity of the queueing literature the paper
builds on: time is divided into slots; in each slot every input link delivers
at most one fixed-size cell and every output link transmits at most one cell.

Slot phasing (consistent across all architectures, so comparisons are fair):

1. arrivals of the slot are admitted to buffers (or dropped);
2. the architecture selects departures — a cell that arrived this very slot
   may depart this slot (zero in-switch delay), which matches the convention
   of [KaHM87] and makes the output-queue delay formula come out exactly.

Subclasses implement :meth:`_admit` (buffer or drop one arriving cell) and
:meth:`_select_departures` (pick at most one cell per output).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.drc.sanitizer import NULL_SANITIZER, Sanitizer
from repro.sim.packet import Cell
from repro.sim.stats import SwitchStats
from repro.telemetry import (
    ARRIVE,
    DEPART,
    DROP,
    DROP_BUFFER_FULL,
    NULL_TELEMETRY,
    Telemetry,
)
from repro.traffic.base import TrafficSource


class SlottedSwitch(ABC):
    """Base class for all slot-level switch architectures."""

    def __init__(
        self,
        n_in: int,
        n_out: int,
        warmup: int = 0,
        telemetry: Telemetry | None = None,
    ) -> None:
        if n_in < 1 or n_out < 1:
            raise ValueError(f"need at least 1 input and 1 output, got {n_in}x{n_out}")
        self.n_in = n_in
        self.n_out = n_out
        self.slot = 0
        self.stats = SwitchStats(n_outputs=n_out, warmup=warmup)
        self._occupancy_samples: list[int] = []
        self.sample_occupancy = False
        self.attach_telemetry(telemetry)
        self.attach_sanitizer(None)

    def attach_telemetry(self, telemetry: Telemetry | None) -> None:
        """Point the slot-level collection sites at ``telemetry``.

        Slotted models have no banks, waves or credits, so only the
        port-level families and the occupancy channel are populated; the
        metric names are shared with the pipelined kernels so sweeps can be
        compared side by side in one dashboard.
        """
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = self.telemetry.enabled
        if not self._tel:
            return
        m = self.telemetry.metrics
        self._m_arrivals = [m.counter("repro_port_arrivals_total", port=i)
                            for i in range(self.n_in)]
        self._m_departures = [m.counter("repro_port_departures_total", port=j)
                              for j in range(self.n_out)]
        self._m_drops = [
            m.counter("repro_port_drops_total", port=i, cause=DROP_BUFFER_FULL)
            for i in range(self.n_in)
        ]
        self._m_occupancy = m.gauge("repro_buffer_occupancy")
        self._m_delay = m.histogram("repro_slot_delay_slots")

    def attach_sanitizer(self, sanitizer: Sanitizer | None) -> None:
        """Point the invariant hooks at ``sanitizer`` (null-object when off).

        Slotted models have no banks or waves, so only the packet-lifecycle
        hooks fire: the sanitizer checks cell conservation (injected =
        delivered + buffered + dropped) against :meth:`occupancy` each slot.
        """
        self.sanitizer = sanitizer if sanitizer is not None else NULL_SANITIZER
        self._san = self.sanitizer.enabled

    # -- architecture-specific hooks ----------------------------------------
    @abstractmethod
    def _admit(self, cell: Cell) -> bool:
        """Buffer ``cell``; return ``False`` if it had to be dropped."""

    @abstractmethod
    def _select_departures(self) -> list[Cell | None]:
        """Dequeue and return at most one cell per output for this slot."""

    @abstractmethod
    def occupancy(self) -> int:
        """Total cells currently buffered (all queues)."""

    # -- shared drop accounting ----------------------------------------------
    def _record_late_drop(self, cell: Cell, cause: str = DROP_BUFFER_FULL) -> None:
        """Discard a provisionally-admitted cell during departure selection.

        Architectures that resolve contention after :meth:`_admit` (shared
        buffers, knockout concentrators) call this instead of mutating the
        stats directly, so the drop shows up in the event log and per-port
        drop counters exactly like an admission-time drop.
        """
        if self._san:
            self.sanitizer.packet_dropped(self.slot, cell.uid)
        if cell.arrival_slot >= self.stats.warmup:
            self.stats.accepted -= 1
            self.stats.dropped += 1
        if self._tel:
            self.telemetry.events.emit(
                self.slot, DROP, cell.uid, src=cell.src, dst=cell.dst,
                cause=cause,
            )
            if cause == DROP_BUFFER_FULL:
                self._m_drops[cell.src].inc()
            else:
                self.telemetry.metrics.counter(
                    "repro_port_drops_total", port=cell.src, cause=cause
                ).inc()

    # -- driver ---------------------------------------------------------------
    def step(
        self, dests: list[int | None], tags: list[object] | None = None
    ) -> list[Cell | None]:
        """Advance one slot given per-input arrival destinations.

        ``tags`` optionally attaches an opaque object to each arriving cell
        (same indexing as ``dests``); it travels with the cell and comes
        back on departure — multistage fabrics use this to follow a cell
        through a cascade of switch elements.
        """
        if len(dests) != self.n_in:
            raise ValueError(f"expected {self.n_in} arrival entries, got {len(dests)}")
        if tags is not None and len(tags) != self.n_in:
            raise ValueError(f"expected {self.n_in} tag entries, got {len(tags)}")
        for src, dst in enumerate(dests):
            if dst is None:
                continue
            if not 0 <= dst < self.n_out:
                raise ValueError(f"destination {dst} out of range (n_out={self.n_out})")
            cell = Cell(
                src=src, dst=dst, arrival_slot=self.slot,
                tag=tags[src] if tags is not None else None,
            )
            self.stats.record_offer(self.slot)
            if self._san:
                self.sanitizer.packet_injected(self.slot, cell.uid)
            if self._tel:
                self.telemetry.events.emit(
                    self.slot, ARRIVE, cell.uid, src=src, dst=dst
                )
                self._m_arrivals[src].inc()
            if self._admit(cell):
                self.stats.record_accept(self.slot)
            else:
                if self._san:
                    self.sanitizer.packet_dropped(self.slot, cell.uid)
                self.stats.record_drop(self.slot)
                if self._tel:
                    self.telemetry.events.emit(
                        self.slot, DROP, cell.uid, src=src, dst=dst,
                        cause=DROP_BUFFER_FULL,
                    )
                    self._m_drops[src].inc()

        departures = self._select_departures()
        if len(departures) != self.n_out:
            raise AssertionError(
                f"{type(self).__name__} returned {len(departures)} departures, "
                f"expected {self.n_out}"
            )
        for j, cell in enumerate(departures):
            if cell is None:
                continue
            if cell.dst != j:
                raise AssertionError(
                    f"cell {cell.uid} destined to {cell.dst} departed on output {j}"
                )
            cell.depart_slot = self.slot
            if self._san:
                self.sanitizer.packet_delivered(self.slot, cell.uid)
            self.stats.record_departure(cell.dst, cell.arrival_slot, self.slot)
            if self._tel:
                self.telemetry.events.emit(
                    self.slot, DEPART, cell.uid, src=cell.src, dst=j,
                    aux=self.slot,
                )
                self._m_departures[j].inc()
                if cell.arrival_slot >= self.stats.warmup:
                    self._m_delay.observe(self.slot - cell.arrival_slot)

        if self.sample_occupancy and self.slot >= self.stats.warmup:
            self._occupancy_samples.append(self.occupancy())
        if self._tel:
            iv = self.telemetry.sample_interval
            if iv and self.slot % iv == 0:
                occ = self.occupancy()
                self.telemetry.sample(self.slot, occ)
                self._m_occupancy.set(occ)
        if self._san:
            self.sanitizer.end_cycle(self.slot, self.occupancy())

        self.slot += 1
        self.stats.horizon = self.slot
        return departures

    def run(self, source: TrafficSource, slots: int) -> SwitchStats:
        """Drive this switch with ``source`` for ``slots`` slots."""
        if source.n_in != self.n_in or source.n_out != self.n_out:
            raise ValueError(
                f"source is {source.n_in}x{source.n_out}, "
                f"switch is {self.n_in}x{self.n_out}"
            )
        for _ in range(slots):
            self.step(source.arrivals(self.slot))
        return self.stats

    def run_matrix(self, arrivals: np.ndarray) -> SwitchStats:
        """Drive this switch with a precomputed arrival matrix.

        ``arrivals`` is the ``(slots, n_in)`` destination matrix produced by
        :meth:`~repro.traffic.base.TrafficSource.arrivals_matrix` (``-1`` =
        no cell): the whole horizon's randomness is drawn in one batch and
        the per-slot loop touches only plain ints.
        """
        arrivals = np.asarray(arrivals)
        if arrivals.ndim != 2 or arrivals.shape[1] != self.n_in:
            raise ValueError(
                f"arrival matrix must be (slots, {self.n_in}), "
                f"got shape {arrivals.shape}"
            )
        step = self.step
        for row in arrivals.tolist():  # nested python ints: fast iteration
            step([d if d >= 0 else None for d in row])
        return self.stats

    def run_fast(self, source: TrafficSource, slots: int, chunk: int = 8192) -> SwitchStats:
        """Like :meth:`run`, but generates traffic in vectorized batches.

        Uses :meth:`~repro.traffic.base.TrafficSource.arrivals_matrix`, so
        the RNG stream differs from :meth:`run` (deterministic per seed,
        statistically identical — see ``arrivals_matrix``).  Chunked so a
        long horizon does not materialize one giant matrix.
        """
        if source.n_in != self.n_in or source.n_out != self.n_out:
            raise ValueError(
                f"source is {source.n_in}x{source.n_out}, "
                f"switch is {self.n_in}x{self.n_out}"
            )
        remaining = slots
        while remaining > 0:
            batch = min(chunk, remaining)
            self.run_matrix(source.arrivals_matrix(batch, start_slot=self.slot))
            remaining -= batch
        return self.stats

    @property
    def occupancy_samples(self) -> list[int]:
        return self._occupancy_samples
