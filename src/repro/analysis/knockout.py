"""Knockout concentrator loss analysis [YeHA87] (cited in paper §3.1).

The Knockout switch replaces the n-write-per-slot output buffer with an
L-path concentrator: of the ``X ~ Bin(n, p/n)`` cells arriving for an output
in one slot, at most L survive.  [YeHA87]'s key observation: L = 8 keeps the
knockout loss below ~1e-6 at full load for any switch size.  These formulas
cross-check :class:`~repro.switches.knockout.KnockoutSwitch`.
"""

from __future__ import annotations


import numpy as np
from scipy import stats as sstats


def knockout_loss(n: int, p: float, l_paths: int) -> float:
    """Fraction of cells knocked out: ``E[(X - L)+] / E[X]``, X ~ Bin(n, p/n)."""
    if l_paths < 1:
        raise ValueError(f"need >= 1 path, got {l_paths}")
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"load must be in [0, 1], got {p}")
    if p == 0.0:
        return 0.0
    ks = np.arange(l_paths + 1, n + 1)
    if len(ks) == 0:
        return 0.0
    pmf = sstats.binom.pmf(ks, n, p / n)
    return float(((ks - l_paths) * pmf).sum()) / p


def knockout_loss_poisson(p: float, l_paths: int, kmax: int = 200) -> float:
    """The n -> infinity limit: X ~ Poisson(p) (the [YeHA87] design formula)."""
    if p == 0.0:
        return 0.0
    ks = np.arange(l_paths + 1, kmax + 1)
    pmf = sstats.poisson.pmf(ks, p)
    return float(((ks - l_paths) * pmf).sum()) / p


def paths_for_loss(n: int, p: float, target: float) -> int:
    """Smallest L with knockout loss <= target (L = 8 for 1e-6 at p = 1)."""
    for l_paths in range(1, n + 1):
        if knockout_loss(n, p, l_paths) <= target:
            return l_paths
    return n


def survivors_pmf(n: int, p: float, l_paths: int) -> np.ndarray:
    """PMF of survivors per slot: min(X, L) with X ~ Bin(n, p/n)."""
    x = sstats.binom.pmf(np.arange(n + 1), n, p / n)
    out = np.zeros(l_paths + 1)
    out[:l_paths] = x[:l_paths]
    out[l_paths] = x[l_paths:].sum()
    return out


def effective_load(n: int, p: float, l_paths: int) -> float:
    """Post-concentrator offered load per output (feeds the queue model)."""
    return p * (1.0 - knockout_loss(n, p, l_paths))
