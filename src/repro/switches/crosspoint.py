"""Crosspoint queueing — one queue per (input, output) pair (paper §2.1).

"Every outgoing link can now be kept busy ... independent of what the other
links do": optimal link utilization, at the cost of ``n^2`` small buffers
whose total capacity must be much larger than shared buffering for the same
loss (the buffer-utilization disadvantage bench E3 quantifies via the shared
vs output vs crosspoint sweep).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sim.packet import Cell
from repro.sim.rng import make_rng
from repro.switches.base import SlottedSwitch


class CrosspointQueued(SlottedSwitch):
    """n_in x n_out crosspoint FIFOs, per-output round-robin service.

    Parameters
    ----------
    capacity:
        Per-crosspoint queue capacity in cells (``None`` = infinite).
    service:
        ``"round_robin"`` (default) or ``"oldest_first"`` — per output,
        choose among its non-empty column of crosspoint queues.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        capacity: int | None = None,
        service: str = "round_robin",
        warmup: int = 0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_in, n_out, warmup)
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        if service not in ("round_robin", "oldest_first"):
            raise ValueError(f"unknown service discipline {service!r}")
        self.capacity = capacity
        self.service = service
        self.queues: list[list[deque[Cell]]] = [
            [deque() for _ in range(n_out)] for _ in range(n_in)
        ]
        self._rr = [0] * n_out
        self.rng = make_rng(seed)

    def _admit(self, cell: Cell) -> bool:
        q = self.queues[cell.src][cell.dst]
        if self.capacity is not None and len(q) >= self.capacity:
            return False
        q.append(cell)
        return True

    def _select_departures(self) -> list[Cell | None]:
        departures: list[Cell | None] = [None] * self.n_out
        for j in range(self.n_out):
            nonempty = [i for i in range(self.n_in) if self.queues[i][j]]
            if not nonempty:
                continue
            if self.service == "round_robin":
                ptr = self._rr[j]
                winner = min(nonempty, key=lambda i: (i - ptr) % self.n_in)
                self._rr[j] = (winner + 1) % self.n_in
            else:
                winner = min(
                    nonempty, key=lambda i: self.queues[i][j][0].arrival_slot
                )
            departures[j] = self.queues[winner][j].popleft()
        return departures

    def occupancy(self) -> int:
        return sum(len(q) for row in self.queues for q in row)
