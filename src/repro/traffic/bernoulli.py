"""Independent Bernoulli arrivals with uniformly random destinations.

This is the traffic model behind every queueing result the paper cites:
[KaHM87] (input vs output queueing), [HlKa88] (buffer sizing), and the
section 3.4 staggered-initiation analysis ("independent, randomly destined
packet traffic").
"""

from __future__ import annotations

import numpy as np

from repro.traffic.base import RandomTrafficSource


class BernoulliUniform(RandomTrafficSource):
    """Each input receives a cell with probability ``load`` per slot; the
    destination is uniform over the ``n_out`` outputs, independent of
    everything else."""

    def __init__(
        self,
        n_in: int,
        n_out: int,
        load: float,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_in, n_out, seed)
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        self.load = load

    def arrivals(self, slot: int) -> list[int | None]:
        active = self.rng.random(self.n_in) < self.load
        dests = self.rng.integers(0, self.n_out, size=self.n_in)
        return [int(d) if a else None for a, d in zip(active, dests)]

    def arrivals_matrix(self, slots: int, start_slot: int = 0) -> np.ndarray:
        active = self.rng.random((slots, self.n_in)) < self.load
        dests = self.rng.integers(0, self.n_out, size=(slots, self.n_in))
        return np.where(active, dests, self.NO_CELL)

    @property
    def offered_load(self) -> float:
        return self.load


class BernoulliMatrix(RandomTrafficSource):
    """Bernoulli arrivals with an arbitrary input->output rate matrix.

    ``rates[i][j]`` is the probability that input ``i`` receives, in a given
    slot, a cell destined to output ``j``.  Row sums must not exceed 1 (at
    most one cell per input per slot).  ``BernoulliUniform`` is the special
    case ``rates[i][j] = load / n_out``.
    """

    def __init__(
        self,
        rates: np.ndarray | list[list[float]],
        seed: int | np.random.Generator | None = None,
    ) -> None:
        rates = np.asarray(rates, dtype=float)
        if rates.ndim != 2:
            raise ValueError(f"rates must be a 2-D matrix, got shape {rates.shape}")
        if (rates < 0).any():
            raise ValueError("rates must be non-negative")
        row_sums = rates.sum(axis=1)
        if (row_sums > 1.0 + 1e-12).any():
            raise ValueError(f"row sums must be <= 1, got max {row_sums.max():.6f}")
        super().__init__(rates.shape[0], rates.shape[1], seed)
        self.rates = rates
        # Precompute per-input categorical distributions over {None, 0..n_out-1}.
        self._probs = np.concatenate(
            [np.clip(1.0 - row_sums, 0.0, 1.0)[:, None], rates], axis=1
        )
        # Normalize away float dust so rng.choice accepts the rows.
        self._probs /= self._probs.sum(axis=1, keepdims=True)

    def arrivals(self, slot: int) -> list[int | None]:
        out: list[int | None] = []
        for i in range(self.n_in):
            k = int(self.rng.choice(self.n_out + 1, p=self._probs[i]))
            out.append(None if k == 0 else k - 1)
        return out

    def arrivals_matrix(self, slots: int, start_slot: int = 0) -> np.ndarray:
        # Inverse-CDF sampling per input: one uniform per (slot, input),
        # searchsorted over the per-input cumulative categorical.
        u = self.rng.random((slots, self.n_in))
        out = np.empty((slots, self.n_in), dtype=np.int64)
        cum = np.cumsum(self._probs, axis=1)
        for i in range(self.n_in):
            out[:, i] = np.searchsorted(cum[i], u[:, i], side="right") - 1
        return out  # category 0 ("no cell") lands exactly on NO_CELL == -1

    @property
    def offered_load(self) -> float:
        return float(self.rates.sum(axis=1).mean())
