"""Wave control words and the control-signal pipeline (paper figure 5).

The defining property of the pipelined memory: *only the first stage needs a
control generator*.  A wave is described by one :class:`ControlWord` injected
at stage ``M0``; stages ``M1..M(B-1)`` receive the identical word delayed by
one cycle per stage, through a :class:`~repro.sim.engine.ShiftPipeline` —
exactly the row of control pipeline registers in the paper's figures 5 and 8.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class WaveOp(enum.Enum):
    """Operation a wave performs at each bank as it sweeps left to right."""

    WRITE = "write"  # store an incoming packet (input latches -> banks)
    READ = "read"  # retrieve a stored packet (banks -> output registers)
    WRITE_CT = "write_ct"  # combined write + cut-through: store the packet
    # while the bus value is simultaneously latched into the output register
    # ("in the same ... cycle, this word can also be loaded", paper §3.3)


@dataclass(frozen=True, slots=True)
class ControlWord:
    """Control for one wave: op, which link(s), which buffer address.

    ``in_link`` is meaningful for WRITE/WRITE_CT; ``out_link`` for
    READ/WRITE_CT.  ``quantum`` numbers the wave within a multi-quantum
    packet's chain (§3.5: packet sizes are integer multiples of the buffer
    quantum; quantum ``q`` moves words ``q*B .. (q+1)*B - 1``).
    ``packet_uid`` exists purely for checking/telemetry — a real chip
    carries only (op, linkID, address), as the paper notes.
    """

    op: WaveOp
    addr: int
    in_link: int | None = None
    out_link: int | None = None
    packet_uid: int = -1
    quantum: int = 0

    def __post_init__(self) -> None:
        writes = self.op in (WaveOp.WRITE, WaveOp.WRITE_CT)
        reads = self.op in (WaveOp.READ, WaveOp.WRITE_CT)
        if writes and self.in_link is None:
            raise ValueError(f"{self.op} wave needs an input link")
        if reads and self.out_link is None:
            raise ValueError(f"{self.op} wave needs an output link")
        if self.op is WaveOp.READ and self.in_link is not None:
            raise ValueError("READ wave must not name an input link")


class ControlPipeline:
    """The delay line distributing one wave's control across the banks.

    Per cycle the switch calls :meth:`advance` (every control word moves one
    stage to the right — the clock edge on the control registers), then the
    arbiter may :meth:`initiate` the cycle's new wave, which governs bank 0
    *this* cycle.  ``stage(k)`` yields the control word governing bank ``k``
    this cycle (``None`` when bank ``k`` is idle) — by construction it is the
    word initiated ``k`` cycles ago, which is the paper's "control for stage
    Mk is identical to stage M0 delayed by k clock cycles".
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"control pipeline depth must be >= 1, got {depth}")
        self.depth = depth
        self._stages: list[ControlWord | None] = [None] * depth

    def advance(self) -> None:
        """Clock edge: shift every wave one stage to the right."""
        self._stages = [None] + self._stages[:-1]

    def initiate(self, word: ControlWord) -> None:
        """Inject this cycle's wave at stage 0 (at most one per cycle)."""
        if self._stages[0] is not None:
            raise ValueError(
                "two waves initiated in one cycle — the pipelined memory "
                "allows exactly one initiation per cycle (paper §3.3)"
            )
        self._stages[0] = word

    def stage(self, k: int) -> ControlWord | None:
        return self._stages[k]

    def active(self) -> list[tuple[int, ControlWord]]:
        """(stage, word) for every stage currently executing a wave."""
        return [(k, w) for k, w in enumerate(self._stages) if w is not None]

    def idle(self) -> bool:
        return all(w is None for w in self._stages)
