"""Command-line interface: run the paper's systems without writing code.

Examples
--------
Run a slot-level architecture under uniform traffic::

    python -m repro simulate --arch shared -n 8 --load 0.9 --slots 20000

Run the word-level pipelined-memory switch (the paper's contribution)::

    python -m repro pipelined -n 8 --load 0.6 --cycles 100000 --credits

Drive the wormhole network ([Dally90] comparison)::

    python -m repro wormhole --k 8 --dims 2 --lanes 1 --load 1.0

Print a Telegraphos silicon report or the [HlKa88] buffer sizing::

    python -m repro vlsi --chip 3
    python -m repro sizing -n 16 --load 0.8 --target 1e-3

Export a Perfetto-loadable trace of the bank pipeline (figure 5, live)::

    python -m repro trace fast --cycles 2000 --out trace.json

Run a declarative scenario file, or sweep a whole grid across processes::

    python -m repro run examples/scenarios/cut_through.json
    python -m repro sweep examples/scenarios/shootout.json --jobs 4 --out out/

Check the repo against the design rules, or run with the invariant
sanitizer attached (:mod:`repro.drc`)::

    python -m repro lint src tests
    python -m repro run examples/scenarios/cut_through.json --sanitize

Every command builds its switches through the scenario registry
(:mod:`repro.scenario`), so a CLI invocation and the equivalent scenario
file produce bit-identical statistics.
"""

from __future__ import annotations

import argparse
import sys

from repro.switches.harness import format_table


def _add_telemetry_flags(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("telemetry")
    g.add_argument("--metrics", metavar="FILE", default=None,
                   help="write Prometheus-style text metrics to FILE")
    g.add_argument("--events", metavar="FILE", default=None,
                   help="write the JSONL packet-lifecycle event stream to FILE")
    g.add_argument("--sample-interval", type=int, default=0, metavar="CYCLES",
                   help="sample buffer occupancy every CYCLES cycles "
                        "(0 = no sampling)")


def _telemetry_from_args(args):
    """A collecting bundle iff any telemetry output was requested."""
    from repro.telemetry import Telemetry

    if args.metrics or args.events or args.sample_interval:
        return Telemetry.on(sample_interval=args.sample_interval)
    return None


def _export_telemetry(tel, args) -> None:
    from repro.telemetry.export import write_events_jsonl, write_metrics_text

    if tel is None:
        return
    # write every requested file before printing anything: a consumer
    # closing stdout early (| head) must not cost the later artifacts
    if args.events:
        write_events_jsonl(tel.events, args.events)
    if args.metrics:
        write_metrics_text(tel.metrics, args.metrics)
    if args.events:
        print(f"events: {len(tel.events)} -> {args.events}")
    if args.metrics:
        print(f"metrics -> {args.metrics}")
    if args.sample_interval:
        series = tel.occupancy_series()
        print("occupancy: "
              + ", ".join(f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                          for k, v in series.items()))


def _add_sanitize_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--sanitize", action="store_true",
                   help="attach the repro.drc invariant sanitizer: check the "
                        "paper's structural invariants every cycle and halt "
                        "with a structured error on the first violation")


def _print_sanitizer_summary(sanitizer) -> None:
    if sanitizer is not None:
        print("sanitizer: "
              + ", ".join(f"{k}={v}" for k, v in sanitizer.summary().items()))


def _add_simulate(sub: argparse._SubParsersAction) -> None:
    from repro.scenario.registry import REGISTRY, SLOTTED

    p = sub.add_parser("simulate", help="run a slot-level switch architecture")
    p.add_argument("--arch", required=True,
                   choices=sorted(a.name for a in REGISTRY.values()
                                  if a.kind == SLOTTED))
    p.add_argument("-n", type=int, default=8, help="switch size (n x n)")
    p.add_argument("--load", type=float, default=0.8)
    p.add_argument("--slots", type=int, default=20_000)
    p.add_argument("--capacity", type=int, default=None,
                   help="buffer capacity in cells (architecture-specific unit)")
    p.add_argument("--scheduler", default="islip",
                   choices=["pim", "islip", "2drr", "greedy", "max"],
                   help="VOQ scheduler (voq architecture only)")
    p.add_argument("--burst", type=float, default=None,
                   help="mean burst length for bursty on/off traffic")
    p.add_argument("--seed", type=int, default=1)
    _add_telemetry_flags(p)
    _add_sanitize_flag(p)
    p.set_defaults(func=cmd_simulate)


def cmd_simulate(args) -> int:
    from repro.scenario import Scenario, prepare

    traffic = {"kind": "uniform", "load": args.load}
    if args.burst:
        traffic = {"kind": "bursty", "load": args.load,
                   "params": {"burst": args.burst}}
    params = {"n": args.n, "capacity": args.capacity}
    if args.arch == "voq":
        params["scheduler"] = args.scheduler
    scenario = Scenario(
        name=f"simulate-{args.arch}", arch=args.arch, horizon=args.slots,
        params=params, traffic=traffic, seeds=[args.seed],
    )
    tel = _telemetry_from_args(args)
    prep = prepare(scenario, telemetry=tel, sanitize=args.sanitize)
    stats = prep.switch.run(prep.source, args.slots)
    rows = [[k, v] for k, v in stats.summary().items()]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.arch} {args.n}x{args.n} @ load {args.load}"))
    _print_sanitizer_summary(prep.sanitizer)
    _export_telemetry(tel, args)
    return 0


def _add_pipelined(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("pipelined", help="run the word-level pipelined-memory switch")
    p.add_argument("-n", type=int, default=8)
    p.add_argument("--load", type=float, default=0.6)
    p.add_argument("--cycles", type=int, default=100_000)
    p.add_argument("--addresses", type=int, default=256)
    p.add_argument("--width", type=int, default=16, help="word width in bits")
    p.add_argument("--quanta", type=int, default=1,
                   help="packet size in buffer-width quanta (§3.5)")
    p.add_argument("--credits", action="store_true",
                   help="credit-based (lossless) flow control")
    p.add_argument("--no-cut-through", action="store_true")
    p.add_argument("--fast", action="store_true",
                   help="wave-level fast kernel (bit-identical statistics, "
                        "no per-word invariant checking)")
    p.add_argument("--seed", type=int, default=1)
    _add_telemetry_flags(p)
    _add_sanitize_flag(p)
    p.set_defaults(func=cmd_pipelined)


def _pipelined_scenario(args, fast: bool, warmup: int):
    """The Scenario behind a ``repro pipelined`` / ``repro trace`` call."""
    from repro.scenario import Scenario

    return Scenario(
        name="pipelined-cli",
        arch="pipelined_fast" if fast else "pipelined",
        horizon=args.cycles,
        params={
            "n": args.n, "addresses": args.addresses, "width_bits": args.width,
            "quanta": args.quanta, "credit_flow": args.credits,
            "cut_through": not args.no_cut_through,
        },
        traffic={"kind": "renewal", "load": args.load},
        seeds=[args.seed],
        warmup=warmup,
        drain=not args.credits,
    )


def cmd_pipelined(args) -> int:
    from repro.scenario import prepare

    tel = _telemetry_from_args(args)
    scenario = _pipelined_scenario(args, fast=args.fast,
                                   warmup=args.cycles // 10)
    prep = prepare(scenario, telemetry=tel, sanitize=args.sanitize)
    switch, cfg = prep.switch, prep.switch.config
    switch.run(args.cycles)
    if not args.credits:
        switch.drain()
    rows = [
        ["offered packets", switch.stats.offered],
        ["delivered packets", switch.stats.delivered],
        ["dropped packets", switch.stats.dropped],
        ["link utilization", round(switch.link_utilization, 4)],
        ["mean cut-through latency (cycles)", round(switch.ct_latency.mean, 2)],
        ["cut-through waves", switch.cut_through_waves],
        ["plain read waves", switch.plain_read_waves],
        ["write waves", switch.write_waves],
    ]
    print(format_table(
        ["metric", "value"], rows,
        title=(f"pipelined memory {cfg.n}x{cfg.n}, {cfg.depth} stages, "
               f"{cfg.packet_words}-word packets, load {args.load}"),
    ))
    _print_sanitizer_summary(prep.sanitizer)
    _export_telemetry(tel, args)
    return 0


def _add_bench(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "bench",
        help="time the pipelined switch kernels on a fixed E15-shaped workload",
    )
    p.add_argument("--cycles", type=int, default=30_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--kernel",
                   choices=["checked", "fast", "batch", "both", "all"],
                   default="both",
                   help="which kernel(s) to run (both = checked+fast, "
                        "all = checked+fast+batch)")
    p.add_argument("--batch-cycles", type=int, default=None,
                   help="batch kernel window size (default 4096)")
    p.add_argument("--policy", metavar="SPEC", default=None,
                   help="admission policy for every kernel (e.g. "
                        "dynamic:alpha=1.0); default complete sharing")
    p.add_argument("--jit", action="store_true",
                   help="enable the batch kernel's numba array core "
                        "(REPRO_JIT=1 equivalent; falls back gracefully "
                        "when numba is absent)")
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile and print the top 20 functions "
                        "by cumulative time (forces a single kernel; "
                        "default checked)")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the timings as a JSON artifact in the "
                        "benchmarks/BENCH_fastpath.json result schema")
    p.set_defaults(func=cmd_bench)


def cmd_bench(args) -> int:
    import time

    from repro.scenario import Scenario, prepare

    if args.cycles < 1:
        raise SystemExit(f"repro bench: error: --cycles must be >= 1, got {args.cycles}")

    kernel_sets = {"both": ["checked", "fast"],
                   "all": ["checked", "fast", "batch"]}
    kernels = kernel_sets.get(args.kernel, [args.kernel])

    # E15 scenario 1 shape: 8x8, 128 addresses, drop-tail, load 0.6.  When
    # the batch kernel is in play every kernel consumes the same pre-drawn
    # arrival tape (BatchRenewalSource polls scalar-wise for checked/fast),
    # so delivered/dropped are comparable across all three.
    traffic_kind = "renewal_tape" if "batch" in kernels else "renewal"
    arch_names = {"checked": "pipelined", "fast": "pipelined_fast",
                  "batch": "pipelined_batch"}
    scenario = Scenario(
        name="bench-e15", arch="pipelined", horizon=args.cycles,
        params={"n": 8, "addresses": 128},
        traffic={"kind": traffic_kind, "load": 0.6},
        seeds=[args.seed], warmup=args.cycles // 10,
    )
    cfg = prepare(scenario).switch.config

    def build(kernel: str):
        import dataclasses

        params = dict(scenario.params)
        if args.policy is not None:
            params["policy"] = args.policy
        if kernel == "batch":
            if args.batch_cycles is not None:
                params["batch_cycles"] = args.batch_cycles
            if args.jit:
                params["jit"] = True
        sc = dataclasses.replace(scenario, arch=arch_names[kernel],
                                 params=params)
        return prepare(sc).switch

    if args.profile:
        import cProfile
        import pstats

        kernel = "checked" if args.kernel in kernel_sets else args.kernel
        switch = build(kernel)
        prof = cProfile.Profile()
        prof.enable()
        switch.run(args.cycles)
        prof.disable()
        print(f"{kernel} kernel, {args.cycles} cycles "
              f"({cfg.n}x{cfg.n}, {cfg.depth} stages, load 0.6)")
        pstats.Stats(prof).sort_stats("cumulative").print_stats(20)
        return 0

    rows = []
    timings = {}
    outcomes = {}
    for kernel in kernels:
        # the fast/batch kernels finish quickly enough for scheduling noise
        # to dominate a single run; keep the cleanest of three
        repeats = 1 if kernel == "checked" else 3
        elapsed = float("inf")
        for _ in range(repeats):
            switch = build(kernel)
            t0 = time.perf_counter()
            switch.run(args.cycles)
            elapsed = min(elapsed, time.perf_counter() - t0)
        timings[kernel] = elapsed
        outcomes[kernel] = (switch.stats.delivered, switch.stats.dropped)
        rows.append([
            kernel, round(elapsed, 3), round(args.cycles / elapsed),
            switch.stats.delivered, switch.stats.dropped,
        ])
    print(format_table(
        ["kernel", "seconds", "cycles/s", "delivered", "dropped"], rows,
        title=(f"E15-shaped workload: {cfg.n}x{cfg.n}, {cfg.depth} stages, "
               f"load 0.6, {args.cycles} cycles"),
    ))
    if "checked" in timings:
        for kernel in kernels[1:]:
            print(f"{kernel} speedup over checked: "
                  f"{timings['checked'] / timings[kernel]:.1f}x")
    if args.json:
        import json
        import platform

        delivered, dropped = outcomes[kernels[-1]]
        result = {
            "experiment": f"bench-e15-n{cfg.n}-seed{args.seed}",
            "cycles": args.cycles,
            "checked_seconds": timings.get("checked"),
            "fast_seconds": timings.get("fast"),
            "batch_seconds": timings.get("batch"),
            "checked_cycles_per_sec": (
                args.cycles / timings["checked"] if "checked" in timings else None
            ),
            "fast_cycles_per_sec": (
                args.cycles / timings["fast"] if "fast" in timings else None
            ),
            "batch_cycles_per_sec": (
                args.cycles / timings["batch"] if "batch" in timings else None
            ),
            "speedup": (
                timings["checked"] / timings["fast"]
                if {"checked", "fast"} <= timings.keys() else None
            ),
            "batch_speedup": (
                timings["checked"] / timings["batch"]
                if {"checked", "batch"} <= timings.keys() else None
            ),
            "delivered": delivered,
            "dropped": dropped,
            "identical": (
                len(set(outcomes.values())) == 1
                if len(outcomes) > 1 else None
            ),
        }
        artifact = {
            "smoke": args.cycles < 30_000,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "results": [result],
        }
        with open(args.json, "w") as fh:
            json.dump(artifact, fh, indent=1)
            fh.write("\n")
        print(f"json -> {args.json}")
    return 0


def _add_trace(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "trace",
        help="run a pipelined-switch kernel and export a Chrome/Perfetto "
             "trace of the bank pipeline (open at https://ui.perfetto.dev)",
    )
    p.add_argument("kernel", choices=["checked", "fast"],
                   help="which kernel to trace (the streams are equivalent; "
                        "'checked' additionally cross-checks the closed-form "
                        "trace against the word-level WaveTracer)")
    p.add_argument("--out", default="trace.json", metavar="FILE",
                   help="Chrome-trace JSON output path (default %(default)s)")
    p.add_argument("-n", type=int, default=4)
    p.add_argument("--load", type=float, default=0.6)
    p.add_argument("--cycles", type=int, default=200)
    p.add_argument("--addresses", type=int, default=64)
    p.add_argument("--width", type=int, default=16, help="word width in bits")
    p.add_argument("--quanta", type=int, default=1,
                   help="packet size in buffer-width quanta (§3.5)")
    p.add_argument("--credits", action="store_true",
                   help="credit-based (lossless) flow control")
    p.add_argument("--no-cut-through", action="store_true")
    p.add_argument("--seed", type=int, default=1)
    _add_telemetry_flags(p)
    p.set_defaults(func=cmd_trace)


def cmd_trace(args) -> int:
    from repro.scenario import prepare
    from repro.telemetry import Telemetry
    from repro.telemetry.export import (
        chrome_trace_from_events,
        validate_chrome_trace,
        write_chrome_trace,
    )

    tel = _telemetry_from_args(args) or Telemetry.on(
        sample_interval=args.sample_interval
    )
    scenario = _pipelined_scenario(args, fast=(args.kernel == "fast"), warmup=0)
    prep = prepare(scenario, telemetry=tel)
    switch, cfg = prep.switch, prep.switch.config
    switch.run(args.cycles)
    if not args.credits:
        switch.drain()
    trace = chrome_trace_from_events(
        tel.events, depth=cfg.depth, quanta=cfg.quanta, n=cfg.n,
        horizon=switch.cycle, link_pipeline_stages=cfg.link_pipeline_stages,
    )
    validate_chrome_trace(trace)
    write_chrome_trace(trace, args.out)
    counts = tel.events.counts_by_kind()
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"{args.kernel} kernel, {switch.cycle} cycles: {summary}")
    print(f"trace: {len(trace['traceEvents'])} events -> {args.out} "
          f"(open at https://ui.perfetto.dev)")
    _export_telemetry(tel, args)
    return 0


def _add_wormhole(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("wormhole", help="run the wormhole k-ary n-cube network")
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--dims", type=int, default=2)
    p.add_argument("--lanes", type=int, default=1)
    p.add_argument("--buffer", type=int, default=16, help="flits per input port")
    p.add_argument("--message", type=int, default=20, help="flits per message")
    p.add_argument("--load", type=float, default=1.0)
    p.add_argument("--cycles", type=int, default=10_000)
    p.add_argument("--wrap", action="store_true", help="torus instead of mesh")
    p.add_argument("--dateline", action="store_true",
                   help="dateline virtual channels (torus deadlock avoidance)")
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_wormhole)


def cmd_wormhole(args) -> int:
    from repro.scenario import Scenario, prepare

    scenario = Scenario(
        name="wormhole-cli", arch="wormhole", horizon=args.cycles,
        params={"k": args.k, "dims": args.dims, "lanes": args.lanes,
                "buffer_flits": args.buffer, "message_flits": args.message,
                "wrap": args.wrap, "dateline": args.dateline},
        traffic={"kind": "uniform", "load": args.load},
        seeds=[args.seed],
        warmup=args.cycles // 5,
    )
    net = prepare(scenario).switch
    net.run(args.cycles)
    rows = [[k, round(v, 4) if isinstance(v, float) else v]
            for k, v in net.summary().items()]
    topo_name = f"{args.k}-ary {args.dims}-{'cube (torus)' if args.wrap else 'mesh'}"
    print(format_table(["metric", "value"], rows, title=f"wormhole on {topo_name}"))
    return 0


def _add_vlsi(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("vlsi", help="print silicon reports (paper §4-§5)")
    p.add_argument("--chip", type=int, choices=[1, 2, 3], default=3,
                   help="Telegraphos prototype number")
    p.add_argument("--comparisons", action="store_true",
                   help="also print the §5 comparisons")
    p.set_defaults(func=cmd_vlsi)


def cmd_vlsi(args) -> int:
    from repro.vlsi.telegraphos import (
        telegraphos1_report,
        telegraphos2_report,
        telegraphos3_report,
    )

    report = {1: telegraphos1_report, 2: telegraphos2_report,
              3: telegraphos3_report}[args.chip]()
    pub, mod = report["published"], report["model"]
    rows = [[k, pub[k], round(mod[k], 3) if isinstance(mod[k], float) else mod[k]]
            for k in pub]
    print(format_table(["figure", "paper", "model"], rows,
                       title=f"Telegraphos {args.chip}"))
    if args.comparisons:
        from repro.vlsi.comparisons import pipelined_vs_prizma, pipelined_vs_wide

        wide = pipelined_vs_wide()
        prizma = pipelined_vs_prizma()
        print()
        print(format_table(
            ["comparison", "value"],
            [
                ["pipelined peripheral (mm^2)", round(wide["pipelined_peripheral_mm2"], 1)],
                ["wide-memory peripheral (mm^2)", round(wide["wide_peripheral_mm2"], 1)],
                ["peripheral saving", f"{wide['peripheral_saving']:.0%}"],
                ["PRIZMA / pipelined crossbar cost", f"{prizma['crosspoint_ratio']:.0f}x"],
                ["shift-register / RAM bit area", f"{prizma['shift_register_penalty']:.0f}x"],
            ],
            title="Section 5 comparisons",
        ))
    return 0


def _add_sizing(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("sizing", help="[HlKa88] buffer sizing for a loss target")
    p.add_argument("-n", type=int, default=16)
    p.add_argument("--load", type=float, default=0.8)
    p.add_argument("--target", type=float, default=1e-3)
    p.set_defaults(func=cmd_sizing)


def cmd_sizing(args) -> int:
    from repro.analysis.buffer_sizing import hlka88_comparison

    r = hlka88_comparison(args.n, args.load, args.target)
    rows = [
        ["shared buffering", r["shared_total"], f"{r['shared_per_output']:.1f}/output"],
        ["output queueing", r["output_total"], f"{r['output_per_output']}/output"],
        ["input smoothing", r["smoothing_total"], f"{r['smoothing_per_input']}/input"],
    ]
    print(format_table(
        ["architecture", "total cells", "per port"], rows,
        title=(f"buffers for loss <= {args.target:g}, {args.n}x{args.n}, "
               f"load {args.load}"),
    ))
    return 0


def _add_scenario_flags(p: argparse.ArgumentParser, default_jobs) -> None:
    p.add_argument("files", nargs="+", metavar="FILE",
                   help="scenario file (JSON or TOML): a single scenario, a "
                        "{base, grid} sweep document, or a list of either")
    p.add_argument("--jobs", type=int, default=default_jobs,
                   help="worker processes (results are bit-identical for any "
                        "job count; default %(default)s)")
    p.add_argument("--out", metavar="DIR", default=None,
                   help="write per-scenario result JSON (plus any telemetry "
                        "artifacts) and a merged results.json to DIR")
    p.add_argument("--horizon", type=int, default=None, metavar="SLOTS",
                   help="override every scenario's horizon (warmup reverts "
                        "to the horizon//5 default); for smoke runs")
    p.add_argument("--policy", metavar="SPEC", default=None,
                   help="override every scenario's admission policy "
                        "(e.g. complete, static:cap=8, dynamic:alpha=1.0, "
                        "reservation:reserve=2); scenarios whose arch has "
                        "no policy parameter are rejected")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="CYCLES",
                   help="snapshot each word-level kernel to "
                        "DIR/checkpoints/<name>-seed<seed>.ckpt.json every "
                        "CYCLES cycles (requires --out; see repro.checkpoint)")
    p.add_argument("--resume", action="store_true",
                   help="reuse finished per-job results and mid-run snapshots "
                        "from --out: only the missing (scenario, seed) cells "
                        "run, and the merged results.json is bit-identical "
                        "to an uninterrupted sweep")
    p.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                   help="serve a Prometheus /metrics endpoint on "
                        "127.0.0.1:PORT while the run executes: sweep "
                        "progress, live per-cell registries (--jobs 1), and "
                        "finished-cell metrics aggregated across workers "
                        "(0 = ephemeral port; watch with 'repro top PORT')")
    _add_sanitize_flag(p)


def _add_run(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("run", help="run scenario file(s) through the registry")
    _add_scenario_flags(p, default_jobs=1)
    p.set_defaults(func=cmd_run)


def _add_sweep(sub: argparse._SubParsersAction) -> None:
    import os

    p = sub.add_parser(
        "sweep",
        help="expand and run scenario grid(s) across worker processes",
    )
    _add_scenario_flags(p, default_jobs=min(os.cpu_count() or 1, 8))
    p.set_defaults(func=cmd_run)


def _scenario_result_rows(results) -> list[list]:
    rows = []
    for r in results:
        s = r["stats"]
        loss = s.get("loss_probability")
        rows.append([
            r["scenario"], r["arch"], r["seed"],
            s.get("offered", s.get("offered_fraction", "-")),
            s.get("delivered", s.get("delivered_fraction", "-")),
            s.get("dropped", "-"),
            round(loss, 6) if isinstance(loss, float) else "-",
        ])
    return rows


def cmd_run(args) -> int:
    import dataclasses

    from repro.scenario import ScenarioError, ScenarioRunner, load_scenarios

    scenarios = []
    for file in args.files:
        try:
            scenarios.extend(load_scenarios(file))
        except OSError as exc:
            raise ScenarioError(f"cannot read scenario file {file!r}: {exc}")
    if args.horizon is not None:
        scenarios = [dataclasses.replace(sc, horizon=args.horizon, warmup=None)
                     for sc in scenarios]
    if args.policy is not None:
        scenarios = [dataclasses.replace(
            sc, params={**sc.params, "policy": args.policy})
            for sc in scenarios]
    server = observer = None
    if args.serve_metrics is not None:
        from repro.obs.server import serve_run_metrics

        server, observer = serve_run_metrics(args.serve_metrics,
                                             out_dir=args.out)
        print(f"metrics: {server.url}", file=sys.stderr)
    runner = ScenarioRunner(jobs=args.jobs, out_dir=args.out,
                            sanitize=args.sanitize,
                            checkpoint_every=args.checkpoint_every,
                            resume=args.resume,
                            observer=observer)
    try:
        results = runner.run(scenarios)
    finally:
        if server is not None:
            server.stop()
    print(format_table(
        ["scenario", "arch", "seed", "offered", "delivered", "dropped", "loss"],
        _scenario_result_rows(results),
        title=f"{len(results)} run(s) from {len(scenarios)} scenario(s)",
    ))
    if args.out:
        print(f"results -> {runner.out_dir / 'results.json'}")
    return 0


def _add_top(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "top",
        help="live terminal dashboard over a repro /metrics endpoint "
             "(throughput, queue-depth heatmap, drop taxonomy, sweep progress)",
    )
    p.add_argument("target", nargs="?", default="9109", metavar="PORT|URL",
                   help="port on localhost, or a full /metrics URL "
                        "(default %(default)s)")
    p.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                   help="refresh interval (default %(default)s)")
    p.add_argument("--once", action="store_true",
                   help="print one dashboard and exit (no screen clearing)")
    p.add_argument("--iterations", type=int, default=None, metavar="N",
                   help="exit after N refreshes (default: until Ctrl-C)")
    p.set_defaults(func=cmd_top)


def cmd_top(args) -> int:
    from repro.obs.top import run_top

    target = args.target
    if target.isdigit():
        target = f"http://127.0.0.1:{target}/metrics"
    return run_top(target, interval=args.interval, once=args.once,
                   iterations=args.iterations)


def _add_lint(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "lint",
        help="check the repository source against the repro.drc design rules",
    )
    p.add_argument("paths", nargs="*", default=["src", "tests"], metavar="PATH",
                   help="files or directories to lint (default: src tests)")
    p.add_argument("--format", choices=["text", "json", "sarif"], default="text",
                   help="report format (default %(default)s; sarif is the "
                        "2.1.0 schema code-scanning services ingest)")
    p.add_argument("--output", metavar="FILE", default=None,
                   help="write the report to FILE instead of stdout")
    p.add_argument("--rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="analyze files over N worker processes (findings "
                        "are identical at any value; default %(default)s)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the incremental cache")
    p.add_argument("--cache-dir", metavar="DIR", default=".drc-cache",
                   help="incremental cache location (default %(default)s)")
    p.add_argument("--diff", metavar="REV", default=None,
                   help="baseline mode: lint the tree at git revision REV "
                        "with the current rules and report only findings "
                        "beyond that baseline")
    p.add_argument("--fix", action="store_true",
                   help="apply available autofixes (DRC104 sorted() wrap, "
                        "DRC101 wall-clock imports) before reporting")
    p.add_argument("--stats", action="store_true",
                   help="print engine statistics as one JSON line on stderr")
    p.set_defaults(func=cmd_lint)


def cmd_lint(args) -> int:
    import json as _json
    import sys as _sys
    from pathlib import Path as _Path

    from repro.drc import FORMATTERS, rule_catalog, run_lint
    from repro.drc.baseline import baseline_result, new_findings
    from repro.drc.fixes import apply_fixes

    if args.rules:
        print(format_table(
            ["code", "name", "checks"],
            [[r.code, r.name, r.summary] for r in rule_catalog()],
            title="repro.drc rule catalog (suppress with  # drc: disable=<code>)",
        ))
        return 0
    root = _Path.cwd()
    if args.fix:
        fixed = apply_fixes(args.paths, root=root)
        for rel in sorted(fixed):
            print(f"fixed {rel}: {fixed[rel]} edit{'s' if fixed[rel] != 1 else ''}")
    cache_dir = None if args.no_cache else root / args.cache_dir
    result = run_lint(args.paths, root=root, jobs=max(1, args.jobs),
                      cache_dir=cache_dir)
    exit_code = result.exit_code
    if args.diff is not None:
        base = baseline_result(args.diff, root, [str(p) for p in args.paths])
        fresh = new_findings(result, base)
        n_base = len(result.all_findings()) - len(fresh)
        result.violations = fresh
        result.parse_errors = []
        exit_code = 1 if fresh else 0
        print(f"baseline {args.diff}: {n_base} pre-existing finding"
              f"{'s' if n_base != 1 else ''} accepted", file=_sys.stderr)
    report = FORMATTERS[args.format](result)
    if args.stats:
        print(_json.dumps(result.stats, sort_keys=True), file=_sys.stderr)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report + "\n")
        n = len(result.all_findings())
        print(f"{n} violation{'s' if n != 1 else ''} -> {args.output}")
    else:
        print(report)
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pipelined Memory Shared Buffer reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_simulate(sub)
    _add_pipelined(sub)
    _add_bench(sub)
    _add_trace(sub)
    _add_wormhole(sub)
    _add_vlsi(sub)
    _add_sizing(sub)
    _add_run(sub)
    _add_sweep(sub)
    _add_top(sub)
    _add_lint(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.core import ConfigError
    from repro.drc import SanitizerError
    from repro.scenario import ScenarioError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ScenarioError, ConfigError) as exc:
        # invalid configs/scenarios are user errors: one actionable line on
        # stderr, argparse-style exit code, no traceback
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except SanitizerError as exc:
        # an invariant violation is a *finding*, not a crash: surface the
        # structured message and a distinct exit code
        print(f"repro: sanitizer: {exc}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        # an interrupted sweep already flushed its finished cells and the
        # results.partial.json manifest (see ScenarioRunner); exit with the
        # conventional SIGINT code so wrappers can tell "killed" from
        # "failed" and re-run with --resume
        print("repro: interrupted (finished cells and results.partial.json "
              "are on disk; re-run with --resume)", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
