"""Tests for the architecture registry: coverage of every kernel,
validation errors, and deterministic preparation."""

import math

import pytest

from repro.scenario import (
    REGISTRY,
    Scenario,
    ScenarioError,
    architectures,
    prepare,
    run_scenario,
    slotted_factory,
    validate_scenario,
)

SLOTTED_ARCHS = sorted(a.name for a in REGISTRY.values() if a.kind == "slotted")
WORD_ARCHS = sorted(a.name for a in REGISTRY.values() if a.kind == "word")


def scenario_for(arch: str, **overrides) -> Scenario:
    """A small runnable scenario for any registered architecture."""
    adef = REGISTRY[arch]
    base = {
        "slotted": dict(params={"n": 4}, traffic={"kind": "uniform", "load": 0.7},
                        horizon=400),
        "word": dict(params={"n": 4},
                     traffic={"kind": "renewal", "load": 0.6}, horizon=400),
        "fabric": dict(params={"k": 4, "stages": 2},
                       traffic={"kind": "uniform", "load": 0.6}, horizon=300),
        "network": dict(params={"k": 4, "dims": 2, "message_flits": 8},
                        traffic={"kind": "uniform", "load": 0.3}, horizon=300),
    }[adef.kind]
    if arch == "pipelined_batch":
        # the batch kernel consumes arrival tapes, not per-cycle polls
        base["traffic"] = {"kind": "renewal_tape", "load": 0.6}
    base.update(name=f"t-{arch}", arch=arch, seeds=[1])
    base.update(overrides)
    return Scenario(**base)


class TestCoverage:
    def test_registry_covers_all_four_kinds(self):
        kinds = {a.kind for a in architectures().values()}
        assert kinds == {"slotted", "word", "fabric", "network"}
        assert len(REGISTRY) >= 16

    @pytest.mark.parametrize("arch", sorted(REGISTRY))
    def test_every_architecture_runs(self, arch):
        result = run_scenario(scenario_for(arch))
        assert result["arch"] == arch
        assert result["seed"] == 1
        stats = result["stats"]
        delivered = stats.get("delivered", stats.get("delivered_fraction"))
        assert delivered > 0

    @pytest.mark.parametrize("sched", ["pim", "islip", "2drr", "greedy", "max"])
    def test_every_voq_scheduler(self, sched):
        sc = scenario_for("voq", params={"n": 4, "scheduler": sched})
        assert run_scenario(sc)["stats"]["delivered"] > 0

    def test_results_are_strict_json(self):
        # zero-traffic runs yield NaN delays; artifacts must stay valid JSON
        import json

        sc = scenario_for("shared", traffic={"kind": "uniform", "load": 0.0})
        result = run_scenario(sc)
        assert result["stats"]["mean_delay"] is None
        json.dumps(result, allow_nan=False)


class TestValidation:
    def test_unknown_arch_suggests_name(self):
        sc = scenario_for("shared")
        sc.arch = "sharedd"
        with pytest.raises(ScenarioError, match="did you mean 'shared'"):
            validate_scenario(sc)

    def test_unknown_param_suggests_name(self):
        sc = scenario_for("pipelined", params={"n": 4, "quantaa": 2})
        with pytest.raises(ScenarioError, match="did you mean 'quanta'"):
            validate_scenario(sc)

    def test_traffic_kind_checked_per_family(self):
        sc = scenario_for("pipelined", traffic={"kind": "uniform", "load": 0.5})
        with pytest.raises(ScenarioError, match="valid kinds.*renewal"):
            validate_scenario(sc)

    def test_batched_traffic_slotted_only(self):
        sc = scenario_for(
            "pipelined", traffic={"kind": "renewal", "load": 0.5, "batched": True})
        with pytest.raises(ScenarioError, match="batched"):
            validate_scenario(sc)

    def test_saturating_traffic_demands_load_one(self):
        sc = scenario_for("pipelined",
                          traffic={"kind": "saturating", "load": 0.5})
        with pytest.raises(ScenarioError, match="load 1.0"):
            validate_scenario(sc)

    def test_telemetry_rejected_where_unsupported(self):
        sc = scenario_for("wide", telemetry={"events": True})
        with pytest.raises(ScenarioError, match="telemetry"):
            validate_scenario(sc)

    def test_drain_rejected_where_unsupported(self):
        sc = scenario_for("split", drain=True)
        with pytest.raises(ScenarioError, match="drain"):
            validate_scenario(sc)

    def test_bad_voq_scheduler_lists_options(self):
        sc = scenario_for("voq", params={"n": 4, "scheduler": "islipp"})
        with pytest.raises(ScenarioError, match="did you mean 'islip'"):
            prepare(sc)

    def test_bad_priority_lists_options(self):
        sc = scenario_for("pipelined", params={"n": 4, "priority": "rds"})
        with pytest.raises(ScenarioError, match="reads_first"):
            prepare(sc)

    def test_fabric_element_must_be_slotted(self):
        sc = scenario_for("fabric",
                          params={"k": 4, "stages": 2, "element": "pipelined"})
        with pytest.raises(ScenarioError, match="slotted"):
            prepare(sc)

    def test_config_error_propagates_from_kernel(self):
        from repro.core import ConfigError

        sc = scenario_for("pipelined", params={"n": 0})
        with pytest.raises(ConfigError, match="n >= 1"):
            prepare(sc)


class TestDeterminism:
    def test_same_scenario_same_bits_regardless_of_history(self):
        sc = scenario_for("pipelined")
        first = run_scenario(sc)
        run_scenario(scenario_for("shared"))  # pollute global packet counter
        assert run_scenario(sc) == first

    def test_checked_and_fast_agree(self):
        checked = run_scenario(scenario_for("pipelined", drain=True))
        fast = run_scenario(scenario_for("pipelined_fast", drain=True))
        assert checked["stats"] == fast["stats"]

    def test_priority_string_reaches_arbiter(self):
        from repro.core.arbiter import Priority

        sc = scenario_for("pipelined", params={"n": 4, "priority": "oldest_first"})
        prep = prepare(sc)
        assert prep.switch.config.priority is Priority.OLDEST_FIRST


class TestSlottedFactory:
    def test_builds_named_switch(self):
        sw = slotted_factory("voq", n=4, scheduler="pim")()
        assert type(sw).__name__ == "VoqInputBuffered"

    def test_rejects_word_archs(self):
        with pytest.raises(ScenarioError, match="slot-level"):
            slotted_factory("pipelined")

    def test_rejects_unknown_params(self):
        with pytest.raises(ScenarioError, match="unknown parameter"):
            slotted_factory("fifo", window=3)


class TestTelemetry:
    def test_telemetry_summary_in_result(self):
        sc = scenario_for("pipelined",
                          telemetry={"events": True, "sample_interval": 64})
        result = run_scenario(sc)
        assert result["telemetry"]["events"] > 0
        assert "last_cycle" in result["telemetry"]["occupancy"]

    def test_telemetry_artifacts_written(self, tmp_path):
        sc = scenario_for("pipelined",
                          telemetry={"events": True, "metrics": True})
        result = run_scenario(sc, out_dir=tmp_path)
        arts = result["telemetry"]["artifacts"]
        assert (tmp_path / arts["events"]).exists()
        assert (tmp_path / arts["metrics"]).exists()
