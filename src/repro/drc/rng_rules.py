"""RNG-provenance rules (DRC141-143).

Reproducibility in this repo means *one seed, one stream, one consumer*:
every stochastic component (packet source, traffic model, switch) owns a
``numpy.random.Generator`` constructed from an explicit seed, and
parallel streams come from :func:`repro.sim.rng.spawn`.  Three defect
classes break that silently:

* **DRC141 — shared stream**: the same ``Generator`` object reaches two
  switch/source constructions.  Both components then interleave draws
  from one stream, so results depend on call order and change the moment
  either component draws differently.  (Passing the same *integer seed*
  twice is deliberate — that is how the equivalence benchmarks build
  matched kernels — so only generator *objects* are tracked.)
* **DRC142 — entropy-seeded stream**: a generator constructed from the
  wall clock, OS entropy, or numpy's unseeded default
  (``default_rng()`` with no argument) can never be replayed.
* **DRC143 — stream captured across the worker boundary**: a closure
  that captures a ``Generator`` and is handed to a process pool
  (``submit``/``map``/...) forks the generator state into workers, where
  the streams silently diverge from the sequential run.  Workers must
  construct their own streams from per-task seeds (the
  ``ScenarioRunner`` discipline: module-level workers, seeds in the task
  tuple).

The taint engine is intraprocedural per scope (module body or one
function), with constructor/consumer calls resolved through the project
graph — so aliased imports, ``make_rng`` passthrough (``make_rng(rng)``
returns its argument) and re-exported class names all resolve exactly.
Iteration over ``spawn(rng, n)`` binds a *fresh* stream per element, so
``[Source(g) for g in spawn(rng, n)]`` is clean while two consumers of
one element still flag.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.drc.graph import ProjectGraph
from repro.drc.rules import (
    _WORD_KERNELS,
    LintModule,
    Project,
    Rule,
    Violation,
    register,
)

#: (class name, defining package) roots whose constructions consume streams
_CONSUMER_ROOTS = (
    ("SlottedSwitch", "switches"),
    ("PacketSource", "core"),
    ("TrafficSource", "traffic"),
)

#: worker-dispatch call names that ship a callable across processes
_DISPATCH_METHODS = frozenset({
    "submit", "map", "imap", "imap_unordered", "apply_async",
    "starmap", "starmap_async", "map_async",
})

#: dotted-call prefixes whose result depends on ambient entropy/time
_ENTROPY_PREFIXES = ("time.", "datetime.", "secrets.", "uuid.", "os.")


@dataclass(frozen=True)
class _Origin:
    """One RNG stream construction (or one spawn-list element)."""

    kind: str  # "gen" | "list"
    key: tuple[str, int, int, str]
    line: int


class _ScopeTaint:
    """Taint walk over one scope (module body or one function body)."""

    def __init__(self, analysis: "_RngAnalysis", mod: LintModule) -> None:
        self.analysis = analysis
        self.mod = mod
        self.env: dict[str, _Origin] = {}
        #: origin key -> consumer-construction sites
        self.sites: dict[tuple[str, int, int, str], list[ast.Call]] = {}
        self.origin_lines: dict[tuple[str, int, int, str], int] = {}

    # -- expression classification ----------------------------------------

    def _origin_at(self, node: ast.AST, kind: str, tag: str = "") -> _Origin:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return _Origin(kind, (self.mod.relpath, line, col, tag), line)

    def classify(self, expr: ast.expr,
                 env: dict[str, _Origin]) -> _Origin | None:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Call):
            return self._classify_call(expr, env)
        if isinstance(expr, ast.Subscript):
            base = self.classify(expr.value, env)
            if base is not None and base.kind == "list":
                return _Origin("gen", (*base.key[:3],
                                       ast.dump(expr.slice)), base.line)
            return None
        return None

    def _classify_call(self, call: ast.Call,
                       env: dict[str, _Origin]) -> _Origin | None:
        a = self.analysis
        qname = a.resolve(self.mod, call.func)
        if qname in a.make_rng_fns:
            if call.args:
                passthrough = self.classify(call.args[0], env)
                if passthrough is not None:
                    return passthrough
            return self._origin_at(call, "gen")
        if qname in a.spawn_fns:
            return self._origin_at(call, "list")
        if isinstance(call.func, ast.Attribute) and call.func.attr == "spawn":
            return self._origin_at(call, "list")
        if qname in ("numpy.random.default_rng", "numpy.random.Generator"):
            return self._origin_at(call, "gen")
        return None

    # -- DRC142 ------------------------------------------------------------

    def entropy_findings(self, call: ast.Call) -> Iterator[tuple[ast.AST, str]]:
        a = self.analysis
        qname = a.resolve(self.mod, call.func)
        if qname in ("numpy.random.default_rng", "numpy.random.SeedSequence"):
            if not call.args and not call.keywords:
                yield call, (
                    f"{qname.rsplit('.', 1)[-1]}() without a seed draws OS "
                    f"entropy; every stream must come from an explicit seed "
                    f"(repro.sim.rng.make_rng)"
                )
                return
        if qname == "numpy.random.Generator" and call.args:
            bitgen = call.args[0]
            if (isinstance(bitgen, ast.Call) and not bitgen.args
                    and not bitgen.keywords):
                bg_name = a.resolve(self.mod, bitgen.func)
                if bg_name.startswith("numpy.random."):
                    yield call, (
                        f"Generator({bg_name.rsplit('.', 1)[-1]}()) seeds "
                        f"from OS entropy; pass an explicit seed"
                    )
                    return
        seed_args: list[ast.expr] = []
        if qname in a.make_rng_fns or qname in (
                "numpy.random.default_rng", "numpy.random.SeedSequence",
                "numpy.random.PCG64", "numpy.random.Philox",
                "numpy.random.SFC64", "numpy.random.MT19937"):
            seed_args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in seed_args:
            for sub in ast.walk(arg):
                if not isinstance(sub, ast.Call):
                    continue
                sub_name = a.resolve(self.mod, sub.func)
                if sub_name.startswith(_ENTROPY_PREFIXES):
                    yield call, (
                        f"RNG seed derived from {sub_name}(); wall-clock/"
                        f"entropy seeds make the run unreproducible"
                    )

    # -- statement walk ----------------------------------------------------

    def run(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are processed separately
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value, self.env)
            origin = self.classify(stmt.value, self.env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if origin is not None:
                        self.env[target.id] = origin
                    else:
                        self.env.pop(target.id, None)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._scan_expr(stmt.value, self.env)
            if isinstance(stmt.target, ast.Name):
                origin = self.classify(stmt.value, self.env)
                if origin is not None:
                    self.env[stmt.target.id] = origin
                else:
                    self.env.pop(stmt.target.id, None)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, self.env)
            origin = self.classify(stmt.iter, self.env)
            if origin is not None and origin.kind == "list" \
                    and isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = _Origin(
                    "gen", (*origin.key[:3], "iter"), origin.line)
            for sub in (*stmt.body, *stmt.orelse):
                self._stmt(sub)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_expr(stmt.test, self.env)
            for sub in (*stmt.body, *stmt.orelse):
                self._stmt(sub)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_expr(item.context_expr, self.env)
            for sub in stmt.body:
                self._stmt(sub)
            return
        if isinstance(stmt, ast.Try):
            for sub in (*stmt.body, *stmt.orelse, *stmt.finalbody):
                self._stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, self.env)

    def _scan_expr(self, expr: ast.expr, env: dict[str, _Origin]) -> None:
        """Record consumer constructions and DRC142 findings inside expr."""
        if isinstance(expr, (ast.Lambda,)):
            return
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            sub_env = dict(env)
            for gen in expr.generators:
                self._scan_expr(gen.iter, env)
                origin = self.classify(gen.iter, env)
                if origin is not None and origin.kind == "list" \
                        and isinstance(gen.target, ast.Name):
                    sub_env[gen.target.id] = _Origin(
                        "gen", (*origin.key[:3], "comp"), origin.line)
            bodies: list[ast.expr] = []
            if isinstance(expr, ast.DictComp):
                bodies = [expr.key, expr.value]
            else:
                bodies = [expr.elt]
            for body in bodies:
                self._scan_expr(body, sub_env)
            return
        if isinstance(expr, ast.Call):
            for finding in self.entropy_findings(expr):
                self.analysis.add(self.mod, "DRC142", *finding)
            qname = self.analysis.resolve(self.mod, expr.func)
            if qname in self.analysis.consumers:
                for arg in (*expr.args,
                            *(kw.value for kw in expr.keywords)):
                    origin = self.classify(arg, env)
                    if origin is not None and origin.kind == "gen":
                        self.sites.setdefault(origin.key, []).append(expr)
                        self.origin_lines[origin.key] = origin.line
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan_expr(child, env)

    # -- DRC141 finalization -----------------------------------------------

    def shared_stream_findings(self) -> Iterator[tuple[ast.AST, str]]:
        for key, calls in sorted(self.sites.items()):
            if len(calls) < 2:
                continue
            ordered = sorted(calls, key=lambda c: (c.lineno, c.col_offset))
            first = ordered[0]
            for call in ordered[1:]:
                yield call, (
                    f"RNG stream constructed at line "
                    f"{self.origin_lines[key]} already feeds the instance "
                    f"built at line {first.lineno}; sharing one Generator "
                    f"interleaves draws — spawn independent streams with "
                    f"repro.sim.rng.spawn"
                )


class _RngAnalysis:
    """Shared one-pass analysis backing DRC141/142/143."""

    def __init__(self, project: Project) -> None:
        self.graph: ProjectGraph = project.graph
        self.findings: dict[str, list[Violation]] = {
            "DRC141": [], "DRC142": [], "DRC143": [],
        }
        self.consumers = self._consumer_qnames()
        self.make_rng_fns = {
            fn.qname for fn in self.graph.functions.values()
            if fn.name == "make_rng" and fn.module.in_src
            and fn.module.package == "sim"
        }
        self.spawn_fns = {
            fn.qname for fn in self.graph.functions.values()
            if fn.name == "spawn" and fn.module.in_src
            and fn.module.package == "sim"
        }
        self._run(project)

    def _consumer_qnames(self) -> set[str]:
        out: set[str] = set()
        for root_name, package in _CONSUMER_ROOTS:
            for root in self.graph.classes_named(root_name, package=package):
                for qname in self.graph.subclasses_of(root.qname):
                    if self.graph.classes[qname].module.in_src:
                        out.add(qname)
        for info in self.graph.classes.values():
            if (info.name in _WORD_KERNELS and info.module.in_src
                    and info.module.package == "core"):
                out.add(info.qname)
        return out

    def resolve(self, mod: LintModule, func: ast.expr) -> str:
        qname = self.graph.resolve_node(mod, func)
        return qname if qname is not None else ""

    def add(self, mod: LintModule, code: str, node: ast.AST,
            message: str) -> None:
        self.findings[code].append(Violation(
            code, mod.relpath, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1, message,
        ))

    def _run(self, project: Project) -> None:
        for mod in project.mods:
            if not mod.in_src:
                continue
            module_stmts = [
                s for s in mod.tree.body
                if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef))
            ]
            scope = _ScopeTaint(self, mod)
            scope.run(module_stmts)
            self._finish_scope(mod, scope, None)
            for node in ast.walk(mod.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scope = _ScopeTaint(self, mod)
                    scope.run(list(node.body))
                    self._finish_scope(mod, scope, node)

    def _finish_scope(self, mod: LintModule, scope: _ScopeTaint,
                      fnode: ast.FunctionDef | ast.AsyncFunctionDef | None
                      ) -> None:
        for node, message in scope.shared_stream_findings():
            self.add(mod, "DRC141", node, message)
        if fnode is not None:
            for node, message in _worker_closure_findings(scope, fnode):
                self.add(mod, "DRC143", node, message)


def _free_names(node: ast.AST) -> set[str]:
    """Names a nested function reads but does not bind itself."""
    bound: set[str] = set()
    loaded: set[str] = set()
    args = node.args if isinstance(node, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.Lambda)) else None
    if args is not None:
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            bound.add(a.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            if isinstance(sub.ctx, ast.Store):
                bound.add(sub.id)
            else:
                loaded.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and sub is not node:
            bound.add(sub.name)
    return loaded - bound


def _worker_closure_findings(
    scope: _ScopeTaint, fnode: ast.FunctionDef | ast.AsyncFunctionDef
) -> Iterator[tuple[ast.AST, str]]:
    """DRC143: closures that capture a tainted stream and are handed to a
    worker-dispatch call inside the same function."""
    tainted_defs: dict[str, int] = {}
    tainted_lambdas: dict[ast.Lambda, int] = {}
    for node in ast.walk(fnode):
        if node is fnode:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            captured = [
                name for name in sorted(_free_names(node))
                if scope.env.get(name) is not None
            ]
            if not captured:
                continue
            line = scope.env[captured[0]].line
            if isinstance(node, ast.Lambda):
                tainted_lambdas[node] = line
            else:
                tainted_defs[node.name] = line
    if not tainted_defs and not tainted_lambdas:
        return
    for node in ast.walk(fnode):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DISPATCH_METHODS):
            continue
        for arg in (*node.args, *(kw.value for kw in node.keywords)):
            origin_line: int | None = None
            label = ""
            if isinstance(arg, ast.Name) and arg.id in tainted_defs:
                origin_line = tainted_defs[arg.id]
                label = f"closure {arg.id!r}"
            elif isinstance(arg, ast.Lambda) and arg in tainted_lambdas:
                origin_line = tainted_lambdas[arg]
                label = "lambda"
            if origin_line is not None:
                yield node, (
                    f"{label} captures the RNG stream constructed at line "
                    f"{origin_line} and crosses the worker boundary via "
                    f".{node.func.attr}(); workers must build their own "
                    f"streams from per-task seeds (the ScenarioRunner "
                    f"discipline)"
                )


def _analysis(project: Project) -> _RngAnalysis:
    cached = getattr(project, "_rng_analysis", None)
    if isinstance(cached, _RngAnalysis):
        return cached
    analysis = _RngAnalysis(project)
    project._rng_analysis = analysis  # type: ignore[attr-defined]
    return analysis


@register
class SharedStreamRule(Rule):
    code = "DRC141"
    name = "rng-stream-shared"
    summary = ("one numpy Generator object must not feed two switch/source "
               "instances; spawn independent streams per consumer")
    scope = "project"
    version = 1

    def check_project(self, project: Project) -> Iterator[Violation]:
        yield from _analysis(project).findings["DRC141"]


@register
class EntropySeedRule(Rule):
    code = "DRC142"
    name = "rng-entropy-seed"
    summary = ("RNG streams seeded from the wall clock or OS entropy are "
               "unreproducible; seed explicitly via repro.sim.rng.make_rng")
    scope = "project"
    version = 1

    def check_project(self, project: Project) -> Iterator[Violation]:
        yield from _analysis(project).findings["DRC142"]


@register
class WorkerStreamCaptureRule(Rule):
    code = "DRC143"
    name = "rng-worker-capture"
    summary = ("closures that capture a Generator and cross the worker "
               "boundary fork RNG state; build streams inside the worker "
               "from per-task seeds")
    scope = "project"
    version = 1

    def check_project(self, project: Project) -> Iterator[Violation]:
        yield from _analysis(project).findings["DRC143"]


__all__ = ["SharedStreamRule", "EntropySeedRule", "WorkerStreamCaptureRule"]
