"""Interprocedural dataflow: effect summaries the checkpoint rules ride on."""

from pathlib import Path

from repro.drc import DataflowEngine, LintModule, Project


def _engine(tmp_path: Path, files: dict[str, str]):
    mods = []
    for rel, source in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)
        mods.append(LintModule.parse(p, rel, source))
    project = Project(mods)
    return project.graph, DataflowEngine(project.graph)


def test_direct_writes_and_alias_mutations(tmp_path):
    graph, engine = _engine(tmp_path, {
        "src/repro/core/k.py": (
            "class K:\n"
            "    def run(self):\n"
            "        self.cycle = 1\n"
            "        q = self.queue\n"
            "        q.append(3)\n"
            "        self.table[0] = 4\n"
        ),
    })
    eff = engine.object_effects("repro.core.k.K", ["run"])
    mutable = eff.mutable_attrs()
    assert set(mutable) == {"cycle", "queue", "table"}


def test_bound_method_alias_follows_not_mutates(tmp_path):
    graph, engine = _engine(tmp_path, {
        "src/repro/core/k.py": (
            "class K:\n"
            "    def _advance(self):\n"
            "        self.pos = self.pos + 1\n"
            "    def run(self):\n"
            "        advance = self._advance\n"
            "        advance()\n"
        ),
    })
    eff = engine.object_effects("repro.core.k.K", ["run"])
    mutable = eff.mutable_attrs()
    # the alias resolves to the method: 'pos' is written, but the alias
    # itself ('_advance') is not a mutation
    assert "pos" in mutable
    assert "_advance" not in mutable


def test_cross_module_helper_mutation(tmp_path):
    graph, engine = _engine(tmp_path, {
        "src/repro/core/helpers.py": (
            "def bump(switch):\n"
            "    switch.count = switch.count + 1\n"
        ),
        "src/repro/core/k.py": (
            "from repro.core.helpers import bump\n"
            "class K:\n"
            "    def run(self):\n"
            "        bump(self)\n"
        ),
    })
    eff = engine.object_effects("repro.core.k.K", ["run"])
    assert "count" in eff.mutable_attrs()


def test_attr_arg_mutates_only_if_callee_mutates(tmp_path):
    graph, engine = _engine(tmp_path, {
        "src/repro/core/helpers.py": (
            "def observe(x):\n"
            "    return len(x)\n"
            "def drain(x):\n"
            "    x.pop()\n"
        ),
        "src/repro/core/k.py": (
            "from repro.core.helpers import drain, observe\n"
            "class K:\n"
            "    def run(self):\n"
            "        observe(self.readonly)\n"
            "        drain(self.consumed)\n"
        ),
    })
    eff = engine.object_effects("repro.core.k.K", ["run"])
    mutable = eff.mutable_attrs()
    assert "consumed" in mutable
    assert "readonly" not in mutable
    assert "readonly" in eff.accessed_attrs()


def test_follow_false_stays_intraprocedural(tmp_path):
    graph, engine = _engine(tmp_path, {
        "src/repro/core/m.py": (
            "def inner(obj):\n"
            "    obj.deep = 1\n"
            "def outer(obj):\n"
            "    obj.shallow = 1\n"
            "    inner(obj)\n"
        ),
    })
    fn = graph.functions["repro.core.m.outer"]
    followed = engine.function_summary(fn)["obj"]
    assert {"shallow", "deep"} <= set(followed.mutable_attrs())
    flat = engine.function_summary(fn, follow=False)["obj"]
    assert "shallow" in flat.mutable_attrs()
    assert "deep" not in flat.mutable_attrs()


def test_recursive_cycle_terminates(tmp_path):
    graph, engine = _engine(tmp_path, {
        "src/repro/core/r.py": (
            "def ping(obj, n):\n"
            "    obj.a = n\n"
            "    if n:\n"
            "        pong(obj, n - 1)\n"
            "def pong(obj, n):\n"
            "    obj.b = n\n"
            "    if n:\n"
            "        ping(obj, n - 1)\n"
        ),
    })
    fn = graph.functions["repro.core.r.ping"]
    eff = engine.function_summary(fn)["obj"]
    assert {"a", "b"} <= set(eff.mutable_attrs())
