"""Content-addressed incremental lint cache.

The cache makes warm ``repro lint`` runs cheap without ever changing
their output.  Everything is keyed by content, never by mtime:

* the **rules fingerprint** — sha256 over the engine version and every
  registered rule's ``(code, version)`` pair.  Editing a rule bumps its
  ``version``, which invalidates the whole cache; a stale rule can never
  serve old findings.
* a **per-file entry** — the file's sha256, its post-suppression
  module-scope findings, suppressed count, parse error (if any), and the
  qnames it imports.  A file whose hash matches serves its module-scope
  findings straight from the entry.
* a **project blob** — keyed by the aggregate sha over the sorted
  ``(relpath, sha)`` list.  Project-scope rules (registry coverage, RNG
  provenance, checkpoint completeness, numba compat) see the whole
  program, so any content change re-runs them; when the aggregate
  matches, the entire result is reconstructed without parsing a single
  file (``files_analyzed == 0``).

On a partial hit the dirty set is the changed/added files plus the
transitive *reverse-import closure* computed from the cached import
lists — computable before any parsing, so unchanged files outside the
closure skip module-rule analysis entirely.

The cache lives in ``<root>/.drc-cache/cache.json`` (configurable) and
is an opportunistic artifact: corruption or version skew degrades to a
cold run, never to wrong output.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.drc.graph import module_qname
from repro.drc.rules import Violation, rule_catalog

#: bump when the engine's analysis semantics change in a way individual
#: rule versions do not capture (dataflow, graph resolution, suppression
#: grammar, cache schema).
ENGINE_VERSION = 2

_CACHE_NAME = "cache.json"


def rules_fingerprint() -> str:
    parts = [f"engine={ENGINE_VERSION}"]
    parts.extend(f"{r.code}:{r.version}" for r in rule_catalog())
    return hashlib.sha256("|".join(sorted(parts)).encode()).hexdigest()


def file_sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def aggregate_sha(shas: dict[str, str]) -> str:
    h = hashlib.sha256()
    for rel in sorted(shas):
        h.update(f"{rel}\x00{shas[rel]}\x00".encode())
    return h.hexdigest()


def _dump_violation(v: Violation) -> list[object]:
    return [v.code, v.path, v.line, v.col, v.message]


def _load_violation(row: list[object]) -> Violation:
    code, path, line, col, message = row
    return Violation(str(code), str(path), int(line), int(col), str(message))


@dataclass
class FileEntry:
    sha: str
    findings: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    parse_error: Violation | None = None
    imports: list[str] = field(default_factory=list)


@dataclass
class LintCache:
    fingerprint: str
    files: dict[str, FileEntry] = field(default_factory=dict)
    project_agg: str = ""
    project_findings: list[Violation] = field(default_factory=list)
    project_suppressed: int = 0


def load_cache(cache_dir: Path) -> LintCache | None:
    """The cached state, or None on any miss/corruption/fingerprint skew."""
    try:
        raw = json.loads((cache_dir / _CACHE_NAME).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    try:
        if raw["fingerprint"] != rules_fingerprint():
            return None
        files: dict[str, FileEntry] = {}
        for rel, entry in raw["files"].items():
            files[rel] = FileEntry(
                sha=entry["sha"],
                findings=[_load_violation(r) for r in entry["findings"]],
                suppressed=int(entry["suppressed"]),
                parse_error=(_load_violation(entry["parse_error"])
                             if entry["parse_error"] else None),
                imports=[str(i) for i in entry["imports"]],
            )
        return LintCache(
            fingerprint=raw["fingerprint"],
            files=files,
            project_agg=str(raw["project"]["agg"]),
            project_findings=[_load_violation(r)
                              for r in raw["project"]["findings"]],
            project_suppressed=int(raw["project"]["suppressed"]),
        )
    except (KeyError, TypeError, ValueError):
        return None


def save_cache(cache_dir: Path, cache: LintCache) -> None:
    doc = {
        "fingerprint": cache.fingerprint,
        "files": {
            rel: {
                "sha": e.sha,
                "findings": [_dump_violation(v) for v in e.findings],
                "suppressed": e.suppressed,
                "parse_error": (_dump_violation(e.parse_error)
                                if e.parse_error else None),
                "imports": e.imports,
            }
            for rel, e in sorted(cache.files.items())
        },
        "project": {
            "agg": cache.project_agg,
            "findings": [_dump_violation(v) for v in cache.project_findings],
            "suppressed": cache.project_suppressed,
        },
    }
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = cache_dir / f".{_CACHE_NAME}.tmp"
        tmp.write_text(json.dumps(doc), encoding="utf-8")
        tmp.replace(cache_dir / _CACHE_NAME)
    except OSError:
        pass  # the cache is an optimisation, never a requirement


def dirty_set(cache: LintCache, shas: dict[str, str]) -> set[str]:
    """Relpaths needing module-rule re-analysis: content-changed or new
    files plus their transitive reverse-import closure, computed from
    cached import lists (no parsing required)."""
    changed = {rel for rel, sha in shas.items()
               if cache.files.get(rel) is None or cache.files[rel].sha != sha}
    removed = set(cache.files) - set(shas)
    # qname -> relpath for every module we knew about (cached view: a
    # renamed file changes both sides, and both land in the dirty set).
    owners: dict[str, str] = {}
    for rel in set(shas) | set(cache.files):
        owners[module_qname(rel)] = rel
    # importer relpath -> imported relpaths, by longest-prefix match of
    # each cached import target against known module qnames.
    fwd: dict[str, set[str]] = {}
    for rel, entry in cache.files.items():
        deps: set[str] = set()
        for target in entry.imports:
            parts = target.split(".")
            for i in range(len(parts), 0, -1):
                owner = owners.get(".".join(parts[:i]))
                if owner is not None:
                    deps.add(owner)
                    break
        fwd[rel] = deps
    rev: dict[str, set[str]] = {}
    for rel, deps in fwd.items():
        for dep in deps:
            rev.setdefault(dep, set()).add(rel)
    queue = list(changed | removed)
    dirty = set(queue)
    while queue:
        rel = queue.pop()
        for importer in rev.get(rel, ()):
            if importer not in dirty:
                dirty.add(importer)
                queue.append(importer)
    return {rel for rel in dirty if rel in shas}


__all__ = [
    "ENGINE_VERSION",
    "FileEntry",
    "LintCache",
    "aggregate_sha",
    "dirty_set",
    "file_sha",
    "load_cache",
    "rules_fingerprint",
    "save_cache",
]
