"""Unit tests for the admission-policy layer (repro.policy).

Policies are pure functions of the canonical buffer view, so the math is
testable in isolation; the spec grammar must round-trip exactly (the
checkpoint plane stores spec strings); and every malformed spec must die
with a did-you-mean ConfigError at config time, never mid-run.
"""

import pytest

from repro.core.errors import ConfigError
from repro.policy import (
    POLICIES,
    AdmissionPolicy,
    CompleteSharing,
    DynamicThreshold,
    PortReservation,
    StaticThreshold,
    parse_policy,
)
from repro.policy.admission import (
    K_COMPLETE,
    K_DYNAMIC,
    K_RESERVATION,
    K_STATIC,
)


class TestParseAndSpec:
    @pytest.mark.parametrize("spec,cls", [
        ("complete", CompleteSharing),
        ("static:cap=8", StaticThreshold),
        ("dynamic:alpha=1.0", DynamicThreshold),
        ("reservation:reserve=2", PortReservation),
    ])
    def test_spec_round_trips(self, spec, cls):
        pol = parse_policy(spec)
        assert type(pol) is cls
        assert pol.spec == spec
        assert parse_policy(pol.spec) == pol

    def test_none_and_instance_passthrough(self):
        assert parse_policy(None) == CompleteSharing()
        pol = StaticThreshold(cap=4)
        assert parse_policy(pol) is pol

    def test_mapping_form(self):
        pol = parse_policy({"kind": "dynamic", "alpha": 0.5})
        assert pol == DynamicThreshold(alpha=0.5)
        with pytest.raises(ConfigError, match="string 'kind'"):
            parse_policy({"alpha": 0.5})

    def test_whitespace_tolerated(self):
        assert parse_policy("  static: cap = 8 ") == StaticThreshold(cap=8)

    def test_unknown_kind_did_you_mean(self):
        with pytest.raises(ConfigError, match=r"did you mean 'dynamic'"):
            parse_policy("dynamc:alpha=1.0")

    def test_unknown_parameter_did_you_mean(self):
        with pytest.raises(ConfigError, match=r"did you mean 'alpha'"):
            parse_policy("dynamic:alpa=1.0")

    def test_missing_parameter(self):
        with pytest.raises(ConfigError, match="missing parameter"):
            parse_policy("static")

    def test_malformed_parameter(self):
        with pytest.raises(ConfigError, match="expected 'name=value'"):
            parse_policy("static:cap")

    def test_bad_value_type(self):
        with pytest.raises(ConfigError, match="expects int"):
            parse_policy("static:cap=lots")

    def test_empty_and_non_string(self):
        with pytest.raises(ConfigError, match="must not be empty"):
            parse_policy("   ")
        with pytest.raises(ConfigError, match="must be a string"):
            parse_policy(7)

    def test_value_semantics(self):
        assert DynamicThreshold(1.0) == DynamicThreshold(1.0)
        assert DynamicThreshold(1.0) != DynamicThreshold(0.5)
        assert hash(StaticThreshold(3)) == hash(StaticThreshold(3))
        assert "static:cap=3" in repr(StaticThreshold(3))


class TestAdmitMath:
    def test_complete_admits_everything(self):
        pol = CompleteSharing()
        assert pol.trivial
        assert pol.admit(0, 0, [99, 99], 4)

    def test_static_cap_boundary(self):
        pol = StaticThreshold(cap=2)
        assert pol.admit(0, 10, [1, 5], 1)
        assert not pol.admit(0, 10, [2, 0], 1)  # at cap: refuse
        assert pol.admit(1, 10, [2, 1], 1)  # other output unaffected

    def test_dynamic_exact_rational_boundary(self):
        # alpha=1: admit iff quanta*(held[dst]+1) <= free, exactly
        pol = DynamicThreshold(alpha=1.0)
        assert pol.admit(0, 4, [3, 0], 1)  # 4 <= 4
        assert not pol.admit(0, 3, [3, 0], 1)  # 4 > 3
        # alpha=0.5 == 1/2: admit iff 2*quanta*(held+1) <= free
        half = DynamicThreshold(alpha=0.5)
        assert half.admit(0, 4, [1, 0], 1)  # 4 <= 4
        assert not half.admit(0, 3, [1, 0], 1)

    def test_dynamic_alpha_is_exact_fraction(self):
        pol = DynamicThreshold(alpha=0.75)
        assert (pol.alpha_num, pol.alpha_den) == (3, 4)

    def test_reservation_shortfall(self):
        pol = PortReservation(reserve=2)
        # other output holds 0: shortfall 2, need free >= 3
        assert pol.admit(0, 3, [5, 0], 1)
        assert not pol.admit(0, 2, [5, 0], 1)
        # other output already at its floor: plain free check
        assert pol.admit(0, 1, [5, 2], 1)
        # multi-quanta scales both terms
        assert pol.admit(0, 6, [0, 0], 2)  # 2*(1+2)=6
        assert not pol.admit(0, 5, [0, 0], 2)

    def test_validate_rejects_impossible_reservation(self):
        pol = PortReservation(reserve=4)
        with pytest.raises(ConfigError, match="needs 8 x 4 x 1 = 32"):
            pol.validate(n=8, addresses=16, quanta=1)
        pol.validate(n=4, addresses=16, quanta=1)  # exactly feasible

    def test_constructor_guards(self):
        with pytest.raises(ConfigError, match=">= 1"):
            StaticThreshold(cap=0)
        with pytest.raises(ConfigError, match="> 0"):
            DynamicThreshold(alpha=0.0)
        with pytest.raises(ConfigError, match=">= 1 packet"):
            PortReservation(reserve=0)


class TestKernelCodes:
    def test_every_builtin_compiles(self):
        assert CompleteSharing().kernel_code() == (K_COMPLETE, 0, 0)
        assert StaticThreshold(8).kernel_code() == (K_STATIC, 8, 0)
        assert DynamicThreshold(0.75).kernel_code() == (K_DYNAMIC, 3, 4)
        assert PortReservation(2).kernel_code() == (K_RESERVATION, 2, 0)

    def test_base_class_does_not_compile(self):
        class Opaque(AdmissionPolicy):
            @property
            def spec(self):
                return "opaque"

            def admit(self, dst, free, held, quanta):
                return True

        assert Opaque().kernel_code() is None


class TestRegistryAndState:
    def test_registry_covers_the_builtins(self):
        assert POLICIES == {
            "complete": CompleteSharing,
            "static": StaticThreshold,
            "dynamic": DynamicThreshold,
            "reservation": PortReservation,
        }

    def test_stateless_checkpoint_hooks(self):
        pol = DynamicThreshold(1.0)
        assert pol.state() is None
        pol.restore_state(None)  # no-op
        with pytest.raises(ConfigError, match="stateless"):
            pol.restore_state({"leftover": 1})
