"""Integration tests tying the word-level core to the slot-level models and
to the paper's analytic claims."""

import pytest

from repro.core import (
    PipelinedSwitch,
    PipelinedSwitchConfig,
    RenewalPacketSource,
    SlotAdapterSource,
)
from repro.core.wide import WideMemorySwitch, WideSwitchConfig
from repro.switches import FifoInputQueued, OutputQueued, SharedBuffer
from repro.switches.harness import saturation_throughput, uniform_source_factory
from repro.traffic import BernoulliUniform, TraceSource, record_trace


def test_pipelined_switch_agrees_with_slot_level_shared_buffer():
    """Same slotted arrival trace: the word-level pipelined switch delivers
    exactly the packets the slot-level shared buffer delivers, in the same
    per-output FIFO order (timing differs by the pipeline's cycle grain)."""
    n = 4
    slots = 600
    trace = record_trace(BernoulliUniform(n, n, 0.7, seed=1), slots)

    slot_sw = SharedBuffer(n, n, seed=2)
    cells = {j: [] for j in range(n)}
    for t in range(slots + 50):
        arr = trace[t] if t < slots else [None] * n
        for cell in slot_sw.step(arr):
            if cell is not None:
                cells[cell.dst].append((cell.arrival_slot, cell.src))

    cfg = PipelinedSwitchConfig(n=n, addresses=512)
    b = cfg.packet_words
    src = SlotAdapterSource(TraceSource(trace, n), packet_words=b)
    word_sw = PipelinedSwitch(cfg, src)
    word_sw.run((slots + 50) * b)
    word_sw.drain()

    for j in range(n):
        # Reconstruct (arrival_slot, src) for each word-level delivery.
        got = []
        for uid, head_cycle, _ in word_sw.sinks[j].delivered:
            got.append(uid)
        assert len(got) == len(cells[j])
        # FIFO per output: slot-level arrival slots must be non-decreasing
        # in the word-level departure order too (uid order encodes creation).
        slots_in_order = [s for s, _ in cells[j]]
        assert slots_in_order == sorted(slots_in_order)


def test_architecture_ranking_at_saturation():
    """The paper's §2 ranking on identical traffic machinery: FIFO input
    queueing << everything work-conserving."""
    n = 8
    f = uniform_source_factory(n, n)
    fifo = saturation_throughput(lambda: FifoInputQueued(n, n, seed=1), f, slots=15_000)
    oq = saturation_throughput(lambda: OutputQueued(n, n, seed=1), f, slots=15_000)
    sh = saturation_throughput(lambda: SharedBuffer(n, n, seed=1), f, slots=15_000)
    assert fifo < 0.65
    assert oq > 0.97 and sh > 0.97


def test_pipelined_matches_ideal_shared_utilization():
    """E13 core claim: the pipelined implementation loses (almost) nothing
    to the idealized shared-buffer abstraction."""
    n = 4
    cfg = PipelinedSwitchConfig(n=n, addresses=256, credit_flow=True)
    src = RenewalPacketSource(n_out=n, packet_words=cfg.packet_words, load=0.9, seed=3)
    sw = PipelinedSwitch(cfg, src)
    sw.warmup = 4000
    sw.run(80_000)
    assert sw.link_utilization == pytest.approx(0.9, abs=0.04)
    assert sw.stats.dropped == 0


def test_wide_memory_pays_a_packet_time_over_pipelined():
    """E11: same traffic, wide(no crossbar) latency - pipelined latency ~ B
    cycles at light load."""
    n, load = 4, 0.15
    pcfg = PipelinedSwitchConfig(n=n, addresses=128)
    b = pcfg.packet_words
    psw = PipelinedSwitch(
        pcfg, RenewalPacketSource(n_out=n, packet_words=b, load=load, seed=4)
    )
    psw.warmup = 1000
    psw.run(60_000)

    wcfg = WideSwitchConfig(n=n, addresses=128, cut_through=False)
    wsw = WideMemorySwitch(
        wcfg, RenewalPacketSource(n_out=n, packet_words=b, load=load, seed=4)
    )
    wsw.warmup = 1000
    wsw.run(60_000)

    gap = wsw.ct_latency.mean - psw.ct_latency.mean
    assert gap == pytest.approx(b, abs=1.5)


def test_staggered_latency_formula_integration():
    """E5 in miniature: measured extra cut-through delay within ~35 % of
    (p/4)(n-1)/n at a moderate load."""
    from repro.analysis.staggered import expected_extra_latency

    n, p = 8, 0.3
    cfg = PipelinedSwitchConfig(n=n, addresses=128)
    src = RenewalPacketSource(n_out=n, packet_words=cfg.packet_words, load=p, seed=5)
    sw = PipelinedSwitch(cfg, src)
    sw.warmup = 2000
    sw.run(250_000)
    formula = expected_extra_latency(p, n)
    assert sw.stagger_extra.mean == pytest.approx(formula, rel=0.35)


def test_output_queue_delay_formula_holds_for_pipelined_switch():
    """The pipelined switch's queueing delay (in packet times) follows the
    [KaHM87] output-queueing formula — it *is* an output-queueing device."""
    from repro.analysis.queueing import output_queue_wait

    n, p = 4, 0.6
    cfg = PipelinedSwitchConfig(n=n, addresses=512)
    b = cfg.packet_words
    src = RenewalPacketSource(n_out=n, packet_words=b, load=p, seed=6)
    sw = PipelinedSwitch(cfg, src)
    sw.warmup = 4000
    sw.run(200_000)
    # ct_latency = 2-cycle pipe + queueing wait; waits are in packet times.
    sim_wait_packets = (sw.ct_latency.mean - 2.0) / b
    # The renewal (unslotted) arrival process is burstier than the slotted
    # Bernoulli model, so allow a generous band; the shape is what matters.
    assert sim_wait_packets == pytest.approx(output_queue_wait(n, p), rel=0.5)
    assert sim_wait_packets > 0
