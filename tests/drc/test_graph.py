"""Whole-program graph: qnames, import resolution, class hierarchy."""

from pathlib import Path

from repro.drc import LintModule, Project, module_qname


def _project(tmp_path: Path, files: dict[str, str]) -> Project:
    mods = []
    for rel, source in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)
        mods.append(LintModule.parse(p, rel, source))
    return Project(mods)


def test_module_qname_strips_src_and_folds_init():
    assert module_qname("src/repro/core/switch.py") == "repro.core.switch"
    assert module_qname("src/repro/core/__init__.py") == "repro.core"
    assert module_qname("tools/gen.py") == "tools.gen"


def test_resolves_through_reexport_hub(tmp_path):
    graph = _project(tmp_path, {
        "src/repro/core/impl.py": "class Kernel:\n    pass\n",
        "src/repro/core/__init__.py": "from repro.core.impl import Kernel\n",
        "src/repro/app.py": (
            "from repro.core import Kernel\n"
            "class Derived(Kernel):\n    pass\n"
        ),
    }).graph
    derived = graph.classes["repro.app.Derived"]
    assert derived.bases == ("repro.core.impl.Kernel",)
    assert graph.subclasses_of("repro.core.impl.Kernel") == {
        "repro.core.impl.Kernel", "repro.app.Derived"}
    assert graph.subclasses_of("repro.core.impl.Kernel", strict=True) == {
        "repro.app.Derived"}


def test_relative_imports_resolve(tmp_path):
    graph = _project(tmp_path, {
        "src/repro/core/base.py": "class Base:\n    pass\n",
        "src/repro/core/sub.py": (
            "from .base import Base\n"
            "class Sub(Base):\n    pass\n"
        ),
    }).graph
    assert graph.classes["repro.core.sub.Sub"].bases == (
        "repro.core.base.Base",)


def test_methods_of_walks_project_mro(tmp_path):
    graph = _project(tmp_path, {
        "src/repro/core/base.py": (
            "class Base:\n"
            "    def shared(self):\n        pass\n"
            "    def overridden(self):\n        pass\n"
        ),
        "src/repro/core/sub.py": (
            "from repro.core.base import Base\n"
            "class Sub(Base):\n"
            "    def overridden(self):\n        pass\n"
            "    def own(self):\n        pass\n"
        ),
    }).graph
    methods = graph.methods_of("repro.core.sub.Sub")
    assert set(methods) >= {"shared", "overridden", "own"}
    assert methods["overridden"].qname == "repro.core.sub.Sub.overridden"
    assert methods["shared"].qname == "repro.core.base.Base.shared"


def test_classes_named_filters_by_package(tmp_path):
    graph = _project(tmp_path, {
        "src/repro/switches/base.py": "class Root:\n    pass\n",
        "src/repro/core/other.py": "class Root:\n    pass\n",
    }).graph
    hits = graph.classes_named("Root", package="switches")
    assert [c.qname for c in hits] == ["repro.switches.base.Root"]


def test_module_deps_for_cache_invalidation(tmp_path):
    project = _project(tmp_path, {
        "src/repro/core/a.py": "X = 1\n",
        "src/repro/core/b.py": "from repro.core.a import X\nY = X\n",
    })
    graph = project.graph
    b = next(m for m in project.mods if m.relpath.endswith("b.py"))
    assert graph.module_deps(b) == {"repro.core.a"}
