from repro.sim.rng import make_rng, spawn
from repro.switches.models import AlphaSwitch


def build():
    rng = make_rng(7)
    first = AlphaSwitch(rng)
    second = AlphaSwitch(rng)
    return first, second


def build_clean():
    rng = make_rng(7)
    return [AlphaSwitch(g) for g in spawn(rng, 4)]
