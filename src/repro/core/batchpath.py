"""Array-batched kernel for the pipelined-memory switch.

Third tier of the kernel hierarchy.  The checked
:class:`~repro.core.switch.PipelinedSwitch` moves every word through latch,
bus and bank objects (the oracle); the wave-level
:class:`~repro.core.fastpath.FastPipelinedSwitch` collapses each wave's
word-level consequences to arithmetic but still executes one interpreted
step per cycle; :class:`BatchPipelinedSwitch` removes the per-cycle step
itself.  It advances the switch in *cycle batches*:

* **Vectorized arrival ingestion** — the packet source is consumed as a
  *tape*: a whole window of per-link poll outcomes drawn as numpy blocks
  (:class:`~repro.core.sources.BatchRenewalSource`, or the internal
  saturating adapter).  Because a numpy ``Generator`` yields bit-identical
  values whether drawn scalar or as an array, the tape equals the per-cycle
  poll sequence of the other kernels exactly.
* **Event-driven cycle skipping** — with the window's arrivals known in
  advance, the kernel only executes cycles on which the machine can act
  (an arrival, a due buffer release or credit return, an eligible pending
  store, an eligible queued read, a reserved chain slot, a telemetry
  sampling instant).  Idle spans between them are accounted in closed form.
* **Batched statistics and telemetry** — per-cycle collection is replaced
  by per-window logs of wave admissions, arrivals and drops; every
  downstream consequence (departure cycles, latency accumulators, the full
  ARRIVE/STORE_WAVE/CUT_THROUGH/READ_WAVE/DEPART/drop event stream, bulk
  metric increments) is derived from the logs at batch granularity, in the
  exact order the wave kernel would have produced it — Welford accumulators
  and float histogram sums are order-sensitive, so the replay order is part
  of the contract.
* **Scalar fallback across intra-window dependencies** — arbitration
  decisions feed each other (a read at ``t`` changes what is eligible at
  ``t+1``), so decision resolution stays sequential; everything around it
  is batched.

An optional array-resident core (:mod:`repro.core._batchcore`) holds the
same state in struct-of-arrays form and can be compiled with numba behind
``REPRO_JIT=1`` / ``--jit``; results are identical with or without numba,
and with the flag unset (see :func:`resolve_jit`).

The correctness contract is the three-way equivalence matrix
(``tests/core/test_batchpath.py``): checked == fast == batch, bit for bit,
on statistics, wave counters, latency accumulators and telemetry streams.
Configurations this kernel does not replicate exactly — non-READS_FIRST
arbitration, input-credit flow control (which gates source polling on
switch state and defeats window ingestion), per-cycle sources it cannot
tape, an attached runtime sanitizer — are refused via
:func:`~repro.core.fastpath.reject_unsupported`, never approximated.
"""

from __future__ import annotations

import math
import os
from collections import deque
from heapq import heappop, heappush
from typing import Protocol

import numpy as np

from repro.core.fastpath import (
    ensure_wave_kernel_supported,
    reject_unsupported,
)
from repro.core.instrumentation import SwitchTelemetryMixin
from repro.core.sources import BatchRenewalSource, PacketSource, SaturatingSource
from repro.core.switch import PipelinedSwitchConfig
from repro.drc.sanitizer import Sanitizer
from repro.sim.stats import Counter, Histogram, SwitchStats
from repro.telemetry import (
    ARRIVE,
    CUT_THROUGH,
    DEPART,
    DROP_HEAD_OVERRUN,
    DROP_POLICY,
    DROP_QUANTUM_OVERRUN,
    READ_WAVE,
    STORE_WAVE,
    Telemetry,
)

_KERNEL = "batch path"
DEFAULT_BATCH_CYCLES = 4096

# Wave-log kind codes (int-coded for compactness; decoded at flush time).
_STORE, _CT, _READ = 0, 1, 2
_WAVE_KIND = (STORE_WAVE, CUT_THROUGH, READ_WAVE)
_DROP_CAUSE = (DROP_HEAD_OVERRUN, DROP_QUANTUM_OVERRUN, DROP_POLICY)
_HEAD, _QUANTUM, _POLICY = 0, 1, 2


class ArrivalTape(Protocol):
    """Window-batched view of a packet source (see BatchRenewalSource)."""

    def batch_arrivals(
        self, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]: ...

    def window_arrivals(
        self, start: int, stop: int
    ) -> tuple[list[int], list[int], list[int]]: ...

    def resume_idle(self, cycle: int) -> None: ...


class _SaturatingTape:
    """Tape adapter for :class:`~repro.core.sources.SaturatingSource`.

    Under saturation every poll starts a packet, so every link polls at
    ``first, first + W, first + 2W, ...`` and all links stay synchronized.
    Destinations are drawn from the source's own generator in row-major
    (cycle, link) order — exactly the scalar per-poll draw order — so the
    adapter consumes the *same* ``SaturatingSource`` stream the checked and
    fast kernels would.
    """

    def __init__(self, source: SaturatingSource) -> None:
        self.source = source
        self._next_poll = 0

    def batch_arrivals(
        self, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        src = self.source
        n = src.n_out
        w = src.packet_words
        first = self._next_poll
        if first >= stop:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        rounds = (stop - 1 - first) // w + 1
        poll_cycles = first + w * np.arange(rounds, dtype=np.int64)
        cycles = np.repeat(poll_cycles, n)
        links = np.tile(np.arange(n, dtype=np.int64), rounds)
        if src.dests is not None:
            pattern = np.array(
                [src.dests[i % len(src.dests)] for i in range(n)],
                dtype=np.int64,
            )
            dsts = np.tile(pattern, rounds)
        else:
            dsts = src.rng.integers(0, n, size=rounds * n).astype(np.int64)
        self._next_poll = first + rounds * w
        return cycles, links, dsts

    def window_arrivals(
        self, start: int, stop: int
    ) -> tuple[list[int], list[int], list[int]]:
        if self._next_poll >= stop:  # mid-packet window: no polls at all
            return [], [], []
        c, l, d = self.batch_arrivals(start, stop)
        return c.tolist(), l.tolist(), d.tolist()

    def resume_idle(self, cycle: int) -> None:
        if cycle > self._next_poll:
            self._next_poll = cycle


def resolve_jit(jit: bool | None) -> str:
    """Resolve the JIT mode: explicit argument beats ``REPRO_JIT=1``.

    Returns ``"off"`` (default: tuned pure-Python engine), ``"active"``
    (array core compiled with numba) or ``"unavailable"`` (JIT requested
    but numba is not importable: the same array core runs uncompiled —
    identical results, no hard dependency).
    """
    if jit is None:
        jit = os.environ.get("REPRO_JIT", "") == "1"
    if not jit:
        return "off"
    from repro.core import _batchcore

    return "active" if _batchcore.NUMBA_AVAILABLE else "unavailable"


_LEAN_TABLES: dict[
    int, tuple[tuple[tuple[int, ...], ...], tuple[tuple[int, ...], ...]]
] = {}


def _lean_tables(
    n: int,
) -> tuple[tuple[tuple[int, ...], ...], tuple[tuple[int, ...], ...]]:
    """Bitmask lookup tables for the lean engine, cached per port count.

    ``bits[mask]`` lists the set bits of ``mask`` ascending (C-level tuple
    iteration replaces lowest-set-bit loops); ``first[ptr][mask]`` is the
    first set bit of ``mask`` in cyclic order from ``ptr`` — the round-robin
    pick as one table lookup — or -1 for an empty mask.
    """
    cached = _LEAN_TABLES.get(n)
    if cached is None:
        size = 1 << n
        bits = tuple(
            tuple(k for k in range(n) if mask >> k & 1) for mask in range(size)
        )
        first = tuple(
            tuple(
                next(
                    ((ptr + d) % n for d in range(n) if mask >> (ptr + d) % n & 1),
                    -1,
                )
                for mask in range(size)
            )
            for ptr in range(n)
        )
        cached = (bits, first)
        _LEAN_TABLES[n] = cached
    return cached


class BatchPipelinedSwitch(SwitchTelemetryMixin):
    """Cycle-batched kernel: bit-identical statistics at batch granularity.

    Drop-in for the other two kernels wherever statistics and telemetry are
    consumed: same ``run`` / ``drain`` / ``is_empty`` / ``warmup`` API, same
    ``stats``, wave counters and latency collectors, same telemetry stream.
    Statistics become visible at ``run()``/``drain()`` boundaries rather
    than per cycle — the logs are flushed when a batch completes.

    ``batch_cycles`` sets the ingestion window (arrival tape consumption
    and log-flush granularity); correctness is independent of it, which the
    equivalence tests assert by sweeping it, including ``batch_cycles=1``.
    """

    def __init__(
        self,
        config: PipelinedSwitchConfig,
        source: PacketSource,
        telemetry: Telemetry | None = None,
        sanitizer: Sanitizer | None = None,
        batch_cycles: int = DEFAULT_BATCH_CYCLES,
        jit: bool | None = None,
    ) -> None:
        ensure_wave_kernel_supported(_KERNEL, config, source)
        if config.credit_flow:
            raise reject_unsupported(
                _KERNEL,
                "input-credit flow control gates source polling on switch "
                "state, which defeats window-batched arrival ingestion; use "
                "the wave-level FastPipelinedSwitch",
            )
        if sanitizer is not None and sanitizer.enabled:
            raise reject_unsupported(
                _KERNEL,
                "the runtime sanitizer hooks every cycle and wave, which the "
                "batch kernel skips by design; sanitize on the checked or "
                "wave-level kernel",
            )
        self._tape: ArrivalTape
        if isinstance(source, BatchRenewalSource):
            self._tape = source
        elif isinstance(source, SaturatingSource):
            self._tape = _SaturatingTape(source)
        else:
            raise reject_unsupported(
                _KERNEL,
                f"{type(source).__name__} is polled cycle by cycle and cannot "
                f"be consumed as an arrival tape; use BatchRenewalSource (or "
                f"SaturatingSource), or the wave-level FastPipelinedSwitch",
            )
        if batch_cycles < 1:
            raise reject_unsupported(
                _KERNEL, f"batch_cycles must be >= 1, got {batch_cycles}"
            )
        self.config = config
        self.source = source
        self.batch_cycles = batch_cycles
        n = config.n
        self.cycle = 0
        self.next_wave_ok = [0] * n
        self._n = n
        self._b = config.depth
        self._w = config.packet_words
        self._quanta = config.quanta
        self._extra = 2 * config.link_pipeline_stages
        self._chain_offsets = [q * self._b for q in range(1, config.quanta)]
        self._free = config.addresses
        self._peak_occ = 0
        self._queues: list[deque[tuple[int, int, int, int]]] = [
            deque() for _ in range(n)
        ]
        self._pend_uid = [-1] * n
        self._pend_dst = [0] * n
        self._pend_dbit = [1] * n  # 1 << dst, kept in sync with _pend_dst
        self._pend_arr = [0] * n
        self._credits = [config.credits_per_input or 0] * n
        self._stream_end = [0] * n  # cycle each link's current packet tape ends
        self._chain: set[int] = set()
        self._qchecks: list[tuple[int, int]] = []  # (cycle, link) quantum heap
        self._rr_out = 0
        self._rr_in = 0
        self._busy_until = -1
        self._free_due: deque[int] = deque()
        self._out_credits = [
            config.downstream_credits if config.downstream_credits is not None else -1
        ] * n
        self._credit_returns: deque[tuple[int, int]] = deque()
        self._next_uid = 0
        # -- statistics (identical collectors to the other kernels) -----------
        self.stats = SwitchStats(n_outputs=n)
        self.ct_latency = Counter()
        self.ct_latency_hist = Histogram()
        self.total_latency = Counter()
        self.cut_through_waves = 0
        self.plain_read_waves = 0
        self.write_waves = 0
        self.idle_cycles = 0
        self.deadline_overrides = 0
        self.overrun_drops = 0
        self.policy_drops = 0
        # Admission policy (normalized by the config); trivial = complete
        # sharing, consulted never — the seed hot path is untouched.
        self.policy = config.policy
        self._policy_trivial = self.policy.trivial
        self._policy_code = self.policy.kernel_code()
        self.stagger_extra = Counter()
        self._unobstructed: set[int] = set()
        # -- batched logs, consumed by _flush() --------------------------------
        self._wave_log: list[tuple[int, int, int, int, int, int]] = []
        self._drop_log: list[tuple[int, int, int, int, int, int]] = []
        self._arrive_log: list[tuple[int, int, int, int]] = []
        # (cycle, free, out_credits, queue_depths, drop_log_prefix, peak):
        # the prefix is len(_drop_log) at the sampling instant, so _flush can
        # reconstruct the drop taxonomy visible at each sample; peak is the
        # occupancy high-water mark at that instant.
        self._sample_log: list[
            tuple[int, int, tuple[int, ...], tuple[int, ...], int, int]
        ] = []
        self._pending_departures: deque[tuple[int, int, int, int, int, int]] = deque()
        # Lean-engine due deque: (cycle, output) events at which a CT/read
        # wave's output becomes usable again and its address releases (both
        # land on t0 + W).  Persisted across windows; replaces _free_due,
        # which stays empty on the lean engine.
        # Due events for the lean engine, encoded (cycle << 12 | output bit)
        # so the hot loop never builds or unpacks tuples.
        self._lean_due: deque[int] = deque()
        self._idle_flushed = 0
        self._deadline_flushed = 0
        self.attach_telemetry(telemetry)
        self.attach_sanitizer(sanitizer)
        self.jit_state = resolve_jit(jit)
        # The array core covers the same shape as the lean engine minus the
        # port-count cap: single-quantum cut-through with telemetry off.
        core_shape = self._quanta == 1 and config.cut_through and not self._tel
        if self.jit_state != "off" and core_shape and self._policy_code is None:
            # Refuse, don't approximate: a policy without an integer kernel
            # encoding cannot run on the array core, and silently falling
            # back would make --jit lie about what executed.
            raise reject_unsupported(
                _KERNEL,
                f"admission policy '{self.policy.spec}' does not compile to "
                f"the numba array core (kernel_code() is None); run it "
                f"without --jit",
            )
        self._array_core = self.jit_state != "off" and core_shape
        if self.jit_state != "off" and not core_shape:
            self.jit_state = "unsupported"
        # Unfired due bitmask for the array core (bit j set while output j
        # has a wave in flight whose address release is pending).
        self._core_due_mask = 0
        # The dominant benchmark shape — single-quantum cut-through with
        # telemetry off — runs on a further-specialized engine whose
        # round-robin scans are O(1) bitmask rotations and whose next-wave-ok
        # expiries are due events (see _advance_window_lean).
        self._lean = (
            self._quanta == 1
            and config.cut_through
            and not self._tel
            and not self._array_core
            and n <= 12  # mask-table size: 2**n entries
        )
        self._bits: tuple[tuple[int, ...], ...] = ()
        self._first: tuple[tuple[int, ...], ...] = ()
        if self._lean:
            self._bits, self._first = _lean_tables(n)

    def _telemetry_state(self) -> tuple[int, int, list[int]]:
        return (self.config.addresses - self._free, self._free,
                list(self._credits))

    def _queue_depths(self) -> list[int]:
        return [len(q) for q in self._queues]

    def _peak_occupancy(self) -> int:
        # Only the general engine maintains this: the lean engine and the
        # array core exist for the telemetry-off shape, where the gauge is
        # never sampled.
        return self._peak_occ

    # -- public API -----------------------------------------------------------
    @property
    def warmup(self) -> int:
        return self.stats.warmup

    @warmup.setter
    def warmup(self, cycles: int) -> None:
        self.stats.warmup = cycles

    @property
    def link_utilization(self) -> float:
        """Delivered words per output-link cycle (the paper's link load)."""
        cycles = self.stats.measured_slots
        if cycles <= 0:
            return math.nan
        return self.stats.delivered * self._w / (cycles * self._n)

    def run(self, cycles: int) -> SwitchStats:
        """Advance the switch by ``cycles`` clock cycles, in batches."""
        stop = self.cycle + cycles
        if cycles > 0:
            # After a muted drain every link is idle and re-polls at the
            # current cycle; with no intervening drain this is a no-op.
            self._tape.resume_idle(self.cycle)
        window_arrivals = self._tape.window_arrivals
        advance = self._advance_window
        batch = self.batch_cycles
        while self.cycle < stop:
            t1 = min(stop, self.cycle + batch)
            ac, al, ad = window_arrivals(self.cycle, t1)
            advance(t1, ac, al, ad)
        self._flush()
        return self.stats

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Run with the source muted until all in-flight packets depart."""
        start = self.cycle
        no_arrivals: list[int] = []
        while not self.is_empty():
            if self.cycle - start > max_cycles:
                raise RuntimeError(
                    f"switch failed to drain within {max_cycles} cycles: "
                    f"{sum(len(q) for q in self._queues)} packets still queued"
                )
            if (
                all(u < 0 for u in self._pend_uid)
                and all(not q for q in self._queues)
            ):
                # Only time-based residue remains (in-flight chains, link
                # streams, buffer releases): the first empty cycle is known
                # in closed form; advance exactly there, processing the
                # remaining due-events and idle accounting on the way.
                target = max(self.cycle, self._busy_until + 1, *self._stream_end)
                if self._chain:
                    target = max(target, max(self._chain) + 1)
                if self._free_due:
                    target = max(target, self._free_due[-1] + 1)
                self._advance_window(target, no_arrivals, no_arrivals,
                                     no_arrivals)
            else:
                # Waves still to issue: advance in windows, stopping the
                # moment the last queue/pending store resolves so the final
                # closed-form step above lands on the exact first empty
                # cycle (the wave kernel's drain length, bit for bit).
                self._advance_window(self.cycle + self.batch_cycles,
                                     no_arrivals, no_arrivals, no_arrivals,
                                     draining=True)
        self._flush()
        return self.cycle - start

    def is_empty(self) -> bool:
        return (
            self._free == self.config.addresses
            and not self._free_due
            and not self._chain
            and self.cycle > self._busy_until
            and all(self.cycle >= e for e in self._stream_end)
            and all(u < 0 for u in self._pend_uid)
            and all(not q for q in self._queues)
        )

    # -- the batch engine -----------------------------------------------------
    def _advance_window(
        self,
        stop: int,
        arr_c: list[int],
        arr_l: list[int],
        arr_d: list[int],
        draining: bool = False,
    ) -> None:
        """Advance to exactly ``stop``, given the window's arrival tape.

        Scalar skip-ahead core: one iteration per *actionable* cycle, with
        idle spans between them accounted in closed form.  State lives in
        hoisted locals; statistics/telemetry consequences are appended to
        the window logs and applied by :meth:`_flush`.
        """
        if self._array_core:
            from repro.core import _batchcore

            _batchcore.advance_window(self, stop, arr_c, arr_l, arr_d,
                                      draining)
            return
        if self._lean:
            self._advance_window_lean(stop, arr_c, arr_l, arr_d, draining)
            return
        t = self.cycle
        n = self._n
        b = self._b
        w = self._w
        quanta = self._quanta
        extra = self._extra
        rtt = self.config.downstream_rtt
        cut_through = self.config.cut_through
        free = self._free
        addresses = self.config.addresses
        peak_occ = self._peak_occ
        free_due = self._free_due
        returns = self._credit_returns
        queues = self._queues
        next_ok = self.next_wave_ok
        out_credits = self._out_credits
        chain = self._chain
        chain_offsets = self._chain_offsets
        pend_uid = self._pend_uid
        pend_arr = self._pend_arr
        pend_dst = self._pend_dst
        stream_end = self._stream_end
        qchecks = self._qchecks
        unobstructed = self._unobstructed
        warmup = self.stats.warmup
        next_uid = self._next_uid
        rr_out = self._rr_out
        rr_in = self._rr_in
        busy_until = self._busy_until
        wlog_append = self._wave_log.append
        dlog_append = self._drop_log.append
        alog_append = self._arrive_log.append
        sample_log = self._sample_log
        policy_trivial = self._policy_trivial
        policy_admit = self.policy.admit
        offered = accepted = dropped = 0
        idle = 0
        deadline = 0
        write_waves = ct_waves = read_waves = 0
        overruns = 0
        policy_drops = 0
        ai = 0
        n_arr = len(arr_c)
        tel_iv = self.telemetry.sample_interval if self._tel else 0
        if tel_iv:
            next_sample = ((t + tel_iv - 1) // tel_iv) * tel_iv
        else:
            next_sample = stop

        while t < stop:
            # -- phase 0: due consequences of past departures ------------------
            while returns and returns[0][0] <= t:
                out_credits[returns.popleft()[1]] += 1
            while free_due and free_due[0] <= t:
                free_due.popleft()
                free += quanta
            if t == next_sample:
                sample_log.append((t, free, tuple(out_credits),
                                   tuple(len(q) for q in queues),
                                   len(self._drop_log), peak_occ))
                next_sample += tel_iv
            # -- phase 1: departures are log-derived (see _flush) --------------
            # -- phase 2: arbitration ------------------------------------------
            started = False
            if t in chain:
                chain.discard(t)
                started = True  # chain continuation owns the cycle
            else:
                chain_free = True
                if chain:
                    for off in chain_offsets:
                        if t + off in chain:
                            chain_free = False
                            break
                have_writes = False
                urgent_i = -1
                urgent_arr = 0
                ct_best: dict[int, tuple[int, int]] | None = None
                if chain_free and free >= quanta:
                    for i in range(n):
                        if pend_uid[i] < 0:
                            continue
                        arr = pend_arr[i]
                        if arr >= t:
                            continue
                        have_writes = True
                        if arr + b <= t and (urgent_i < 0 or arr < urgent_arr):
                            urgent_i = i
                            urgent_arr = arr
                        if cut_through:
                            d = pend_dst[i]
                            if ct_best is None:
                                ct_best = {d: (arr, i)}
                            elif d not in ct_best or arr < ct_best[d][0]:
                                ct_best[d] = (arr, i)
                wr_i = -1  # plain-store input chosen this cycle
                ct_i = -1  # cut-through input and output chosen this cycle
                ct_j = -1
                if urgent_i >= 0:
                    j = pend_dst[urgent_i]
                    if (
                        ct_best is not None
                        and ct_best.get(j, (0, -1))[1] == urgent_i
                        and not queues[j]
                        and next_ok[j] <= t
                        and out_credits[j] != 0
                    ):
                        rr_out = (j + 1) % n
                        ct_i = urgent_i
                        ct_j = j
                    else:
                        rr_in = (urgent_i + 1) % n
                        wr_i = urgent_i
                else:
                    if chain_free:
                        for off in range(n):
                            j = rr_out + off
                            if j >= n:
                                j -= n
                            if next_ok[j] > t or out_credits[j] == 0:
                                continue
                            q = queues[j]
                            if q:
                                if not cut_through and q[0][2] + w > t:
                                    continue  # store-and-forward: not stored yet
                                rr_out = (j + 1) % n
                                uid, arr_q, _winit, src = q.popleft()
                                for off2 in chain_offsets:
                                    chain.add(t + off2)
                                next_ok[j] = t + w
                                if out_credits[j] >= 0:
                                    out_credits[j] -= 1
                                    returns.append((t + w + rtt, j))
                                free_due.append(t + w)
                                tail = t + w + extra
                                if tail > busy_until:
                                    busy_until = tail
                                read_waves += 1
                                wlog_append((t, _READ, uid, src, j, arr_q))
                                started = True
                                break
                            if ct_best is not None and j in ct_best:
                                rr_out = (j + 1) % n
                                ct_i = ct_best[j][1]
                                ct_j = j
                                break
                    if not started and ct_i < 0 and have_writes:
                        best = -1
                        best_arr = 0
                        for off in range(n):
                            i2 = rr_in + off
                            if i2 >= n:
                                i2 -= n
                            if pend_uid[i2] >= 0 and pend_arr[i2] < t:
                                if best < 0 or pend_arr[i2] < best_arr:
                                    best = i2
                                    best_arr = pend_arr[i2]
                        rr_in = (best + 1) % n
                        wr_i = best
                # Shared store consequences (plain or cut-through write).
                if ct_i >= 0 or wr_i >= 0:
                    i = ct_i if ct_i >= 0 else wr_i
                    uid = pend_uid[i]
                    arr = pend_arr[i]
                    if arr + b <= t:
                        deadline += 1
                    free -= quanta
                    occ = addresses - free
                    if occ > peak_occ:
                        peak_occ = occ
                    pend_uid[i] = -1
                    if arr >= warmup:
                        accepted += 1
                    for off2 in chain_offsets:
                        chain.add(t + off2)
                    if ct_i >= 0:
                        next_ok[ct_j] = t + w
                        if out_credits[ct_j] >= 0:
                            out_credits[ct_j] -= 1
                            returns.append((t + w + rtt, ct_j))
                        free_due.append(t + w)
                        tail = t + w + extra
                        if tail > busy_until:
                            busy_until = tail
                        ct_waves += 1
                        wlog_append((t, _CT, uid, i, ct_j, arr))
                    else:
                        queues[pend_dst[i]].append((uid, arr, t, i))
                        write_waves += 1
                        wlog_append((t, _STORE, uid, i, pend_dst[i], arr))
                        if t + w > busy_until:
                            busy_until = t + w
                    started = True
                if not started:
                    idle += 1
            # -- phase 4: arrivals and quantum-boundary checks -----------------
            if ai < n_arr and arr_c[ai] == t:
                if quanta == 1 and not (qchecks and qchecks[0][0] == t):
                    while ai < n_arr and arr_c[ai] == t:
                        i = arr_l[ai]
                        d = arr_d[ai]
                        ai += 1
                        if pend_uid[i] >= 0:
                            if pend_arr[i] >= warmup:
                                dropped += 1
                            overruns += 1
                            unobstructed.discard(pend_uid[i])
                            dlog_append((t, pend_uid[i], i, pend_dst[i],
                                         _HEAD, pend_arr[i]))
                            pend_uid[i] = -1
                        uid = next_uid
                        next_uid += 1
                        stream_end[i] = t + w
                        if policy_trivial:
                            admitted = True
                        else:
                            held = [
                                len(qq) + (1 if next_ok[jj] > t else 0)
                                for jj, qq in enumerate(queues)
                            ]
                            admitted = policy_admit(d, free, held, quanta)
                        if admitted:
                            pend_uid[i] = uid
                            pend_dst[i] = d
                            pend_arr[i] = t
                        if t >= warmup:
                            offered += 1
                            if (
                                admitted
                                and next_ok[d] <= t + 1
                                and not queues[d]
                            ):
                                clear = True
                                for k in range(n):
                                    if (k != i and pend_uid[k] >= 0
                                            and pend_dst[k] == d):
                                        clear = False
                                        break
                                if clear:
                                    unobstructed.add(uid)
                        if not admitted:
                            if t >= warmup:
                                dropped += 1
                            policy_drops += 1
                            dlog_append((t, uid, i, d, _POLICY, t))
                        alog_append((t, uid, i, d))
                else:
                    # Multi-quantum path: merge packet starts and §3.5
                    # quantum-boundary checks in input-link order.
                    events: list[tuple[int, int, int]] = []
                    while ai < n_arr and arr_c[ai] == t:
                        events.append((arr_l[ai], 0, arr_d[ai]))
                        ai += 1
                    while qchecks and qchecks[0][0] == t:
                        events.append((heappop(qchecks)[1], 1, -1))
                    events.sort()
                    for i, is_check, d in events:
                        if is_check:
                            if pend_uid[i] >= 0:
                                if pend_arr[i] >= warmup:
                                    dropped += 1
                                overruns += 1
                                unobstructed.discard(pend_uid[i])
                                dlog_append((t, pend_uid[i], i, pend_dst[i],
                                             _QUANTUM, pend_arr[i]))
                                pend_uid[i] = -1
                            continue
                        if pend_uid[i] >= 0:
                            if pend_arr[i] >= warmup:
                                dropped += 1
                            overruns += 1
                            unobstructed.discard(pend_uid[i])
                            dlog_append((t, pend_uid[i], i, pend_dst[i],
                                         _HEAD, pend_arr[i]))
                            pend_uid[i] = -1
                        uid = next_uid
                        next_uid += 1
                        stream_end[i] = t + w
                        if policy_trivial:
                            admitted = True
                        else:
                            held = [
                                len(qq) + (1 if next_ok[jj] > t else 0)
                                for jj, qq in enumerate(queues)
                            ]
                            admitted = policy_admit(d, free, held, quanta)
                        if admitted:
                            for m in range(1, quanta):
                                heappush(qchecks, (t + m * b, i))
                            pend_uid[i] = uid
                            pend_dst[i] = d
                            pend_arr[i] = t
                        if t >= warmup:
                            offered += 1
                            if (admitted and next_ok[d] <= t + 1
                                    and not queues[d]):
                                clear = True
                                for k in range(n):
                                    if (k != i and pend_uid[k] >= 0
                                            and pend_dst[k] == d):
                                        clear = False
                                        break
                                if clear:
                                    unobstructed.add(uid)
                        if not admitted:
                            if t >= warmup:
                                dropped += 1
                            policy_drops += 1
                            dlog_append((t, uid, i, d, _POLICY, t))
                        alog_append((t, uid, i, d))
            elif qchecks and qchecks[0][0] == t:
                while qchecks and qchecks[0][0] == t:
                    i = heappop(qchecks)[1]
                    if pend_uid[i] >= 0:
                        if pend_arr[i] >= warmup:
                            dropped += 1
                        overruns += 1
                        unobstructed.discard(pend_uid[i])
                        dlog_append((t, pend_uid[i], i, pend_dst[i],
                                     _QUANTUM, pend_arr[i]))
                        pend_uid[i] = -1
            if (
                draining
                and all(u < 0 for u in pend_uid)
                and all(not q for q in queues)
            ):
                t += 1
                break
            # -- advance: one cycle, or skip a provably idle span --------------
            if started:
                t += 1
                continue
            target = stop
            if ai < n_arr and arr_c[ai] < target:
                target = arr_c[ai]
            if qchecks and qchecks[0][0] < target:
                target = qchecks[0][0]
            if free_due and free_due[0] < target:
                target = free_due[0]
            if returns and returns[0][0] < target:
                target = returns[0][0]
            if chain:
                c = min(chain)
                if c < target:
                    target = c
            if next_sample < target:
                target = next_sample
            for i in range(n):
                if pend_uid[i] >= 0:
                    c = pend_arr[i] + 1
                    if t < c < target:
                        target = c
                q = queues[i]
                if q:
                    c = next_ok[i]
                    if c > t:
                        if c < target:
                            target = c
                    elif not cut_through:
                        c = q[0][2] + w
                        if t < c < target:
                            target = c
            if target <= t + 1:
                t += 1
            else:
                idle += target - 1 - t
                t = target

        # -- write back the hoisted state --------------------------------------
        self._free = free
        self._peak_occ = peak_occ
        self._rr_out = rr_out
        self._rr_in = rr_in
        self._busy_until = busy_until
        self._next_uid = next_uid
        self.idle_cycles += idle
        self.deadline_overrides += deadline
        self.overrun_drops += overruns
        self.policy_drops += policy_drops
        self.write_waves += write_waves
        self.cut_through_waves += ct_waves
        self.plain_read_waves += read_waves
        stats = self.stats
        stats.offered += offered
        stats.accepted += accepted
        stats.dropped += dropped
        self.cycle = t
        stats.horizon = t

    def _advance_window_lean(
        self,
        stop: int,
        arr_c: list[int],
        arr_l: list[int],
        arr_d: list[int],
        draining: bool = False,
    ) -> None:
        """Specialized engine for the dominant shape: single-quantum
        cut-through with telemetry off.

        Bit-identical to the general engine (the equivalence tests cover
        both: telemetry rows run the general engine, bare-stats rows run
        this one).  The round-robin output/input scans become O(1) bitmask
        rotations, ``next_wave_ok`` expiries become a due-event deque so the
        idle-skip target needs no per-output scan, and departure-bearing
        waves append straight to the pending deque — with telemetry off no
        per-window logs are built at all.
        """
        t = self.cycle
        n = self._n
        b = self._b
        w = self._w
        extra = self._extra
        rtt = self.config.downstream_rtt
        credited = self.config.downstream_credits is not None
        free = self._free
        returns = self._credit_returns
        queues = self._queues
        next_ok = self.next_wave_ok
        out_credits = self._out_credits
        pend_uid = self._pend_uid
        pend_arr = self._pend_arr
        pend_dst = self._pend_dst
        pend_dbit = self._pend_dbit
        stream_end = self._stream_end
        unobstructed = self._unobstructed
        warmup = self.stats.warmup
        next_uid = self._next_uid
        rr_out = self._rr_out
        rr_in = self._rr_in
        busy_until = self._busy_until
        returns_append = returns.append
        pending = self._pending_departures
        pending_append = pending.append
        bits = self._bits
        first_rr = self._first
        stats = self.stats
        if not draining:
            # Departure-bearing waves start in tail order (same W for every
            # wave), so straddlers left over from the previous window all
            # depart before any wave this window starts.  Replaying them
            # here lets the hot loop below apply in-window departures
            # inline, in the wave kernel's exact order; a non-draining
            # window always runs to ``stop``, so ``tail < stop`` means the
            # departure is certain to have happened by window end.
            while pending and pending[0][0] < stop:
                _tail, d_uid, d_arr, _src, d_dst, d_t0 = pending.popleft()
                head = d_t0 + 1 + extra
                if head >= warmup:
                    stats.delivered += 1
                    stats.per_output_delivered[d_dst] += 1
                if d_uid in unobstructed:
                    unobstructed.remove(d_uid)
                    staggerless = True
                else:
                    staggerless = False
                if d_arr >= warmup:
                    d_ct = head - d_arr
                    stats.delay.add(d_ct)
                    stats.delay_hist.add(d_ct)
                    self.total_latency.add(d_ct + w - 1)
                    if staggerless:
                        self.stagger_extra.add(d_ct - 2)
        inline_deps = not draining
        # Hoisted departure-statistics accumulators (the exact Counter.add /
        # Histogram.add recurrences, applied in departure order — see
        # ``_flush`` for the invariants).
        delay = stats.delay
        dl_n, dl_mean, dl_m2 = delay.count, delay._mean, delay._m2
        dl_min, dl_max = delay.minimum, delay.maximum
        total_latency = self.total_latency
        tl_n, tl_mean, tl_m2 = (total_latency.count, total_latency._mean,
                                total_latency._m2)
        tl_min, tl_max = total_latency.minimum, total_latency.maximum
        stagger = self.stagger_extra
        sg_n, sg_mean, sg_m2 = stagger.count, stagger._mean, stagger._m2
        sg_min, sg_max = stagger.minimum, stagger.maximum
        dh_counts = stats.delay_hist.counts
        dh_get = dh_counts.get
        dh_total = stats.delay_hist.total
        delivered = stats.delivered
        per_out = stats.per_output_delivered
        unobstructed_remove = unobstructed.remove
        wm1 = w - 1
        policy_trivial = self._policy_trivial
        policy_admit = self.policy.admit
        offered = accepted = dropped = 0
        idle = deadline = 0
        write_waves = ct_waves = read_waves = 0
        overruns = 0
        policy_drops = 0
        ai = 0
        n_arr = len(arr_c)
        full = (1 << n) - 1
        never = 1 << 62  # sentinel: later than any reachable cycle
        # Bitmask mirrors of the canonical per-output state, rebuilt per
        # window: bit j of ok_mask <=> next_wave_ok[j] <= t, nonempty_mask
        # <=> queue j has a packet, credit_mask <=> out_credits[j] != 0,
        # pend_mask <=> input j holds a pending store.  A CT/read wave at t0
        # both occupies the output and holds an address until exactly
        # t0 + W, so one persistent due deque (self._lean_due) carries both
        # consequences; _free_due stays empty on this engine, and is_empty/
        # drain are covered by busy_until, which bounds every due.  New dues
        # land at t + W with t increasing, so the deque stays sorted.
        ok_mask = nonempty_mask = credit_mask = pend_mask = 0
        for j in range(n):
            if next_ok[j] <= t:
                ok_mask |= 1 << j
            if queues[j]:
                nonempty_mask |= 1 << j
            if out_credits[j] != 0:
                credit_mask |= 1 << j
            if pend_uid[j] >= 0:
                pend_mask |= 1 << j
        due = self._lean_due
        due_append = due.append
        due_popleft = due.popleft
        next_due = due[0] >> 12 if due else never
        next_ret = returns[0][0] if returns else never
        next_arr = arr_c[0] if n_arr else never

        while t < stop:
            # -- phase 0: due consequences of past departures ------------------
            if next_ret <= t:
                while returns and returns[0][0] <= t:
                    j = returns.popleft()[1]
                    out_credits[j] += 1
                    credit_mask |= 1 << j
                next_ret = returns[0][0] if returns else never
            if next_due <= t:
                while due and due[0] >> 12 <= t:
                    free += 1
                    ok_mask |= due_popleft() & 4095
                next_due = due[0] >> 12 if due else never
            # -- phase 2: arbitration ------------------------------------------
            started = False
            wave = False
            min_future = never
            if not pend_mask or not free:
                # No eligible pending store can start a wave (none pending,
                # or no free address), so only a plain read can go — skip
                # the gather/urgent/EDF machinery.  This covers the
                # majority of iterations at moderate load.
                if pend_mask:
                    for i in bits[pend_mask]:
                        a = pend_arr[i]
                        if t <= a < min_future:
                            min_future = a
                comb = ok_mask & credit_mask & nonempty_mask
                if comb:
                    j = first_rr[rr_out][comb]
                    bit = 1 << j
                    rr_out = j + 1 if j + 1 < n else 0
                    q = queues[j]
                    uid, arr_q, _winit, src = q.popleft()
                    if not q:
                        nonempty_mask ^= bit
                    read_waves += 1
                    wave = True
            else:
                # One gather pass over the pending stores computes what the
                # picks below need: the urgent candidate (min arrival,
                # lowest input), the targeted-output mask, and the earliest
                # not-yet-eligible pend for the idle skip.
                best_i = -1
                best_arr = 0
                dst_mask = 0
                for i in bits[pend_mask]:
                    a = pend_arr[i]
                    if a < t:
                        if best_i < 0 or a < best_arr:
                            best_i = i
                            best_arr = a
                        dst_mask |= pend_dbit[i]
                    elif a < min_future:
                        min_future = a
                avail = ok_mask & credit_mask
                if best_i >= 0 and best_arr + b <= t:
                    # Urgent pending store: §3.4 deadline override.  The
                    # global minimum-arrival pend is necessarily its own
                    # output's best cut-through candidate, so the CT
                    # condition reduces to the output being free and
                    # credited with an empty queue.
                    deadline += 1
                    uid = pend_uid[best_i]
                    free -= 1
                    pend_uid[best_i] = -1
                    pend_mask ^= 1 << best_i
                    if best_arr >= warmup:
                        accepted += 1
                    j = pend_dst[best_i]
                    bit = 1 << j
                    if avail & bit and not nonempty_mask & bit:
                        rr_out = j + 1 if j + 1 < n else 0
                        ct_waves += 1
                        arr_q = best_arr
                        src = best_i
                        wave = True
                    else:
                        rr_in = best_i + 1 if best_i + 1 < n else 0
                        queues[j].append((uid, best_arr, t, best_i))
                        nonempty_mask |= bit
                        write_waves += 1
                        if t + w > busy_until:
                            busy_until = t + w
                        started = True
                else:
                    ready = avail & nonempty_mask
                    comb = ready | (avail & dst_mask & (full ^ nonempty_mask))
                    if comb:
                        # First candidate output in cyclic order from
                        # rr_out — one table lookup.
                        j = first_rr[rr_out][comb]
                        bit = 1 << j
                        rr_out = j + 1 if j + 1 < n else 0
                        if ready & bit:
                            q = queues[j]
                            uid, arr_q, _winit, src = q.popleft()
                            if not q:
                                nonempty_mask ^= bit
                            read_waves += 1
                        else:
                            # Cut-through: minimum-arrival (lowest-input
                            # tie) eligible pend targeting j.
                            ci = -1
                            ca = 0
                            for i in bits[pend_mask]:
                                a = pend_arr[i]
                                if (a < t and pend_dst[i] == j
                                        and (ci < 0 or a < ca)):
                                    ci = i
                                    ca = a
                            uid = pend_uid[ci]
                            free -= 1
                            pend_uid[ci] = -1
                            pend_mask ^= 1 << ci
                            if ca >= warmup:
                                accepted += 1
                            arr_q = ca
                            src = ci
                            ct_waves += 1
                        wave = True
                    elif best_i >= 0:
                        # Plain store: earliest deadline first, round-robin
                        # tie-break from rr_in.  Resolved lazily here (only
                        # a third of waves are plain stores, so the gather
                        # pass skips the tie-break bookkeeping).
                        sel = -1
                        sa = 0
                        sd = 0
                        for i in bits[pend_mask]:
                            a = pend_arr[i]
                            if a < t:
                                dd = i - rr_in
                                if dd < 0:
                                    dd += n
                                if sel < 0 or a < sa or (a == sa and dd < sd):
                                    sel = i
                                    sa = a
                                    sd = dd
                        rr_in = sel + 1 if sel + 1 < n else 0
                        uid = pend_uid[sel]
                        free -= 1
                        pend_uid[sel] = -1
                        pend_mask ^= 1 << sel
                        if sa >= warmup:
                            accepted += 1
                        d = pend_dst[sel]
                        queues[d].append((uid, sa, t, sel))
                        nonempty_mask |= 1 << d
                        write_waves += 1
                        if t + w > busy_until:
                            busy_until = t + w
                        started = True
            if wave:
                # Shared consequence of a departure-bearing wave (plain read
                # or cut-through) on output j: occupy the output and hold
                # the address until t + W, consume a downstream credit, and
                # apply the departure.  In-window departures (tail < stop on
                # a window that runs to stop) are applied inline — waves
                # start in tail order, so this is the wave kernel's exact
                # departure order; straddlers go to the pending deque.
                tw = t + w
                next_ok[j] = tw
                ok_mask ^= bit
                due_append(tw << 12 | bit)
                if tw < next_due:
                    next_due = tw
                if credited:
                    oc = out_credits[j] - 1
                    out_credits[j] = oc
                    if not oc:
                        credit_mask ^= bit
                    returns_append((tw + rtt, j))
                    if tw + rtt < next_ret:
                        next_ret = tw + rtt
                tail = tw + extra
                if tail > busy_until:
                    busy_until = tail
                started = True
                if inline_deps and tail < stop:
                    head = t + 1 + extra
                    if head >= warmup:
                        delivered += 1
                        per_out[j] += 1
                    if uid in unobstructed:
                        unobstructed_remove(uid)
                        staggerless = True
                    else:
                        staggerless = False
                    if arr_q >= warmup:
                        ct = head - arr_q
                        dl_n += 1
                        delta = ct - dl_mean
                        dl_mean += delta / dl_n
                        dl_m2 += delta * (ct - dl_mean)
                        if ct < dl_min:
                            dl_min = ct
                        if ct > dl_max:
                            dl_max = ct
                        dh_counts[ct] = dh_get(ct, 0) + 1
                        dh_total += 1
                        tot = ct + wm1
                        tl_n += 1
                        delta = tot - tl_mean
                        tl_mean += delta / tl_n
                        tl_m2 += delta * (tot - tl_mean)
                        if tot < tl_min:
                            tl_min = tot
                        if tot > tl_max:
                            tl_max = tot
                        if staggerless:
                            sg = ct - 2
                            sg_n += 1
                            delta = sg - sg_mean
                            sg_mean += delta / sg_n
                            sg_m2 += delta * (sg - sg_mean)
                            if sg < sg_min:
                                sg_min = sg
                            if sg > sg_max:
                                sg_max = sg
                else:
                    pending_append((tail, uid, arr_q, src, j, t))
            # -- phase 4: arrivals ---------------------------------------------
            if next_arr == t:
                while ai < n_arr and arr_c[ai] == t:
                    i = arr_l[ai]
                    d = arr_d[ai]
                    ai += 1
                    ibit = 1 << i
                    if pend_mask & ibit:
                        if pend_arr[i] >= warmup:
                            dropped += 1
                        overruns += 1
                        unobstructed.discard(pend_uid[i])
                    uid = next_uid
                    next_uid += 1
                    stream_end[i] = t + w
                    if policy_trivial:
                        admitted = True
                    else:
                        held = [
                            len(qq) + (1 if next_ok[jj] > t else 0)
                            for jj, qq in enumerate(queues)
                        ]
                        admitted = policy_admit(d, free, held, 1)
                    if admitted:
                        pend_uid[i] = uid
                        pend_dst[i] = d
                        pend_dbit[i] = 1 << d
                        pend_arr[i] = t
                        pend_mask |= ibit
                    if t >= warmup:
                        offered += 1
                        if (admitted and next_ok[d] <= t + 1
                                and not nonempty_mask >> d & 1):
                            clear = True
                            for k in bits[pend_mask ^ ibit]:
                                if pend_dst[k] == d:
                                    clear = False
                                    break
                            if clear:
                                unobstructed.add(uid)
                    if not admitted:
                        # The head-overrun branch above relies on the new
                        # pend overwriting the old; a refusal creates no
                        # pend, so clear the overrun one explicitly.
                        pend_uid[i] = -1
                        pend_mask &= ~ibit
                        if t >= warmup:
                            dropped += 1
                        policy_drops += 1
                next_arr = arr_c[ai] if ai < n_arr else never
                # A pend created this cycle becomes eligible at t + 1; fold
                # it into the idle-skip wake target.
                if t < min_future:
                    min_future = t
            if draining and not pend_mask and not nonempty_mask:
                t += 1
                break
            # -- advance: one cycle, or skip a provably idle span --------------
            if started:
                t += 1
                continue
            idle += 1
            target = stop
            if next_arr < target:
                target = next_arr
            if next_due < target:
                target = next_due
            if next_ret < target:
                target = next_ret
            if min_future < never:
                c = min_future + 1
                if c < target:
                    target = c
            if target <= t + 1:
                t += 1
            else:
                idle += target - 1 - t
                t = target

        # -- write back the hoisted state --------------------------------------
        self._free = free
        self._rr_out = rr_out
        self._rr_in = rr_in
        self._busy_until = busy_until
        self._next_uid = next_uid
        self.idle_cycles += idle
        self.deadline_overrides += deadline
        self.overrun_drops += overruns
        self.policy_drops += policy_drops
        self.write_waves += write_waves
        self.cut_through_waves += ct_waves
        self.plain_read_waves += read_waves
        stats.offered += offered
        stats.accepted += accepted
        stats.dropped += dropped
        stats.delivered = delivered
        delay.count, delay._mean, delay._m2 = dl_n, dl_mean, dl_m2
        delay.minimum, delay.maximum = dl_min, dl_max
        stats.delay_hist.total = dh_total
        total_latency.count, total_latency._mean, total_latency._m2 = (
            tl_n, tl_mean, tl_m2)
        total_latency.minimum, total_latency.maximum = tl_min, tl_max
        stagger.count, stagger._mean, stagger._m2 = sg_n, sg_mean, sg_m2
        stagger.minimum, stagger.maximum = sg_min, sg_max
        self.cycle = t
        stats.horizon = t

    # -- batched statistics / telemetry application ----------------------------
    def _flush(self) -> None:
        """Apply the window logs: departures, stats, the telemetry stream.

        Everything the wave kernel computes per cycle is derived here in
        closed form from the admission logs, *in the order the wave kernel
        would have produced it* — departure consequences replay in tail
        order (Welford accumulators and histogram float sums are
        order-sensitive), occupancy samples in sampling order.
        """
        tel = self._tel
        stats = self.stats
        warmup = stats.warmup
        w = self._w
        extra = self._extra
        last_done = self.cycle - 1  # tails <= the last executed cycle departed
        pending = self._pending_departures
        if tel:
            emit = self.telemetry.events.emit
            arrival_counts = [0] * self._n
            for t, uid, src, dst in self._arrive_log:
                emit(t, ARRIVE, uid, src=src, dst=dst)
                arrival_counts[src] += 1
            for src, count in enumerate(arrival_counts):
                if count:
                    self._m_arrivals[src].inc(count)
            # Taxonomy state before this flush's drops land; the per-sample
            # prefix walk below replays it to each sampling instant.
            sample_tax = dict(self._drop_tax)
            for t, uid, src, dst, cause, _arr in self._drop_log:
                self._emit_drop(t, src, uid, dst, _DROP_CAUSE[cause])
            for t0, kind, uid, src, dst, _arr in self._wave_log:
                self._emit_wave(t0, _WAVE_KIND[kind], uid, src, dst)
            idle_now = self.idle_cycles
            if idle_now > self._idle_flushed:
                self._m_idle.inc(idle_now - self._idle_flushed)
            deadline_now = self.deadline_overrides
            if deadline_now > self._deadline_flushed:
                self._m_deadline.inc(deadline_now - self._deadline_flushed)
            addresses = self.config.addresses
            series = self.telemetry.series
            drop_log = self._drop_log
            drop_ptr = 0
            for t, free, oc, depths, n_drops, peak in self._sample_log:
                occ = addresses - free
                self.telemetry.sample(t, occ)
                self._m_occupancy.set(occ)
                self._m_free.set(free)
                self._m_peak.set(peak)
                self._m_cycle.set(t)
                for gauge, depth in zip(self._m_qdepth, depths):
                    gauge.set(depth)
                for gauge, credits in zip(self._m_in_credits, self._credits):
                    gauge.set(credits)
                for gauge, credits in zip(self._m_out_credits, oc):
                    gauge.set(credits)
                if series is not None:
                    while drop_ptr < n_drops:
                        cause = _DROP_CAUSE[drop_log[drop_ptr][4]]
                        sample_tax[cause] = sample_tax.get(cause, 0) + 1
                        drop_ptr += 1
                    series.record(t, occ, free, depths, sample_tax)
        self._idle_flushed = self.idle_cycles
        self._deadline_flushed = self.deadline_overrides
        # Departure-bearing waves (READ / WRITE_CT) schedule a completion at
        # tail = t0 + W + wire_delay; admission order == tail order, so one
        # pass over (pending from earlier windows) + (this window's log)
        # replays the wave kernel's departure processing exactly.
        for t0, kind, uid, src, dst, arr in self._wave_log:
            if kind != _STORE:
                pending.append((t0 + w + extra, uid, arr, src, dst, t0))
        # The three latency Counters and two Histograms are inlined into
        # local accumulators for the replay (this loop dominates flush time
        # at high throughput).  The arithmetic is the exact Counter.add /
        # Histogram.add recurrence, applied in the same order, so the
        # written-back floats are bit-identical to per-departure calls.
        ct_latency = self.ct_latency
        ct_hist = self.ct_latency_hist
        total_latency = self.total_latency
        stagger = self.stagger_extra
        unobstructed = self._unobstructed
        remove = unobstructed.remove
        wm1 = w - 1
        popleft = pending.popleft
        delay = stats.delay
        dl_n, dl_mean, dl_m2 = delay.count, delay._mean, delay._m2
        dl_min, dl_max = delay.minimum, delay.maximum
        tl_n, tl_mean, tl_m2 = (total_latency.count, total_latency._mean,
                                total_latency._m2)
        tl_min, tl_max = total_latency.minimum, total_latency.maximum
        sg_n, sg_mean, sg_m2 = stagger.count, stagger._mean, stagger._m2
        sg_min, sg_max = stagger.minimum, stagger.maximum
        dh_counts = stats.delay_hist.counts
        dh_get = dh_counts.get
        dh_total = stats.delay_hist.total
        delivered = stats.delivered
        per_out = stats.per_output_delivered
        while pending and pending[0][0] <= last_done:
            tail, uid, arr, src, dst, t0 = popleft()
            head = t0 + 1 + extra
            if head >= warmup:
                delivered += 1
                per_out[dst] += 1
            if uid in unobstructed:
                remove(uid)
                staggerless = True
            else:
                staggerless = False
            if arr >= warmup:
                ct = head - arr
                dl_n += 1
                delta = ct - dl_mean
                dl_mean += delta / dl_n
                dl_m2 += delta * (ct - dl_mean)
                if ct < dl_min:
                    dl_min = ct
                if ct > dl_max:
                    dl_max = ct
                dh_counts[ct] = dh_get(ct, 0) + 1
                dh_total += 1
                tot = ct + wm1
                tl_n += 1
                delta = tot - tl_mean
                tl_mean += delta / tl_n
                tl_m2 += delta * (tot - tl_mean)
                if tot < tl_min:
                    tl_min = tot
                if tot > tl_max:
                    tl_max = tot
                if staggerless:
                    sg = ct - 2
                    sg_n += 1
                    delta = sg - sg_mean
                    sg_mean += delta / sg_n
                    sg_m2 += delta * (sg - sg_mean)
                    if sg < sg_min:
                        sg_min = sg
                    if sg > sg_max:
                        sg_max = sg
            if tel:
                emit(tail, DEPART, uid, src=src, dst=dst, aux=head)
                self._m_departures[dst].inc()
                if arr >= warmup:
                    self._m_latency.observe(head - arr)
        stats.delivered = delivered
        delay.count, delay._mean, delay._m2 = dl_n, dl_mean, dl_m2
        delay.minimum, delay.maximum = dl_min, dl_max
        stats.delay_hist.total = dh_total
        # stats.delay and ct_latency see the identical value sequence (same
        # guard, same ct = head - arr), so the cut-through accumulators are
        # mirrored from the delay ones rather than maintained separately.
        ct_latency.count, ct_latency._mean, ct_latency._m2 = dl_n, dl_mean, dl_m2
        ct_latency.minimum, ct_latency.maximum = dl_min, dl_max
        ct_hist.counts = dh_counts.copy()
        ct_hist.total = dh_total
        total_latency.count, total_latency._mean, total_latency._m2 = (
            tl_n, tl_mean, tl_m2)
        total_latency.minimum, total_latency.maximum = tl_min, tl_max
        stagger.count, stagger._mean, stagger._m2 = sg_n, sg_mean, sg_m2
        stagger.minimum, stagger.maximum = sg_min, sg_max
        self._wave_log.clear()
        self._drop_log.clear()
        self._arrive_log.clear()
        self._sample_log.clear()
