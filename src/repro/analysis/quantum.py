"""Packet-size quantum and aggregate-throughput arithmetic (paper §3.5).

The pipelined memory requires packets to be a multiple of the buffer's total
width (or half of it, with the split organization).  Section 3.5 argues this
quantum is benign: "consider a quantum as small as 32 to 64 bytes ... buffer
widths of 256 to 1024 bits.  With an (on-chip) memory cycle time of 5 ns ...
the aggregate throughput of such a buffer is 50 to 200 Gbits/s (12 to 25
GBytes/s) — enough for 16 incoming and 16 outgoing links near the Giga-Byte
per second range each."  Bench E6 regenerates that arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class QuantumPoint:
    """One row of the §3.5 feasibility arithmetic."""

    quantum_bytes: int  # packet size quantum (= buffer width in bytes)
    width_bits: int  # total buffer width
    cycle_ns: float  # memory cycle time
    aggregate_gbps: float  # buffer throughput, Gbit/s
    aggregate_gbytes: float  # buffer throughput, GByte/s
    per_link_gbps: float  # per-link throughput for n_links links
    n_links: int


def aggregate_throughput_gbps(width_bits: int, cycle_ns: float) -> float:
    """Shared-buffer aggregate throughput: ``width / cycle`` in Gbit/s."""
    if width_bits < 1:
        raise ValueError(f"width must be >= 1 bit, got {width_bits}")
    if cycle_ns <= 0:
        raise ValueError(f"cycle time must be positive, got {cycle_ns}")
    return width_bits / cycle_ns  # bits per ns == Gbit/s


def quantum_table(
    quanta_bytes: list[int] | None = None,
    cycle_ns: float = 5.0,
    n_links: int = 16,
    half_quantum: bool = False,
) -> list[QuantumPoint]:
    """Regenerate the §3.5 quantum-vs-throughput table.

    ``half_quantum=True`` applies the two-memory split of §3.5: the same
    buffer width supports packets of half the quantum.
    """
    if quanta_bytes is None:
        quanta_bytes = [32, 48, 64]
    rows = []
    for q in quanta_bytes:
        width = q * 8 * (2 if half_quantum else 1)
        agg = aggregate_throughput_gbps(width, cycle_ns)
        # The aggregate covers n incoming + n outgoing links.
        per_link = agg / (2 * n_links)
        rows.append(
            QuantumPoint(
                quantum_bytes=q,
                width_bits=width,
                cycle_ns=cycle_ns,
                aggregate_gbps=agg,
                aggregate_gbytes=agg / 8.0,
                per_link_gbps=per_link,
                n_links=n_links,
            )
        )
    return rows


def required_width_bits(n_links: int, link_gbps: float, cycle_ns: float) -> int:
    """Buffer width needed for ``n_links`` full-duplex links of ``link_gbps``."""
    import math

    total_gbps = 2 * n_links * link_gbps
    return math.ceil(total_gbps * cycle_ns)


def telegraphos3_throughput_check() -> dict[str, float]:
    """Telegraphos III datapoint: 16 stages x 16 bits at 16 ns worst case
    delivers 16 Gb/s aggregate = 1 Gb/s per link for 8+8 links (paper §4.4)."""
    width_bits = 16 * 16
    worst = aggregate_throughput_gbps(width_bits, 16.0)
    typical = aggregate_throughput_gbps(width_bits, 10.0)
    return {
        "aggregate_worst_gbps": worst,
        "aggregate_typical_gbps": typical,
        "per_link_worst_gbps": worst / 16,
        "per_link_typical_gbps": typical / 16,
    }
