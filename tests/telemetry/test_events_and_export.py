"""Tests for the event log, its aggregations, and the exporters."""

import json

import pytest

from repro.telemetry import (
    ARRIVE,
    CUT_THROUGH,
    DEPART,
    DROP,
    DROP_HEAD_OVERRUN,
    NULL_EVENTS,
    STORE_WAVE,
    Event,
    EventLog,
    MetricsRegistry,
)
from repro.telemetry.export import (
    chrome_trace_from_events,
    events_jsonl,
    render_prometheus,
    validate_chrome_trace,
)


def _demo_log() -> EventLog:
    log = EventLog()
    log.emit(0, ARRIVE, 0, src=1, dst=2)
    log.emit(1, CUT_THROUGH, 0, src=1, dst=2)
    log.emit(3, ARRIVE, 1, src=0, dst=2)
    log.emit(5, STORE_WAVE, 1, src=0, dst=2)
    log.emit(9, DEPART, 0, src=1, dst=2, aux=2)
    log.emit(12, DROP, 2, src=3, dst=0, cause=DROP_HEAD_OVERRUN)
    return log


class TestEventLog:
    def test_port_of_record(self):
        assert Event(0, ARRIVE, 0, src=1, dst=2).port == 1
        assert Event(0, DEPART, 0, src=1, dst=2).port == 2
        assert Event(0, DROP, 0, src=3, dst=0).port == 3
        assert Event(0, CUT_THROUGH, 0, src=1, dst=2).port == 2

    def test_counts_by_kind(self):
        assert _demo_log().counts_by_kind() == {
            ARRIVE: 2, CUT_THROUGH: 1, STORE_WAVE: 1, DEPART: 1, DROP: 1,
        }

    def test_per_port_counts(self):
        counts = _demo_log().per_port_counts()
        assert counts[(ARRIVE, 1)] == 1
        assert counts[(ARRIVE, 0)] == 1
        assert counts[(DEPART, 2)] == 1
        assert counts[(DROP, 3)] == 1

    def test_drop_taxonomy(self):
        assert _demo_log().drop_taxonomy() == {DROP_HEAD_OVERRUN: 1}

    def test_lifecycle_orders_one_packet(self):
        life = _demo_log().lifecycle(0)
        assert [e.kind for e in life] == [ARRIVE, CUT_THROUGH, DEPART]

    def test_sorted_events_canonical_order(self):
        log = EventLog()
        log.emit(5, DEPART, 2, dst=0)
        log.emit(5, ARRIVE, 1, src=0, dst=0)
        log.emit(2, ARRIVE, 0, src=0, dst=0)
        cycles = [(e.cycle, e.kind) for e in log.sorted_events()]
        assert cycles == [(2, ARRIVE), (5, ARRIVE), (5, DEPART)]

    def test_as_dict_omits_defaults(self):
        d = Event(4, DROP, 7, src=2, cause=DROP_HEAD_OVERRUN).as_dict()
        assert d == {"cycle": 4, "kind": DROP, "uid": 7, "src": 2,
                     "cause": DROP_HEAD_OVERRUN}

    def test_null_log_is_inert(self):
        NULL_EVENTS.emit(0, ARRIVE, 0)
        assert len(NULL_EVENTS) == 0
        assert NULL_EVENTS.sorted_events() == []
        assert NULL_EVENTS.counts_by_kind() == {}


class TestJsonl:
    def test_one_valid_object_per_line(self):
        text = events_jsonl(_demo_log())
        lines = text.strip().split("\n")
        assert len(lines) == 6
        first = json.loads(lines[0])
        assert first["kind"] == ARRIVE and first["cycle"] == 0
        # depart events carry the head cycle under the "head" key
        depart = next(json.loads(l) for l in lines if '"depart"' in l)
        assert depart["head"] == 2


class TestPrometheus:
    def test_render_counters_gauges_histograms(self):
        m = MetricsRegistry()
        m.counter("repro_waves_total", op="write").inc(3)
        m.gauge("repro_buffer_occupancy").set(17)
        m.histogram("repro_ct_latency_cycles").observe(3)
        text = render_prometheus(m)
        assert "# TYPE repro_waves_total counter" in text
        assert 'repro_waves_total{op="write"} 3' in text
        assert "# TYPE repro_buffer_occupancy gauge" in text
        assert "repro_buffer_occupancy 17" in text
        assert "# TYPE repro_ct_latency_cycles histogram" in text
        assert 'repro_ct_latency_cycles_bucket{le="+Inf"} 1' in text
        assert "repro_ct_latency_cycles_count 1" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestChromeTrace:
    def test_minimal_trace_validates(self):
        trace = chrome_trace_from_events(_demo_log(), depth=4, n=4)
        validate_chrome_trace(trace)
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_wave_slices_form_the_diagonal(self):
        log = EventLog()
        log.emit(1, CUT_THROUGH, 0, src=0, dst=1)
        trace = chrome_trace_from_events(log, depth=4)
        slices = [e for e in trace["traceEvents"]
                  if e["ph"] == "X" and e.get("cat") == "wave"]
        # bank k is occupied exactly at cycle 1 + k: the figure-5 staircase
        assert {(e["tid"], e["ts"]) for e in slices} == {
            (0, 1), (1, 2), (2, 3), (3, 4),
        }
        assert all(e["dur"] == 1 for e in slices)

    def test_multi_quantum_wave_revisits_banks(self):
        log = EventLog()
        log.emit(0, STORE_WAVE, 0, src=0, dst=1)
        trace = chrome_trace_from_events(log, depth=2, quanta=2)
        slices = [e for e in trace["traceEvents"]
                  if e["ph"] == "X" and e.get("cat") == "wave"]
        assert {(e["tid"], e["ts"]) for e in slices} == {
            (0, 0), (1, 1), (0, 2), (1, 3),
        }

    def test_horizon_clips_unsimulated_cycles(self):
        log = EventLog()
        log.emit(1, CUT_THROUGH, 0, src=0, dst=1)
        trace = chrome_trace_from_events(log, depth=4, horizon=3)
        slices = [e for e in trace["traceEvents"]
                  if e["ph"] == "X" and e.get("cat") == "wave"]
        assert {e["ts"] for e in slices} == {1, 2}

    def test_validation_rejects_double_booked_bank(self):
        log = EventLog()
        log.emit(1, CUT_THROUGH, 0, src=0, dst=1)
        log.emit(1, STORE_WAVE, 1, src=1, dst=0)  # same initiation cycle
        trace = chrome_trace_from_events(log, depth=4)
        with pytest.raises(ValueError, match="cycle 1"):
            validate_chrome_trace(trace)

    def test_validation_rejects_structural_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"no": "trace"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError, match="bad dur"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "pid": 1, "tid": 0, "name": "x", "ts": 0, "dur": 0},
            ]})

    def test_link_slice_spans_head_to_tail(self):
        log = EventLog()
        log.emit(9, DEPART, 0, src=1, dst=2, aux=2)
        trace = chrome_trace_from_events(log, depth=4)
        link = next(e for e in trace["traceEvents"]
                    if e["ph"] == "X" and e.get("cat") == "link")
        assert link["ts"] == 2 and link["dur"] == 8  # cycles 2..9 inclusive
