"""Numba-compat rules.

The whole point of DRC161/162 is that they run *without* numba
installed — the static half of this file asserts the findings on
synthetic kernels.  The final test is the ground-truth leg: when numba
IS available (the CI with-numba runner), the corpus kernel that DRC
flags must genuinely be refused by nopython compilation, and the same
kernel with every flagged line removed must compile.
"""

import importlib
from pathlib import Path

import numpy as np
import pytest

from repro.drc import run_lint

CORPUS = Path(__file__).resolve().parent / "corpus" / "numba_bad"


def _lint(tmp_path: Path, source: str):
    p = tmp_path / "src/repro/core/kern.py"
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(source)
    return run_lint(["src"], root=tmp_path)


def _hits(result, code):
    return [v for v in result.all_findings() if v.code == code]


def test_clean_kernel_has_no_findings(tmp_path):
    result = _lint(tmp_path, (
        "import numpy as np\n"
        "def njit(func):\n"
        "    return func\n"
        "@njit\n"
        "def kernel(a, n):\n"
        "    out = np.zeros(n, dtype=np.int64)\n"
        "    for i in range(n):\n"
        "        out[i] = int(a[i]) + max(i, 2)\n"
        "    return out\n"
    ))
    assert _hits(result, "DRC161") == [] and _hits(result, "DRC162") == []


def test_drc161_flags_denied_constructs(tmp_path):
    result = _lint(tmp_path, (
        "def njit(func):\n"
        "    return func\n"
        "@njit\n"
        "def kernel(n):\n"
        "    table = {}\n"
        "    try:\n"
        "        n = n + 1\n"
        "    except ValueError:\n"
        "        pass\n"
        "    return n\n"
    ))
    lines = sorted(v.line for v in _hits(result, "DRC161"))
    assert lines == [5, 6]


def test_drc161_docstring_allowed_other_strings_not(tmp_path):
    result = _lint(tmp_path, (
        "def njit(func):\n"
        "    return func\n"
        "@njit\n"
        "def kernel(n):\n"
        "    \"\"\"docstring is fine\"\"\"\n"
        "    tag = 'oops'\n"
        "    return n\n"
    ))
    lines = [v.line for v in _hits(result, "DRC161")]
    assert lines == [6]


def test_drc162_flags_call_to_nonjit_project_function(tmp_path):
    result = _lint(tmp_path, (
        "def njit(func):\n"
        "    return func\n"
        "def helper(x):\n"
        "    return x + 1\n"
        "@njit\n"
        "def kernel(n):\n"
        "    return helper(n)\n"
    ))
    hits = _hits(result, "DRC162")
    assert [v.line for v in hits] == [7]
    assert "helper" in hits[0].message


def test_jit_callees_are_checked_transitively(tmp_path):
    result = _lint(tmp_path, (
        "def njit(func):\n"
        "    return func\n"
        "@njit\n"
        "def inner(n):\n"
        "    bag = set()\n"
        "    return n\n"
        "@njit\n"
        "def kernel(n):\n"
        "    return inner(n)\n"
    ))
    # calling a jit callee is fine (no DRC162) but the callee's body is
    # swept too
    assert _hits(result, "DRC162") == []
    assert [v.line for v in _hits(result, "DRC161")] == [5]


def test_unsupported_numpy_function_flagged(tmp_path):
    result = _lint(tmp_path, (
        "import numpy as np\n"
        "def njit(func):\n"
        "    return func\n"
        "@njit\n"
        "def kernel(a):\n"
        "    return np.unique(a)\n"
    ))
    hits = _hits(result, "DRC161")
    assert [v.line for v in hits] == [6]
    assert "np.unique" in hits[0].message or "unique" in hits[0].message


def test_corpus_kernel_static_findings():
    import json
    result = run_lint(["src"], root=CORPUS)
    got = sorted((v.code, v.line) for v in result.all_findings()
                 if v.code in ("DRC161", "DRC162"))
    expected = sorted(
        (e["code"], e["line"])
        for e in json.loads((CORPUS / "expected.json").read_text()))
    assert got == expected


# -- ground truth: only runs where numba is actually installed --------------

_HAS_NUMBA = importlib.util.find_spec("numba") is not None
ground_truth = pytest.mark.skipif(
    not _HAS_NUMBA, reason="numba not installed; CI with-numba leg only")


@ground_truth
def test_flagged_corpus_kernel_is_refused_by_nopython():
    import numba
    source = (CORPUS / "src/repro/core/kern.py").read_text()
    ns: dict = {}
    exec(compile(source, "kern.py", "exec"), ns)
    a = np.arange(8, dtype=np.int64)
    with pytest.raises(numba.core.errors.TypingError):
        numba.njit(ns["kernel"].py_func
                   if hasattr(ns["kernel"], "py_func") else ns["kernel"],
                   nopython=True)(a, 8)


@ground_truth
def test_cleaned_corpus_kernel_compiles_under_nopython():
    # strip exactly the lines DRC flagged (and references to them);
    # what remains must be accepted by nopython compilation
    cleaned = (
        "import numpy as np\n"
        "from numba import njit\n"
        "@njit\n"
        "def helper(x):\n"
        "    return x + 1\n"
        "@njit\n"
        "def kernel(a, n):\n"
        "    total = 0\n"
        "    for i in range(n):\n"
        "        total = total + helper(int(a[i]))\n"
        "    return total\n"
    )
    ns: dict = {}
    exec(compile(cleaned, "kern_clean.py", "exec"), ns)
    a = np.arange(8, dtype=np.int64)
    assert ns["kernel"](a, 8) == int((a + 1).sum())
