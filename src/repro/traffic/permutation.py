"""Permutation and deterministic traffic patterns.

Permutation traffic (each input sends to a distinct output) is the
contention-free best case: any work-conserving switch should sustain 100 %
throughput on it.  It is used by functional tests and the E13 sweep as a
sanity anchor.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.base import RandomTrafficSource, TrafficSource


class FixedPermutation(TrafficSource):
    """Every slot, input ``i`` receives a cell for output ``perm[i]`` with
    probability ``load`` (deterministically every slot when ``load == 1``)."""

    def __init__(self, perm: list[int], load: float = 1.0, n_out: int | None = None) -> None:
        n_in = len(perm)
        n_out = n_out if n_out is not None else n_in
        super().__init__(n_in, n_out)
        if sorted(perm) != sorted(set(perm)):
            raise ValueError(f"permutation has duplicate outputs: {perm}")
        if any(not 0 <= p < n_out for p in perm):
            raise ValueError(f"permutation entries out of range: {perm}")
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        self.perm = list(perm)
        self.load = load
        self._counter = 0

    def arrivals(self, slot: int) -> list[int | None]:
        if self.load >= 1.0:
            return [p for p in self.perm]
        # Deterministic thinning: emit on a regular cadence so tests are exact.
        self._counter += self.load
        if self._counter >= 1.0:
            self._counter -= 1.0
            return [p for p in self.perm]
        return [None] * self.n_in

    @property
    def offered_load(self) -> float:
        return self.load


class RotatingPermutation(TrafficSource):
    """Input ``i`` sends to output ``(i + slot) mod n`` — a conflict-free,
    time-varying pattern exercising every input/output pair."""

    def __init__(self, n: int, load: float = 1.0) -> None:
        super().__init__(n, n)
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        self.load = load
        self._counter = 0

    def arrivals(self, slot: int) -> list[int | None]:
        self._counter += self.load
        if self._counter < 1.0:
            return [None] * self.n_in
        self._counter -= 1.0
        return [(i + slot) % self.n_out for i in range(self.n_in)]

    @property
    def offered_load(self) -> float:
        return self.load


class RandomPermutation(RandomTrafficSource):
    """Each slot independently, with probability ``load`` a fresh uniform
    permutation of cells arrives (all inputs at once, no output conflicts)."""

    def __init__(
        self, n: int, load: float = 1.0, seed: int | np.random.Generator | None = None
    ) -> None:
        super().__init__(n, n, seed)
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        self.load = load

    def arrivals(self, slot: int) -> list[int | None]:
        if self.rng.random() >= self.load:
            return [None] * self.n_in
        return [int(x) for x in self.rng.permutation(self.n_out)]

    @property
    def offered_load(self) -> float:
        return self.load
