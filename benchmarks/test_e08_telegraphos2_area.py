"""E8 — Telegraphos II die budget (paper §4.2, figure 6).

Published: 8 megacells of 1.5x0.9 mm^2 (11 mm^2 SRAM), 15 mm^2 peripheral
standard cells, 5.5 mm^2 bus routing, 32 mm^2 buffer total, on an
8.5x8.5 mm die, at 40 ns / 400 Mb/s per link.  The calibrated area model
must regenerate the full budget.
"""

from conftest import show

from repro.switches.harness import format_table
from repro.vlsi.telegraphos import telegraphos2_report


def test_e08_telegraphos2_area(run_once):
    report = run_once(telegraphos2_report)
    pub, mod = report["published"], report["model"]
    keys = [
        "megacell_mm2", "sram_total_mm2", "peripheral_cells_mm2",
        "bus_routing_mm2", "buffer_total_mm2", "clock_ns", "link_mbps",
    ]
    rows = [[k, pub[k], round(mod[k], 2)] for k in keys]
    show(format_table(["figure", "paper", "model"], rows,
                      title="E8: Telegraphos II shared-buffer die budget (§4.2)"))
    assert mod["megacell_mm2"] == round(pub["megacell_mm2"], 2) or abs(
        mod["megacell_mm2"] - pub["megacell_mm2"]
    ) < 0.05
    assert abs(mod["sram_total_mm2"] - pub["sram_total_mm2"]) < 0.6
    assert abs(mod["buffer_total_mm2"] - pub["buffer_total_mm2"]) < 2.5
    assert abs(mod["clock_ns"] - pub["clock_ns"]) < 0.5
    assert abs(mod["link_mbps"] - pub["link_mbps"]) < 5.0
