"""Head-of-line blocking saturation analysis [KaHM87] (paper §2.1).

The paper: "a switch with equal input and output throughput, with fixed
(small) packet size, and with independent, randomly destined packet traffic,
saturates at about 60 % of the link capacity".  The exact asymptotic value is
``2 - sqrt(2) ~= 0.5858`` for ``n -> infinity``; finite-``n`` values are
higher (0.75 at n = 2) and are obtained here from the standard saturation
model: every input always has a fresh head-of-line cell, each output serves a
uniform random contender, winners draw new uniform destinations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim.rng import make_rng

#: Known finite-n saturation throughputs from [KaHM87], table I — used by the
#: tests as the reference the Monte-Carlo estimator must reproduce.
KAROL_TABLE = {
    1: 1.0000,
    2: 0.7500,
    3: 0.6825,
    4: 0.6553,
    5: 0.6399,
    6: 0.6302,
    7: 0.6234,
    8: 0.6184,
}


def hol_saturation_asymptotic() -> float:
    """The n -> infinity HoL saturation throughput, ``2 - sqrt(2)``.

    Derivation sketch ([KaHM87] appendix): at saturation the HoL cells of
    busy inputs form n independent queues in the "destination" dimension;
    the system behaves like an M/D/1 queue with occupancy rho satisfying
    ``rho = 1 - rho^2 / (2(1-rho))`` whose admissible root gives throughput
    ``2 - sqrt(2)``.
    """
    return 2.0 - math.sqrt(2.0)


def hol_saturation_montecarlo(
    n: int,
    slots: int = 200_000,
    warmup: int = 2_000,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of the finite-n HoL saturation throughput.

    Simulates only the head-of-line dynamics (the queues behind the heads
    are irrelevant at saturation), which makes this orders of magnitude
    faster than the full switch simulation while provably measuring the
    same quantity — ``tests/analysis`` cross-checks it against
    :class:`~repro.switches.input_queued.FifoInputQueued`.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    rng = make_rng(seed)
    heads = rng.integers(0, n, size=n)  # destination of each input's HoL cell
    served = 0
    measured = 0
    for t in range(slots):
        # Each output with >= 1 contender serves exactly one of them.
        winners = np.zeros(n, dtype=bool)
        order = rng.permutation(n)  # random tie-breaking among inputs
        taken = np.zeros(n, dtype=bool)
        for i in order:
            d = heads[i]
            if not taken[d]:
                taken[d] = True
                winners[i] = True
        k = int(winners.sum())
        heads[winners] = rng.integers(0, n, size=k)
        if t >= warmup:
            served += k
            measured += 1
    return served / (measured * n)


def hol_saturation(n: int, **kwargs) -> float:
    """Finite-n HoL saturation: table lookup when available, else Monte Carlo."""
    if n in KAROL_TABLE:
        return KAROL_TABLE[n]
    return hol_saturation_montecarlo(n, **kwargs)
