"""Tests for the experiment harness helpers."""

import pytest

from repro.switches import OutputQueued, SharedBuffer
from repro.switches.harness import (
    capacity_for_loss,
    format_table,
    latency_vs_load,
    loss_vs_capacity,
    saturation_throughput,
    throughput_at_load,
    uniform_source_factory,
)


def test_throughput_at_load_tracks_offered():
    f = uniform_source_factory(4, 4)
    thr = throughput_at_load(lambda: OutputQueued(4, 4), f, 0.5, slots=8000)
    assert thr == pytest.approx(0.5, abs=0.03)


def test_saturation_of_work_conserving_switch_is_one():
    f = uniform_source_factory(4, 4)
    sat = saturation_throughput(lambda: SharedBuffer(4, 4), f, slots=8000)
    assert sat == pytest.approx(1.0, abs=0.03)


def test_latency_vs_load_monotone():
    f = uniform_source_factory(4, 4)
    series = latency_vs_load(
        lambda: OutputQueued(4, 4), f, loads=[0.3, 0.6, 0.9], slots=10_000
    )
    delays = [d for _, d in series]
    assert delays[0] < delays[1] < delays[2]


def test_loss_vs_capacity_decreasing():
    f = uniform_source_factory(4, 4)
    series = loss_vs_capacity(
        lambda cap: SharedBuffer(4, 4, capacity=cap), f,
        capacities=[2, 8, 32], load=0.9, slots=15_000,
    )
    losses = [l for _, l in series]
    assert losses[0] > losses[-1]


def test_capacity_for_loss():
    series = [(2, 0.1), (4, 0.01), (8, 0.0005)]
    assert capacity_for_loss(series, 1e-3) == 8
    assert capacity_for_loss(series, 1e-9) is None


def test_format_table():
    out = format_table(["a", "b"], [[1, 2.5], ["x", 3]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5
