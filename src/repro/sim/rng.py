"""Deterministic random number helpers.

Every stochastic component in the repository takes an explicit seed (or an
already-constructed generator); nothing touches global random state.  This
makes every experiment in ``benchmarks/`` exactly repeatable.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0x5161_C0_1995  # SIGCOMM 1995


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed.

    ``None`` maps to the repository-wide default seed (experiments are
    reproducible by default); an existing generator is passed through so that
    components can share one stream when a caller wants correlated substreams.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used by multi-link traffic sources so each link has an independent
    stream (the paper's section 3.4 analysis assumes independent per-link
    traffic).
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
