"""Tristate buses with an at-most-one-driver-per-cycle guard.

In the chip, each pipeline stage's data bus is shared by the stage's input
latches (one per incoming link), the bank's read port, and the output
register.  Multiple simultaneous drivers would be an electrical fault; the
simulator turns that fault into an exception, which the functional tests
lean on heavily (bench E15).
"""

from __future__ import annotations

from repro.sim.packet import Word


class BusContentionError(Exception):
    """Two drivers attempted to drive the same bus in the same cycle."""


class Bus:
    """A named tristate bus carrying one :class:`Word` per cycle."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._cycle = -1
        self._value: Word | None = None
        self._driver: str | None = None

    def drive(self, cycle: int, value: Word, driver: str) -> None:
        """Assert ``value`` on the bus for ``cycle`` on behalf of ``driver``."""
        if cycle == self._cycle and self._driver is not None:
            raise BusContentionError(
                f"bus {self.name}: {driver} and {self._driver} both drive "
                f"in cycle {cycle}"
            )
        self._cycle = cycle
        self._value = value
        self._driver = driver

    def sample(self, cycle: int) -> Word:
        """Read the bus value for ``cycle``; floating buses raise."""
        if cycle != self._cycle or self._value is None:
            raise BusContentionError(
                f"bus {self.name}: sampled in cycle {cycle} while floating"
            )
        return self._value

    def is_driven(self, cycle: int) -> bool:
        return cycle == self._cycle and self._value is not None
