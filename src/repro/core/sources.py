"""Word-level packet sources and sinks for the pipelined-memory switch.

A word-level source is polled once per cycle per *idle* input link; it either
starts a new packet (whose head word arrives that cycle, followed by one word
per cycle) or stays quiet.  The renewal source reproduces the traffic model
of the paper's §3.4 analysis: a packet head appears on a given link in a
given cycle with unconditional probability ``p / B`` at link load ``p``
(packet size ``B`` words).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import lru_cache

import numpy as np


from repro.sim.rng import make_rng, spawn
from repro.traffic.base import TrafficSource

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_U64 = 0xFFFFFFFFFFFFFFFF


@lru_cache(maxsize=64)
def _lcg_jump_coefficients(size: int) -> tuple[np.ndarray, np.ndarray]:
    """(mult, add) with ``x_k = mult[k-1] * x_0 + add[k-1] (mod 2**64)``.

    Closed-form LCG jumping: applying ``x -> M*x + C`` ``k`` times is itself
    affine, so the whole per-word recurrence collapses to one vectorized
    multiply-add over precomputed coefficient arrays.
    """
    mult = np.empty(size, dtype=np.uint64)
    add = np.empty(size, dtype=np.uint64)
    m, a = 1, 0
    for k in range(size):
        m = (m * _LCG_MULT) & _U64
        a = (a * _LCG_MULT + _LCG_INC) & _U64
        mult[k] = m
        add[k] = a
    return mult, add


@lru_cache(maxsize=65536)
def deterministic_payload(uid: int, size: int, width_bits: int = 16) -> tuple[int, ...]:
    """Pseudo-random but uid-reproducible payload words (for integrity checks).

    This sits on the word-level hot path — called once per injected packet
    and again wherever a sink re-derives the expected payload — so it is
    memoized and the per-word LCG loop is replaced by a single vectorized
    jump over precomputed coefficients (bit-identical to the scalar
    recurrence; ``tests/core/test_sources.py`` pins the values).

    The memo is **deliberately process-global and snapshot-safe**: the
    function is pure (the payload depends only on ``(uid, size,
    width_bits)``), so cache warmth can never change a value — running two
    simulations back-to-back in one process, clearing the cache mid-run, or
    restoring a checkpoint into a cold process all yield bit-identical
    payloads.  :mod:`repro.checkpoint` relies on this to store only packet
    uids and re-derive payloads on restore
    (``tests/checkpoint/test_payload_cache.py`` pins the contract).
    """
    mask = (1 << width_bits) - 1
    x0 = (uid * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF
    mult, add = _lcg_jump_coefficients(size)
    x = mult * np.uint64(x0) + add  # uint64 arithmetic wraps mod 2**64
    words = (x >> np.uint64(17)) & np.uint64(mask)
    return tuple(words.tolist())


class PacketSource(ABC):
    """Per-input-link packet injector."""

    def __init__(self, n_out: int, packet_words: int, width_bits: int = 16) -> None:
        self.n_out = n_out
        self.packet_words = packet_words
        self.width_bits = width_bits

    @abstractmethod
    def maybe_start(self, cycle: int, link: int) -> int | None:
        """Destination of a packet whose head arrives this cycle, or None.

        Called exactly once per cycle per idle link, in increasing cycle
        order.  (The switch builds the actual :class:`Packet`.)
        """


class RenewalPacketSource(PacketSource):
    """Geometric-gap renewal process per link, matching §3.4's assumptions.

    After a packet's tail (or initially), each idle cycle starts a new packet
    with probability ``q = p / (B - (B-1)p)``, which makes the long-run link
    load (fraction of cycles carrying a word) equal ``p`` and the
    unconditional head probability ``p/B``.  Destinations are uniform.
    """

    def __init__(
        self,
        n_out: int,
        packet_words: int,
        load: float,
        width_bits: int = 16,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_out, packet_words, width_bits)
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        self.load = load
        b = packet_words
        denom = b - (b - 1) * load
        self.start_prob = load / denom if denom > 0 else 1.0
        self.rng = make_rng(seed)

    def maybe_start(self, cycle: int, link: int) -> int | None:
        if self.rng.random() < self.start_prob:
            return int(self.rng.integers(0, self.n_out))
        return None


class BatchRenewalSource(PacketSource):
    """Renewal traffic with *independent per-link streams*, batch-drawable.

    Statistically the same §3.4 geometric-gap process as
    :class:`RenewalPacketSource`, but each link owns a private generator
    pair (one stream for the start/idle coin flips, one for destinations),
    spawned deterministically from ``seed``.  That independence is what
    makes the process *batchable*: a whole window of per-link poll outcomes
    can be drawn as one numpy block, and — because a numpy ``Generator``
    produces bit-identical values whether drawn one at a time or as an
    array — the block-drawn tape equals the scalar per-cycle poll sequence
    exactly.  The batch kernel consumes the tape; the checked and fast
    kernels call :meth:`maybe_start` per cycle; on the same seed all three
    see the identical arrival process.

    Note the streams *differ* from ``RenewalPacketSource`` at equal seed
    (that source interleaves every link through one shared generator, which
    is inherently order-sensitive and unbatchable); equivalence tests
    compare kernels, each given its own ``BatchRenewalSource``.
    """

    def __init__(
        self,
        n_out: int,
        packet_words: int,
        load: float,
        width_bits: int = 16,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_out, packet_words, width_bits)
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        self.load = load
        b = packet_words
        denom = b - (b - 1) * load
        self.start_prob = load / denom if denom > 0 else 1.0
        children = spawn(make_rng(seed), 2 * n_out)
        self._u_rng = children[0::2]  # per-link start coin flips
        self._d_rng = children[1::2]  # per-link destination draws
        # Tape state, per link: poll outcomes drawn but not yet consumed.
        # ``_tape_cycle[i]`` is the absolute cycle of each buffered poll
        # (a hit makes the link busy for exactly ``packet_words`` cycles,
        # a miss re-polls next cycle, so the schedule is self-determined);
        # ``_tape_dst[i]`` holds the destination, or -1 for a miss.
        self._tape_cycle: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(n_out)
        ]
        self._tape_dst: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(n_out)
        ]
        self._next_draw = [0] * n_out  # cycle of each link's first undrawn poll

    # -- scalar protocol (checked / fast kernels) ---------------------------
    def maybe_start(self, cycle: int, link: int) -> int | None:
        if self._u_rng[link].random() < self.start_prob:
            return int(self._d_rng[link].integers(0, self.n_out))
        return None

    # -- batch protocol (batch kernel) --------------------------------------
    #: minimum polls drawn per extension — tiny batch windows would otherwise
    #: pay a fresh numpy block-draw per link per window; over-drawn outcomes
    #: stay buffered on the tape and the stream order is unchanged (a
    #: Generator yields the same sequence however the draws are blocked)
    _LOOKAHEAD = 4096

    def _extend(self, link: int, horizon: int) -> None:
        """Draw polls for ``link`` until its tape covers cycles < horizon."""
        start = self._next_draw[link]
        if horizon - start <= 0:
            return
        count = max(horizon - start, self._LOOKAHEAD)
        # Every poll advances the link by at least one cycle, so ``count``
        # draws are guaranteed to reach ``horizon`` (hits overshoot and
        # stay buffered for later windows).  Drawing the coin flips as one
        # block and the destinations as one block consumes both streams in
        # exactly the scalar per-poll order.
        u = self._u_rng[link].random(count)
        hits = u < self.start_prob
        w = self.packet_words
        steps = np.where(hits, np.int64(w), np.int64(1))
        cycles = start + np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(steps[:-1]))
        )
        dsts = np.full(count, -1, dtype=np.int64)
        n_hits = int(np.count_nonzero(hits))
        if n_hits:
            dsts[hits] = self._d_rng[link].integers(0, self.n_out, size=n_hits)
        self._tape_cycle[link] = np.concatenate((self._tape_cycle[link], cycles))
        self._tape_dst[link] = np.concatenate((self._tape_dst[link], dsts))
        self._next_draw[link] = start + int(steps.sum())

    def batch_arrivals(
        self, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Packet starts with head cycle in ``[start, stop)``.

        Returns ``(cycles, links, dsts)`` sorted by ``(cycle, link)`` — the
        order the kernels' arrival phase visits the input links.  Consumed
        windows must be requested in increasing, non-overlapping cycle
        order (each poll outcome is handed out exactly once).
        """
        all_c: list[np.ndarray] = []
        all_l: list[np.ndarray] = []
        all_d: list[np.ndarray] = []
        for link in range(self.n_out):
            self._extend(link, stop)
            tape_c = self._tape_cycle[link]
            cut = int(np.searchsorted(tape_c, stop, side="left"))
            if cut:
                c = tape_c[:cut]
                d = self._tape_dst[link][:cut]
                self._tape_cycle[link] = tape_c[cut:]
                self._tape_dst[link] = self._tape_dst[link][cut:]
                hit = d >= 0
                if hit.any():
                    all_c.append(c[hit])
                    all_l.append(np.full(int(hit.sum()), link, dtype=np.int64))
                    all_d.append(d[hit])
        if not all_c:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        cycles = np.concatenate(all_c)
        links = np.concatenate(all_l)
        dsts = np.concatenate(all_d)
        order = np.lexsort((links, cycles))
        return cycles[order], links[order], dsts[order]

    #: windows at or below this many cycles skip the numpy slice/lexsort
    #: round trip — a degenerate window (batch_cycles=1) holds at most a
    #: few polls per link, where scalar extraction is an order of magnitude
    #: cheaper than array surgery
    _SCALAR_WINDOW = 64

    def window_arrivals(
        self, start: int, stop: int
    ) -> tuple[list[int], list[int], list[int]]:
        """:meth:`batch_arrivals` as plain lists, cheap for tiny windows.

        Same consumption contract and the same ``(cycle, link)`` order;
        the two paths may be mixed freely across windows.
        """
        if stop - start > self._SCALAR_WINDOW:
            c, l, d = self.batch_arrivals(start, stop)
            return c.tolist(), l.tolist(), d.tolist()
        items: list[tuple[int, int, int]] = []
        next_draw = self._next_draw
        tapes_c, tapes_d = self._tape_cycle, self._tape_dst
        for link in range(self.n_out):
            if next_draw[link] < stop:
                self._extend(link, stop)
            tape_c = tapes_c[link]
            if not tape_c.shape[0] or tape_c[0] >= stop:
                continue
            tape_d = tapes_d[link]
            k, m = 0, tape_c.shape[0]
            while k < m and tape_c[k] < stop:
                if tape_d[k] >= 0:
                    items.append((int(tape_c[k]), link, int(tape_d[k])))
                k += 1
            self._tape_cycle[link] = tape_c[k:]
            self._tape_dst[link] = tape_d[k:]
        items.sort()
        return ([c for c, _, _ in items], [li for _, li, _ in items],
                [d for _, _, d in items])

    def resume_idle(self, cycle: int) -> None:
        """Re-anchor every link's tape to poll next at ``cycle``.

        After a muted drain no link polled (no stream was consumed), and
        all links are idle, so each link's first still-buffered outcome
        applies at ``cycle`` — only the cycle labels shift.
        """
        for link in range(self.n_out):
            tape_c = self._tape_cycle[link]
            first = int(tape_c[0]) if tape_c.size else self._next_draw[link]
            delta = cycle - first
            if delta <= 0:
                continue
            if tape_c.size:
                self._tape_cycle[link] = tape_c + delta
            self._next_draw[link] += delta


class SaturatingSource(PacketSource):
    """Always has a packet ready (back-to-back): offered load 1.0.

    ``dests`` may fix the destination pattern per link; default uniform
    random.  Used by saturation and deadline-invariant tests.
    """

    def __init__(
        self,
        n_out: int,
        packet_words: int,
        dests: list[int] | None = None,
        width_bits: int = 16,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_out, packet_words, width_bits)
        self.dests = dests
        self.rng = make_rng(seed)

    def maybe_start(self, cycle: int, link: int) -> int | None:
        if self.dests is not None:
            return self.dests[link % len(self.dests)]
        return int(self.rng.integers(0, self.n_out))


class TracePacketSource(PacketSource):
    """Scripted packet starts: ``schedule[link]`` is a list of
    ``(earliest_cycle, dst)`` items, injected in order as the link frees up."""

    def __init__(
        self,
        n_out: int,
        packet_words: int,
        schedule: dict[int, list[tuple[int, int]]],
        width_bits: int = 16,
    ) -> None:
        super().__init__(n_out, packet_words, width_bits)
        self.schedule = {link: list(items) for link, items in schedule.items()}
        self._next_idx = {link: 0 for link in schedule}

    def maybe_start(self, cycle: int, link: int) -> int | None:
        items = self.schedule.get(link)
        if not items:
            return None
        idx = self._next_idx[link]
        if idx >= len(items):
            return None
        earliest, dst = items[idx]
        if cycle >= earliest:
            self._next_idx[link] = idx + 1
            return dst
        return None

    def exhausted(self) -> bool:
        return all(
            self._next_idx[link] >= len(items)
            for link, items in self.schedule.items()
        )


class SlotAdapterSource(PacketSource):
    """Adapts a slotted :class:`~repro.traffic.base.TrafficSource`.

    Slot ``s`` of the slotted source corresponds to cycles
    ``[s*B, (s+1)*B)``: a cell arriving in slot ``s`` on link ``i`` becomes a
    ``B``-word packet whose head arrives at cycle ``s*B`` (arrivals are
    slot-synchronized — useful for apples-to-apples integration tests against
    the slot-level :class:`~repro.switches.shared_memory.SharedBuffer`).
    """

    def __init__(
        self, slotted: TrafficSource, packet_words: int, width_bits: int = 16
    ) -> None:
        super().__init__(slotted.n_out, packet_words, width_bits)
        self.slotted = slotted
        self._slot = -1
        self._current: list[int | None] = [None] * slotted.n_in

    def maybe_start(self, cycle: int, link: int) -> int | None:
        slot, phase = divmod(cycle, self.packet_words)
        if phase != 0:
            return None
        if slot != self._slot:
            self._slot = slot
            self._current = self.slotted.arrivals(slot)
        dst = self._current[link]
        self._current[link] = None  # consume
        return dst


class PacketSink:
    """Reassembles and verifies the word stream of one outgoing link.

    Checks (all raise on violation — these are the E15 functional assertions):

    * words of one packet arrive on consecutive cycles (no gaps inside a
      packet: the output link would have emitted garbage otherwise);
    * word indices run 0..B-1 in order;
    * payload equals what the source injected (checked by the switch, which
      knows the sent packets).
    """

    def __init__(self, link: int, packet_words: int) -> None:
        self.link = link
        self.packet_words = packet_words
        self.delivered: list[tuple[int, int, tuple[int, ...]]] = []
        # in-progress reassembly
        self._uid: int | None = None
        self._words: list[int] = []
        self._last_cycle = -2
        self._head_cycle = -1

    def deliver(self, cycle: int, packet_uid: int, index: int, payload: int) -> None:
        if self._uid is None:
            if index != 0:
                raise AssertionError(
                    f"output {self.link}: packet {packet_uid} started with "
                    f"word {index}, expected 0"
                )
            self._uid = packet_uid
            self._head_cycle = cycle
            self._words = [payload]
        else:
            if packet_uid != self._uid:
                raise AssertionError(
                    f"output {self.link}: word of packet {packet_uid} "
                    f"interleaved into packet {self._uid}"
                )
            if index != len(self._words):
                raise AssertionError(
                    f"output {self.link}: packet {packet_uid} word {index} "
                    f"out of order (expected {len(self._words)})"
                )
            if cycle != self._last_cycle + 1:
                raise AssertionError(
                    f"output {self.link}: gap inside packet {packet_uid} "
                    f"(cycle {cycle} after {self._last_cycle})"
                )
            self._words.append(payload)
        self._last_cycle = cycle
        if len(self._words) == self.packet_words:
            self.delivered.append((self._uid, self._head_cycle, tuple(self._words)))
            self._uid = None
            self._words = []

    @property
    def mid_packet(self) -> bool:
        return self._uid is not None
