"""Buffer sizing for a target loss probability — [HlKa88] (paper §2.2).

The paper's headline comparison: "a 16x16 switch with incoming link load of
0.8 (uniformly distributed destinations), needs the following buffer sizes in
order to achieve packet loss probability of 0.001: (i) 86 packets under
shared buffering (5.4 per output); (ii) 178 packets under output queueing
(11.1 per output); and (iii) 1300 packets under input smoothing (80 per
input)."  Bench E3 regenerates all three numbers from the models here.

Models (following [HlKa88]):

* **output queueing** — exact finite-buffer Markov chain per output queue
  (arrivals first, then service; arrivals beyond the free space are lost);
* **shared buffering** — the n queues share one pool; loss is approximated
  by the tail of the total occupancy of n *independent* infinite-buffer
  queues beyond the pool size (the standard [HlKa88] decomposition — slightly
  conservative because sharing actually truncates the tails);
* **input smoothing** — arrivals are collected into frames of ``b`` slots
  and presented at once to an (nb x nb) switch; a frame can deliver at most
  ``b`` cells to each output, so cells beyond ``b`` per output per frame are
  lost.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sstats

from repro.analysis.queueing import (
    batch_pmf,
    convolve_queues,
    stationary_queue_distribution,
    tail_probability,
)


def output_queue_loss(n: int, p: float, capacity: int, tol: float = 1e-14) -> float:
    """Exact loss probability of one finite output queue of ``capacity`` cells.

    Chain: ``Q' = max(min(Q + A, capacity) - 1, 0)`` with the
    ``A - (capacity - Q)`` overflow cells lost.  Loss probability is the
    long-run fraction of arriving cells lost.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    a = batch_pmf(n, p)
    states = capacity + 1
    # Transition matrix built from the batch distribution.
    t = np.zeros((states, states))
    for q in range(states):
        for k, pk in enumerate(a):
            if pk == 0.0:
                continue
            q_in = min(q + k, capacity)
            q_next = max(q_in - 1, 0)
            t[q, q_next] += pk
    # Stationary distribution by power iteration.
    pi = np.full(states, 1.0 / states)
    for _ in range(100_000):
        nxt = pi @ t
        if np.abs(nxt - pi).max() < tol:
            pi = nxt
            break
        pi = nxt
    pi /= pi.sum()
    # Expected lost cells per slot.
    lost = 0.0
    for q in range(states):
        if pi[q] == 0.0:
            continue
        for k, pk in enumerate(a):
            overflow = max(q + k - capacity, 0)
            lost += pi[q] * pk * overflow
    offered = p  # cells per output per slot
    return lost / offered if offered > 0 else 0.0


def output_queue_capacity_for_loss(
    n: int, p: float, target: float, max_capacity: int = 1000
) -> int:
    """Smallest per-output capacity with loss <= target (e.g. 11-12 cells
    per output for n=16, p=0.8, target 1e-3 — [HlKa88] quotes 11.1)."""
    for cap in range(1, max_capacity + 1):
        if output_queue_loss(n, p, cap) <= target:
            return cap
    raise ValueError(f"no capacity <= {max_capacity} reaches loss {target}")


def shared_buffer_overflow(n: int, p: float, capacity: int, truncate: int = 1024) -> float:
    """[HlKa88] shared-buffer loss approximation: tail of the summed queues.

    P(total occupancy of n independent queues > capacity); the actual shared
    switch drops a cell only when the pool is full at its arrival, so this
    tail slightly overestimates loss — acceptable (and conservative) for
    sizing.
    """
    q = stationary_queue_distribution(n, p, truncate=truncate)
    total = convolve_queues(q, n)
    return tail_probability(total, capacity)


def shared_buffer_capacity_for_loss(
    n: int, p: float, target: float, max_capacity: int = 4000, truncate: int = 1024
) -> int:
    """Smallest shared pool size with overflow probability <= target
    (86 cells total, 5.4 per output, for n=16, p=0.8, target 1e-3)."""
    q = stationary_queue_distribution(n, p, truncate=truncate)
    total = convolve_queues(q, n)
    cdf = np.cumsum(total)
    for cap in range(1, min(max_capacity, len(cdf) - 1) + 1):
        if 1.0 - cdf[cap] <= target:
            return cap
    raise ValueError(f"no capacity <= {max_capacity} reaches loss {target}")


def input_smoothing_loss(n: int, p: float, b: int) -> float:
    """Input smoothing loss for frame size ``b`` (buffer b cells per input).

    Cells destined to one output in a frame: ``X ~ Bin(n*b, p/n)``; at most
    ``b`` can be delivered, the rest are lost:
    ``loss = E[(X - b)+] / E[X]``.
    """
    if b < 1:
        raise ValueError(f"frame size must be >= 1, got {b}")
    mean = b * p
    kmax = n * b
    ks = np.arange(b + 1, kmax + 1)
    pmf = sstats.binom.pmf(ks, kmax, p / n)
    excess = float(((ks - b) * pmf).sum())
    return excess / mean if mean > 0 else 0.0


def input_smoothing_capacity_for_loss(
    n: int, p: float, target: float, max_b: int = 400
) -> int:
    """Smallest per-input frame/buffer size with loss <= target
    (~80 per input, 1280-1300 total, for n=16, p=0.8, target 1e-3)."""
    for b in range(1, max_b + 1):
        if input_smoothing_loss(n, p, b) <= target:
            return b
    raise ValueError(f"no frame size <= {max_b} reaches loss {target}")


def hlka88_comparison(n: int = 16, p: float = 0.8, target: float = 1e-3) -> dict:
    """The full [HlKa88] table the paper quotes, regenerated.

    Returns total and per-port buffer requirements for the three
    architectures at the given operating point.
    """
    shared_total = shared_buffer_capacity_for_loss(n, p, target)
    output_per = output_queue_capacity_for_loss(n, p, target)
    smoothing_per = input_smoothing_capacity_for_loss(n, p, target)
    return {
        "shared_total": shared_total,
        "shared_per_output": shared_total / n,
        "output_per_output": output_per,
        "output_total": output_per * n,
        "smoothing_per_input": smoothing_per,
        "smoothing_total": smoothing_per * n,
    }
