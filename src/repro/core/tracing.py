"""Wave tracing: capture and render the pipelined memory's cycle-by-cycle
behaviour (the software analogue of a logic-analyzer view of figure 5).

Attach a :class:`WaveTracer` to a :class:`~repro.core.switch.PipelinedSwitch`
and it records, per clock cycle, which wave occupies each bank stage and
which words each outgoing link carries.  ``render()`` produces the ASCII
timeline used by ``examples/cut_through_demo.py``; ``events()`` gives the
raw record for programmatic assertions (the tests use it to re-verify the
figure-5 property: stage *k*'s control equals stage 0's delayed *k* cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.control import ControlWord, WaveOp
from repro.core.switch import PipelinedSwitch

_OP_TAGS = {WaveOp.WRITE: "WR", WaveOp.READ: "RD", WaveOp.WRITE_CT: "CT"}


@dataclass(frozen=True, slots=True)
class CycleRecord:
    """One traced clock cycle.

    ``link_words`` holds the committed output-register contents, i.e. the
    words the outgoing links *will* carry during cycle ``cycle + 1`` —
    registered outputs, exactly as in the hardware.
    """

    cycle: int
    stages: tuple[ControlWord | None, ...]  # control word per bank stage
    link_words: tuple[tuple[int, int, int] | None, ...]  # (uid, index, payload) per output


class WaveTracer:
    """Records a switch's wave activity cycle by cycle."""

    def __init__(self, switch: PipelinedSwitch) -> None:
        self.switch = switch
        self.records: list[CycleRecord] = []

    def run(self, cycles: int) -> "WaveTracer":
        """Advance the switch, recording after every tick."""
        for _ in range(cycles):
            self.switch.tick()
            self._capture()
        return self

    def _capture(self) -> None:
        sw = self.switch
        b = sw.config.depth
        stages = tuple(sw.control.stage(k) for k in range(b))
        links: list[tuple[int, int, int] | None] = [None] * sw.config.n
        for k in range(b):
            driving = sw.out_row.driving(k)
            if driving is not None:
                word, link = driving
                links[link] = (word.packet_uid, word.index, word.payload)
        self.records.append(
            CycleRecord(cycle=sw.cycle - 1, stages=stages, link_words=tuple(links))
        )

    # -- analysis -----------------------------------------------------------
    def events(self) -> list[tuple[int, int, str, int]]:
        """Flat event list: (cycle, stage, op-tag, packet uid)."""
        out = []
        for rec in self.records:
            for k, cw in enumerate(rec.stages):
                if cw is not None:
                    out.append((rec.cycle, k, _OP_TAGS[cw.op], cw.packet_uid))
        return out

    def initiations(self) -> list[tuple[int, str, int]]:
        """(cycle, op-tag, uid) for every stage-0 wave initiation."""
        return [(c, op, uid) for c, k, op, uid in self.events() if k == 0]

    def verify_control_delay_property(self) -> bool:
        """Figure 5: stage k's control at cycle t is stage 0's at t-k."""
        by_cycle = {rec.cycle: rec for rec in self.records}
        for rec in self.records:
            for k, cw in enumerate(rec.stages):
                if k == 0:
                    continue
                earlier = by_cycle.get(rec.cycle - k)
                if earlier is None:
                    continue  # before the trace window
                if cw is not earlier.stages[0]:
                    return False
        return True

    # -- rendering ------------------------------------------------------------
    def render(self, max_cycles: int | None = None) -> str:
        """ASCII timeline: one row per cycle, one column per bank stage."""
        b = self.switch.config.depth
        header = (
            f"{'cyc':>4}  "
            + "".join(f"{f'M{k}':^11}" for k in range(b))
            + " links(t+1)"
        )
        lines = [header, "-" * len(header)]
        records = self.records[:max_cycles] if max_cycles else self.records
        for rec in records:
            cells = []
            for cw in rec.stages:
                if cw is None:
                    cells.append(f"{'':^11}")
                else:
                    cells.append(f"{_OP_TAGS[cw.op]} p{cw.packet_uid}@a{cw.addr:<3}".center(11))
            outs = " ".join(
                f"L{j}<=w{w[1]}" for j, w in enumerate(rec.link_words) if w is not None
            )
            lines.append(f"{rec.cycle:>4}  " + "".join(cells) + f" {outs}".rstrip())
        return "\n".join(lines)
