"""E15 — Functional verification of the wave machinery (paper §3.2-§3.3,
figures 4 and 5).

This bench is the "does the datapath actually work" experiment the FPGA
prototype answered in the lab: long randomized runs of the word-level switch
with every structural check armed (single-ported banks, tristate buses,
latch overruns, output-register loads, control pipelining), under cut-through
and at saturation, with credit flow control and with drop-tail.  The bench
reports wave statistics; any violation raises.
"""

from conftest import show

from repro.core import (
    FastPipelinedSwitch,
    PipelinedSwitchConfig,
    RenewalPacketSource,
    SaturatingSource,
)
from repro.switches.harness import format_table


def _run(name, cfg, src, cycles):
    # The fast kernel reproduces PipelinedSwitch bit-for-bit on these
    # configs (tests/core/test_fastpath.py pins that), so the conservation
    # identities below are checked against the exact same numbers the
    # structurally-checked model would produce — just ~7x sooner.
    sw = FastPipelinedSwitch(cfg, src)
    # No warmup: the wave counters cover the whole run, so the conservation
    # identities below must hold exactly.
    sw.run(cycles)
    if not cfg.credit_flow:
        sw.drain()
    return [
        name,
        sw.stats.offered,
        sw.stats.delivered,
        sw.stats.dropped,
        sw.cut_through_waves,
        sw.plain_read_waves,
        sw.write_waves,
        round(sw.link_utilization, 3),
    ]


def _experiment():
    rows = []
    cfg = PipelinedSwitchConfig(n=8, addresses=128)
    rows.append(_run(
        "8x8 load 0.6 drop-tail",
        cfg,
        RenewalPacketSource(n_out=8, packet_words=cfg.packet_words, load=0.6, seed=1),
        150_000,
    ))
    cfg = PipelinedSwitchConfig(n=8, addresses=64, credit_flow=True)
    rows.append(_run(
        "8x8 saturated credits",
        cfg,
        SaturatingSource(n_out=8, packet_words=cfg.packet_words, seed=2),
        150_000,
    ))
    cfg = PipelinedSwitchConfig(n=4, addresses=8)
    rows.append(_run(
        "4x4 saturated tiny buffer",
        cfg,
        SaturatingSource(n_out=4, packet_words=cfg.packet_words, seed=3),
        100_000,
    ))
    return rows


def test_e15_functional_waves(run_once):
    rows = run_once(_experiment)
    show(format_table(
        ["scenario", "offered", "delivered", "dropped", "CT waves",
         "read waves", "write waves", "utilization"],
        rows,
        title="E15: wave-machinery functional verification (no structural "
              "violation over ~400k cycles)",
    ))
    for row in rows:
        name, offered, delivered, dropped = row[0], row[1], row[2], row[3]
        ct, reads, writes = row[4], row[5], row[6]
        # conservation: every delivered packet = one departure wave; waves
        # for packets still in flight at the horizon (undrained runs) may
        # lead deliveries by at most one per output link.
        in_flight = ct + reads - delivered
        assert 0 <= in_flight <= 16, name
        if "credits" in name:
            assert dropped == 0
        if "drop-tail" in name:
            assert dropped == 0  # ample buffer at 0.6 load
            assert delivered == offered  # fully drained
            assert in_flight == 0
    # cut-through carries a substantial share of departures at 0.6 load
    # (it dominates at light load; see tests/core/test_split_buffer.py)
    assert rows[0][4] > 0.3 * rows[0][2]
