"""Full delay *distribution* of the slotted output queue (beyond the mean).

The [KaHM87]/[AOST93] comparisons the paper quotes are about mean delay; a
switch designer also needs tails.  Under the arrivals-then-service
convention, a tagged cell's in-switch delay is

    D = Q + U,

where ``Q`` is the stationary queue length the slot's batch finds, and ``U``
is the number of same-batch cells enqueued ahead of the tagged cell.  For a
randomly tagged cell of batch ``A``:

    P(U = u) = P(A >= u + 1) / E[A]        (size-biased batch position)

so the delay PMF is the convolution of the stationary queue distribution
with the ``U`` distribution.  Cross-checked against simulated delay
histograms in ``tests/analysis``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.queueing import batch_pmf, stationary_queue_distribution


def batch_position_pmf(n: int, p: float) -> np.ndarray:
    """PMF of a tagged cell's position among its slot's arrivals."""
    if p <= 0.0:
        raise ValueError("a tagged cell requires positive load")
    a = batch_pmf(n, p)
    mean_a = float(np.arange(len(a)) @ a)
    tail = np.cumsum(a[::-1])[::-1]  # tail[u] = P(A >= u)
    # P(U = u) = P(A >= u+1) / E[A], u = 0..n-1
    u = tail[1:] / mean_a
    return u


def delay_pmf(n: int, p: float, truncate: int = 1024) -> np.ndarray:
    """PMF of a cell's in-switch delay (slots) for the n-input output queue."""
    q = stationary_queue_distribution(n, p, truncate=truncate)
    u = batch_position_pmf(n, p)
    d = np.convolve(q, u)[:truncate]
    return d / d.sum()


def delay_quantile(n: int, p: float, quantile: float, truncate: int = 1024) -> int:
    """Smallest d with P(D <= d) >= quantile (e.g. the p99 delay)."""
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    cdf = np.cumsum(delay_pmf(n, p, truncate))
    idx = int(np.searchsorted(cdf, quantile))
    return min(idx, truncate - 1)


def mean_delay(n: int, p: float, truncate: int = 1024) -> float:
    """Mean of the delay PMF (must agree with the [KaHM87] closed form)."""
    d = delay_pmf(n, p, truncate)
    return float(np.arange(len(d)) @ d)
