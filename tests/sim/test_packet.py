"""Tests for Cell/Packet/Word objects."""

import pytest

from repro.sim.packet import Cell, Packet, Word, reset_packet_ids


def test_cell_delay():
    c = Cell(src=0, dst=1, arrival_slot=5)
    c.depart_slot = 9
    assert c.delay == 4


def test_cell_delay_before_departure_raises():
    with pytest.raises(ValueError):
        _ = Cell(src=0, dst=1, arrival_slot=5).delay


def test_uids_unique_and_resettable():
    a = Cell(src=0, dst=0, arrival_slot=0)
    b = Cell(src=0, dst=0, arrival_slot=0)
    assert a.uid != b.uid
    reset_packet_ids()
    c = Cell(src=0, dst=0, arrival_slot=0)
    assert c.uid == 0


def test_packet_words_roundtrip():
    p = Packet(src=1, dst=2, payload=(10, 20, 30), arrival_cycle=0)
    words = p.words()
    assert [w.payload for w in words] == [10, 20, 30]
    assert all(w.packet_uid == p.uid for w in words)
    assert [w.index for w in words] == [0, 1, 2]


def test_packet_latencies():
    p = Packet(src=0, dst=0, payload=(1, 2), arrival_cycle=10)
    p.depart_first_cycle = 14
    p.depart_last_cycle = 15
    assert p.cut_through_latency == 4
    assert p.total_latency == 5


def test_packet_latency_before_departure_raises():
    p = Packet(src=0, dst=0, payload=(1,), arrival_cycle=0)
    with pytest.raises(ValueError):
        _ = p.cut_through_latency


def test_word_repr_is_compact():
    w = Word(packet_uid=3, index=1, payload=0xAB)
    assert "p3.1" in repr(w)
