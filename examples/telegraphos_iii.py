#!/usr/bin/env python3
"""Telegraphos III "datasheet": functional + silicon report for the paper's
full-custom 8x8 pipelined buffer (paper §4.4, figure 8).

Reproduces, from the calibrated models, every number the paper publishes for
this chip — 64 Kbit buffer, 16/10 ns clocks, 1 Gb/s per link, ~9 mm^2
peripheral, ~45 mm^2 total — then runs the word-level switch at full load
under credit flow control to demonstrate lossless gigabit operation.

Run:  python examples/telegraphos_iii.py
"""

from repro.core import PipelinedSwitch, SaturatingSource
from repro.switches.harness import format_table
from repro.vlsi import (
    TELEGRAPHOS_III_TECH,
    pipelined_memory_area,
    pipelined_peripheral_area,
    wordline_delay,
)
from repro.vlsi.telegraphos import TELEGRAPHOS_III, telegraphos3_report


def silicon_report() -> None:
    report = telegraphos3_report()
    pub, mod = report["published"], report["model"]
    rows = [[k, pub[k], round(mod[k], 3) if isinstance(mod[k], float) else mod[k]]
            for k in pub]
    print(format_table(["figure", "paper (§4.4)", "model"], rows,
                       title="Telegraphos III — published vs modeled"))

    mem = pipelined_memory_area(TELEGRAPHOS_III_TECH, 16, 256, 16)
    dp = pipelined_peripheral_area(TELEGRAPHOS_III_TECH, 8, 16, 16)
    print(format_table(
        ["block", "mm^2"],
        [
            ["16 banks of 256x16 bit cells", round(mem.bits_mm2, 1)],
            ["address decoder (bank 0)", round(mem.decoders_mm2, 2)],
            ["15 decoded-address pipeline registers", round(mem.pipeline_regs_mm2, 2)],
            ["peripheral datapath (in/out links, control)", round(dp.area_mm2, 1)],
            ["total", round(mem.total_mm2 + dp.area_mm2, 1)],
        ],
        title="\nArea breakdown (figure 8 floorplan)",
    ))

    wl = wordline_delay(TELEGRAPHOS_III_TECH, 16)
    wide_wl = wordline_delay(TELEGRAPHOS_III_TECH, 256)
    print(format_table(
        ["word line", "length (um)", "delay (ns)"],
        [
            ["pipelined bank (16 bits)", round(wl.length_um), round(wl.total_ns, 2)],
            ["wide memory (256 bits, unsplit)", round(wide_wl.length_um),
             round(wide_wl.total_ns, 2)],
        ],
        title="\nWord-line RC (the §4.3 argument for short word lines)",
    ))


def functional_run() -> None:
    config = TELEGRAPHOS_III.switch_config(credit_flow=True)
    source = SaturatingSource(
        n_out=config.n, packet_words=config.packet_words,
        width_bits=config.width_bits, seed=1995,
    )
    switch = PipelinedSwitch(config, source)
    switch.warmup = 5_000
    switch.run(200_000)
    clock_ns = 16.0  # worst case
    print("\nFunctional run: 200k cycles at full offered load, credit flow control")
    print(f"  link utilization: {switch.link_utilization:.3f}")
    print(f"  drops:            {switch.stats.dropped} (lossless by construction)")
    print(f"  mean CT latency:  {switch.ct_latency.mean:.1f} cycles "
          f"= {switch.ct_latency.mean * clock_ns:.0f} ns at 16 ns worst-case clock")
    gbps = switch.link_utilization * config.width_bits / clock_ns
    print(f"  delivered per-link throughput: {gbps:.2f} Gb/s (paper: 1 Gb/s worst case)")


if __name__ == "__main__":
    silicon_report()
    functional_run()
