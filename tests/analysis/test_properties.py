"""Property-based tests for the analytic models: laws that hold everywhere."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.buffer_sizing import input_smoothing_loss, output_queue_loss
from repro.analysis.knockout import knockout_loss
from repro.analysis.queueing import (
    batch_pmf,
    output_queue_wait,
    stationary_queue_distribution,
)
from repro.analysis.staggered import expected_extra_latency

loads = st.floats(0.05, 0.95)
sizes = st.integers(2, 32)


@given(n=sizes, p=loads)
@settings(max_examples=40, deadline=None)
def test_batch_pmf_valid_distribution(n, p):
    a = batch_pmf(n, p)
    assert a.sum() == pytest.approx(1.0)
    assert (a >= 0).all()
    assert float(np.arange(len(a)) @ a) == pytest.approx(p, rel=1e-9)


@given(n=sizes, p=st.floats(0.05, 0.9))
@settings(max_examples=20, deadline=None)
def test_stationary_distribution_mean_stable(n, p):
    q = stationary_queue_distribution(n, p, truncate=512)
    assert q.sum() == pytest.approx(1.0)
    # occupancy probability decreasing in the tail
    tail = q[50:]
    assert (np.diff(tail[tail > 1e-14]) <= 1e-14).all()


@given(n=sizes, p1=loads, p2=loads)
@settings(max_examples=40, deadline=None)
def test_wait_monotone_in_load(n, p1, p2):
    lo, hi = min(p1, p2), max(p1, p2)
    assert output_queue_wait(n, lo) <= output_queue_wait(n, hi)


@given(n=sizes, p=loads, cap=st.integers(1, 40))
@settings(max_examples=25, deadline=None)
def test_output_loss_bounded_and_monotone(n, p, cap):
    loss = output_queue_loss(n, p, cap)
    assert 0.0 <= loss <= 1.0
    assert output_queue_loss(n, p, cap + 5) <= loss + 1e-12


@given(n=sizes, p=loads, l_paths=st.integers(1, 16))
@settings(max_examples=40, deadline=None)
def test_knockout_loss_bounds(n, p, l_paths):
    loss = knockout_loss(n, p, min(l_paths, n))
    assert 0.0 <= loss <= 1.0
    if l_paths >= n:
        assert loss == pytest.approx(0.0, abs=1e-12)


@given(n=sizes, p=loads, b=st.integers(1, 60))
@settings(max_examples=40, deadline=None)
def test_smoothing_loss_monotone_in_frame(n, p, b):
    assert input_smoothing_loss(n, p, b + 10) <= input_smoothing_loss(n, p, b) + 1e-12


@given(n=sizes, p=st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_staggered_formula_bounds(n, p):
    extra = expected_extra_latency(p, n)
    assert 0.0 <= extra <= 0.25  # at most a quarter cycle, ever
    assert extra <= p / 4 + 1e-12
