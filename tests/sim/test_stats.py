"""Tests for the statistics collectors."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import (
    LATENCY_BUCKET_EDGES,
    BucketHistogram,
    Counter,
    Histogram,
    SwitchStats,
)


class TestCounter:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    @settings(max_examples=50)
    def test_matches_numpy(self, xs):
        c = Counter()
        for x in xs:
            c.add(x)
        assert c.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-9)
        assert c.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-6, abs=1e-6)
        assert c.minimum == min(xs)
        assert c.maximum == max(xs)

    def test_empty_counter_is_nan(self):
        c = Counter()
        assert math.isnan(c.mean)
        assert math.isnan(c.variance)

    def test_single_sample_variance_nan(self):
        c = Counter()
        c.add(1.0)
        assert math.isnan(c.variance)
        assert c.mean == 1.0

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=50),
        st.lists(st.floats(-100, 100), min_size=1, max_size=50),
    )
    @settings(max_examples=50)
    def test_merge_equals_concatenation(self, a, b):
        ca, cb, cc = Counter(), Counter(), Counter()
        for x in a:
            ca.add(x)
            cc.add(x)
        for x in b:
            cb.add(x)
            cc.add(x)
        ca.merge(cb)
        assert ca.count == cc.count
        assert ca.mean == pytest.approx(cc.mean, rel=1e-9, abs=1e-9)
        if ca.count >= 2:
            assert ca.variance == pytest.approx(cc.variance, rel=1e-6, abs=1e-6)

    def test_merge_empty_is_noop(self):
        c = Counter()
        c.add(3.0)
        c.merge(Counter())
        assert c.count == 1 and c.mean == 3.0

    def test_merge_into_empty_copies_other(self):
        c = Counter()
        other = Counter()
        for x in (1.0, 2.0, 6.0):
            other.add(x)
        c.merge(other)
        assert c.count == 3
        assert c.mean == pytest.approx(3.0)
        assert c.minimum == 1.0 and c.maximum == 6.0

    def test_merge_two_singletons_gives_variance(self):
        a, b = Counter(), Counter()
        a.add(1.0)
        b.add(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.variance == pytest.approx(2.0)
        assert a.stdev == pytest.approx(math.sqrt(2.0))

    def test_stdev_no_sqrt_domain_error_on_cancellation(self):
        """Identical large-magnitude samples can leave _m2 a tiny negative
        number through floating-point cancellation; stdev must clamp, not
        raise."""
        c = Counter()
        for _ in range(100):
            c.add(1e8 + 0.1)
        assert c.variance >= 0.0
        assert c.stdev >= 0.0  # must not raise ValueError from math.sqrt

    def test_stderr_single_sample_nan(self):
        c = Counter()
        c.add(5.0)
        assert math.isnan(c.stderr)


class TestHistogram:
    def test_pmf_sums_to_one(self):
        h = Histogram()
        for v in [1, 1, 2, 3, 3, 3]:
            h.add(v)
        pmf = h.pmf()
        assert sum(pmf.values()) == pytest.approx(1.0)
        assert pmf[3] == pytest.approx(0.5)

    def test_quantiles(self):
        h = Histogram()
        for v in range(100):
            h.add(v)
        assert h.quantile(0.0) == 0
        assert h.quantile(0.5) == 49
        assert h.quantile(1.0) == 99

    def test_quantile_validation(self):
        h = Histogram()
        h.add(1)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            Histogram().quantile(0.5)

    def test_mean_weighted(self):
        h = Histogram()
        h.add(10, weight=3)
        h.add(0, weight=1)
        assert h.mean == pytest.approx(7.5)

    def test_percentile_is_quantile_in_percent(self):
        h = Histogram()
        for v in range(100):
            h.add(v)
        assert h.percentile(50) == h.quantile(0.5)
        assert h.percentile(99) == 98
        with pytest.raises(ValueError):
            h.percentile(101)


class TestBucketHistogram:
    def test_edges_validation(self):
        with pytest.raises(ValueError):
            BucketHistogram(())
        with pytest.raises(ValueError):
            BucketHistogram((4.0, 2.0))

    def test_counts_land_in_le_buckets(self):
        h = BucketHistogram((2.0, 4.0))
        for v in (1, 2, 3, 4, 5):  # le-semantics: 2 -> first, 4 -> second
            h.add(v)
        assert h.counts == [2, 2, 1]
        assert h.total == 5
        assert h.minimum == 1 and h.maximum == 5

    def test_cumulative_ends_at_inf_with_total(self):
        h = BucketHistogram((2.0, 4.0))
        for v in (1, 3, 9):
            h.add(v)
        rows = h.cumulative()
        assert rows[-1] == (math.inf, 3)
        assert [c for _, c in rows] == [1, 2, 3]

    def test_percentile_brackets_true_value(self):
        h = BucketHistogram(LATENCY_BUCKET_EDGES)
        values = list(range(1, 1001))
        for v in values:
            h.add(v)
        for p in (10, 50, 90, 99):
            true = values[int(p / 100 * len(values)) - 1]
            est = h.percentile(p)
            # estimate must land inside the true value's bucket
            lo = max(e for e in (0.0,) + h.edges if e < true)
            hi = min(e for e in h.edges if e >= true)
            assert lo <= est <= hi, (p, true, est)

    def test_percentile_exact_at_extremes(self):
        h = BucketHistogram((10.0, 100.0))
        for _ in range(5):
            h.add(7.0)
        assert h.percentile(0) == pytest.approx(7.0)
        assert h.percentile(100) == pytest.approx(7.0)
        with pytest.raises(ValueError):
            BucketHistogram((1.0,)).percentile(50)

    def test_merge_requires_identical_edges(self):
        a = BucketHistogram((2.0, 4.0))
        b = BucketHistogram((2.0, 8.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_equals_concatenation(self):
        a = BucketHistogram((2.0, 4.0, 8.0))
        b = BucketHistogram((2.0, 4.0, 8.0))
        c = BucketHistogram((2.0, 4.0, 8.0))
        for v in (1, 3, 9):
            a.add(v)
            c.add(v)
        for v in (2, 16):
            b.add(v)
            c.add(v)
        a.merge(b)
        assert a.counts == c.counts
        assert a.total == c.total and a.sum == c.sum
        assert a.minimum == c.minimum and a.maximum == c.maximum

    def test_mean_and_empty(self):
        h = BucketHistogram((2.0,))
        assert math.isnan(h.mean)
        h.add(4.0, weight=2)
        assert h.mean == pytest.approx(4.0)


class TestSwitchStats:
    def test_throughput_counts_all_departures_in_window(self):
        s = SwitchStats(n_outputs=2, warmup=10)
        # A cell that arrived before warmup but departs inside the window
        # must count toward throughput but not delay.
        s.record_departure(0, arrival=5, departure=15)
        s.horizon = 20
        assert s.delivered == 1
        assert s.delay.count == 0

    def test_delay_only_for_post_warmup_arrivals(self):
        s = SwitchStats(n_outputs=1, warmup=10)
        s.record_departure(0, arrival=12, departure=20)
        assert s.delay.count == 1
        assert s.delay.mean == 8

    def test_loss_probability(self):
        s = SwitchStats(n_outputs=1)
        for t in range(10):
            s.record_offer(t)
        s.record_drop(3)
        s.record_drop(4)
        assert s.loss_probability == pytest.approx(0.2)

    def test_loss_nan_without_offers(self):
        assert math.isnan(SwitchStats(n_outputs=1).loss_probability)

    def test_summary_keys(self):
        s = SwitchStats(n_outputs=1)
        s.record_offer(0)
        s.record_accept(0)
        s.record_departure(0, 0, 1)
        s.horizon = 10
        summary = s.summary()
        for key in ("offered", "delivered", "throughput", "mean_delay", "p99_delay"):
            assert key in summary
