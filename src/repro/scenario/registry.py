"""The architecture registry: every kernel in the repo behind one name.

Each :class:`ArchitectureDef` maps a scenario ``arch`` string to a builder
for one of the four model families:

* ``slotted`` — the §2 cell-per-slot architectures (:mod:`repro.switches`);
* ``word`` — the word/cycle-accurate kernels (:mod:`repro.core`): the
  checked and fast pipelined-memory switches, the wide-memory baseline,
  and the §3.5 split buffer;
* ``fabric`` — the omega multistage fabric, with any slotted architecture
  as its element;
* ``network`` — the [Dally90] wormhole k-ary n-cube.

:func:`prepare` turns a (scenario, seed) pair into a ready-to-run
:class:`Prepared` without running it — benchmarks that need to own the
timing loop build through it; :func:`run_scenario` prepares *and*
executes, returning one JSON-serializable result dict.  Determinism:
``prepare`` resets the global packet-uid counter, so a scenario's result
is bit-identical no matter how many scenarios ran before it in the same
process — the property the parallel sweep runner relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.drc.sanitizer import Sanitizer
from repro.scenario.spec import Scenario, ScenarioError, TrafficSpec, _suggest
from repro.sim.packet import reset_packet_ids
from repro.telemetry import Telemetry

SLOTTED, WORD, FABRIC, NETWORK = "slotted", "word", "fabric", "network"

#: traffic kinds each architecture family understands
TRAFFIC_KINDS: dict[str, tuple[str, ...]] = {
    SLOTTED: ("uniform", "bursty", "hotspot", "rotating", "permutation"),
    WORD: ("renewal", "renewal_tape", "saturating", "trace"),
    FABRIC: ("uniform", "bursty", "hotspot"),
    NETWORK: ("uniform",),
}


@dataclass(frozen=True)
class ArchitectureDef:
    """One registry entry (see module docstring)."""

    name: str
    kind: str  # SLOTTED | WORD | FABRIC | NETWORK
    description: str
    params: Mapping[str, Any]  # allowed config params -> defaults
    build: Callable[..., Any]  # kind-specific builder (see _prepare_* below)
    telemetry_ok: bool = False
    drain_ok: bool = False
    sanitize_ok: bool = False  # kernel has repro.drc sanitizer hook sites


REGISTRY: dict[str, ArchitectureDef] = {}


def _register(arch: ArchitectureDef) -> None:
    if arch.name in REGISTRY:
        raise AssertionError(f"duplicate architecture {arch.name!r}")
    REGISTRY[arch.name] = arch


def architectures() -> dict[str, ArchitectureDef]:
    """Name -> definition for every registered architecture."""
    return dict(REGISTRY)


# -- slotted architectures ---------------------------------------------------

def _slotted(name: str, description: str, build, extra: Mapping[str, Any] = {}):
    _register(ArchitectureDef(
        name=name, kind=SLOTTED, description=description,
        params={"n": 8, "capacity": None, **extra}, build=build,
        telemetry_ok=True, sanitize_ok=True,
    ))


def _build_fifo(p, seed):
    from repro import switches as sw
    return sw.FifoInputQueued(p["n"], p["n"], capacity=p["capacity"], seed=seed)


def _build_windowed(p, seed):
    from repro import switches as sw
    return sw.WindowedInputQueued(p["n"], p["n"], window=p["window"],
                                  capacity=p["capacity"], seed=seed)


def _build_voq(p, seed):
    from repro import switches as sw
    schedulers = {
        "pim": lambda: sw.PIM(iterations=p["iterations"], seed=seed),
        "islip": lambda: sw.Islip(iterations=p["iterations"]),
        "2drr": sw.TwoDimRoundRobin,
        "greedy": lambda: sw.GreedyMaximal(seed=seed),
        "max": sw.MaxSizeMatching,
    }
    try:
        sched = schedulers[p["scheduler"]]()
    except KeyError:
        raise ScenarioError(
            f"unknown voq scheduler {p['scheduler']!r}"
            f"{_suggest(str(p['scheduler']), schedulers)}; "
            f"valid schedulers: {', '.join(sorted(schedulers))}"
        ) from None
    return sw.VoqInputBuffered(p["n"], p["n"], sched,
                               capacity_per_input=p["capacity"])


def _build_output(p, seed):
    from repro import switches as sw
    return sw.OutputQueued(p["n"], p["n"], capacity=p["capacity"], seed=seed)


def _build_shared(p, seed):
    from repro import switches as sw
    return sw.SharedBuffer(p["n"], p["n"], capacity=p["capacity"], seed=seed,
                           policy=p["policy"])


def _build_crosspoint(p, seed):
    from repro import switches as sw
    return sw.CrosspointQueued(p["n"], p["n"], capacity=p["capacity"], seed=seed)


def _build_block(p, seed):
    from repro import switches as sw
    block = p["block"] if p["block"] is not None else max(p["n"] // 2, 1)
    return sw.BlockCrosspoint(p["n"], p["n"], block=block,
                              capacity_per_block=p["capacity"], seed=seed)


def _build_speedup(p, seed):
    from repro import switches as sw
    return sw.SpeedupSwitch(p["n"], p["n"], speedup=p["speedup"],
                            output_capacity=p["capacity"], seed=seed)


def _build_interleaved(p, seed):
    from repro import switches as sw
    # capacity doubles as the bank count here: PRIZMA shares one cell slot
    # per bank, so "buffer capacity" and "m_banks" are the same knob
    m_banks = p["m_banks"] if p["m_banks"] is not None else (
        p["capacity"] or 4 * p["n"])
    return sw.InterleavedSharedBuffer(p["n"], p["n"], m_banks=m_banks, seed=seed)


def _build_knockout(p, seed):
    from repro import switches as sw
    return sw.KnockoutSwitch(p["n"], p["n"], l_paths=p["l_paths"],
                             capacity=p["capacity"], seed=seed)


_slotted("fifo", "FIFO input queueing ([KaHM87] HoL-limited)", _build_fifo)
_slotted("windowed", "input queueing with lookahead window w", _build_windowed,
         {"window": 4})
_slotted("voq", "virtual output queues + matching scheduler", _build_voq,
         {"scheduler": "islip", "iterations": 4})
_slotted("output", "dedicated per-output queues", _build_output)
_slotted("shared", "ideal shared buffer (the paper's target)", _build_shared,
         {"policy": "complete"})
_slotted("crosspoint", "per-crosspoint queues", _build_crosspoint)
_slotted("block", "block-crosspoint queues", _build_block, {"block": None})
_slotted("speedup", "speedup-s fabric + output queues", _build_speedup,
         {"speedup": 2})
_slotted("interleaved", "PRIZMA-style interleaved shared banks",
         _build_interleaved, {"m_banks": None})
_slotted("knockout", "knockout concentrator (L paths)", _build_knockout,
         {"l_paths": 8})


# -- word-level kernels ------------------------------------------------------

_PIPELINED_PARAMS: Mapping[str, Any] = {
    "n": 8, "addresses": 256, "width_bits": 16, "depth": None, "quanta": 1,
    "priority": "reads_first", "cut_through": True, "credit_flow": False,
    "credits_per_input": None, "downstream_credits": None, "downstream_rtt": 0,
    "link_pipeline_stages": 0, "policy": "complete",
}


def _pipelined_config(p):
    from repro.core import PipelinedSwitchConfig
    from repro.core.arbiter import Priority

    try:
        priority = Priority(p["priority"])
    except ValueError:
        raise ScenarioError(
            f"unknown arbitration priority {p['priority']!r}; valid: "
            f"{', '.join(m.value for m in Priority)}"
        ) from None
    return PipelinedSwitchConfig(
        n=p["n"], addresses=p["addresses"], width_bits=p["width_bits"],
        depth=p["depth"], quanta=p["quanta"], priority=priority,
        cut_through=p["cut_through"], credit_flow=p["credit_flow"],
        credits_per_input=p["credits_per_input"],
        downstream_credits=p["downstream_credits"],
        downstream_rtt=p["downstream_rtt"],
        link_pipeline_stages=p["link_pipeline_stages"],
        policy=p["policy"],
    )


def _build_pipelined(p, source, telemetry, sanitizer=None):
    from repro.core import make_pipelined_switch
    return make_pipelined_switch(_pipelined_config(p), source, fast=False,
                                 telemetry=telemetry, sanitizer=sanitizer)


def _build_pipelined_fast(p, source, telemetry, sanitizer=None):
    from repro.core import make_pipelined_switch
    return make_pipelined_switch(_pipelined_config(p), source, fast=True,
                                 telemetry=telemetry, sanitizer=sanitizer)


#: batch-kernel extras on top of the pipelined config params
_PIPELINED_BATCH_PARAMS: Mapping[str, Any] = {
    **_PIPELINED_PARAMS, "batch_cycles": None, "jit": None,
}


def _build_pipelined_batch(p, source, telemetry, sanitizer=None):
    from repro.core import make_pipelined_switch
    return make_pipelined_switch(_pipelined_config(p), source, kernel="batch",
                                 telemetry=telemetry, sanitizer=sanitizer,
                                 batch_cycles=p["batch_cycles"], jit=p["jit"])


def _wide_config(p):
    from repro.core import WideSwitchConfig
    return WideSwitchConfig(n=p["n"], addresses=p["addresses"],
                            width_bits=p["width_bits"], depth=p["depth"],
                            cut_through=p["cut_through"])


def _build_wide(p, source, telemetry, sanitizer=None):
    from repro.core import WideMemorySwitch
    return WideMemorySwitch(_wide_config(p), source)


def _split_config(p):
    from repro.core import SplitBufferConfig
    return SplitBufferConfig(n=p["n"], addresses_each=p["addresses_each"],
                             width_bits=p["width_bits"])


def _build_split(p, source, telemetry, sanitizer=None):
    from repro.core import SplitPipelinedBuffer
    return SplitPipelinedBuffer(_split_config(p), source)


#: word archs: (config builder, switch builder) — config first so the
#: traffic source can be shaped (packet_words) before the switch exists.
_WORD_BUILDERS = {
    "pipelined": (_pipelined_config, _build_pipelined),
    "pipelined_fast": (_pipelined_config, _build_pipelined_fast),
    "pipelined_batch": (_pipelined_config, _build_pipelined_batch),
    "wide": (_wide_config, _build_wide),
    "split": (_split_config, _build_split),
}

_register(ArchitectureDef(
    name="pipelined", kind=WORD,
    description="checked word-level pipelined-memory switch (paper §3)",
    params=_PIPELINED_PARAMS, build=_WORD_BUILDERS["pipelined"],
    telemetry_ok=True, drain_ok=True, sanitize_ok=True,
))
_register(ArchitectureDef(
    name="pipelined_fast", kind=WORD,
    description="wave-level fast kernel (bit-identical statistics)",
    params=_PIPELINED_PARAMS, build=_WORD_BUILDERS["pipelined_fast"],
    telemetry_ok=True, drain_ok=True, sanitize_ok=True,
))
_register(ArchitectureDef(
    name="pipelined_batch", kind=WORD,
    description="array-batched kernel (bit-identical statistics in "
                "cycle batches; optional numba JIT)",
    params=_PIPELINED_BATCH_PARAMS, build=_WORD_BUILDERS["pipelined_batch"],
    telemetry_ok=True, drain_ok=True, sanitize_ok=False,
))
_register(ArchitectureDef(
    name="wide", kind=WORD,
    description="wide-memory shared buffer (paper figure 3 baseline)",
    params={"n": 8, "addresses": 256, "width_bits": 16, "depth": None,
            "cut_through": False},
    build=_WORD_BUILDERS["wide"], drain_ok=True,
))
_register(ArchitectureDef(
    name="split", kind=WORD,
    description="two half-depth pipelined memories (paper §3.5)",
    params={"n": 8, "addresses_each": 128, "width_bits": 16},
    build=_WORD_BUILDERS["split"],
))


# -- fabric and network ------------------------------------------------------

def _build_fabric(p, seed):
    from repro.fabric import OmegaFabric

    element = p["element"]
    edef = REGISTRY.get(element)
    if edef is None or edef.kind != SLOTTED:
        slotted = sorted(a.name for a in REGISTRY.values() if a.kind == SLOTTED)
        raise ScenarioError(
            f"fabric element {element!r} is not a slotted architecture"
            f"{_suggest(str(element), slotted)}; valid elements: "
            f"{', '.join(slotted)}"
        )
    eparams = _merged_params(edef, dict(p["element_params"] or {}, n=p["k"]),
                             where=f"fabric element {element!r}")
    return OmegaFabric(p["k"], p["stages"],
                       lambda: edef.build(eparams, seed))


_register(ArchitectureDef(
    name="fabric", kind=FABRIC,
    description="omega multistage fabric of k x k slotted elements",
    params={"k": 8, "stages": 2, "element": "shared", "element_params": None},
    build=_build_fabric, drain_ok=True,
))


def _build_wormhole(p, load, seed):
    from repro.network import KAryNCube, WormholeNetwork

    topo = KAryNCube(p["k"], p["dims"], wrap=p["wrap"])
    return WormholeNetwork(
        topo, lanes=p["lanes"], buffer_flits=p["buffer_flits"],
        message_flits=p["message_flits"], load=load, seed=seed,
        max_source_queue=p["max_source_queue"], dateline=p["dateline"],
    )


_register(ArchitectureDef(
    name="wormhole", kind=NETWORK,
    description="wormhole k-ary n-cube with virtual-channel lanes [Dally90]",
    params={"k": 8, "dims": 2, "lanes": 1, "buffer_flits": 16,
            "message_flits": 20, "wrap": False, "dateline": False,
            "max_source_queue": 64},
    build=_build_wormhole,
))


# -- validation --------------------------------------------------------------

def _arch_def(arch: str) -> ArchitectureDef:
    adef = REGISTRY.get(arch)
    if adef is None:
        names = sorted(REGISTRY)
        raise ScenarioError(
            f"unknown architecture {arch!r}{_suggest(arch, names)}; "
            f"registered architectures: {', '.join(names)}"
        )
    return adef


def _merged_params(adef: ArchitectureDef, params: Mapping[str, Any],
                   where: str) -> dict[str, Any]:
    unknown = set(params) - set(adef.params)
    if unknown:
        bad = sorted(unknown)[0]
        raise ScenarioError(
            f"{where}: unknown parameter {bad!r}{_suggest(bad, adef.params)}; "
            f"parameters of {adef.name!r}: {', '.join(sorted(adef.params))}"
        )
    return {**adef.params, **params}


def validate_scenario(scenario: Scenario) -> ArchitectureDef:
    """Full validation of a scenario against the registry.

    Returns the architecture definition; raises :class:`ScenarioError`
    with an actionable message otherwise.
    """
    scenario.validate()
    adef = _arch_def(scenario.arch)
    _merged_params(adef, scenario.params, where=f"scenario {scenario.name!r}")
    kinds = TRAFFIC_KINDS[adef.kind]
    if scenario.traffic.kind not in kinds:
        raise ScenarioError(
            f"scenario {scenario.name!r}: traffic kind "
            f"{scenario.traffic.kind!r} is not available for {adef.kind} "
            f"architecture {scenario.arch!r}"
            f"{_suggest(scenario.traffic.kind, kinds)}; valid kinds: "
            f"{', '.join(kinds)}"
        )
    if scenario.traffic.batched and adef.kind != SLOTTED:
        raise ScenarioError(
            f"scenario {scenario.name!r}: batched traffic generation applies "
            f"only to slotted architectures, not {scenario.arch!r}"
        )
    if scenario.traffic.kind == "saturating" and scenario.traffic.load != 1.0:
        raise ScenarioError(
            f"scenario {scenario.name!r}: 'saturating' traffic is load 1.0 "
            f"by definition; set traffic.load to 1.0 (got "
            f"{scenario.traffic.load}) or use 'renewal'"
        )
    if scenario.telemetry.enabled and not adef.telemetry_ok:
        ok = sorted(a.name for a in REGISTRY.values() if a.telemetry_ok)
        raise ScenarioError(
            f"scenario {scenario.name!r}: architecture {scenario.arch!r} has "
            f"no telemetry collection sites; telemetry-capable architectures: "
            f"{', '.join(ok)}"
        )
    if scenario.drain and not adef.drain_ok:
        raise ScenarioError(
            f"scenario {scenario.name!r}: architecture {scenario.arch!r} does "
            f"not support drain; drop 'drain' or use one of: "
            f"{', '.join(sorted(a.name for a in REGISTRY.values() if a.drain_ok))}"
        )
    if "policy" in adef.params and scenario.params.get("policy") is not None:
        # Parse the admission-policy spec now so a sweep full of cells fails
        # before any of them runs, with the policy layer's did-you-mean text.
        from repro.core.errors import ConfigError
        from repro.policy import parse_policy

        try:
            parse_policy(scenario.params["policy"])
        except ConfigError as exc:
            raise ScenarioError(f"scenario {scenario.name!r}: {exc}") from exc
    return adef


# -- traffic construction ----------------------------------------------------

def _slotted_source(traffic: TrafficSpec, n: int, seed: int):
    from repro.traffic import (
        BernoulliUniform,
        BurstyOnOff,
        Hotspot,
        RandomPermutation,
        RotatingPermutation,
    )

    p = traffic.params
    if traffic.kind == "uniform":
        return BernoulliUniform(n, n, traffic.load, seed=seed)
    if traffic.kind == "bursty":
        return BurstyOnOff(n, n, traffic.load, p.get("burst", 8), seed=seed)
    if traffic.kind == "hotspot":
        return Hotspot(n, n, traffic.load, hot=p.get("hot", 0),
                       hot_fraction=p.get("hot_fraction", 0.3), seed=seed)
    if traffic.kind == "rotating":
        return RotatingPermutation(n, traffic.load)
    if traffic.kind == "permutation":
        return RandomPermutation(n, traffic.load, seed=seed)
    raise AssertionError(traffic.kind)


def _word_source(traffic: TrafficSpec, cfg, seed: int):
    from repro.core import BatchRenewalSource, RenewalPacketSource, SaturatingSource

    if traffic.kind == "renewal":
        return RenewalPacketSource(
            n_out=cfg.n, packet_words=cfg.packet_words, load=traffic.load,
            width_bits=cfg.width_bits, seed=seed,
        )
    if traffic.kind == "renewal_tape":
        return BatchRenewalSource(
            n_out=cfg.n, packet_words=cfg.packet_words, load=traffic.load,
            width_bits=cfg.width_bits, seed=seed,
        )
    if traffic.kind == "saturating":
        dests = traffic.params.get("dests")
        return SaturatingSource(
            n_out=cfg.n, packet_words=cfg.packet_words, dests=dests,
            width_bits=cfg.width_bits, seed=seed,
        )
    if traffic.kind == "trace":
        from repro.core import TracePacketSource

        raw = traffic.params.get("schedule")
        if not isinstance(raw, dict):
            raise ScenarioError(
                "trace traffic needs params.schedule: a table mapping input "
                "link -> [[earliest_cycle, dst], ...]"
            )
        schedule = {
            int(link): [(int(c), int(d)) for c, d in items]
            for link, items in raw.items()
        }
        return TracePacketSource(
            n_out=cfg.n, packet_words=cfg.packet_words, schedule=schedule,
            width_bits=cfg.width_bits,
        )
    raise AssertionError(traffic.kind)


# -- preparation and execution -----------------------------------------------

@dataclass
class Prepared:
    """A built-but-not-run simulation for one (scenario, seed) pair.

    ``switch`` is the model object (slotted switch, word-level kernel,
    fabric, or network); ``source`` is the external traffic source for the
    families whose run loop takes one (slotted, fabric) and ``None`` where
    the source lives inside the model.  Benchmarks that must own the
    timing loop use these directly; everyone else calls :meth:`execute`.
    """

    scenario: Scenario
    seed: int
    kind: str
    switch: Any
    source: Any
    telemetry: Telemetry | None
    sanitizer: Sanitizer | None = None

    def execute(self) -> dict[str, Any]:
        """Run to the horizon (plus drain, if requested) and summarize."""
        sc = self.scenario
        stats = _EXECUTORS[self.kind](self)
        result: dict[str, Any] = {
            "scenario": sc.name,
            "arch": sc.arch,
            "kind": self.kind,
            "seed": self.seed,
            "horizon": sc.horizon,
            "warmup": sc.effective_warmup,
            "params": dict(sc.params),
            "traffic": sc.traffic.to_dict(),
            "stats": stats,
        }
        if self.sanitizer is not None:
            result["sanitizer"] = self.sanitizer.summary()
        if self.telemetry is not None and self.telemetry.enabled:
            result["telemetry"] = {
                "events": len(self.telemetry.events),
                "drop_taxonomy": self.telemetry.events.drop_taxonomy(),
                "occupancy": self.telemetry.occupancy_series(),
            }
            if self.telemetry.series is not None:
                result["telemetry"]["series"] = self.telemetry.series.summary()
        return _jsonable(result)


def telemetry_from_spec(spec) -> Telemetry:
    """Build the telemetry bundle a :class:`TelemetrySpec` asks for.

    The observability-plane channels are constructed here — a
    :class:`~repro.obs.sampling.SampledEventLog` when ``trace_sample`` is
    set (deterministic, seed-stable packet selection) and a
    :class:`~repro.obs.series.SeriesRing` when ``series`` is set — so
    every entry point (CLI, runner workers, checkpoint cold starts) gets
    an identically-shaped bundle from the same spec.
    """
    events = None
    series = None
    if spec.trace_sample:
        from repro.obs.sampling import SampledEventLog

        events = SampledEventLog(spec.trace_sample, spec.trace_seed)
    if spec.series:
        from repro.obs.series import SeriesRing

        series = SeriesRing(spec.series)
    return Telemetry.on(sample_interval=spec.sample_interval, events=events,
                        series=series)


def prepare(
    scenario: Scenario,
    seed: int | None = None,
    telemetry: Telemetry | None = None,
    sanitize: bool = False,
) -> Prepared:
    """Validate and build one (scenario, seed) simulation (see module doc).

    ``seed`` defaults to the scenario's first seed.  ``telemetry`` defaults
    to a fresh bundle when the scenario's telemetry spec asks for one.
    ``sanitize=True`` attaches a :class:`~repro.drc.Sanitizer` (the
    ``--sanitize`` path): the run halts with a structured
    :class:`~repro.drc.SanitizerError` on the first invariant violation.
    Resets the global packet-uid counter, making the build independent of
    whatever ran earlier in this process.
    """
    adef = validate_scenario(scenario)
    seed = scenario.seeds[0] if seed is None else seed
    if telemetry is None and scenario.telemetry.enabled:
        telemetry = telemetry_from_spec(scenario.telemetry)
    sanitizer: Sanitizer | None = None
    if sanitize:
        if not adef.sanitize_ok:
            ok = sorted(a.name for a in REGISTRY.values() if a.sanitize_ok)
            raise ScenarioError(
                f"scenario {scenario.name!r}: architecture {scenario.arch!r} "
                f"has no sanitizer hook sites; sanitize-capable "
                f"architectures: {', '.join(ok)}"
            )
        sanitizer = Sanitizer(telemetry=telemetry)
    params = _merged_params(adef, scenario.params, where=f"scenario {scenario.name!r}")
    reset_packet_ids()
    source: Any = None
    if adef.kind == SLOTTED:
        switch = adef.build(params, seed)
        source = _slotted_source(scenario.traffic, params["n"], seed + 1)
        if telemetry is not None:
            switch.attach_telemetry(telemetry)
        if sanitizer is not None:
            switch.attach_sanitizer(sanitizer)
        switch.stats.warmup = scenario.effective_warmup
    elif adef.kind == WORD:
        make_config, make_switch = adef.build
        cfg = make_config(params)
        word_source = _word_source(scenario.traffic, cfg, seed)
        switch = make_switch(params, word_source, telemetry, sanitizer)
        switch.warmup = scenario.effective_warmup
    elif adef.kind == FABRIC:
        switch = adef.build(params, seed)
        source = _slotted_source(scenario.traffic, switch.n, seed + 1)
        switch.warmup = scenario.effective_warmup
    else:  # NETWORK
        switch = adef.build(params, scenario.traffic.load, seed)
        switch.warmup = scenario.effective_warmup
    return Prepared(scenario=scenario, seed=seed, kind=adef.kind,
                    switch=switch, source=source, telemetry=telemetry,
                    sanitizer=sanitizer)


def prepared_from_switch(scenario: Scenario, seed: int, switch: Any) -> Prepared:
    """Wrap a checkpoint-restored kernel as a :class:`Prepared`.

    The restored switch carries its own telemetry/sanitizer attachments;
    this re-associates them with the scenario so :func:`execute_prepared`
    runs the remaining ``horizon - switch.cycle`` cycles and summarizes
    exactly like an uninterrupted run.  Only word-level architectures can
    be checkpointed, so only they can be wrapped.
    """
    adef = validate_scenario(scenario)
    if adef.kind != WORD:
        raise ScenarioError(
            f"scenario {scenario.name!r}: checkpoint/restore covers "
            f"word-level kernels only; {scenario.arch!r} is a {adef.kind} "
            f"architecture"
        )
    telemetry = switch.telemetry if switch._tel else None
    sanitizer = switch.sanitizer if switch._san else None
    return Prepared(scenario=scenario, seed=seed, kind=adef.kind,
                    switch=switch, source=None, telemetry=telemetry,
                    sanitizer=sanitizer)


def _execute_slotted(prep: Prepared) -> dict[str, Any]:
    sc, sw = prep.scenario, prep.switch
    if sc.traffic.batched:
        sw.run_fast(prep.source, sc.horizon)
    else:
        sw.run(prep.source, sc.horizon)
    stats = sw.stats.summary()
    stats["occupancy"] = sw.occupancy()
    if hasattr(sw, "policy_drops"):  # shared buffer with an admission policy
        stats["policy_drops"] = sw.policy_drops
    return stats


def _execute_word(prep: Prepared) -> dict[str, Any]:
    sc, sw = prep.scenario, prep.switch
    # Checkpoint-restored kernels start mid-horizon: run only the remainder
    # so a resumed execution lands on the same final cycle.
    remaining = sc.horizon - sw.cycle
    if remaining > 0:
        sw.run(remaining)
    if sc.drain:
        sw.drain()
    stats = {
        "offered": sw.stats.offered,
        "delivered": sw.stats.delivered,
        "dropped": sw.stats.dropped,
        "loss_probability": sw.stats.loss_probability,
        "link_utilization": sw.link_utilization,
        "ct_latency_mean": sw.ct_latency.mean,
        "cycles": sw.cycle,
    }
    if getattr(sw, "trace_ended_at", None) is not None:
        # Finite trace ran dry before the horizon (see satellite bugfix):
        # report the truncation instead of silently billing idle cycles.
        stats["trace_ended_at"] = sw.trace_ended_at
    if hasattr(sw, "deadline_overrides"):  # the two pipelined kernels
        stats.update(
            total_latency_mean=sw.total_latency.mean,
            ct_latency_p99=(sw.ct_latency_hist.quantile(0.99)
                            if sw.ct_latency_hist.total else math.nan),
            cut_through_waves=sw.cut_through_waves,
            plain_read_waves=sw.plain_read_waves,
            write_waves=sw.write_waves,
            idle_cycles=sw.idle_cycles,
            deadline_overrides=sw.deadline_overrides,
            overrun_drops=sw.overrun_drops,
            policy_drops=sw.policy_drops,
        )
    elif hasattr(sw, "memory_reads"):  # wide-memory baseline
        stats.update(
            memory_reads=sw.memory_reads, memory_writes=sw.memory_writes,
            cut_throughs=sw.cut_throughs, staging_drops=sw.staging_drops,
        )
    else:  # split buffer
        stats.update(
            cut_through_waves=sw.cut_through_waves,
            plain_read_waves=sw.plain_read_waves,
            write_waves=sw.write_waves,
            drops=sw.drops,
        )
    return stats


def _execute_fabric(prep: Prepared) -> dict[str, Any]:
    sc, fab = prep.scenario, prep.switch
    fab.run(prep.source, sc.horizon)
    if sc.drain:
        fab.drain()
    return dict(fab.summary())


def _execute_network(prep: Prepared) -> dict[str, Any]:
    net = prep.switch
    net.run(prep.scenario.horizon)
    return dict(net.summary())


_EXECUTORS = {
    SLOTTED: _execute_slotted,
    WORD: _execute_word,
    FABRIC: _execute_fabric,
    NETWORK: _execute_network,
}


def run_scenario(
    scenario: Scenario,
    seed: int | None = None,
    telemetry: Telemetry | None = None,
    out_dir: str | Path | None = None,
    sanitize: bool = False,
) -> dict[str, Any]:
    """Build, run and summarize one (scenario, seed) pair.

    With ``out_dir`` set and telemetry requested by the scenario, the
    events/metrics artifacts are written there as
    ``<name>-seed<seed>.events.jsonl`` / ``.metrics.txt`` (the runner
    routes workers through this, so exports happen in the worker that owns
    the telemetry bundle).  ``sanitize=True`` runs with the invariant
    sanitizer attached (see :func:`prepare`) and adds its summary to the
    result.
    """
    prep = prepare(scenario, seed, telemetry, sanitize=sanitize)
    return execute_prepared(prep, out_dir=out_dir)


def execute_prepared(
    prep: Prepared, out_dir: str | Path | None = None
) -> dict[str, Any]:
    """Execute a :class:`Prepared` simulation and export its artifacts.

    The tail half of :func:`run_scenario`, split out so checkpoint-aware
    callers (``repro run --resume``, the sweep runner's warmup-prefix
    forks) can execute a restored switch through the exact same
    summarize-and-export path as a cold one.
    """
    scenario = prep.scenario
    result = prep.execute()
    if out_dir is not None and prep.telemetry is not None and prep.telemetry.enabled:
        from repro.telemetry.export import write_events_jsonl, write_metrics_text

        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        stem = f"{scenario.name}-seed{result['seed']}"
        artifacts = {}
        if scenario.telemetry.events:
            events_path = out / f"{stem}.events.jsonl"
            write_events_jsonl(prep.telemetry.events, events_path)
            artifacts["events"] = events_path.name
        if scenario.telemetry.metrics:
            metrics_path = out / f"{stem}.metrics.txt"
            write_metrics_text(prep.telemetry.metrics, metrics_path)
            artifacts["metrics"] = metrics_path.name
        if scenario.telemetry.trace_sample:
            from repro.obs.spans import spans_from_events, write_spans_jsonl

            cfg = getattr(prep.switch, "config", None)
            if cfg is not None and hasattr(cfg, "depth"):
                spans = spans_from_events(
                    prep.telemetry.events.sorted_events(),
                    depth=cfg.depth, quanta=cfg.quanta,
                    horizon=prep.switch.cycle,
                )
                spans_path = out / f"{stem}.spans.jsonl"
                write_spans_jsonl(spans, spans_path)
                artifacts["spans"] = spans_path.name
        if scenario.telemetry.series and prep.telemetry.series is not None:
            series_path = out / f"{stem}.series.jsonl"
            # Deterministic columns only — rate columns are for live views.
            series_path.write_text(
                prep.telemetry.series.to_jsonl(include_rates=False)
            )
            artifacts["series"] = series_path.name
        if artifacts:
            result["telemetry"]["artifacts"] = artifacts
    return result


def slotted_factory(arch: str, seed: int = 1, **params) -> Callable[[], Any]:
    """A zero-argument factory for a slotted switch, via the registry.

    The harness sweep helpers take switch factories; this builds them from
    registry names so sweeps and benches never touch constructors:
    ``slotted_factory("voq", n=8, scheduler="pim")``.
    """
    adef = _arch_def(arch)
    if adef.kind != SLOTTED:
        raise ScenarioError(
            f"slotted_factory builds slot-level switches; {arch!r} is a "
            f"{adef.kind} architecture — use prepare()/run_scenario() for it"
        )
    merged = _merged_params(adef, params, where=f"slotted_factory({arch!r})")
    return lambda: adef.build(merged, seed)


def _jsonable(value: Any) -> Any:
    """Strict-JSON form: NaN/inf -> None, tuples -> lists, keys -> str."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value
