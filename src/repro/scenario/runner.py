"""Multiprocess sweep runner for scenarios.

:class:`ScenarioRunner` takes a list of scenarios (typically from
:func:`repro.scenario.load_scenarios` or :meth:`Scenario.expand`), fans the
(scenario, seed) jobs across worker processes, and merges results
deterministically: the merged list is ordered by job submission order
(scenario order x seed order), never by completion order, so a
``jobs=8`` sweep is bit-identical to ``jobs=1``.  Each job resets the
global packet-uid counter (see :func:`repro.scenario.registry.prepare`),
so per-job results are independent of scheduling too.

With ``out_dir`` set, every job writes ``<name>-seed<seed>.json`` *as soon
as it completes* and the merge writes ``results.json``; telemetry
artifacts (events JSONL, metrics text) are written by the worker that owns
the bundle.

**Interrupt safety.** A ``KeyboardInterrupt`` (or SIGTERM) mid-sweep no
longer loses the completed cells: per-job artifacts are already on disk,
and the runner additionally writes a ``results.partial.json`` manifest —
completed results in deterministic submission order plus the ``missing``
(name, seed) pairs — before re-raising.  Re-running the same sweep with
``resume=True`` loads the finished cells from their per-job files and runs
only the missing ones; the merged output is bit-identical to an
uninterrupted run (results are deterministic per job, and the merge is
ordered by submission, not completion).

**Checkpointing.** ``checkpoint_every=k`` snapshots every word-level
kernel to ``<out_dir>/checkpoints/<name>-seed<seed>.ckpt.json`` each ``k``
cycles (see :mod:`repro.checkpoint`); an interrupted cell resumes mid-run
from its snapshot instead of from cycle 0.  Grids whose cells share an
identical warmup prefix (same config, traffic, seed and explicit warmup —
differing only in name, horizon or drain) are detected automatically and
run the warmup *once*: the group warms one kernel up, snapshots it in
memory, and forks every member from that snapshot.  Restore is
bit-identical, so forked results equal cold-start results exactly.
"""

from __future__ import annotations

import json
import signal
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.scenario.registry import (
    WORD,
    execute_prepared,
    prepare,
    prepared_from_switch,
    run_scenario,
    validate_scenario,
)
from repro.scenario.spec import Scenario, ScenarioError

#: word-level architectures whose kernels repro.checkpoint can serialize
CHECKPOINTABLE_ARCHS = frozenset(
    {"pipelined", "pipelined_fast", "pipelined_batch"}
)


def _checkpoint_path(out_dir: str, name: str, seed: int) -> Path:
    return Path(out_dir) / "checkpoints" / f"{name}-seed{seed}.ckpt.json"


def _run_job(job: tuple[dict[str, Any], int, str | None, bool],
             live_cb=None) -> dict[str, Any]:
    """Worker entry point: job is (scenario dict, seed, out_dir or None,
    sanitize flag).

    Module-level (picklable) and dict-based so the parent's Scenario
    objects never need to cross the process boundary.  ``live_cb`` (only
    ever non-None for in-process execution — it cannot pickle) announces
    the job's live telemetry bundle to the metrics endpoint:
    ``live_cb(name, seed, telemetry)`` when the run starts,
    ``live_cb(name, seed, None)`` when it ends.
    """
    scenario_dict, seed, out_dir, sanitize = job
    scenario = Scenario.from_dict(scenario_dict)
    if live_cb is None:
        return run_scenario(scenario, seed, out_dir=out_dir, sanitize=sanitize)
    prep = prepare(scenario, seed, sanitize=sanitize)
    live_cb(scenario.name, seed, prep.telemetry)
    try:
        return execute_prepared(prep, out_dir=out_dir)
    finally:
        live_cb(scenario.name, seed, None)


def _run_job_checkpointed(
    job: tuple[dict[str, Any], int, str, bool, int], live_cb=None
) -> dict[str, Any]:
    """Worker entry point for a periodically-checkpointed job.

    Resumes from ``<out_dir>/checkpoints/<name>-seed<seed>.ckpt.json``
    when it exists (skipping ``prepare()`` entirely — the snapshot carries
    the packet-uid counter, RNG streams and all attachments), then runs in
    ``every``-cycle steps, saving a snapshot after each.  The final
    summary goes through the same :func:`execute_prepared` path as an
    uninterrupted run, so the result is bit-identical.
    """
    from repro import checkpoint

    scenario_dict, seed, out_dir, sanitize, every = job
    scenario = Scenario.from_dict(scenario_dict)
    ckpt = _checkpoint_path(out_dir, scenario.name, seed)
    if ckpt.exists():
        prep = prepared_from_switch(scenario, seed, checkpoint.restore(ckpt))
    else:
        prep = prepare(scenario, seed, sanitize=sanitize)
    if live_cb is not None:
        live_cb(scenario.name, seed, prep.telemetry)
    try:
        sw = prep.switch
        while sw.cycle < scenario.horizon:
            before = sw.cycle
            sw.run(min(every, scenario.horizon - sw.cycle))
            checkpoint.save(sw, ckpt)
            if sw.cycle == before:
                break  # finite trace ran dry; further cycles cannot change stats
        return execute_prepared(prep, out_dir=out_dir)
    finally:
        if live_cb is not None:
            live_cb(scenario.name, seed, None)


def _run_prefix_group(
    payload: tuple[list[dict[str, Any]], int, str | None], live_cb=None
) -> list[dict[str, Any]]:
    """Worker entry point for a warmup-prefix fork group.

    All members share config, traffic, seed and explicit warmup; they
    differ only in name/horizon/drain.  Warm one kernel to the shared
    warmup, snapshot it in memory, and fork every member from the
    snapshot.  Because restore is bit-identical, each member's result
    equals its cold-start result exactly.
    """
    from repro import checkpoint

    member_dicts, seed, out_dir = payload
    scenarios = [Scenario.from_dict(d) for d in member_dicts]
    prefix = prepare(scenarios[0], seed)
    prefix.switch.run(scenarios[0].effective_warmup)
    doc = checkpoint.snapshot_switch(prefix.switch)
    results = []
    for sc in scenarios:
        member = prepared_from_switch(sc, seed, checkpoint.restore_switch(doc))
        if live_cb is not None:
            live_cb(sc.name, seed, member.telemetry)
        try:
            results.append(execute_prepared(member, out_dir=out_dir))
        finally:
            if live_cb is not None:
                live_cb(sc.name, seed, None)
    return results


def _run_task(task: tuple[str, Any], live_cb=None) -> list[dict[str, Any]]:
    """Dispatch one task; always returns one result per covered job."""
    kind, payload = task
    if kind == "job":
        return [_run_job(payload, live_cb)]
    if kind == "ckpt":
        return [_run_job_checkpointed(payload, live_cb)]
    if kind == "group":
        return _run_prefix_group(payload, live_cb)
    raise AssertionError(kind)


class ScenarioRunner:
    """Run scenarios sequentially (``jobs=1``) or in parallel, same bits.

    ``sanitize=True`` attaches the :mod:`repro.drc` invariant sanitizer to
    every job (each worker gets its own — the sanitizer holds per-run
    state); a violation in any job raises out of :meth:`run`.

    ``checkpoint_every=k`` snapshots checkpointable kernels every ``k``
    cycles and ``resume=True`` reuses finished per-job results (and mid-run
    snapshots) from ``out_dir`` — see the module docstring.  Both require
    ``out_dir``.

    ``observer`` receives progress callbacks (all optional, duck-typed —
    :class:`repro.obs.server.SweepMetricsObserver` is the production
    implementation feeding the ``/metrics`` endpoint):

    * ``sweep_started(total, resumed)`` before execution, after resume
      accounting;
    * ``job_live(name, seed, telemetry_or_None)`` around each in-process
      job carrying a live telemetry bundle (never fires for pool workers —
      their registries arrive via the per-job artifacts instead);
    * ``job_finished(name, seed, result)`` from the parent as each job's
      result is recorded (any ``--jobs``);
    * ``sweep_finished()`` after the merge.

    Observers must not mutate results: the merged output stays bit-identical
    at any ``--jobs`` with or without an observer attached.
    """

    def __init__(self, jobs: int = 1, out_dir: str | Path | None = None,
                 sanitize: bool = False,
                 checkpoint_every: int | None = None,
                 resume: bool = False,
                 observer: Any | None = None):
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ScenarioError(f"jobs must be an integer >= 1, got {jobs!r}")
        if checkpoint_every is not None and (
            not isinstance(checkpoint_every, int)
            or isinstance(checkpoint_every, bool) or checkpoint_every < 1
        ):
            raise ScenarioError(
                f"checkpoint_every must be an integer >= 1 (cycles), got "
                f"{checkpoint_every!r}"
            )
        if (checkpoint_every is not None or resume) and out_dir is None:
            raise ScenarioError(
                "checkpoint_every/resume need out_dir: snapshots and per-job "
                "results live there"
            )
        self.jobs = jobs
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.sanitize = sanitize
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.observer = observer

    def _notify(self, method: str, *args: Any) -> None:
        fn = getattr(self.observer, method, None) if self.observer else None
        if fn is not None:
            fn(*args)

    def run(self, scenarios: Scenario | Iterable[Scenario]) -> list[dict[str, Any]]:
        """Validate everything up front, run all (scenario, seed) jobs.

        Returns one result dict per job in deterministic submission order.
        Raises :class:`ScenarioError` before running anything if any
        scenario is invalid or two jobs would collide on (name, seed).
        On interrupt, writes ``results.partial.json`` (when ``out_dir`` is
        set) and re-raises :class:`KeyboardInterrupt`.
        """
        if isinstance(scenarios, Scenario):
            scenarios = [scenarios]
        scenarios = list(scenarios)
        if not scenarios:
            raise ScenarioError("no scenarios to run")
        for sc in scenarios:
            adef = validate_scenario(sc)
            if self.sanitize and not adef.sanitize_ok:
                raise ScenarioError(
                    f"scenario {sc.name!r}: architecture {sc.arch!r} has no "
                    f"sanitizer hook sites; drop --sanitize or use a "
                    f"sanitize-capable architecture"
                )
            if self.checkpoint_every is not None and (
                adef.kind != WORD or sc.arch not in CHECKPOINTABLE_ARCHS
            ):
                ok = sorted(CHECKPOINTABLE_ARCHS)
                raise ScenarioError(
                    f"scenario {sc.name!r}: --checkpoint-every needs a "
                    f"checkpointable kernel; {sc.arch!r} is not one of "
                    f"{', '.join(ok)}"
                )
        jobs = self._job_list(scenarios)
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
        results: list[dict[str, Any] | None] = [None] * len(jobs)
        if self.resume:
            for i, (sc, seed) in enumerate(jobs):
                path = self.out_dir / f"{sc.name}-seed{seed}.json"
                if path.exists():
                    results[i] = json.loads(path.read_text())
        pending = [i for i, r in enumerate(results) if r is None]
        self._notify("sweep_started", len(jobs), len(jobs) - len(pending))
        tasks = self._task_list(jobs, pending)
        self._execute(tasks, jobs, results)
        final = [r for r in results if r is not None]
        assert len(final) == len(jobs)
        if self.out_dir is not None:
            merged = self.out_dir / "results.json"
            merged.write_text(json.dumps(final, indent=2, allow_nan=False) + "\n")
            partial = self.out_dir / "results.partial.json"
            if partial.exists():
                partial.unlink()  # the sweep is whole again
        self._notify("sweep_finished")
        return final

    # -- task construction ---------------------------------------------------

    def _task_list(
        self,
        jobs: Sequence[tuple[Scenario, int]],
        pending: Sequence[int],
    ) -> list[tuple[tuple[str, Any], list[int]]]:
        """Pending job indices -> (task, covered indices) list.

        Jobs eligible for warmup-prefix forking are grouped (>= 2 members
        sharing everything but name/horizon/drain); the rest become
        singleton tasks, checkpointed when ``checkpoint_every`` is set.
        """
        out = str(self.out_dir) if self.out_dir is not None else None
        groups: dict[tuple[int, str], list[int]] = {}
        for i in pending:
            sc, seed = jobs[i]
            if self._forkable(sc):
                body = {k: v for k, v in sc.to_dict().items()
                        if k not in ("name", "horizon", "drain", "seeds")}
                body["warmup"] = sc.effective_warmup
                key = (seed, json.dumps(body, sort_keys=True))
                groups.setdefault(key, []).append(i)
        grouped: set[int] = set()
        tasks: list[tuple[tuple[str, Any], list[int]]] = []
        for (seed, _), members in sorted(groups.items(),
                                         key=lambda kv: kv[1][0]):
            if len(members) < 2:
                continue
            grouped.update(members)
            payload = ([jobs[i][0].to_dict() for i in members], seed, out)
            tasks.append((("group", payload), list(members)))
        for i in pending:
            if i in grouped:
                continue
            sc, seed = jobs[i]
            if self.checkpoint_every is not None:
                task = ("ckpt", (sc.to_dict(), seed, out, self.sanitize,
                                 self.checkpoint_every))
            else:
                task = ("job", (sc.to_dict(), seed, out, self.sanitize))
            tasks.append((task, [i]))
        tasks.sort(key=lambda t: t[1][0])  # deterministic submission order
        return tasks

    def _forkable(self, sc: Scenario) -> bool:
        """Can this scenario fork from a shared warmup-prefix snapshot?"""
        if self.sanitize or self.checkpoint_every is not None:
            return False  # keep per-job checkpoint/sanitizer semantics simple
        if sc.arch not in CHECKPOINTABLE_ARCHS:
            return False
        if validate_scenario(sc).kind != WORD:
            return False
        warmup = sc.effective_warmup
        return warmup > 0 and sc.horizon >= warmup

    # -- execution -----------------------------------------------------------

    def _execute(
        self,
        tasks: list[tuple[tuple[str, Any], list[int]]],
        jobs: Sequence[tuple[Scenario, int]],
        results: list[dict[str, Any] | None],
    ) -> None:
        """Run tasks, flushing each job's artifact the moment it finishes.

        SIGTERM is mapped to :class:`KeyboardInterrupt`; on either, the
        partial-results manifest is written before re-raising, so a killed
        sweep keeps every finished cell.
        """
        previous = None
        in_main = threading.current_thread() is threading.main_thread()
        if in_main:
            def _terminate(signum, frame):
                raise KeyboardInterrupt
            previous = signal.signal(signal.SIGTERM, _terminate)
        try:
            if self.jobs == 1 or len(tasks) <= 1:
                live_cb = (getattr(self.observer, "job_live", None)
                           if self.observer else None)
                for task, indices in tasks:
                    task_results = (_run_task(task, live_cb)
                                    if live_cb is not None
                                    else _run_task(task))
                    self._record(indices, task_results, results)
            else:
                workers = min(self.jobs, len(tasks))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {pool.submit(_run_task, task): indices
                               for task, indices in tasks}
                    try:
                        outstanding = set(futures)
                        while outstanding:
                            done, outstanding = wait(
                                outstanding, return_when=FIRST_COMPLETED
                            )
                            for fut in done:
                                self._record(futures[fut], fut.result(),
                                             results)
                    except BaseException:
                        for fut in futures:
                            fut.cancel()
                        raise
        except KeyboardInterrupt:
            self._write_partial_manifest(jobs, results)
            raise
        finally:
            if in_main and previous is not None:
                signal.signal(signal.SIGTERM, previous)

    def _record(
        self,
        indices: Sequence[int],
        task_results: Sequence[dict[str, Any]],
        results: list[dict[str, Any] | None],
    ) -> None:
        assert len(indices) == len(task_results)
        for i, result in zip(indices, task_results):
            results[i] = result
            if self.out_dir is not None:
                path = (self.out_dir
                        / f"{result['scenario']}-seed{result['seed']}.json")
                path.write_text(
                    json.dumps(result, indent=2, allow_nan=False) + "\n"
                )
            self._notify("job_finished", result["scenario"], result["seed"],
                         result)

    def _write_partial_manifest(
        self,
        jobs: Sequence[tuple[Scenario, int]],
        results: Sequence[dict[str, Any] | None],
    ) -> None:
        if self.out_dir is None:
            return
        completed = [r for r in results if r is not None]
        missing = [[sc.name, seed]
                   for (sc, seed), r in zip(jobs, results) if r is None]
        manifest = {"completed": completed, "missing": missing}
        path = self.out_dir / "results.partial.json"
        path.write_text(json.dumps(manifest, indent=2, allow_nan=False) + "\n")

    @staticmethod
    def _job_list(scenarios: Sequence[Scenario]) -> list[tuple[Scenario, int]]:
        jobs: list[tuple[Scenario, int]] = []
        seen: set[tuple[str, int]] = set()
        for sc in scenarios:
            for seed in sc.seeds:
                key = (sc.name, seed)
                if key in seen:
                    raise ScenarioError(
                        f"duplicate job: scenario {sc.name!r} with seed {seed} "
                        f"appears twice; give scenarios unique names (expand() "
                        f"does this for grids) or drop the repeated seed"
                    )
                seen.add(key)
                jobs.append((sc, seed))
        return jobs
