"""E1 — FIFO input queueing saturation (paper §2.1, [KaHM87]).

Regenerates the saturation-throughput-vs-switch-size series: simulated FIFO
input-queued switch vs the HoL Monte-Carlo model vs the [KaHM87] table and
the ``2 - sqrt(2)`` asymptote.  Paper quote: "saturates at about 60% of the
link capacity".
"""

import math

from conftest import show

from repro.analysis.hol import (
    KAROL_TABLE,
    hol_saturation_asymptotic,
    hol_saturation_montecarlo,
)
from repro.switches import FifoInputQueued
from repro.switches.harness import (
    format_table,
    saturation_throughput,
    uniform_source_factory,
)


def _experiment():
    rows = []
    for n in (2, 4, 8, 16, 32):
        sim = saturation_throughput(
            lambda: FifoInputQueued(n, n, seed=1),
            uniform_source_factory(n, n),
            slots=25_000,
        )
        mc = hol_saturation_montecarlo(n, slots=60_000, seed=2)
        ref = KAROL_TABLE.get(n, hol_saturation_asymptotic())
        rows.append([n, sim, mc, ref])
    return rows


def test_e01_hol_saturation(run_once):
    rows = run_once(_experiment)
    show(
        format_table(
            ["n", "switch sim", "HoL model", "KaHM87 ref"],
            rows,
            title="E1: FIFO input queueing saturation throughput",
        )
    )
    for n, sim, mc, ref in rows:
        assert sim == math.inf or abs(sim - ref) < 0.02, (n, sim, ref)
        assert abs(mc - ref) < 0.02, (n, mc, ref)
    # the paper's "about 60%" at realistic sizes:
    big = [r for r in rows if r[0] >= 8]
    assert all(0.55 < r[1] < 0.65 for r in big)
    # monotone decline toward 2 - sqrt(2)
    sims = [r[1] for r in rows]
    assert sims == sorted(sims, reverse=True)
    assert sims[-1] > hol_saturation_asymptotic() - 0.02
