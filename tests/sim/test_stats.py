"""Tests for the statistics collectors."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import Counter, Histogram, SwitchStats


class TestCounter:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    @settings(max_examples=50)
    def test_matches_numpy(self, xs):
        c = Counter()
        for x in xs:
            c.add(x)
        assert c.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-9)
        assert c.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-6, abs=1e-6)
        assert c.minimum == min(xs)
        assert c.maximum == max(xs)

    def test_empty_counter_is_nan(self):
        c = Counter()
        assert math.isnan(c.mean)
        assert math.isnan(c.variance)

    def test_single_sample_variance_nan(self):
        c = Counter()
        c.add(1.0)
        assert math.isnan(c.variance)
        assert c.mean == 1.0

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=50),
        st.lists(st.floats(-100, 100), min_size=1, max_size=50),
    )
    @settings(max_examples=50)
    def test_merge_equals_concatenation(self, a, b):
        ca, cb, cc = Counter(), Counter(), Counter()
        for x in a:
            ca.add(x)
            cc.add(x)
        for x in b:
            cb.add(x)
            cc.add(x)
        ca.merge(cb)
        assert ca.count == cc.count
        assert ca.mean == pytest.approx(cc.mean, rel=1e-9, abs=1e-9)
        if ca.count >= 2:
            assert ca.variance == pytest.approx(cc.variance, rel=1e-6, abs=1e-6)

    def test_merge_empty_is_noop(self):
        c = Counter()
        c.add(3.0)
        c.merge(Counter())
        assert c.count == 1 and c.mean == 3.0


class TestHistogram:
    def test_pmf_sums_to_one(self):
        h = Histogram()
        for v in [1, 1, 2, 3, 3, 3]:
            h.add(v)
        pmf = h.pmf()
        assert sum(pmf.values()) == pytest.approx(1.0)
        assert pmf[3] == pytest.approx(0.5)

    def test_quantiles(self):
        h = Histogram()
        for v in range(100):
            h.add(v)
        assert h.quantile(0.0) == 0
        assert h.quantile(0.5) == 49
        assert h.quantile(1.0) == 99

    def test_quantile_validation(self):
        h = Histogram()
        h.add(1)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            Histogram().quantile(0.5)

    def test_mean_weighted(self):
        h = Histogram()
        h.add(10, weight=3)
        h.add(0, weight=1)
        assert h.mean == pytest.approx(7.5)


class TestSwitchStats:
    def test_throughput_counts_all_departures_in_window(self):
        s = SwitchStats(n_outputs=2, warmup=10)
        # A cell that arrived before warmup but departs inside the window
        # must count toward throughput but not delay.
        s.record_departure(0, arrival=5, departure=15)
        s.horizon = 20
        assert s.delivered == 1
        assert s.delay.count == 0

    def test_delay_only_for_post_warmup_arrivals(self):
        s = SwitchStats(n_outputs=1, warmup=10)
        s.record_departure(0, arrival=12, departure=20)
        assert s.delay.count == 1
        assert s.delay.mean == 8

    def test_loss_probability(self):
        s = SwitchStats(n_outputs=1)
        for t in range(10):
            s.record_offer(t)
        s.record_drop(3)
        s.record_drop(4)
        assert s.loss_probability == pytest.approx(0.2)

    def test_loss_nan_without_offers(self):
        assert math.isnan(SwitchStats(n_outputs=1).loss_probability)

    def test_summary_keys(self):
        s = SwitchStats(n_outputs=1)
        s.record_offer(0)
        s.record_accept(0)
        s.record_departure(0, 0, 1)
        s.horizon = 10
        summary = s.summary()
        for key in ("offered", "delivered", "throughput", "mean_delay", "p99_delay"):
            assert key in summary
