"""Batched `arrivals_matrix` generation: shape, encoding, and statistics.

The vectorized overrides consume the RNG in a different order than the
per-slot `arrivals()` loop, so the contract is distributional (same load,
same destination mix, same burst structure), plus exact agreement for the
base-class fallback, which replays `arrivals()` verbatim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.switches.shared_memory import SharedBuffer
from repro.traffic.base import TrafficSource
from repro.traffic.bernoulli import BernoulliMatrix, BernoulliUniform
from repro.traffic.bursty import BurstyOnOff
from repro.traffic.hotspot import Hotspot

SOURCES = [
    pytest.param(lambda: BernoulliUniform(4, 4, 0.6, seed=1), id="bernoulli"),
    pytest.param(lambda: BernoulliMatrix([[0.1, 0.2, 0.3], [0.3, 0.3, 0.3]],
                                         seed=2), id="matrix"),
    pytest.param(lambda: BurstyOnOff(4, 4, 0.5, 8.0, seed=3), id="bursty"),
    pytest.param(lambda: Hotspot(4, 4, 0.5, hot=2, hot_fraction=0.4, seed=4),
                 id="hotspot"),
]


@pytest.mark.parametrize("make", SOURCES)
def test_shape_range_and_load(make):
    src = make()
    m = src.arrivals_matrix(20_000)
    assert m.shape == (20_000, src.n_in)
    assert m.dtype.kind == "i"
    assert m.min() >= TrafficSource.NO_CELL
    assert m.max() < src.n_out
    empirical = (m >= 0).mean()
    assert empirical == pytest.approx(src.offered_load, abs=0.02)


@pytest.mark.parametrize("make", SOURCES)
def test_default_fallback_replays_arrivals(make):
    """TrafficSource.arrivals_matrix (the non-vectorized default) must be
    exactly the `arrivals()` stream — sources without an override keep
    their sample path under `run_fast`."""
    a, b = make(), make()
    matrix = TrafficSource.arrivals_matrix(a, 300)
    rows = [b.arrivals(t) for t in range(300)]
    ref = np.array([[TrafficSource.NO_CELL if d is None else d for d in r]
                    for r in rows])
    assert (matrix == ref).all()


def test_zero_slots():
    for make in (p.values[0] for p in SOURCES):
        m = make().arrivals_matrix(0)
        assert m.shape == (0, m.shape[1])


def test_bernoulli_matrix_rates():
    rates = [[0.05, 0.0, 0.45], [0.2, 0.2, 0.2]]
    src = BernoulliMatrix(rates, seed=5)
    m = src.arrivals_matrix(100_000)
    for i, row in enumerate(rates):
        for j, r in enumerate(row):
            assert (m[:, i] == j).mean() == pytest.approx(r, abs=0.01)


def test_hotspot_concentration():
    src = Hotspot(4, 4, 0.8, hot=1, hot_fraction=0.5, seed=6)
    m = src.arrivals_matrix(50_000)
    cells = m[m >= 0]
    # hot output gets hot_fraction plus its uniform share of the rest
    expect = 0.5 + 0.5 / 4
    assert (cells == 1).mean() == pytest.approx(expect, abs=0.01)


def test_bursty_burst_lengths_and_state():
    src = BurstyOnOff(1, 8, 0.5, 10.0, seed=7)
    m = src.arrivals_matrix(100_000)[:, 0]
    # mean run length of consecutive same-destination cells ~ mean_burst
    runs, cur = [], 0
    prev = TrafficSource.NO_CELL
    for d in m.tolist():
        if d >= 0 and (cur == 0 or d == prev):
            cur += 1
        else:
            if cur:
                runs.append(cur)
            cur = 1 if d >= 0 else 0
        prev = d
    if cur:
        runs.append(cur)
    assert np.mean(runs) == pytest.approx(10.0, abs=1.0)
    # the on/off state carries across calls, so a burst can straddle them
    src2 = BurstyOnOff(2, 4, 1.0, 5.0, seed=8)  # always on
    m1 = src2.arrivals_matrix(50)
    m2 = src2.arrivals_matrix(50)
    assert (m1 >= 0).all() and (m2 >= 0).all()


def test_run_fast_matches_run_statistically():
    def stats_for(fast):
        sw = SharedBuffer(8, 8, capacity=128)
        sw.stats.warmup = 2000
        src = BernoulliUniform(8, 8, 0.8, seed=9)
        if fast:
            sw.run_fast(src, 20_000)
        else:
            sw.run(src, 20_000)
        return sw.stats

    slow, fast = stats_for(False), stats_for(True)
    assert fast.horizon == slow.horizon == 20_000
    assert fast.throughput == pytest.approx(slow.throughput, abs=0.02)
    assert fast.mean_delay == pytest.approx(slow.mean_delay, rel=0.1)


def test_run_matrix_validates_shape():
    sw = SharedBuffer(4, 4, capacity=16)
    with pytest.raises(ValueError):
        sw.run_matrix(np.zeros((10, 3), dtype=np.int64))
    with pytest.raises(ValueError):
        sw.run_matrix(np.zeros(10, dtype=np.int64))
