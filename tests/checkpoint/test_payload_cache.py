"""Regression: the deterministic_payload memo is process-global and pure.

The module-level ``lru_cache`` on :func:`repro.core.sources.
deterministic_payload` persists across runs in one process.  That is safe
*only* because the function is pure — cache warmth must never change a
value, so restore-in-same-process and restore-in-fresh-process are
indistinguishable.  These tests pin that contract.
"""

import json

from repro.checkpoint import fingerprint, restore_switch, snapshot_switch
from repro.core import PipelinedSwitch, PipelinedSwitchConfig, RenewalPacketSource
from repro.core.sources import deterministic_payload
from repro.sim.packet import reset_packet_ids


def _build(seed=21):
    reset_packet_ids()
    cfg = PipelinedSwitchConfig(n=4, addresses=32)
    return PipelinedSwitch(cfg, RenewalPacketSource(4, cfg.packet_words,
                                                    load=0.8, seed=seed))


def test_cache_is_pure_across_clear():
    values = {(uid, size): deterministic_payload(uid, size)
              for uid in range(64) for size in (8, 16)}
    deterministic_payload.cache_clear()
    for (uid, size), expected in values.items():
        assert deterministic_payload(uid, size) == expected


def test_cache_state_never_leaks_into_results():
    """A warm cache from an unrelated run, or a cache cleared mid-run,
    yields bit-identical statistics (same fingerprint)."""
    ref = _build()
    ref.run(400)
    baseline = fingerprint(ref)

    # warm the cache with a *different* workload, then re-run
    other = _build(seed=77)
    other.run(300)
    again = _build()
    again.run(400)
    assert fingerprint(again) == baseline

    # clear the cache in the middle of a run
    cleared = _build()
    cleared.run(150)
    deterministic_payload.cache_clear()
    cleared.run(250)
    assert fingerprint(cleared) == baseline


def test_restore_into_cold_cache_is_identical():
    """Snapshots store uids, not payloads — restore re-derives them, and a
    cold cache (the fresh-process case) reproduces every word exactly."""
    sw = _build()
    sw.run(167)
    doc = json.loads(json.dumps(snapshot_switch(sw)))
    deterministic_payload.cache_clear()  # simulate a fresh process
    resumed = restore_switch(doc)
    resumed.run(233)
    ref = _build()
    ref.run(400)
    assert fingerprint(resumed) == fingerprint(ref)
