"""E2 — Wormhole saturation with multi-flit messages (paper §2.1, [Dally90]).

Paper quote: "in [Dally90 (fig. 8, 1 lane)], with 20-flit messages and
16-flit buffers, simulation showed saturation at about 25% of link capacity".
This bench regenerates the delivered-fraction-vs-lanes series on an 8-ary
2-mesh with exactly those message/buffer sizes, plus the virtual-channel
recovery that motivated Dally's paper.
"""

from conftest import show

from repro.network import KAryNCube, WormholeNetwork
from repro.switches.harness import format_table


def _experiment():
    topo = KAryNCube(8, 2)
    rows = []
    for lanes in (1, 2, 4):
        net = WormholeNetwork(
            topo, lanes=lanes, buffer_flits=16, message_flits=20,
            load=1.0, seed=4,
        )
        net.warmup = 3000
        net.run(12_000)
        s = net.summary()
        rows.append(
            [lanes, s["delivered_fraction"], s["mean_network_latency"]]
        )
    return rows


def test_e02_wormhole_saturation(run_once):
    rows = run_once(_experiment)
    show(
        format_table(
            ["lanes", "saturation (fraction of capacity)", "network latency (cycles)"],
            rows,
            title="E2: wormhole, 20-flit messages / 16-flit buffers (8-ary 2-mesh)",
        )
    )
    by_lanes = {r[0]: r[1] for r in rows}
    # the paper's ~25% single-lane figure:
    assert 0.15 < by_lanes[1] < 0.40
    # virtual channels recover throughput monotonically:
    assert by_lanes[1] < by_lanes[2] < by_lanes[4]
