"""Synthetic traffic generators for the switch simulators."""

from repro.traffic.base import RandomTrafficSource, TrafficSource
from repro.traffic.bernoulli import BernoulliMatrix, BernoulliUniform
from repro.traffic.bursty import BurstyOnOff
from repro.traffic.hotspot import Hotspot
from repro.traffic.permutation import (
    FixedPermutation,
    RandomPermutation,
    RotatingPermutation,
)
from repro.traffic.trace import TraceSource, record_trace

__all__ = [
    "TrafficSource",
    "RandomTrafficSource",
    "BernoulliUniform",
    "BernoulliMatrix",
    "BurstyOnOff",
    "Hotspot",
    "FixedPermutation",
    "RotatingPermutation",
    "RandomPermutation",
    "TraceSource",
    "record_trace",
]
