"""E7 — Telegraphos I functional reproduction (paper §4.1).

The FPGA prototype: 4x4, 8-bit links at 13.3 MHz (107 Mb/s/link), 8-byte
packets, 8 pipeline stages, credit flow control.  We run the word-level
switch in exactly that configuration at full load and verify lossless
line-rate operation plus the published configuration figures and gate-count
model.
"""

from conftest import show

from repro.core import PipelinedSwitch, SaturatingSource
from repro.switches.harness import format_table
from repro.vlsi.telegraphos import TELEGRAPHOS_I, telegraphos1_report


def _experiment():
    cfg = TELEGRAPHOS_I.switch_config(credit_flow=True)
    src = SaturatingSource(
        n_out=cfg.n, packet_words=cfg.packet_words,
        width_bits=cfg.width_bits, seed=5,
    )
    sw = PipelinedSwitch(cfg, src)
    sw.warmup = 2000
    sw.run(60_000)
    return sw, telegraphos1_report()


def test_e07_telegraphos1(run_once):
    sw, report = run_once(_experiment)
    pub, mod = report["published"], report["model"]
    rows = [[k, pub[k], mod[k]] for k in pub]
    rows.append(["full-load utilization", "1.0 (lossless)", f"{sw.link_utilization:.3f}"])
    rows.append(["drops", 0, sw.stats.dropped])
    show(format_table(["figure", "paper", "model/sim"], rows,
                      title="E7: Telegraphos I (FPGA prototype, §4.1)"))
    # configuration figures match exactly
    assert mod["links"] == pub["links"]
    assert mod["packet_bytes"] == pub["packet_bytes"]
    assert mod["stages"] == pub["stages"]
    assert abs(mod["link_mbps"] - pub["link_mbps"]) < 1.0
    # gate model within the calibration band
    assert abs(mod["datapath_gates"] - pub["datapath_gates"]) < 0.35 * pub["datapath_gates"]
    # functional: lossless line rate under credit flow control
    assert sw.stats.dropped == 0
    assert sw.link_utilization > 0.95
