"""Block-crosspoint buffering — a grid of shared buffers (paper §2.2, §3.5).

"A mixture of crosspoint and shared buffering ... a number of shared buffers,
each dedicated to a certain subset of incoming and outgoing links."  Inputs
and outputs are partitioned into blocks of ``block`` links; each
(input-block, output-block) pair owns one shared buffer.  The paper proposes
this as the scaling escape hatch when a single pipelined shared buffer's
throughput quantum becomes too large (§3.5), with each block buffer itself
built as a pipelined memory.

Degenerate cases (verified by property tests): ``block == n`` is a single
shared buffer; ``block == 1`` is crosspoint queueing.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sim.packet import Cell
from repro.sim.rng import make_rng
from repro.switches.base import SlottedSwitch


class BlockCrosspoint(SlottedSwitch):
    """Grid of shared buffers over ``block``-sized link groups.

    Parameters
    ----------
    block:
        Links per group; must divide both ``n_in`` and ``n_out``.
    capacity_per_block:
        Cells each block buffer can hold (``None`` = infinite).
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        block: int,
        capacity_per_block: int | None = None,
        warmup: int = 0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_in, n_out, warmup)
        if block < 1 or n_in % block or n_out % block:
            raise ValueError(
                f"block ({block}) must divide n_in ({n_in}) and n_out ({n_out})"
            )
        self.block = block
        self.capacity_per_block = capacity_per_block
        self.in_blocks = n_in // block
        self.out_blocks = n_out // block
        # queues[bi][bj][j_local]: FIFO of cells in block buffer (bi, bj)
        # destined to local output j_local; occupancy tracked per block buffer.
        self.queues: list[list[list[deque[Cell]]]] = [
            [[deque() for _ in range(block)] for _ in range(self.out_blocks)]
            for _ in range(self.in_blocks)
        ]
        self._block_occ = [[0] * self.out_blocks for _ in range(self.in_blocks)]
        self._rr = [0] * n_out  # per-output rotating priority over input blocks
        self.rng = make_rng(seed)

    def _admit(self, cell: Cell) -> bool:
        bi, bj = cell.src // self.block, cell.dst // self.block
        if (
            self.capacity_per_block is not None
            and self._block_occ[bi][bj] >= self.capacity_per_block
        ):
            return False
        self.queues[bi][bj][cell.dst % self.block].append(cell)
        self._block_occ[bi][bj] += 1
        return True

    def _select_departures(self) -> list[Cell | None]:
        departures: list[Cell | None] = [None] * self.n_out
        for j in range(self.n_out):
            bj, jl = j // self.block, j % self.block
            nonempty = [
                bi for bi in range(self.in_blocks) if self.queues[bi][bj][jl]
            ]
            if not nonempty:
                continue
            ptr = self._rr[j]
            winner = min(nonempty, key=lambda bi: (bi - ptr) % self.in_blocks)
            self._rr[j] = (winner + 1) % self.in_blocks
            departures[j] = self.queues[winner][bj][jl].popleft()
            self._block_occ[winner][bj] -= 1
        return departures

    def occupancy(self) -> int:
        return sum(sum(row) for row in self._block_occ)
