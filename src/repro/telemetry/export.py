"""Exporters: JSONL event streams, Prometheus text metrics, Chrome traces.

The Chrome-trace (Perfetto-loadable) view renders the pipelined memory the
way paper figure 5 draws it: one track per memory bank, each wave a
diagonal staircase of one-cycle slices marching across the banks.  A
correct switch therefore shows at most one slice starting per cycle on the
``M0`` track (one wave initiation per cycle) and never two slices
overlapping on any bank track (single-ported banks) —
:func:`validate_chrome_trace` checks both, so loading the file in
https://ui.perfetto.dev is visual confirmation of properties the test
suite asserts mechanically.

Trace JSON structure (the subset of the Trace Event Format we emit):

* ``M`` metadata events naming the processes (``inputs`` / ``banks`` /
  ``links``) and their threads (ports and banks);
* ``X`` complete events: 1-cycle bank slices per wave, input-latch
  residency slices per packet, head-to-tail link slices per departure;
* ``i`` instant events marking drops on the input track.

``ts``/``dur`` are in cycles (the Trace Event Format nominally uses
microseconds; 1 cycle = 1 µs makes Perfetto's timeline read in cycles).
"""

from __future__ import annotations

import json
import math
from typing import Iterable

from repro.telemetry.events import (
    ARRIVE,
    CUT_THROUGH,
    DEPART,
    DROP,
    READ_WAVE,
    STORE_WAVE,
    WAVE_KINDS,
    Event,
    EventLog,
)
from repro.telemetry.metrics import HistogramMetric, MetricsRegistry, full_name

PID_INPUTS, PID_BANKS, PID_LINKS = 0, 1, 2

_WAVE_NAMES = {STORE_WAVE: "WR", CUT_THROUGH: "CT", READ_WAVE: "RD"}


# -- JSONL events -----------------------------------------------------------
def events_jsonl(log: EventLog) -> str:
    """One compact JSON object per line, in canonical event order."""
    return "".join(
        json.dumps(e.as_dict(), separators=(",", ":")) + "\n"
        for e in log.sorted_events()
    )


def write_events_jsonl(log: EventLog, path) -> None:
    with open(path, "w") as fh:
        fh.write(events_jsonl(log))


# -- Prometheus text metrics ------------------------------------------------
def _escape_help(text: str) -> str:
    # HELP lines escape backslash and newline only (quotes stay literal).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (the 0.0.4 subset we need).

    Registry iteration is sorted by (name, labels), so each metric family
    is contiguous; ``# HELP`` (when registered via ``describe``) and
    ``# TYPE`` are emitted exactly once, ahead of the family's samples.
    """
    lines: list[str] = []
    seen_families: set[str] = set()
    help_for = getattr(registry, "help_for", lambda name: None)
    for m in registry:
        if m.name not in seen_families:
            seen_families.add(m.name)
            help_text = help_for(m.name)
            if help_text:
                lines.append(f"# HELP {m.name} {_escape_help(help_text)}")
            if isinstance(m, HistogramMetric):
                kind = "histogram"
            else:
                kind = "counter" if m.name.endswith("_total") else "gauge"
            lines.append(f"# TYPE {m.name} {kind}")
        if isinstance(m, HistogramMetric):
            for le, cum in m.hist.cumulative():
                le_txt = "+Inf" if math.isinf(le) else f"{le:g}"
                labels = m.labels + (("le", le_txt),)
                lines.append(f"{full_name(m.name + '_bucket', labels)} {cum}")
            lines.append(f"{full_name(m.name + '_sum', m.labels)} {m.hist.sum:g}")
            lines.append(f"{full_name(m.name + '_count', m.labels)} {m.hist.total}")
        else:
            value = m.value
            txt = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"{full_name(m.name, m.labels)} {txt}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_text(registry: MetricsRegistry, path) -> None:
    with open(path, "w") as fh:
        fh.write(render_prometheus(registry))


# -- Chrome trace -----------------------------------------------------------
def _meta(pid: int, name: str, sort: int) -> list[dict]:
    return [
        {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
         "args": {"name": name}},
        {"ph": "M", "pid": pid, "tid": 0, "name": "process_sort_index",
         "args": {"sort_index": sort}},
    ]


def _thread_meta(pid: int, tid: int, name: str) -> dict:
    return {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": name}}


def chrome_trace_from_events(
    events: Iterable[Event], *, depth: int, quanta: int = 1, n: int = 0,
    horizon: int | None = None, link_pipeline_stages: int = 0,
) -> dict:
    """Build a Chrome-trace dict from lifecycle events, in closed form.

    A wave admitted at cycle ``t0`` occupies bank ``k`` of quantum ``q`` at
    exactly ``t0 + q*depth + k`` — the figure-5 law — so bank slices need
    only the admission events.  ``horizon`` clips slices the simulation
    never reached (waves still in flight when the run stopped).

    Works identically for the checked and the fast kernel: neither needs to
    have simulated words for the view to be exact.
    """
    events = list(events)
    trace: list[dict] = []
    max_port = max((max(e.src, e.dst) for e in events), default=-1)
    n = max(n, max_port + 1)

    trace += _meta(PID_INPUTS, "inputs (latch residency)", 0)
    trace += _meta(PID_BANKS, "banks (wave pipeline)", 1)
    trace += _meta(PID_LINKS, "output links", 2)
    for i in range(n):
        trace.append(_thread_meta(PID_INPUTS, i, f"in{i}"))
        trace.append(_thread_meta(PID_LINKS, i, f"out{i}"))
    for k in range(depth):
        trace.append(_thread_meta(PID_BANKS, k, f"M{k}"))

    arrivals: dict[int, Event] = {}
    for e in events:
        if e.kind == ARRIVE:
            arrivals[e.uid] = e

    def clip(ts: int) -> bool:
        return horizon is not None and ts >= horizon

    for e in events:
        if e.kind in WAVE_KINDS:
            name = f"{_WAVE_NAMES[e.kind]} p{e.uid}"
            for q in range(quanta):
                for k in range(depth):
                    ts = e.cycle + q * depth + k
                    if clip(ts):
                        continue
                    trace.append({
                        "ph": "X", "pid": PID_BANKS, "tid": k, "ts": ts,
                        "dur": 1, "name": name, "cat": "wave",
                        "args": {"uid": e.uid, "kind": e.kind, "quantum": q,
                                 "src": e.src, "dst": e.dst},
                    })
            # Latch residency: head arrival to store-wave admission.
            arr = arrivals.get(e.uid)
            if arr is not None and e.kind in (STORE_WAVE, CUT_THROUGH):
                trace.append({
                    "ph": "X", "pid": PID_INPUTS, "tid": arr.src,
                    "ts": arr.cycle, "dur": max(e.cycle - arr.cycle, 1),
                    "name": f"p{e.uid} -> out{e.dst}", "cat": "latch",
                    "args": {"uid": e.uid, "dst": e.dst},
                })
        elif e.kind == DEPART:
            head = e.aux if e.aux >= 0 else e.cycle
            trace.append({
                "ph": "X", "pid": PID_LINKS, "tid": e.dst, "ts": head,
                "dur": e.cycle - head + 1, "name": f"p{e.uid}", "cat": "link",
                "args": {"uid": e.uid, "src": e.src, "head": head,
                         "tail": e.cycle},
            })
        elif e.kind == DROP:
            trace.append({
                "ph": "i", "pid": PID_INPUTS, "tid": e.src, "ts": e.cycle,
                "s": "t", "name": f"drop p{e.uid} ({e.cause})", "cat": "drop",
                "args": {"uid": e.uid, "cause": e.cause, "dst": e.dst},
            })

    trace.sort(key=lambda ev: (ev["ph"] != "M", ev.get("ts", 0),
                               ev["pid"], ev["tid"]))
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.telemetry",
            "depth": depth, "quanta": quanta, "n": n,
            "link_pipeline_stages": link_pipeline_stages,
            "time_unit": "cycles",
        },
    }


def chrome_trace_from_tracer(tracer) -> dict:
    """Chrome trace from a :class:`~repro.core.tracing.WaveTracer` record.

    Unlike :func:`chrome_trace_from_events` this reads the *actual* per-cycle
    stage occupancy the checked model executed — the two must agree exactly
    (tests compare them; that comparison is the figure-5 law again).
    """
    from repro.core.control import WaveOp

    sw = tracer.switch
    cfg = sw.config
    tags = {WaveOp.WRITE: "WR", WaveOp.READ: "RD", WaveOp.WRITE_CT: "CT"}
    kinds = {WaveOp.WRITE: STORE_WAVE, WaveOp.READ: READ_WAVE,
             WaveOp.WRITE_CT: CUT_THROUGH}
    trace: list[dict] = []
    trace += _meta(PID_BANKS, "banks (wave pipeline)", 1)
    for k in range(cfg.depth):
        trace.append(_thread_meta(PID_BANKS, k, f"M{k}"))
    for rec in tracer.records:
        for k, cw in enumerate(rec.stages):
            if cw is None:
                continue
            trace.append({
                "ph": "X", "pid": PID_BANKS, "tid": k, "ts": rec.cycle,
                "dur": 1, "name": f"{tags[cw.op]} p{cw.packet_uid}",
                "cat": "wave",
                "args": {"uid": cw.packet_uid, "kind": kinds[cw.op],
                         "quantum": cw.quantum, "addr": cw.addr},
            })
    trace.sort(key=lambda ev: (ev["ph"] != "M", ev.get("ts", 0),
                               ev["pid"], ev["tid"]))
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.core.tracing.WaveTracer",
                      "depth": cfg.depth, "quanta": cfg.quanta, "n": cfg.n,
                      "time_unit": "cycles"},
    }


def validate_chrome_trace(obj: dict) -> None:
    """Structural + semantic validation; raises ``ValueError`` on failure.

    Structural: the Trace Event Format subset we emit (every event has
    ``ph``/``pid``/``tid``/``name``; complete events carry integer ``ts``
    and ``dur >= 1``).  Semantic: on the bank tracks, no two slices overlap
    (single-ported banks) and at most one slice *starts* per cycle on bank
    ``M0`` (one wave initiation per cycle — the paper's §3.3 budget).
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    bank_busy: set[tuple[int, int]] = set()  # (tid, cycle)
    m0_starts: set[int] = set()
    for idx, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {idx} is not an object")
        for req in ("ph", "pid", "tid", "name"):
            if req not in ev:
                raise ValueError(f"event {idx} missing required key {req!r}")
        ph = ev["ph"]
        if ph == "M":
            continue
        if not isinstance(ev.get("ts"), int) or ev["ts"] < 0:
            raise ValueError(f"event {idx}: bad ts {ev.get('ts')!r}")
        if ph == "X":
            if not isinstance(ev.get("dur"), int) or ev["dur"] < 1:
                raise ValueError(f"event {idx}: bad dur {ev.get('dur')!r}")
            if ev["pid"] == PID_BANKS:
                tid, ts = ev["tid"], ev["ts"]
                for c in range(ts, ts + ev["dur"]):
                    if (tid, c) in bank_busy:
                        raise ValueError(
                            f"bank M{tid} double-booked at cycle {c} — "
                            f"single-ported bank conflict in the trace"
                        )
                    bank_busy.add((tid, c))
                if tid == 0:
                    if ts in m0_starts:
                        raise ValueError(
                            f"two waves initiated at cycle {ts} — violates "
                            f"the one-initiation-per-cycle budget"
                        )
                    m0_starts.add(ts)
        elif ph != "i":
            raise ValueError(f"event {idx}: unexpected phase {ph!r}")


def write_chrome_trace(trace: dict, path) -> None:
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
