"""Cross-kernel equivalence of the admission-policy layer.

Two contracts, both bit-level:

* **CompleteSharing is the seed.**  A config with ``policy="complete"``
  (or none at all) must be indistinguishable from the pre-policy kernels
  in every statistic, telemetry stream and drop taxonomy — the policy
  plane must cost the default path nothing.
* **Non-trivial policies are kernel-invariant.**  StaticThreshold,
  DynamicThreshold and PortReservation must produce identical decision
  streams — stats, ``policy_drops``, ``DROP_POLICY`` events — on the
  checked, fast and batch kernels, at every ``batch_cycles``, and on the
  numba array core (which runs the policy as compiled integer codes).
"""

from __future__ import annotations

import pytest

from repro.core import (
    BatchPipelinedSwitch,
    BatchRenewalSource,
    FastPathUnsupportedError,
    FastPipelinedSwitch,
    PipelinedSwitch,
    PipelinedSwitchConfig,
    SaturatingSource,
)
from repro.core.errors import ConfigError
from repro.policy import AdmissionPolicy
from repro.sim.packet import reset_packet_ids
from repro.telemetry import DROP_POLICY, Telemetry

POLICIES = [
    "complete",
    "static:cap=4",
    "dynamic:alpha=1.0",
    "dynamic:alpha=0.75",
    "reservation:reserve=2",
]

BATCH_SIZES = (1, 7, 256)


def _source(cfg, load, seed):
    if load >= 1.0:
        return SaturatingSource(n_out=cfg.n, packet_words=cfg.packet_words,
                                seed=seed)
    return BatchRenewalSource(n_out=cfg.n, packet_words=cfg.packet_words,
                              load=load, width_bits=cfg.width_bits, seed=seed)


def _fingerprint(sw) -> dict:
    return {
        "stats": sw.stats,
        "ct_latency": sw.ct_latency,
        "total_latency": sw.total_latency,
        "cut_through_waves": sw.cut_through_waves,
        "plain_read_waves": sw.plain_read_waves,
        "write_waves": sw.write_waves,
        "idle_cycles": sw.idle_cycles,
        "overrun_drops": sw.overrun_drops,
        "policy_drops": sw.policy_drops,
        "cycle": sw.cycle,
    }


def _run(kernel, cfg_kwargs, load, seed, *, batch=None, jit=None,
         telemetry=None, cycles=1500):
    reset_packet_ids()
    cfg = PipelinedSwitchConfig(**cfg_kwargs)
    src = _source(cfg, load, seed)
    if kernel is BatchPipelinedSwitch:
        kwargs = {}
        if batch is not None:
            kwargs["batch_cycles"] = batch
        if jit is not None:
            kwargs["jit"] = jit
        sw = BatchPipelinedSwitch(cfg, src, telemetry=telemetry, **kwargs)
    else:
        sw = kernel(cfg, src, telemetry=telemetry)
    sw.warmup = 200
    sw.run(cycles)
    sw.drain()
    return sw


# a droppy shape: small buffer, hot destinations, saturating inputs
DROPPY = dict(n=4, addresses=16)
RENEWAL = dict(n=8, addresses=32)


class TestKernelInvariance:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("cfg_kwargs,load,seed", [
        pytest.param(DROPPY, 1.0, 3, id="4x4-saturated"),
        pytest.param(RENEWAL, 0.8, 1, id="8x8-renewal"),
    ])
    def test_policy_bit_identical_across_kernels(self, policy, cfg_kwargs,
                                                 load, seed):
        kwargs = {**cfg_kwargs, "policy": policy}
        fp = _fingerprint(_run(PipelinedSwitch, kwargs, load, seed))
        fast_fp = _fingerprint(_run(FastPipelinedSwitch, kwargs, load, seed))
        assert fast_fp == fp, f"fast diverged under {policy}"
        for batch in BATCH_SIZES:
            got = _fingerprint(_run(BatchPipelinedSwitch, kwargs, load, seed,
                                    batch=batch))
            assert got == fp, f"batch={batch} diverged under {policy}"
        # the array core runs the policy as compiled integer codes
        got = _fingerprint(_run(BatchPipelinedSwitch, kwargs, load, seed,
                                batch=64, jit=True))
        assert got == fp, f"array core diverged under {policy}"

    def test_non_trivial_policies_actually_refuse(self):
        """Guard: the droppy shape exercises every policy's refusal path,
        otherwise the invariance test would vacuously pass."""
        for policy in POLICIES[1:]:
            sw = _run(PipelinedSwitch, {**DROPPY, "policy": policy}, 1.0, 3)
            assert sw.policy_drops > 0, f"{policy} never refused"

    def test_complete_sharing_is_the_seed(self):
        seed_fp = _fingerprint(_run(PipelinedSwitch, RENEWAL, 0.8, 1))
        got = _fingerprint(_run(PipelinedSwitch,
                                {**RENEWAL, "policy": "complete"}, 0.8, 1))
        assert got == seed_fp
        assert got["policy_drops"] == 0


class TestPolicyTelemetry:
    @pytest.mark.parametrize("policy", ["static:cap=4", "dynamic:alpha=1.0"])
    def test_drop_policy_events_identical(self, policy):
        kwargs = {**DROPPY, "policy": policy}
        tels = []
        for kernel in (PipelinedSwitch, FastPipelinedSwitch,
                       BatchPipelinedSwitch):
            tel = Telemetry.on(sample_interval=32)
            _run(kernel, kwargs, 1.0, 3, telemetry=tel)
            tels.append(tel)
        ref = tels[0]
        taxonomy = ref.events.drop_taxonomy()
        assert taxonomy.get(DROP_POLICY, 0) > 0
        for tel in tels[1:]:
            assert tel.events.sorted_events() == ref.events.sorted_events()
            assert tel.events.drop_taxonomy() == taxonomy
            assert tel.metrics.as_dict() == ref.metrics.as_dict()

    def test_peak_occupancy_gauge_exported(self):
        tel = Telemetry.on(sample_interval=32)
        sw = _run(FastPipelinedSwitch, RENEWAL, 0.8, 1, telemetry=tel)
        value = tel.metrics.as_dict()["repro_buffer_peak_occupancy"]
        assert value > 0
        assert value == sw._peak_occ


class TestRefusals:
    def test_array_core_refuses_uncompilable_policy(self):
        class Opaque(AdmissionPolicy):
            @property
            def spec(self):
                return "opaque"

            def admit(self, dst, free, held, quanta):
                return True

        cfg = PipelinedSwitchConfig(n=4, addresses=16, policy=Opaque())
        src = _source(cfg, 1.0, 3)
        with pytest.raises(FastPathUnsupportedError, match="does not compile"):
            BatchPipelinedSwitch(cfg, src, jit=True)
        # without --jit the scalar engines run it fine (jit=False pins the
        # choice even when the suite runs under REPRO_JIT=1)
        reset_packet_ids()
        sw = BatchPipelinedSwitch(cfg, _source(cfg, 1.0, 3), jit=False)
        sw.run(200)

    def test_credit_flow_conflicts_with_dropping_policy(self):
        with pytest.raises(ConfigError, match="credit_flow"):
            PipelinedSwitchConfig(n=4, addresses=16, credit_flow=True,
                                  credits_per_input=2,
                                  policy="dynamic:alpha=1.0")

    def test_config_normalizes_and_validates_policy(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=16, policy="static:cap=4")
        assert isinstance(cfg.policy, AdmissionPolicy)
        assert cfg.policy.spec == "static:cap=4"
        with pytest.raises(ConfigError, match="reservation"):
            PipelinedSwitchConfig(n=8, addresses=16,
                                  policy="reservation:reserve=4")
