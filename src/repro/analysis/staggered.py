"""Staggered-initiation latency analysis (paper §3.4).

The pipelined memory initiates at most one wave per cycle, so two packets
arriving in the same cycle cannot both start cutting through immediately.
The paper derives the expected cut-through latency increase:

    E[extra] = (1/2) * (n - 1) * (p / 2n)  =  (p/4) * (n-1)/n   clock cycles,

where ``p`` is the link load and ``n`` the switch fan-in: the head of a
packet appears on a given link in a given cycle with probability ``p/2n``
(packet size ``2n`` words), the ``n-1`` other links contribute that many
expected competing heads, and each pairwise conflict delays one of the two
packets by one cycle.  At 40 % load this is about a tenth of a cycle —
"negligible", which is the claim bench E5 verifies against the word-level
simulator.
"""

from __future__ import annotations


def expected_extra_latency(p: float, n: int) -> float:
    """The paper's §3.4 formula: ``(p/4) * (n-1)/n`` clock cycles."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"load must be in [0, 1], got {p}")
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return (p / 4.0) * (n - 1) / n


def head_probability(p: float, n: int, depth: int | None = None) -> float:
    """Probability a packet head appears on a given link in a given cycle.

    ``p / B`` with ``B = 2n`` by default (the paper's "p/2n").
    """
    b = 2 * n if depth is None else depth
    return p / b


def expected_competing_heads(p: float, n: int, depth: int | None = None) -> float:
    """Expected number of heads on the other ``n-1`` links in a given cycle."""
    return (n - 1) * head_probability(p, n, depth)


def derivation_table(n: int, loads: list[float]) -> list[dict[str, float]]:
    """Step-by-step table of the §3.4 derivation for documentation/benches."""
    rows = []
    for p in loads:
        rows.append(
            {
                "load": p,
                "head_prob": head_probability(p, n),
                "competing_heads": expected_competing_heads(p, n),
                "extra_cycles": expected_extra_latency(p, n),
            }
        )
    return rows
