"""Input latch matrix and shared output register row (paper figure 4).

Input side: each incoming link ``i`` owns one row of ``B`` latches; the
``k``-th word of an arriving packet is loaded into latch ``(i, k)``.  There is
deliberately *no* double buffering — the pipelined memory's write wave chases
the arrival wave at the same one-stage-per-cycle rate, so a latch is always
consumed before the next packet's word overwrites it.  The matrix *checks*
this: overwriting a word that no write wave has consumed raises
:class:`LatchOverrunError`, turning the paper's §3.2 correctness argument
into an executable invariant.

Output side: a single row of ``B`` registers shared by all outgoing links
("with the restriction that no two outgoing links can start sending out
packets in the same cycle", §3.2) — the restriction is enforced by the wave
arbiter, and the row checks it was honoured.
"""

from __future__ import annotations

from repro.sim.packet import Word


class LatchOverrunError(Exception):
    """An input latch was overwritten before its write wave consumed it."""


class InputLatchRow:
    """The ``B`` input latches of one incoming link."""

    def __init__(self, link: int, depth: int) -> None:
        self.link = link
        self.depth = depth
        self._words: list[Word | None] = [None] * depth
        self._consumed: list[bool] = [True] * depth

    def load(self, k: int, word: Word) -> None:
        """Latch arriving word ``k``; raises if the old word is still live."""
        if not 0 <= k < self.depth:
            raise IndexError(f"latch column {k} out of range (depth {self.depth})")
        if not self._consumed[k]:
            old = self._words[k]
            raise LatchOverrunError(
                f"input link {self.link} latch {k}: {word!r} overruns "
                f"unconsumed {old!r} — write wave initiated too late"
            )
        self._words[k] = word
        self._consumed[k] = False

    def consume(self, k: int) -> Word:
        """The write wave reads latch ``k`` (drives the stage-k bus)."""
        word = self._words[k]
        if word is None:
            raise ValueError(f"input link {self.link} latch {k} is empty")
        self._consumed[k] = True
        return word

    def discard(self, k: int) -> None:
        """Mark latch ``k`` consumed without reading it (dropped packet)."""
        self._consumed[k] = True

    def live_words(self) -> int:
        return sum(1 for c in self._consumed if not c)


class OutputRegisterRow:
    """The shared row of ``B`` output registers.

    Register ``k`` is loaded from the stage-``k`` bus in one cycle and drives
    its outgoing link in the next — the one-cycle skew that makes the
    departing word stream contiguous.
    """

    def __init__(self, depth: int) -> None:
        self.depth = depth
        # Committed state: what each register holds *this* cycle.
        self._words: list[Word | None] = [None] * depth
        self._links: list[int | None] = [None] * depth
        # Next state, adopted at commit().
        self._next: list[tuple[Word, int] | None] = [None] * depth

    def load(self, k: int, word: Word, out_link: int) -> None:
        """Schedule register ``k`` to hold ``word`` for ``out_link`` next cycle."""
        if self._next[k] is not None:
            raise LatchOverrunError(
                f"output register {k} loaded twice in one cycle — two waves "
                "occupied the same stage (arbiter bug)"
            )
        self._next[k] = (word, out_link)

    def driving(self, k: int) -> tuple[Word, int] | None:
        """(word, out_link) register ``k`` drives this cycle, if any."""
        if self._words[k] is None:
            return None
        return self._words[k], self._links[k]  # type: ignore[return-value]

    def commit(self) -> None:
        for k in range(self.depth):
            if self._next[k] is not None:
                self._words[k], self._links[k] = self._next[k]
                self._next[k] = None
            else:
                self._words[k] = None
                self._links[k] = None
