"""Setup shim for environments without the `wheel` package.

`pip install -e .` (PEP 660) needs `wheel`; this offline environment lacks
it, so `python setup.py develop` / legacy editable installs use this shim.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
