"""Checkpoint/restore subsystem: bit-identical snapshots of a running switch.

See :mod:`repro.checkpoint.snapshot` for the contract and ARCHITECTURE.md §15
for the document schema and per-kernel support matrix.
"""

from repro.checkpoint.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    CheckpointError,
    CheckpointUnsupportedError,
    fingerprint,
    fingerprint_doc,
    load,
    restore,
    restore_switch,
    save,
    snapshot_switch,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "CheckpointError",
    "CheckpointUnsupportedError",
    "fingerprint",
    "fingerprint_doc",
    "load",
    "restore",
    "restore_switch",
    "save",
    "snapshot_switch",
]
