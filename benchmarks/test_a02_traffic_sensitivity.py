"""Ablation A2 — traffic sensitivity of the shared-buffer advantage.

The paper's §2.2 memory-utilization argument for shared buffering assumes
uniform admissible traffic.  This ablation maps where the advantage holds
and where it does not:

* **uniform, admissible** — sharing wins big (the [HlKa88] effect);
* **admissible hotspot** — sharing wins even bigger: the hot output's queue
  borrows the cold outputs' memory;
* **bursty with bursts comparable to the pool** — the advantage shrinks
  toward parity (the paper's own §2.1 warning about bursts larger than
  buffers);
* **overloaded hotspot** — an *unmanaged* shared pool is hogged by the
  saturated queue and total loss gets *worse* than partitioned memory — the
  classic caveat that makes real shared-memory switches impose per-queue
  thresholds (out of the paper's scope but important for users of one).
"""

from conftest import show

from repro.switches import OutputQueued, SharedBuffer
from repro.switches.harness import format_table
from repro.traffic import BernoulliUniform, BurstyOnOff, Hotspot, TraceSource, record_trace


def _loss_pair(trace, n, total_cells, slots):
    shared = SharedBuffer(n, n, capacity=total_cells, warmup=slots // 10, seed=1)
    private = OutputQueued(n, n, capacity=total_cells // n, warmup=slots // 10, seed=1)
    loss_s = shared.run(TraceSource(trace, n), slots).loss_probability
    loss_p = private.run(TraceSource(trace, n), slots).loss_probability
    return loss_s, loss_p


def _experiment():
    n, total, slots = 8, 32, 60_000
    cases = {
        "uniform (load 0.9)": BernoulliUniform(n, n, 0.9, seed=2),
        "admissible hotspot (hot output at 0.85)": Hotspot(
            n, n, 0.5, hot=0, hot_fraction=0.1, seed=3
        ),
        "bursty (load 0.8, burst 8)": BurstyOnOff(n, n, 0.8, mean_burst=8.0, seed=4),
        "overloaded hotspot (hot output at 2.5)": Hotspot(
            n, n, 0.8, hot=0, hot_fraction=0.3, seed=5
        ),
    }
    rows = []
    for name, src in cases.items():
        trace = record_trace(src, slots)
        loss_s, loss_p = _loss_pair(trace, n, total, slots)
        ratio = loss_p / loss_s if loss_s > 0 else float("inf")
        rows.append([name, loss_s, loss_p, ratio])
    return rows


def test_a02_traffic_sensitivity(run_once):
    rows = run_once(_experiment)
    show(format_table(
        ["traffic", "shared loss", "partitioned loss", "advantage (x)"],
        rows,
        title="A2 ablation: shared vs partitioned memory (same 32 cells total, 8x8)",
    ))
    by_name = {r[0]: r for r in rows}
    # sharing wins clearly under admissible traffic:
    assert by_name["uniform (load 0.9)"][3] > 2
    assert by_name["admissible hotspot (hot output at 0.85)"][3] > 2
    # bursts comparable to the pool erode the advantage toward parity:
    assert 0.7 < by_name["bursty (load 0.8, burst 8)"][3] < 2.0
    # sustained overload inverts it (the hog effect):
    assert by_name["overloaded hotspot (hot output at 2.5)"][3] < 1.0
