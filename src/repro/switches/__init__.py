"""Slot-level models of every switch-buffer architecture in the paper's §2."""

from repro.switches.base import SlottedSwitch
from repro.switches.block_crosspoint import BlockCrosspoint
from repro.switches.crosspoint import CrosspointQueued
from repro.switches.input_queued import FifoInputQueued
from repro.switches.interleaved import InterleavedSharedBuffer
from repro.switches.knockout import KnockoutSwitch
from repro.switches.output_queued import OutputQueued
from repro.switches.schedulers import (
    GreedyMaximal,
    Islip,
    MaxSizeMatching,
    PIM,
    Scheduler,
    TwoDimRoundRobin,
)
from repro.switches.shared_memory import SharedBuffer
from repro.switches.speedup import SpeedupSwitch
from repro.switches.voq import VoqInputBuffered
from repro.switches.windowed import WindowedInputQueued

__all__ = [
    "SlottedSwitch",
    "FifoInputQueued",
    "VoqInputBuffered",
    "WindowedInputQueued",
    "OutputQueued",
    "SharedBuffer",
    "CrosspointQueued",
    "BlockCrosspoint",
    "SpeedupSwitch",
    "InterleavedSharedBuffer",
    "KnockoutSwitch",
    "Scheduler",
    "PIM",
    "Islip",
    "TwoDimRoundRobin",
    "GreedyMaximal",
    "MaxSizeMatching",
]
