"""E3 — Buffer size for loss 1e-3 at load 0.8 on 16x16 (paper §2.2, [HlKa88]).

Paper quote: "(i) 86 packets under shared buffering (5.4 per output);
(ii) 178 packets under output queueing (11.1 per output); and (iii) 1300
packets under 'input smoothing' (80 per input)".

We regenerate the three numbers from our exact models (the [HlKa88]
decomposition for sharing, the exact finite-buffer Markov chain for output
queueing, the frame-overflow model for input smoothing) and cross-check the
shared figure by direct simulation.  Conventions differ slightly from the
1988 paper (see EXPERIMENTS.md); the ordering and separation factors are the
reproduced shape.
"""

from conftest import show

from repro.analysis.buffer_sizing import hlka88_comparison
from repro.switches import SharedBuffer
from repro.switches.harness import format_table
from repro.traffic import BernoulliUniform


def _experiment():
    n, p, target = 16, 0.8, 1e-3
    r = hlka88_comparison(n, p, target)
    # Validate the shared sizing by simulation at the sized capacity.
    sw = SharedBuffer(n, n, capacity=r["shared_total"], warmup=5000, seed=11)
    stats = sw.run(BernoulliUniform(n, n, p, seed=12), 150_000)
    r["shared_sim_loss"] = stats.loss_probability
    return r


def test_e03_buffer_sizing(run_once):
    r = run_once(_experiment)
    rows = [
        ["shared buffering", r["shared_total"], f"{r['shared_per_output']:.1f}/output", 86, "5.4/output"],
        ["output queueing", r["output_total"], f"{r['output_per_output']}/output", 178, "11.1/output"],
        ["input smoothing", r["smoothing_total"], f"{r['smoothing_per_input']}/input", 1300, "80/input"],
    ]
    show(
        format_table(
            ["architecture", "model total", "model per-port", "paper total", "paper per-port"],
            rows,
            title="E3: buffers for loss 1e-3, 16x16 switch, load 0.8 [HlKa88]",
        )
    )
    # The ranking and separations the paper's argument rests on:
    assert r["shared_total"] * 2 <= r["output_total"]
    assert r["output_total"] * 4 <= r["smoothing_total"]
    # Absolute agreement where conventions match:
    assert 10 <= r["output_per_output"] <= 13  # paper: 11.1
    assert 70 <= r["smoothing_per_input"] <= 95  # paper: 80
    # The sized shared pool really achieves the target loss:
    assert r["shared_sim_loss"] <= 2e-3
