"""Floorplan arithmetic: rectangular blocks, rows, and fit checks.

Not a placer — the same first-order block arithmetic the paper's figures 6
and 8 use, enough to reproduce the Telegraphos II die budget (8.5 x 8.5 mm
chip, 32 mm^2 of it the shared buffer) and the Telegraphos III buffer
footprint (~45 mm^2 including crossbar and cut-through).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Block:
    """A named rectangular block (dimensions in mm)."""

    name: str
    width_mm: float
    height_mm: float

    def __post_init__(self) -> None:
        if self.width_mm < 0 or self.height_mm < 0:
            raise ValueError(f"block {self.name} has negative dimensions")

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm

    def rotated(self) -> "Block":
        return Block(self.name, self.height_mm, self.width_mm)


def row(name: str, blocks: list[Block], gap_mm: float = 0.0) -> Block:
    """Blocks side by side: width adds (plus gaps), height is the max."""
    if not blocks:
        raise ValueError("row needs at least one block")
    width = sum(b.width_mm for b in blocks) + gap_mm * (len(blocks) - 1)
    height = max(b.height_mm for b in blocks)
    return Block(name, width, height)


def stack(name: str, blocks: list[Block], gap_mm: float = 0.0) -> Block:
    """Blocks on top of each other: height adds, width is the max."""
    if not blocks:
        raise ValueError("stack needs at least one block")
    width = max(b.width_mm for b in blocks)
    height = sum(b.height_mm for b in blocks) + gap_mm * (len(blocks) - 1)
    return Block(name, width, height)


@dataclass(slots=True)
class Floorplan:
    """A die with a list of accounted blocks."""

    die_width_mm: float
    die_height_mm: float
    blocks: list[Block] = field(default_factory=list)

    def add(self, block: Block) -> Block:
        self.blocks.append(block)
        return block

    @property
    def die_area_mm2(self) -> float:
        return self.die_width_mm * self.die_height_mm

    @property
    def used_area_mm2(self) -> float:
        return sum(b.area_mm2 for b in self.blocks)

    @property
    def utilization(self) -> float:
        return self.used_area_mm2 / self.die_area_mm2

    def fits(self) -> bool:
        """First-order feasibility: total block area within the die, and
        every block individually fits within the die outline."""
        if self.used_area_mm2 > self.die_area_mm2:
            return False
        return all(
            (b.width_mm <= self.die_width_mm and b.height_mm <= self.die_height_mm)
            or (b.height_mm <= self.die_width_mm and b.width_mm <= self.die_height_mm)
            for b in self.blocks
        )

    def report(self) -> list[tuple[str, float]]:
        return [(b.name, b.area_mm2) for b in self.blocks]
