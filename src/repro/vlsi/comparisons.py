"""Section 5 comparisons: the paper's cost-performance arguments as code.

* §5.1 shared vs (non-FIFO) input buffering — equal width, fewer bits needed;
* §5.2 pipelined vs wide-memory shared buffer — ~30 % smaller peripheral;
* §5.3 pipelined vs PRIZMA interleaved shared buffer — crossbars 16x cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.buffer_sizing import (
    input_smoothing_capacity_for_loss,
    shared_buffer_capacity_for_loss,
)
from repro.vlsi.crossbar import (
    pipelined_crossbars,
    prizma_crossbars,
    prizma_vs_pipelined_ratio,
)
from repro.vlsi.datapath import (
    input_buffer_peripheral_area,
    pipelined_peripheral_area,
    wide_peripheral_area,
)
from repro.vlsi.memory import (
    pipelined_memory_area,
    shift_register_buffer_area_mm2,
    wide_memory_area,
)
from repro.vlsi.technology import TELEGRAPHOS_III_TECH, Technology


# -- §5.1: shared vs input buffering ---------------------------------------------
@dataclass(frozen=True, slots=True)
class SharedVsInputReport:
    """Figure-9 comparison at equal performance.

    Both organizations have total storage width ``2nw`` bit columns; the
    shared buffer needs height ``H_s`` and the input buffers ``H_i > H_s``
    cells for the same loss probability, so the shared storage array is
    smaller.  The crossbar/datapath blocks are ~2nw x nw in both cases:
    one crossbar + scheduler for input buffering, two wire blocks for the
    shared buffer.
    """

    n: int
    width_bits: int
    h_shared_cells: int  # per-output cells (pool/n), paper's H_s
    h_input_cells: int  # per-input cells, paper's H_i
    shared_storage_mm2: float
    input_storage_mm2: float
    shared_datapath_mm2: float  # two 2nw x nw blocks
    input_datapath_mm2: float  # one crossbar (scheduler priced separately)
    height_ratio: float  # H_i / H_s


def shared_vs_input_buffering(
    tech: Technology = TELEGRAPHOS_III_TECH,
    n: int = 16,
    width_bits: int = 16,
    load: float = 0.8,
    loss_target: float = 1e-3,
) -> SharedVsInputReport:
    """Instantiate §5.1 with performance-matched buffer heights.

    ``H_s`` comes from the shared-pool sizing, ``H_i`` from the
    input-smoothing requirement (the paper's §2.2 proxy for input
    buffering at equal loss) — both from :mod:`repro.analysis.buffer_sizing`.
    """
    shared_total = shared_buffer_capacity_for_loss(n, load, loss_target)
    h_s = max(1, round(shared_total / n))
    h_i = input_smoothing_capacity_for_loss(n, load, loss_target)
    bit = tech.bit_area()
    packet_bits = 2 * n * width_bits  # one buffered packet, paper's quantum
    shared_storage = shared_total * packet_bits * bit / 1e6
    input_storage = n * h_i * packet_bits * bit / 1e6
    shared_dp = 2 * pipelined_peripheral_area(tech, n, width_bits).area_mm2 / 2
    # (pipelined_peripheral_area already covers both link directions: 2nw
    # wires over the full buffer width — i.e. the paper's two 2nw x nw
    # blocks together.)
    input_dp = input_buffer_peripheral_area(tech, n, width_bits).area_mm2
    return SharedVsInputReport(
        n=n,
        width_bits=width_bits,
        h_shared_cells=h_s,
        h_input_cells=h_i,
        shared_storage_mm2=shared_storage,
        input_storage_mm2=input_storage,
        shared_datapath_mm2=shared_dp,
        input_datapath_mm2=input_dp,
        height_ratio=h_i / max(h_s, 1),
    )


# -- §5.2: pipelined vs wide memory ------------------------------------------------
def pipelined_vs_wide(
    tech: Technology = TELEGRAPHOS_III_TECH,
    n: int = 8,
    width_bits: int = 16,
    addresses: int = 256,
) -> dict:
    """§5.2 at Telegraphos III parameters: peripheral 9 vs 13 mm^2 (~30 %)."""
    depth = 2 * n
    pipe_dp = pipelined_peripheral_area(tech, n, width_bits, depth)
    wide_dp = wide_peripheral_area(tech, n, width_bits, depth)
    pipe_mem = pipelined_memory_area(tech, depth, addresses, width_bits)
    wide_mem = wide_memory_area(tech, addresses, depth * width_bits)
    return {
        "pipelined_peripheral_mm2": pipe_dp.area_mm2,
        "wide_peripheral_mm2": wide_dp.area_mm2,
        "peripheral_saving": 1.0 - pipe_dp.area_mm2 / wide_dp.area_mm2,
        "pipelined_memory_mm2": pipe_mem.total_mm2,
        "wide_memory_mm2": wide_mem.total_mm2,
        "pipelined_total_mm2": pipe_dp.area_mm2 + pipe_mem.total_mm2,
        "wide_total_mm2": wide_dp.area_mm2 + wide_mem.total_mm2,
    }


# -- §5.3: pipelined vs PRIZMA interleaved -------------------------------------------
def pipelined_vs_prizma(
    tech: Technology = TELEGRAPHOS_III_TECH,
    n: int = 8,
    width_bits: int = 16,
    m_banks: int = 256,
    addresses: int = 256,
) -> dict:
    """§5.3 at Telegraphos III sizes: crossbar complexity ratio M/2n = 16."""
    prizma = prizma_crossbars(tech, n, m_banks, width_bits)
    pipe = pipelined_crossbars(tech, n, width_bits)
    ratio = prizma_vs_pipelined_ratio(n, m_banks)
    depth = 2 * n
    pipe_mem = pipelined_memory_area(tech, depth, addresses, width_bits)
    shift_reg = shift_register_buffer_area_mm2(tech, depth, addresses, width_bits)
    return {
        "prizma_crosspoints": prizma["total_crosspoints"],
        "pipelined_crosspoints": pipe["total_crosspoints"],
        "crosspoint_ratio": prizma["total_crosspoints"] / pipe["total_crosspoints"],
        "analytic_ratio": ratio,
        "prizma_crossbar_mm2": prizma["total_area_mm2"],
        "pipelined_crossbar_mm2": pipe["total_area_mm2"],
        "ram_buffer_mm2": pipe_mem.total_mm2,
        "shift_register_buffer_mm2": shift_reg,
        "shift_register_penalty": shift_reg / pipe_mem.bits_mm2,
    }
