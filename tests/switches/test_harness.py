"""Tests for the experiment harness helpers."""

import pytest

from repro.switches import OutputQueued, SharedBuffer
from repro.switches.harness import (
    capacity_for_loss,
    format_table,
    latency_vs_load,
    loss_vs_capacity,
    saturation_throughput,
    throughput_at_load,
    uniform_source_factory,
)


def test_throughput_at_load_tracks_offered():
    f = uniform_source_factory(4, 4)
    thr = throughput_at_load(lambda: OutputQueued(4, 4), f, 0.5, slots=8000)
    assert thr == pytest.approx(0.5, abs=0.03)


def test_saturation_of_work_conserving_switch_is_one():
    f = uniform_source_factory(4, 4)
    sat = saturation_throughput(lambda: SharedBuffer(4, 4), f, slots=8000)
    assert sat == pytest.approx(1.0, abs=0.03)


def test_latency_vs_load_monotone():
    f = uniform_source_factory(4, 4)
    series = latency_vs_load(
        lambda: OutputQueued(4, 4), f, loads=[0.3, 0.6, 0.9], slots=10_000
    )
    delays = [d for _, d in series]
    assert delays[0] < delays[1] < delays[2]


def test_loss_vs_capacity_decreasing():
    f = uniform_source_factory(4, 4)
    series = loss_vs_capacity(
        lambda cap: SharedBuffer(4, 4, capacity=cap), f,
        capacities=[2, 8, 32], load=0.9, slots=15_000,
    )
    losses = [l for _, l in series]
    assert losses[0] > losses[-1]


def test_capacity_for_loss():
    series = [(2, 0.1), (4, 0.01), (8, 0.0005)]
    assert capacity_for_loss(series, 1e-3) == 8
    assert capacity_for_loss(series, 1e-9) is None


def test_format_table():
    out = format_table(["a", "b"], [[1, 2.5], ["x", 3]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5


def test_run_switch_rejects_reused_telemetry_bundle():
    from repro.switches import SharedBuffer
    from repro.switches.harness import run_switch
    from repro.telemetry import Telemetry

    f = uniform_source_factory(4, 4)
    tel = Telemetry.on()
    run_switch(SharedBuffer(4, 4, seed=1), f(0.5, 2), 500, telemetry=tel)
    events_after_first = len(tel.events)
    with pytest.raises(ValueError, match="double-count"):
        run_switch(SharedBuffer(4, 4, seed=1), f(0.5, 2), 500, telemetry=tel)
    # the rejected second run must not have touched the bundle
    assert len(tel.events) == events_after_first


def test_run_switch_detaches_telemetry_after_run():
    from repro.switches import SharedBuffer
    from repro.switches.harness import run_switch
    from repro.telemetry import Telemetry

    f = uniform_source_factory(4, 4)
    tel = Telemetry.on()
    switch = SharedBuffer(4, 4, seed=1)
    run_switch(switch, f(0.5, 2), 500, telemetry=tel)
    events = len(tel.events)
    # further slots on the same switch must not leak into the bundle
    switch.run(f(0.5, 3), 500)
    assert len(tel.events) == events


def test_registry_switch_factory_drives_sweeps():
    from repro.switches.harness import registry_switch_factory

    f = uniform_source_factory(4, 4)
    t = throughput_at_load(registry_switch_factory("shared", n=4), f,
                           load=0.6, slots=3_000)
    assert 0.5 < t <= 0.7
