"""Tests for the wormhole network (the [Dally90] substrate)."""

import pytest

from repro.network import KAryNCube, WormholeNetwork
from repro.network.wormhole import Message


def _single_message(topo, src, dst, length=4, lanes=1, buffer_flits=8):
    net = WormholeNetwork(
        topo, lanes=lanes, buffer_flits=buffer_flits,
        message_flits=length, load=0.0, seed=1,
    )
    msg = Message(src=src, dst=dst, length=length, created=0)
    net.source_queues[src].append(msg)
    for _ in range(500):
        net.tick()
        if msg.delivered >= 0:
            return net, msg
    raise AssertionError("message never delivered")


def test_validation():
    topo = KAryNCube(4, 2)
    with pytest.raises(ValueError):
        WormholeNetwork(topo, lanes=0)
    with pytest.raises(ValueError):
        WormholeNetwork(topo, lanes=4, buffer_flits=2)
    with pytest.raises(ValueError):
        WormholeNetwork(topo, message_flits=0)


def test_single_message_latency_is_hops_plus_length():
    """An uncontended worm: header pipeline (1 cycle/hop) + body drains at
    1 flit/cycle."""
    topo = KAryNCube(4, 2)
    net, msg = _single_message(topo, src=0, dst=5, length=4)
    hops = topo.hop_count(0, 5)
    # injection + per-hop + eject of remaining flits; allow small constant
    expected_min = hops + 4 - 1
    assert expected_min <= msg.delivered <= expected_min + 4


def test_all_lanes_released_after_delivery():
    topo = KAryNCube(4, 2)
    net, _ = _single_message(topo, src=0, dst=15, length=6)
    for node_lanes in net.lanes:
        for port_lanes in node_lanes:
            for lane in port_lanes:
                assert not lane.busy
    assert not net.injection_lanes[0].busy


def test_flit_conservation_light_load():
    topo = KAryNCube(4, 2)
    net = WormholeNetwork(topo, lanes=2, buffer_flits=8, message_flits=6,
                          load=0.3, seed=2)
    net.run(4000)
    # drain
    net.injection_rate = 0.0
    net.run(3000)
    in_flight = sum(
        len(l.flits) for node in net.lanes for pl in node for l in pl
    ) + sum(len(l.flits) for l in net.injection_lanes)
    assert in_flight == 0
    assert net.delivered_messages > 0
    assert net.refused_messages == 0


def test_mesh_single_lane_saturates_early():
    """The §2.1/[Dally90] claim: 20-flit messages, 16-flit buffers, 1 lane
    => saturation around a quarter of capacity."""
    topo = KAryNCube(8, 2)
    net = WormholeNetwork(topo, lanes=1, buffer_flits=16, message_flits=20,
                          load=1.0, seed=3)
    net.warmup = 2000
    net.run(9000)
    frac = net.delivered_fraction_of_capacity()
    assert 0.15 < frac < 0.40


def test_lanes_recover_throughput():
    """More lanes, same total buffering => higher saturation throughput."""
    topo = KAryNCube(8, 2)
    results = {}
    for lanes in (1, 4):
        net = WormholeNetwork(topo, lanes=lanes, buffer_flits=16,
                              message_flits=20, load=1.0, seed=4)
        net.warmup = 2000
        net.run(9000)
        results[lanes] = net.delivered_fraction_of_capacity()
    assert results[4] > results[1] * 1.2


def test_light_load_delivers_offered():
    topo = KAryNCube(4, 2)
    net = WormholeNetwork(topo, lanes=2, buffer_flits=16, message_flits=8,
                          load=0.2, seed=5)
    net.warmup = 1000
    net.run(10_000)
    assert net.delivered_fraction_of_capacity() == pytest.approx(0.2, abs=0.05)


def test_summary_keys():
    topo = KAryNCube(4, 2)
    net = WormholeNetwork(topo, load=0.1, seed=6)
    net.run(500)
    s = net.summary()
    for key in ("lanes", "offered_fraction", "delivered_fraction", "mean_latency"):
        assert key in s
