"""Common interface for slotted traffic generators.

A traffic source models the ``n`` incoming links of an ``n_in``-port switch.
Each call to :meth:`TrafficSource.arrivals` returns, for one time slot, a list
of length ``n_in`` whose entry ``i`` is either ``None`` (no cell arrived on
input ``i`` this slot) or the destination output port of the arriving cell.

The word-level model of :mod:`repro.core` reuses the same sources: a slot
there corresponds to one packet time (``B`` clock cycles), and the arriving
"cell" becomes a ``B``-word packet whose head shows up at the slot boundary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.sim.rng import make_rng


class TrafficSource(ABC):
    """Base class: per-slot arrival pattern for ``n_in`` inputs, ``n_out`` outputs."""

    def __init__(self, n_in: int, n_out: int) -> None:
        if n_in < 1 or n_out < 1:
            raise ValueError(f"need at least one input and output, got {n_in}x{n_out}")
        self.n_in = n_in
        self.n_out = n_out

    @abstractmethod
    def arrivals(self, slot: int) -> list[int | None]:
        """Destinations (or ``None``) for each input in this slot.

        ``slot`` is provided for sources with time structure (traces, frames);
        stochastic sources advance their own RNG state and must be called with
        monotonically increasing slots.
        """

    @property
    def offered_load(self) -> float:
        """Long-run probability that a given input carries a cell in a slot.

        Subclasses with a well-defined load override this; the default raises
        so that harness code never silently assumes a load.
        """
        raise NotImplementedError(f"{type(self).__name__} has no analytic load")

    # -- batched generation ---------------------------------------------------
    NO_CELL = -1  # matrix encoding of "no arrival" (destinations are >= 0)

    def arrivals_matrix(self, slots: int, start_slot: int = 0) -> np.ndarray:
        """``(slots, n_in)`` int64 matrix of destinations; ``-1`` = no cell.

        The batched form of :meth:`arrivals`, for harnesses that consume a
        whole horizon of traffic at once instead of one Python call per slot
        per port.  This default implementation just loops :meth:`arrivals`
        (so every source supports it); stochastic subclasses override it
        with vectorized draws.  **Note**: a vectorized override consumes the
        underlying RNG in a different order than repeated :meth:`arrivals`
        calls — both streams are deterministic for a given seed and
        statistically identical, but they are not the *same* sample path.
        Stateful sources continue from their current state, so mixing
        per-slot and batched calls is allowed.
        """
        if slots < 0:
            raise ValueError(f"need slots >= 0, got {slots}")
        out = np.full((slots, self.n_in), self.NO_CELL, dtype=np.int64)
        for s in range(slots):
            for i, dst in enumerate(self.arrivals(start_slot + s)):
                if dst is not None:
                    out[s, i] = dst
        return out


class RandomTrafficSource(TrafficSource):
    """Base for stochastic sources; owns a numpy Generator."""

    def __init__(
        self, n_in: int, n_out: int, seed: int | np.random.Generator | None = None
    ) -> None:
        super().__init__(n_in, n_out)
        self.rng = make_rng(seed)
