"""Unified telemetry for every switch kernel.

One :class:`Telemetry` bundle carries the three collection channels a
kernel can feed:

* a :class:`~repro.telemetry.metrics.MetricsRegistry` of named
  counters/gauges/histograms (per-port, per-bank, per-``WaveOp``);
* a structured :class:`~repro.telemetry.events.EventLog` of packet
  lifecycle events with cycle stamps;
* a periodic occupancy time series (``samples``) taken every
  ``sample_interval`` cycles at the *start* of a cycle, before any of the
  cycle's activity — the one instant where the checked and fast kernels'
  internal bookkeeping provably coincide.

``Telemetry.off()`` (the default wired into every kernel) is a shared
null bundle: collection sites are guarded by one cached boolean, so a
disabled bundle costs nothing on the hot path.  Exporters live in
:mod:`repro.telemetry.export`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.events import (
    ARRIVE,
    CUT_THROUGH,
    DEPART,
    DROP,
    DROP_BUFFER_FULL,
    DROP_CAUSES,
    DROP_HEAD_OVERRUN,
    DROP_KNOCKOUT,
    DROP_POLICY,
    DROP_QUANTUM_OVERRUN,
    READ_WAVE,
    STORE_WAVE,
    WAVE_KINDS,
    Event,
    EventLog,
    NullEventLog,
    NULL_EVENTS,
)
from repro.telemetry.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    NullMetricsRegistry,
    NULL_METRICS,
)


@dataclass
class Telemetry:
    """The bundle a switch kernel collects into (see module docstring)."""

    metrics: MetricsRegistry | NullMetricsRegistry = field(
        default_factory=MetricsRegistry
    )
    events: EventLog | NullEventLog = field(default_factory=EventLog)
    sample_interval: int = 0  # 0 = no occupancy time series
    samples: list[tuple[int, int]] = field(default_factory=list)  # (cycle, occ)
    # Optional live time-series ring (repro.obs.series.SeriesRing); None = off.
    # Typed Any to keep telemetry importable without the observability plane.
    series: Any = None

    @property
    def enabled(self) -> bool:
        return bool(self.metrics.enabled or self.events.enabled
                    or self.sample_interval > 0 or self.series is not None)

    @classmethod
    def on(cls, sample_interval: int = 0, *, events: EventLog | None = None,
           series: Any = None) -> "Telemetry":
        """Fresh bundle with every channel collecting.

        ``events`` lets callers inject a subclass (the observability
        plane's sampled log); ``series`` attaches a live time-series ring.
        """
        return cls(MetricsRegistry(), events if events is not None else EventLog(),
                   sample_interval, series=series)

    @classmethod
    def off(cls) -> "Telemetry":
        """The shared disabled bundle (do not mutate)."""
        return NULL_TELEMETRY

    def sample(self, cycle: int, occupancy: int) -> None:
        self.samples.append((cycle, occupancy))

    def occupancy_series(self) -> dict[str, float]:
        """Summary of the sampled occupancy time series."""
        if not self.samples:
            return {"samples": 0}
        values = [occ for _, occ in self.samples]
        return {
            "samples": len(values),
            "interval": self.sample_interval,
            "mean": sum(values) / len(values),
            "peak": max(values),
            "last_cycle": self.samples[-1][0],
        }


NULL_TELEMETRY = Telemetry(NULL_METRICS, NULL_EVENTS, 0)

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "EventLog",
    "NullEventLog",
    "NULL_EVENTS",
    "Event",
    "ARRIVE",
    "STORE_WAVE",
    "CUT_THROUGH",
    "READ_WAVE",
    "DEPART",
    "DROP",
    "WAVE_KINDS",
    "DROP_HEAD_OVERRUN",
    "DROP_QUANTUM_OVERRUN",
    "DROP_BUFFER_FULL",
    "DROP_KNOCKOUT",
    "DROP_POLICY",
    "DROP_CAUSES",
]
