"""Wide-memory shared-buffer switch — the baseline of paper figure 3.

This is the organization of the authors' earlier design [KaSC91]: the shared
buffer is a single memory of width ``B*w`` bits (one whole packet per memory
word), performing one whole-packet access per cycle.  Its costs, which the
pipelined memory removes, are modeled explicitly:

* **input double buffering** — a packet can only be written to the wide
  memory after it has fully assembled, and the write slot cannot be
  guaranteed on time (arrivals are not synchronized), so each input needs an
  assembly row *and* a staging row of latches;
* **no cut-through through the memory** — a store-and-forward penalty of a
  full packet time (``B`` cycles), unless the extra cut-through crossbar
  (the additional tristate drivers, bus wires and output crossbar of
  figure 3) is enabled;
* **output double buffering** — a packet is read wholesale into an output
  staging row, then shifted out word by word.

Bench E11 runs this model head-to-head against
:class:`~repro.core.switch.PipelinedSwitch`: same traffic, same capacity —
wide(no-CT) pays ≈``B`` extra cycles of latency; wide(CT) matches pipelined
latency but needs the extra crossbar, which :mod:`repro.vlsi.comparisons`
prices in silicon area.

Timeline conventions match the pipelined model: a word "arrives during cycle
t" (latched at the end of t); the minimum head-in to head-out latency of the
cut-through path is 2 cycles, and of the store-and-forward path ``B + 2``
cycles — the difference is exactly one packet time.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.core.sources import PacketSink, PacketSource, deterministic_payload
from repro.sim.packet import Packet
from repro.sim.stats import Counter, Histogram, SwitchStats


@dataclass(slots=True)
class WideSwitchConfig:
    """Configuration of the wide-memory switch.

    ``depth`` is the packet size in words (= the wide-memory width in link
    words); it defaults to ``2n`` so the two organizations buffer identical
    packets and capacities are comparable address-for-address.
    """

    n: int
    addresses: int = 256
    width_bits: int = 16
    depth: int | None = None
    cut_through: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError(f"need n >= 1, got {self.n}")
        if self.depth is None:
            self.depth = 2 * self.n
        if self.depth < 2:
            raise ConfigError(f"packet must be >= 2 words, got {self.depth}")
        if self.addresses < 1:
            raise ConfigError(f"need >= 1 buffer address, got {self.addresses}")

    @property
    def packet_words(self) -> int:
        return self.depth


@dataclass(slots=True)
class _WideInput:
    assembling: Packet | None = None
    next_word: int = 0
    staged: Packet | None = None  # double buffer: complete, awaiting memory
    staged_at: int = -1
    ct_uid: int | None = None  # uid of the assembling packet that cut through


@dataclass(slots=True)
class _WideOutput:
    sending: Packet | None = None  # shifting out of the staging row
    send_idx: int = 0
    staged: Packet | None = None  # read from memory, awaiting the link
    ct_packet: Packet | None = None  # arriving via the cut-through crossbar
    ct_started: int = -1  # arrival cycle of the cut-through packet


class WideMemorySwitch:
    """Word-level wide-memory shared-buffer switch (paper figure 3)."""

    def __init__(self, config: WideSwitchConfig, source: PacketSource) -> None:
        if source.n_out != config.n:
            raise ConfigError(
                f"source targets {source.n_out} outputs, switch has {config.n}"
            )
        if source.packet_words != config.packet_words:
            raise ConfigError(
                f"source packets are {source.packet_words} words, switch "
                f"needs {config.packet_words}"
            )
        self.config = config
        self.source = source
        n = config.n
        self._mem: dict[int, Packet] = {}  # addr -> stored packet
        self._addr_of: dict[int, int] = {}  # uid -> addr
        self._free: deque[int] = deque(range(config.addresses))
        self.queues: list[deque[Packet]] = [deque() for _ in range(n)]
        self._inputs = [_WideInput() for _ in range(n)]
        self._outputs = [_WideOutput() for _ in range(n)]
        self.sinks = [PacketSink(j, config.packet_words) for j in range(n)]
        self._sent: dict[int, Packet] = {}
        self.cycle = 0
        self.stats = SwitchStats(n_outputs=n)
        self.ct_latency = Counter()  # head-in -> head-out
        self.ct_latency_hist = Histogram()
        self.total_latency = Counter()
        self.memory_reads = 0
        self.memory_writes = 0
        self.cut_throughs = 0
        self.staging_drops = 0

    # -- public API -----------------------------------------------------------
    @property
    def warmup(self) -> int:
        return self.stats.warmup

    @warmup.setter
    def warmup(self, cycles: int) -> None:
        self.stats.warmup = cycles

    def run(self, cycles: int) -> SwitchStats:
        for _ in range(cycles):
            self.tick()
        return self.stats

    def drain(self, max_cycles: int = 1_000_000) -> int:
        real = self.source
        try:
            self.source = _Mute(real)
            start = self.cycle
            while not self.is_empty():
                if self.cycle - start > max_cycles:
                    raise RuntimeError("wide switch failed to drain")
                self.tick()
            return self.cycle - start
        finally:
            self.source = real

    def is_empty(self) -> bool:
        return (
            not self._mem
            and all(s.assembling is None and s.staged is None for s in self._inputs)
            and all(
                o.sending is None and o.staged is None and o.ct_packet is None
                for o in self._outputs
            )
        )

    @property
    def link_utilization(self) -> float:
        cycles = self.stats.measured_slots
        if cycles <= 0:
            return math.nan
        return (
            self.stats.delivered * self.config.packet_words
            / (cycles * self.config.n)
        )

    @property
    def occupancy(self) -> int:
        return len(self._mem)

    # -- one clock cycle ---------------------------------------------------------
    def tick(self) -> None:
        t = self.cycle
        self._drive_outputs(t)
        self._memory_op(t)
        self._accept_arrivals(t)
        self.cycle = t + 1
        self.stats.horizon = self.cycle

    # -- phase 1: output links drive one word each ----------------------------------
    def _drive_outputs(self, t: int) -> None:
        b = self.config.packet_words
        for j, out in enumerate(self._outputs):
            if out.ct_packet is not None:
                # Cut-through crossbar path: word k leaves at ct_started+2+k.
                k = t - (out.ct_started + 2)
                if k < 0:
                    continue
                pkt = out.ct_packet
                self.sinks[j].deliver(t, pkt.uid, k, pkt.payload[k])
                if k == 0:
                    pkt.depart_first_cycle = t
                if k == b - 1:
                    pkt.depart_last_cycle = t
                    self._finish(j, pkt)
                    out.ct_packet = None
                continue
            if out.sending is None and out.staged is not None:
                out.sending = out.staged  # double-buffer handoff
                out.staged = None
                out.send_idx = 0
            if out.sending is not None:
                pkt = out.sending
                self.sinks[j].deliver(t, pkt.uid, out.send_idx, pkt.payload[out.send_idx])
                if out.send_idx == 0:
                    pkt.depart_first_cycle = t
                out.send_idx += 1
                if out.send_idx == b:
                    pkt.depart_last_cycle = t
                    self._finish(j, pkt)
                    out.sending = None
                    out.send_idx = 0

    def _finish(self, j: int, pkt: Packet) -> None:
        sent = self._sent.pop(pkt.uid, None)
        if sent is None or sent.payload != pkt.payload or pkt.dst != j:
            raise AssertionError(f"wide switch corrupted packet {pkt.uid}")
        self.stats.record_departure(j, pkt.arrival_cycle, pkt.depart_first_cycle)
        if pkt.arrival_cycle >= self.stats.warmup:
            self.ct_latency.add(pkt.cut_through_latency)
            self.ct_latency_hist.add(pkt.cut_through_latency)
            self.total_latency.add(pkt.total_latency)

    # -- phase 2: the single wide-memory port ------------------------------------------
    def _memory_op(self, t: int) -> None:
        # Reads first (priority to the outgoing links, as in the pipelined
        # switch): fill an empty output staging row from a nonempty queue.
        for j, out in enumerate(self._outputs):
            if out.staged is not None or out.ct_packet is not None:
                continue
            if not self.queues[j]:
                continue
            pkt = self.queues[j].popleft()
            addr = self._addr_of.pop(pkt.uid)
            del self._mem[addr]
            self._free.append(addr)
            out.staged = pkt
            self.memory_reads += 1
            return
        # Otherwise one write: earliest-staged packet first.
        best: _WideInput | None = None
        for inp in self._inputs:
            if inp.staged is not None and (best is None or inp.staged_at < best.staged_at):
                best = inp
        if best is None or not self._free:
            # Nothing to write, or buffer full — the staged packet waits and
            # is lost only if the next packet finishes assembling first.
            return
        pkt = best.staged
        assert pkt is not None
        addr = self._free.popleft()
        self._addr_of[pkt.uid] = addr
        self._mem[addr] = pkt
        self.queues[pkt.dst].append(pkt)
        best.staged = None
        self.stats.record_accept(pkt.arrival_cycle)
        self.memory_writes += 1

    # -- phase 3: word arrivals -----------------------------------------------------------
    def _accept_arrivals(self, t: int) -> None:
        b = self.config.packet_words
        for i, inp in enumerate(self._inputs):
            if inp.assembling is None:
                dst = self.source.maybe_start(t, i)
                if dst is None:
                    continue
                if not 0 <= dst < self.config.n:
                    raise ConfigError(f"source produced bad destination {dst}")
                pkt = Packet(src=i, dst=dst, payload=(), arrival_cycle=t)
                pkt.payload = deterministic_payload(pkt.uid, b, self.config.width_bits)
                inp.assembling = pkt
                inp.next_word = 0
                self._sent[pkt.uid] = pkt
                self.stats.record_offer(t)
                self._try_cut_through(t, i, pkt)
            inp.next_word += 1
            if inp.next_word == b:
                pkt = inp.assembling
                assert pkt is not None
                inp.assembling = None
                inp.next_word = 0
                if inp.ct_uid == pkt.uid:
                    inp.ct_uid = None
                    continue  # cut-through packets bypass the memory entirely
                if inp.staged is not None:
                    # Double-buffer overrun: the previous packet never got a
                    # memory-write slot within a packet time — it is lost.
                    lost = inp.staged
                    self._sent.pop(lost.uid, None)
                    self.stats.record_drop(lost.arrival_cycle)
                    self.staging_drops += 1
                inp.staged = pkt
                inp.staged_at = t

    def _try_cut_through(self, t: int, i: int, pkt: Packet) -> None:
        if not self.config.cut_through:
            return
        out = self._outputs[pkt.dst]
        if (
            out.sending is None
            and out.staged is None
            and out.ct_packet is None
            and not self.queues[pkt.dst]
        ):
            out.ct_packet = pkt
            out.ct_started = t
            self._inputs[i].ct_uid = pkt.uid
            self.stats.record_accept(pkt.arrival_cycle)
            self.cut_throughs += 1


class _Mute(PacketSource):
    """Silent source used while draining."""

    def __init__(self, inner: PacketSource) -> None:
        super().__init__(inner.n_out, inner.packet_words, inner.width_bits)

    def maybe_start(self, cycle: int, link: int) -> int | None:
        return None
