"""Autofixes for mechanically-correctable findings (``repro lint --fix``).

Two codes have a fix that is always semantics-preserving with respect to
the *intent* of the rule, so the linter can apply it:

* **DRC104** (unordered set iteration) — wrap the iterated set
  expression in ``sorted(...)``.  The loop visits the same elements in a
  deterministic order; nothing else changes.
* **DRC101** (wall-clock imports) — drop the offending names from a
  ``from time import ...`` statement in a deterministic package; if
  nothing survives, delete the statement.  Call-site fixes are *not*
  attempted (replacing ``time.time()`` needs a cycle-counter source the
  fixer cannot infer), so those findings remain for a human.

Fixes are computed as byte-offset edits against the original source and
applied innermost-first, so nested fixable sites (a set comprehension
iterating a set, itself iterated by a loop) compose correctly.  Findings
suppressed with ``# drc: disable=...`` on their line are left alone.

The fixer is **idempotent**: fixed code no longer matches the rule
pattern (``sorted(...)`` is not a set expression; a deleted import is
gone), so a second pass makes zero edits — asserted by the test suite
by fixing twice and diffing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.drc.linter import discover_files, parse_suppressions
from repro.drc.rules import (
    LintModule,
    SetIterationRule,
    _WALL_CLOCK,
    _deterministic_scope,
)

FIXABLE_CODES = frozenset({"DRC101", "DRC104"})


@dataclass(frozen=True)
class _Edit:
    """Replace ``source[start:end]`` with ``text`` (pure insert when
    ``start == end``)."""

    start: int
    end: int
    text: str


def _line_starts(source: str) -> list[int]:
    starts = [0]
    for line in source.splitlines(keepends=True):
        starts.append(starts[-1] + len(line))
    return starts


def _offset(starts: list[int], lineno: int, col: int) -> int:
    return starts[lineno - 1] + col


def _allowed(suppressions: dict[int, set[str] | None], line: int,
             code: str) -> bool:
    codes = suppressions.get(line, ...)
    if codes is ...:
        return True
    return not (codes is None or code in codes)  # type: ignore[operator]


def fix_source(relpath: str, source: str) -> tuple[str, int]:
    """Apply every available fix; return (new source, fixes applied)."""
    try:
        mod = LintModule.parse(Path(relpath), relpath, source)
    except (SyntaxError, ValueError):
        return source, 0
    if not _deterministic_scope(mod):
        return source, 0
    suppressions = parse_suppressions(source)
    starts = _line_starts(source)
    edits: list[_Edit] = []
    n_fixes = 0

    checker = SetIterationRule()
    for node in ast.walk(mod.tree):
        iters: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if not checker._is_set_expr(it):
                continue
            if not _allowed(suppressions, it.lineno, "DRC104"):
                continue
            if it.end_lineno is None or it.end_col_offset is None:
                continue
            a = _offset(starts, it.lineno, it.col_offset)
            b = _offset(starts, it.end_lineno, it.end_col_offset)
            edits.append(_Edit(a, a, "sorted("))
            edits.append(_Edit(b, b, ")"))
            n_fixes += 1

    for node in ast.walk(mod.tree):
        if not (isinstance(node, ast.ImportFrom) and node.module == "time"):
            continue
        bad = [a for a in node.names if f"time.{a.name}" in _WALL_CLOCK]
        if not bad:
            continue
        if not _allowed(suppressions, node.lineno, "DRC101"):
            continue
        if node.end_lineno is None or node.end_col_offset is None:
            continue
        keep = [a for a in node.names if f"time.{a.name}" not in _WALL_CLOCK]
        a = _offset(starts, node.lineno, node.col_offset)
        b = _offset(starts, node.end_lineno, node.end_col_offset)
        if keep:
            names = ", ".join(
                al.name if al.asname is None else f"{al.name} as {al.asname}"
                for al in keep)
            edits.append(_Edit(a, b, f"from time import {names}"))
        else:
            # delete the whole statement, trailing newline included
            while b < len(source) and source[b] != "\n":
                b += 1
            if b < len(source):
                b += 1
            edits.append(_Edit(a, b, ""))
        n_fixes += 1

    if not edits:
        return source, 0
    out = source
    for edit in sorted(edits, key=lambda e: (e.start, e.end), reverse=True):
        out = out[:edit.start] + edit.text + out[edit.end:]
    return out, n_fixes


def apply_fixes(paths: Iterable[str | Path],
                root: Path | None = None) -> dict[str, int]:
    """Fix every file under ``paths`` in place; relpath -> fixes applied
    (only files that changed appear)."""
    root = Path.cwd() if root is None else root
    out: dict[str, int] = {}
    for f in discover_files(paths, root=root):
        try:
            rel = f.relative_to(root).as_posix()
        except ValueError:
            rel = f.as_posix()
        try:
            source = f.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        fixed, n = fix_source(rel, source)
        if n and fixed != source:
            f.write_text(fixed, encoding="utf-8")
            out[rel] = n
    return out


__all__ = ["FIXABLE_CODES", "apply_fixes", "fix_source"]
