"""Per-rule tests for the static half of repro.drc.

Each rule gets a minimal synthetic tree under ``tmp_path`` that triggers
it, plus a negative showing the sanctioned alternative stays clean.  The
trees mimic the real layout (``src/repro/<package>/...``) because the
determinism rules are scoped to the simulation packages.
"""

import json
from pathlib import Path

import pytest

from repro.drc import (
    LintResult,
    Violation,
    format_json,
    format_sarif,
    format_text,
    parse_suppressions,
    rule_catalog,
    run_lint,
)


def _tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)
    return tmp_path


def _codes(tmp_path: Path, files: dict[str, str]) -> list[str]:
    root = _tree(tmp_path, files)
    return [v.code for v in run_lint(["src"], root=root).all_findings()]


# -- determinism rules (DRC101-DRC104) ----------------------------------------

def test_drc101_wall_clock_in_sim_package(tmp_path):
    codes = _codes(tmp_path, {
        "src/repro/sim/clocky.py": "import time\nstart = time.time()\n",
    })
    assert codes == ["DRC101"]


def test_drc101_from_import_and_out_of_scope(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/sim/clocky.py": "from time import monotonic\n",
        "src/repro/analysis/free.py": "import time\nt = time.time()\n",
    })
    result = run_lint(["src"], root=root)
    assert [v.code for v in result.violations] == ["DRC101"]
    assert result.violations[0].path == "src/repro/sim/clocky.py"


def test_drc102_global_random_module(tmp_path):
    codes = _codes(tmp_path, {
        "src/repro/core/dicey.py": "import random\nx = random.random()\n",
        "src/repro/switches/dicey2.py": "from random import randint\n",
    })
    assert codes == ["DRC102", "DRC102"]


def test_drc103_numpy_global_rng(tmp_path):
    codes = _codes(tmp_path, {
        "src/repro/network/noisy.py": (
            "import numpy as np\n"
            "np.random.seed(7)\n"          # global state: flagged
            "rng = np.random.default_rng(7)\n"  # sanctioned: clean
        ),
    })
    assert codes == ["DRC103"]


def test_drc104_set_iteration(tmp_path):
    codes = _codes(tmp_path, {
        "src/repro/fabric/loopy.py": (
            "for x in {1, 2, 3}:\n    pass\n"
            "ys = [y for y in set([4, 5])]\n"
            "zs = [z for z in sorted({6, 7})]\n"  # sorted: clean
        ),
    })
    assert codes == ["DRC104", "DRC104"]


def test_determinism_rules_skip_test_code(tmp_path):
    root = _tree(tmp_path, {
        "tests/core/test_x.py": "import random\nimport time\nt = time.time()\n",
    })
    assert run_lint(["tests"], root=root).violations == []


# -- telemetry discipline (DRC111-DRC112) -------------------------------------

def test_drc111_direct_metric_construction(tmp_path):
    codes = _codes(tmp_path, {
        "src/repro/core/metr.py": (
            "from repro.telemetry.metrics import CounterMetric\n"
            "c = CounterMetric('repro_x_total')\n"
        ),
        # inside the telemetry package the classes are fair game
        "src/repro/telemetry/impl.py": (
            "c = CounterMetric('repro_y_total')\n"
        ),
    })
    assert codes == ["DRC111"]


def test_drc112_inconsistent_label_sets(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/core/a.py": "c = reg.counter('repro_hits_total', link=0)\n",
        "src/repro/core/b.py": "c = reg.counter('repro_hits_total', port=1)\n",
    })
    result = run_lint(["src"], root=root)
    assert [v.code for v in result.violations] == ["DRC112"]
    assert "repro_hits_total" in result.violations[0].message


def test_drc112_same_labels_everywhere_clean(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/core/a.py": "c = reg.counter('repro_hits_total', link=0)\n",
        "src/repro/core/b.py": "c = reg.counter('repro_hits_total', link=9)\n",
        "src/repro/core/c.py": (
            "h = reg.histogram('repro_lat', edges=[1, 2], link=3)\n"  # edges: option
        ),
    })
    assert run_lint(["src"], root=root).violations == []


# -- registry coverage and API shape (DRC121, DRC131) -------------------------

_SLOTTED_OK = (
    "class SlottedSwitch:\n"
    "    def _admit(self): pass\n"
    "    def _select_departures(self): pass\n"
    "    def occupancy(self): pass\n"
)


def test_drc121_unregistered_kernel(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/switches/models.py": (
            _SLOTTED_OK + "class Orphan(SlottedSwitch):\n    pass\n"
        ),
        "src/repro/scenario/registry.py": "REGISTRY = {}\n",
    })
    result = run_lint(["src"], root=root)
    assert any(
        v.code == "DRC121" and "Orphan" in v.message for v in result.violations
    )


def test_drc121_registry_references_missing_kernel(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/switches/models.py": (
            _SLOTTED_OK + "class _Internal(SlottedSwitch):\n    pass\n"
        ),
        "src/repro/scenario/registry.py": (
            "from repro import switches as sw\n"
            "def build(p):\n"
            "    return sw.GhostKernel(p)\n"
        ),
    })
    result = run_lint(["src"], root=root)
    assert any(
        v.code == "DRC121" and "GhostKernel" in v.message
        for v in result.violations
    )
    # the underscore-prefixed class is internal: no unregistered-kernel finding
    assert not any("_Internal" in v.message for v in result.violations)


def test_drc121_word_kernel_not_reachable(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/core/batchpath.py": (
            "class BatchPipelinedSwitch:\n"
            "    def run(self): pass\n"
        ),
        "src/repro/scenario/registry.py": "REGISTRY = {}\n",
    })
    result = run_lint(["src"], root=root)
    assert any(
        v.code == "DRC121" and "BatchPipelinedSwitch" in v.message
        for v in result.violations
    )


def test_drc121_word_kernel_reachable_via_factory_clean(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/core/batchpath.py": (
            "class BatchPipelinedSwitch:\n"
            "    def run(self): pass\n"
        ),
        "src/repro/core/fastpath.py": (
            "def make_pipelined_switch(cfg, src, kernel=None):\n"
            "    from repro.core.batchpath import BatchPipelinedSwitch\n"
            "    return BatchPipelinedSwitch(cfg, src)\n"
        ),
        "src/repro/scenario/registry.py": "REGISTRY = {}\n",
    })
    assert run_lint(["src"], root=root).violations == []


# -- policy and drop-taxonomy coverage (DRC122) -------------------------------

_ADMISSION_OK = (
    "class AdmissionPolicy:\n    pass\n"
    "class CompleteSharing(AdmissionPolicy):\n    pass\n"
    "POLICIES = {'complete': CompleteSharing}\n"
)

_EVENTS_OK = (
    "DROP_BUFFER_FULL = 'buffer_full'\n"
    "DROP_POLICY = 'policy'\n"
    "DROP_CAUSES = (DROP_BUFFER_FULL, DROP_POLICY)\n"
)


def test_drc122_unregistered_policy(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/policy/admission.py": (
            _ADMISSION_OK + "class Orphan(AdmissionPolicy):\n    pass\n"
        ),
    })
    result = run_lint(["src"], root=root)
    assert any(
        v.code == "DRC122" and "Orphan" in v.message for v in result.violations
    )


def test_drc122_underscore_policy_is_internal(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/policy/admission.py": (
            _ADMISSION_OK + "class _Experimental(AdmissionPolicy):\n    pass\n"
        ),
    })
    assert run_lint(["src"], root=root).violations == []


def test_drc122_registry_references_missing_policy(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/policy/admission.py": (
            "class AdmissionPolicy:\n    pass\n"
            "class CompleteSharing(AdmissionPolicy):\n    pass\n"
            "POLICIES = {'complete': CompleteSharing, 'ghost': GhostPolicy}\n"
        ),
    })
    result = run_lint(["src"], root=root)
    assert any(
        v.code == "DRC122" and "GhostPolicy" in v.message
        for v in result.violations
    )


def test_drc122_drop_cause_missing_from_taxonomy(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/telemetry/events.py": (
            _EVENTS_OK + "DROP_NOVEL = 'novel'\n"
        ),
    })
    result = run_lint(["src"], root=root)
    assert any(
        v.code == "DRC122" and "DROP_NOVEL" in v.message
        for v in result.violations
    )


def test_drc122_missing_taxonomy_tuple(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/telemetry/events.py": "DROP_BUFFER_FULL = 'buffer_full'\n",
    })
    result = run_lint(["src"], root=root)
    assert any(
        v.code == "DRC122" and "DROP_CAUSES" in v.message
        for v in result.violations
    )


def test_drc122_clean_tree(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/policy/admission.py": _ADMISSION_OK,
        "src/repro/telemetry/events.py": _EVENTS_OK,
    })
    assert run_lint(["src"], root=root).violations == []


def test_drc131_slotted_switch_missing_hooks(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/switches/models.py": (
            "class SlottedSwitch:\n    pass\n"
            "class Halfway(SlottedSwitch):\n"
            "    def _admit(self): pass\n"
        ),
    })
    result = run_lint(["src"], root=root)
    assert [v.code for v in result.violations] == ["DRC131"]
    assert "_select_departures" in result.violations[0].message


def test_drc131_hooks_inherited_through_chain_clean(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/switches/models.py": (
            _SLOTTED_OK
            + "class Mid(SlottedSwitch):\n    pass\n"
            + "class Leaf(Mid):\n    pass\n"
        ),
        "src/repro/scenario/registry.py": (
            "from repro import switches as sw\n"
            "B = {'mid': sw.Mid, 'leaf': sw.Leaf}\n"
        ),
    })
    assert run_lint(["src"], root=root).violations == []


# -- driver behaviour: suppressions, parse errors, formats --------------------

def test_suppression_single_code(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/sim/clocky.py":
            "import time\nt = time.time()  # drc: disable=DRC101\n",
    })
    result = run_lint(["src"], root=root)
    assert result.violations == []
    assert result.suppressed == 1


def test_suppression_wrong_code_does_not_silence(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/sim/clocky.py":
            "import time\nt = time.time()  # drc: disable=DRC104\n",
    })
    result = run_lint(["src"], root=root)
    assert [v.code for v in result.violations] == ["DRC101"]


def test_suppression_bare_disable_silences_all(tmp_path):
    assert parse_suppressions("x = 1  # drc: disable\n") == {1: None}
    assert parse_suppressions("x = 1  # drc: disable=DRC101, DRC104\n") == {
        1: {"DRC101", "DRC104"}
    }


def test_parse_error_reported_as_drc001(tmp_path):
    root = _tree(tmp_path, {"src/repro/sim/broken.py": "def oops(:\n"})
    result = run_lint(["src"], root=root)
    assert result.exit_code == 1
    assert [v.code for v in result.all_findings()] == ["DRC001"]


def test_exit_code_zero_when_clean(tmp_path):
    root = _tree(tmp_path, {"src/repro/sim/fine.py": "x = 1\n"})
    result = run_lint(["src"], root=root)
    assert result.exit_code == 0


def test_format_text_counts(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/sim/clocky.py": "import time\nt = time.time()\n",
    })
    text = format_text(run_lint(["src"], root=root))
    assert "DRC101" in text
    assert "1 violation in 1 file" in text


def test_format_json_roundtrips(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/core/dicey.py": "import random\n",
    })
    doc = json.loads(format_json(run_lint(["src"], root=root)))
    assert doc["files_checked"] == 1
    assert [v["code"] for v in doc["violations"]] == ["DRC102"]
    assert doc["violations"][0]["line"] == 1


def test_format_sarif_schema_shape(tmp_path):
    root = _tree(tmp_path, {
        "src/repro/sim/clocky.py": "import time\nt = time.time()\n",
    })
    doc = json.loads(format_sarif(run_lint(["src"], root=root)))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {rule.code for rule in rule_catalog()} == rule_ids
    assert run["results"][0]["ruleId"] == "DRC101"
    loc = run["results"][0]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/sim/clocky.py"
    assert loc["region"]["startLine"] == 2


def test_rule_catalog_codes_are_stable():
    codes = [rule.code for rule in rule_catalog()]
    assert codes == sorted(codes)
    assert codes == ["DRC101", "DRC102", "DRC103", "DRC104",
                     "DRC111", "DRC112", "DRC121", "DRC122", "DRC131",
                     "DRC141", "DRC142", "DRC143",
                     "DRC151", "DRC152", "DRC153",
                     "DRC161", "DRC162"]
    assert all(rule.name and rule.summary for rule in rule_catalog())


def test_repository_is_lint_clean():
    """Satellite guarantee: the repo's own src+tests lint with zero
    violations — the DRC catalog is enforced, not aspirational."""
    root = Path(__file__).resolve().parents[2]
    result = run_lint(["src", "tests"], root=root)
    assert result.all_findings() == [], format_text(result)
