"""Tests for the §3.5 half-quantum split pipelined buffer."""

import pytest

from repro.core import RenewalPacketSource, SaturatingSource
from repro.core.split_buffer import SplitBufferConfig, SplitPipelinedBuffer


def test_config():
    cfg = SplitBufferConfig(n=8, addresses_each=64)
    assert cfg.packet_words == 8  # half the 2n quantum
    assert cfg.buffer_bits == 2 * 8 * 64 * 16
    with pytest.raises(ValueError):
        SplitBufferConfig(n=1)
    with pytest.raises(ValueError):
        SplitBufferConfig(n=4, addresses_each=0)


def test_half_size_packets_delivered_losslessly():
    n = 8
    cfg = SplitBufferConfig(n=n, addresses_each=64)
    src = RenewalPacketSource(n_out=n, packet_words=cfg.packet_words, load=0.5, seed=1)
    sw = SplitPipelinedBuffer(cfg, src)
    sw.run(40_000)
    assert sw.stats.dropped == 0
    # near-complete delivery (a few packets still in flight at the horizon)
    assert sw.stats.delivered >= sw.stats.offered - 4 * n


def test_full_load_sustains_one_read_plus_one_write_per_cycle():
    """§3.5's claim: with two half-depth memories, one departure *and* one
    store can initiate every cycle, so half-quantum packets still run at
    full line rate."""
    n = 8
    cfg = SplitBufferConfig(n=n, addresses_each=64)
    src = SaturatingSource(n_out=n, packet_words=cfg.packet_words, seed=2)
    sw = SplitPipelinedBuffer(cfg, src)
    sw.warmup = 4000
    sw.run(40_000)
    measured = sw.stats.measured_slots
    util = sw.stats.delivered * cfg.packet_words / (measured * n)
    assert util > 0.93


def test_packets_split_across_both_memories():
    n = 4
    cfg = SplitBufferConfig(n=n, addresses_each=64)
    src = SaturatingSource(n_out=n, packet_words=cfg.packet_words, seed=3)
    sw = SplitPipelinedBuffer(cfg, src)
    sw.run(5_000)
    # Both memories must see traffic (bank access counters are per memory).
    writes = [sum(b.writes for b in banks) for banks in sw.banks]
    assert writes[0] > 0 and writes[1] > 0


def test_fifo_per_output():
    n = 4
    cfg = SplitBufferConfig(n=n, addresses_each=64)
    src = RenewalPacketSource(n_out=n, packet_words=cfg.packet_words, load=0.8, seed=4)
    sw = SplitPipelinedBuffer(cfg, src)
    sw.run(20_000)
    for sink in sw.sinks:
        heads = [h for _, h, _ in sink.delivered]
        assert heads == sorted(heads)


def test_cut_through_latency_minimum():
    n = 4
    cfg = SplitBufferConfig(n=n, addresses_each=64)
    src = RenewalPacketSource(n_out=n, packet_words=cfg.packet_words, load=0.05, seed=5)
    sw = SplitPipelinedBuffer(cfg, src)
    sw.run(40_000)
    # At very light load nearly every packet cuts through at 2 cycles.
    assert sw.ct_latency.minimum == 2
    assert sw.ct_latency.mean < 3.0
