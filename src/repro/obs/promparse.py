"""Mini promtool: parse + validate the Prometheus text exposition format.

Covers the 0.0.4 subset :func:`repro.telemetry.export.render_prometheus`
emits, strictly enough to catch the classes of breakage a real scraper
would reject:

* label quoting and the three escapes (``\\``, ``\"``, ``\\n``);
* ``# HELP`` / ``# TYPE`` at most once per family, before its samples,
  HELP before TYPE when both are present;
* family contiguity (all samples of a family adjacent);
* histogram structure per label set: ``_bucket`` series with a ``+Inf``
  bucket, cumulative counts monotone in ``le``, ``_count`` equal to the
  ``+Inf`` bucket, ``_sum`` present.

:func:`parse` returns :class:`Family` objects that round-trip through
:func:`render`, which is how the sweep aggregator merges per-worker
registries (parse each artifact, :func:`add_labels` a cell label,
:func:`merge`, render once) without ever concatenating raw text — the
format forbids duplicate ``# TYPE`` lines, so naive concatenation of two
valid exports is invalid.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.telemetry.metrics import escape_label_value, full_name

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")

_HIST_SUFFIXES = ("_bucket", "_sum", "_count")


class PromParseError(ValueError):
    """Malformed exposition text; message carries the 1-based line number."""


@dataclass(slots=True)
class Sample:
    """One sample line: name may carry a histogram suffix."""

    name: str
    labels: dict[str, str]
    value: float
    value_text: str  # verbatim, so +Inf/NaN and int-ness survive re-render


@dataclass(slots=True)
class Family:
    """One metric family: its metadata plus samples in input order."""

    name: str
    type: str | None = None
    help: str | None = None
    samples: list[Sample] = field(default_factory=list)

    def series(self) -> dict[tuple[str, tuple[tuple[str, str], ...]], list[Sample]]:
        """Samples grouped by (sample name, non-le labels)."""
        out: dict[tuple[str, tuple[tuple[str, str], ...]], list[Sample]] = {}
        for s in self.samples:
            key_labels = tuple(sorted((k, v) for k, v in s.labels.items()
                                      if k != "le"))
            out.setdefault((s.name, key_labels), []).append(s)
        return out


def _family_of(sample_name: str, typed_hist: set[str]) -> str:
    for suffix in _HIST_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in typed_hist:
                return base
    return sample_name


def _parse_labels(text: str, lineno: int) -> tuple[dict[str, str], int]:
    """Parse ``{k="v",...}`` starting at text[0] == '{'; returns labels and
    the index just past the closing brace."""
    labels: dict[str, str] = {}
    i = 1
    while True:
        if i >= len(text):
            raise PromParseError(f"line {lineno}: unterminated label set")
        if text[i] == "}":
            return labels, i + 1
        m = _LABEL_NAME_RE.match(text, i)
        if not m:
            raise PromParseError(f"line {lineno}: bad label name at {text[i:]!r}")
        name = m.group(0)
        i = m.end()
        if i >= len(text) or text[i] != "=":
            raise PromParseError(f"line {lineno}: expected '=' after label {name}")
        i += 1
        if i >= len(text) or text[i] != '"':
            raise PromParseError(
                f"line {lineno}: label value for {name} must be double-quoted"
            )
        i += 1
        out: list[str] = []
        while True:
            if i >= len(text):
                raise PromParseError(
                    f"line {lineno}: unterminated label value for {name}"
                )
            ch = text[i]
            if ch == "\\":
                if i + 1 >= len(text):
                    raise PromParseError(
                        f"line {lineno}: dangling escape in label {name}"
                    )
                esc = text[i + 1]
                if esc == "\\":
                    out.append("\\")
                elif esc == '"':
                    out.append('"')
                elif esc == "n":
                    out.append("\n")
                else:
                    raise PromParseError(
                        f"line {lineno}: invalid escape \\{esc} in label {name}"
                    )
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                out.append(ch)
                i += 1
        if name in labels:
            raise PromParseError(f"line {lineno}: duplicate label {name}")
        labels[name] = "".join(out)
        if i < len(text) and text[i] == ",":
            i += 1


def _unescape_help(text: str) -> str:
    # Left-to-right scan so an escaped backslash never re-combines with a
    # following 'n' into a newline.
    return re.sub(r"\\(\\|n)",
                  lambda m: "\\" if m.group(1) == "\\" else "\n", text)


def _parse_value(text: str, lineno: int) -> float:
    txt = text.strip()
    if not txt:
        raise PromParseError(f"line {lineno}: missing sample value")
    try:
        return float(txt.replace("+Inf", "inf").replace("-Inf", "-inf"))
    except ValueError:
        raise PromParseError(f"line {lineno}: bad sample value {txt!r}") from None


def parse(text: str) -> list[Family]:
    """Parse exposition text into families, validating as it goes."""
    families: dict[str, Family] = {}
    closed: set[str] = set()      # families whose sample block has ended
    typed_hist: set[str] = set()  # families declared `# TYPE ... histogram`
    current: str | None = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # plain comment
            if len(parts) < 3:
                raise PromParseError(f"line {lineno}: {parts[1]} missing metric name")
            kind, name = parts[1], parts[2]
            if not _NAME_RE.fullmatch(name):
                raise PromParseError(f"line {lineno}: bad metric name {name!r}")
            fam = families.setdefault(name, Family(name))
            if fam.samples or name in closed:
                raise PromParseError(
                    f"line {lineno}: # {kind} {name} after its samples"
                )
            if kind == "HELP":
                if fam.help is not None:
                    raise PromParseError(f"line {lineno}: duplicate HELP for {name}")
                if fam.type is not None:
                    raise PromParseError(
                        f"line {lineno}: HELP for {name} must precede TYPE"
                    )
                fam.help = _unescape_help(parts[3] if len(parts) > 3 else "")
            else:
                if fam.type is not None:
                    raise PromParseError(f"line {lineno}: duplicate TYPE for {name}")
                if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary", "untyped"):
                    raise PromParseError(
                        f"line {lineno}: bad TYPE for {name}: {line!r}"
                    )
                fam.type = parts[3]
                if fam.type == "histogram":
                    typed_hist.add(name)
            if current is not None and current != name:
                closed.add(current)
            current = name
            continue

        m = _NAME_RE.match(line)
        if not m:
            raise PromParseError(f"line {lineno}: bad sample line {line!r}")
        sample_name = m.group(0)
        rest = line[m.end():]
        labels: dict[str, str] = {}
        if rest.startswith("{"):
            labels, consumed = _parse_labels(rest, lineno)
            rest = rest[consumed:]
        if rest[:1] not in (" ", "\t"):
            raise PromParseError(f"line {lineno}: missing value separator")
        value_text = rest.strip()
        if len(value_text.split()) > 1:
            # We never emit timestamps; reject them to keep round-trips exact.
            raise PromParseError(f"line {lineno}: unexpected trailing fields")
        value = _parse_value(value_text, lineno)

        fam_name = _family_of(sample_name, typed_hist)
        if fam_name in closed:
            raise PromParseError(
                f"line {lineno}: family {fam_name} is not contiguous"
            )
        if current is not None and current != fam_name:
            closed.add(current)
        current = fam_name
        fam = families.setdefault(fam_name, Family(fam_name))
        fam.samples.append(Sample(sample_name, labels, value, value_text))

    out = list(families.values())
    for fam in out:
        if fam.type == "histogram":
            _validate_histogram(fam)
    return out


def _validate_histogram(fam: Family) -> None:
    series = fam.series()
    buckets: dict[tuple, list[Sample]] = {}
    sums: dict[tuple, Sample] = {}
    counts: dict[tuple, Sample] = {}
    for (name, key_labels), samples in series.items():
        if name == fam.name + "_bucket":
            buckets[key_labels] = samples
        elif name == fam.name + "_sum":
            sums[key_labels] = samples[0]
        elif name == fam.name + "_count":
            counts[key_labels] = samples[0]
        else:
            raise PromParseError(
                f"histogram {fam.name}: unexpected sample {name}"
            )
    label_txt = lambda key: full_name("", key) or "{}"  # noqa: E731
    for key, samples in buckets.items():
        les: list[float] = []
        cums: list[float] = []
        for s in samples:
            if "le" not in s.labels:
                raise PromParseError(
                    f"histogram {fam.name}{label_txt(key)}: bucket without le"
                )
            le = _parse_value(s.labels["le"], 0)
            les.append(le)
            cums.append(s.value)
        if not les or not math.isinf(les[-1]) or les[-1] < 0:
            raise PromParseError(
                f"histogram {fam.name}{label_txt(key)}: missing +Inf bucket"
            )
        if les != sorted(les):
            raise PromParseError(
                f"histogram {fam.name}{label_txt(key)}: le not ascending"
            )
        if any(b > a for a, b in zip(cums[1:], cums)):
            raise PromParseError(
                f"histogram {fam.name}{label_txt(key)}: counts not cumulative"
            )
        if key not in counts:
            raise PromParseError(
                f"histogram {fam.name}{label_txt(key)}: missing _count"
            )
        if counts[key].value != cums[-1]:
            raise PromParseError(
                f"histogram {fam.name}{label_txt(key)}: _count "
                f"{counts[key].value:g} != +Inf bucket {cums[-1]:g}"
            )
        if key not in sums:
            raise PromParseError(
                f"histogram {fam.name}{label_txt(key)}: missing _sum"
            )
    for key in list(sums) + list(counts):
        if key not in buckets:
            raise PromParseError(
                f"histogram {fam.name}{label_txt(key)}: _sum/_count without buckets"
            )


# -- aggregation helpers ----------------------------------------------------
def add_labels(families: list[Family], **labels: str) -> list[Family]:
    """Return families with ``labels`` merged into every sample (new labels
    win on collision — the aggregator's cell label overrides)."""
    out: list[Family] = []
    for fam in families:
        nf = Family(fam.name, fam.type, fam.help)
        for s in fam.samples:
            nf.samples.append(Sample(s.name, {**s.labels, **labels},
                                     s.value, s.value_text))
        out.append(nf)
    return out


def merge(groups: list[list[Family]]) -> list[Family]:
    """Merge family lists from several sources into one exposition set.

    Same-name families must agree on type; samples concatenate in source
    order.  Help text: first non-empty wins.
    """
    merged: dict[str, Family] = {}
    for families in groups:
        for fam in families:
            cur = merged.get(fam.name)
            if cur is None:
                merged[fam.name] = Family(fam.name, fam.type, fam.help,
                                          list(fam.samples))
                continue
            if fam.type is not None:
                if cur.type is not None and cur.type != fam.type:
                    raise PromParseError(
                        f"family {fam.name}: conflicting types "
                        f"{cur.type} vs {fam.type}"
                    )
                cur.type = cur.type or fam.type
            cur.help = cur.help or fam.help
            cur.samples.extend(fam.samples)
    return sorted(merged.values(), key=lambda f: f.name)


def render(families: list[Family]) -> str:
    """Exposition text: HELP/TYPE once per family, then its samples."""
    lines: list[str] = []
    for fam in families:
        if fam.help:
            help_txt = fam.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {fam.name} {help_txt}")
        if fam.type:
            lines.append(f"# TYPE {fam.name} {fam.type}")
        for s in fam.samples:
            if s.labels:
                inner = ",".join(
                    f'{k}="{escape_label_value(v)}"'
                    for k, v in sorted(s.labels.items())
                )
                lines.append(f"{s.name}{{{inner}}} {s.value_text}")
            else:
                lines.append(f"{s.name} {s.value_text}")
    return "\n".join(lines) + ("\n" if lines else "")
