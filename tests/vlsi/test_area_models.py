"""Tests for the VLSI technology, memory, datapath and crossbar models."""

import pytest

from repro.vlsi import (
    Style,
    TELEGRAPHOS_II_TECH,
    TELEGRAPHOS_III_TECH,
    Technology,
    bank_dimensions_um,
    crossbar_cost,
    decoder_area_um2,
    input_buffer_peripheral_area,
    megacell_area_mm2,
    pipelined_memory_area,
    pipelined_peripheral_area,
    pipereg_area_um2,
    prizma_vs_pipelined_ratio,
    scaled,
    shift_register_buffer_area_mm2,
    wide_memory_area,
    wide_peripheral_area,
)


class TestTechnology:
    def test_validation(self):
        with pytest.raises(ValueError):
            Technology(name="bad", feature_um=0.0, style=Style.FULL_CUSTOM)

    def test_area_scales_with_feature_squared(self):
        t1 = TELEGRAPHOS_III_TECH
        t2 = scaled(t1, 0.5)
        assert t2.bit_area() == pytest.approx(t1.bit_area() / 4)

    def test_std_cell_denser_penalty(self):
        fc = TELEGRAPHOS_III_TECH
        std = scaled(fc, 1.0, style=Style.STANDARD_CELL)
        assert std.wire_pitch_um() > fc.wire_pitch_um()

    def test_clock_scaling(self):
        assert TELEGRAPHOS_III_TECH.clock_ns() == pytest.approx(16.0)
        assert TELEGRAPHOS_III_TECH.clock_ns(worst_case=False) == pytest.approx(10.0)
        assert TELEGRAPHOS_II_TECH.clock_ns() == pytest.approx(40.0, rel=0.01)


class TestMemoryArea:
    def test_validation(self):
        with pytest.raises(ValueError):
            pipelined_memory_area(TELEGRAPHOS_III_TECH, 0, 256, 16)

    def test_megacell_matches_published(self):
        """Telegraphos II megacell: 256x16 compiled SRAM = 1.5 x 0.9 mm^2."""
        area = megacell_area_mm2(TELEGRAPHOS_II_TECH, 256, 16)
        assert area == pytest.approx(1.35, rel=0.02)

    def test_pipereg_is_2_3x_smaller_than_decoder(self):
        tech = TELEGRAPHOS_III_TECH
        ratio = decoder_area_um2(tech, 256) / pipereg_area_um2(tech, 256)
        assert ratio == pytest.approx(2.3)

    def test_address_pipeline_saves_area(self):
        """Figure 7b vs 7a: pipeline registers beat per-bank decoders."""
        tech = TELEGRAPHOS_III_TECH
        with_pipe = pipelined_memory_area(tech, 16, 256, 16, address_pipeline=True)
        without = pipelined_memory_area(tech, 16, 256, 16, address_pipeline=False)
        assert with_pipe.total_mm2 < without.total_mm2
        assert with_pipe.bits_mm2 == without.bits_mm2

    def test_wide_same_bits_fewer_decoders(self):
        tech = TELEGRAPHOS_III_TECH
        pipe = pipelined_memory_area(tech, 16, 256, 16)
        wide = wide_memory_area(tech, 256, 16 * 16)
        assert wide.bits_mm2 == pytest.approx(pipe.bits_mm2)
        assert wide.decoders_mm2 < pipe.decoders_mm2 + pipe.pipeline_regs_mm2

    def test_bank_dimensions(self):
        w, h = bank_dimensions_um(TELEGRAPHOS_III_TECH, 256, 16)
        assert w > 0 and h > 0
        assert h / w == pytest.approx(256 / 16)

    def test_shift_register_4x_penalty(self):
        """§5.3: a dynamic shift-register bit is 4x a RAM bit."""
        tech = TELEGRAPHOS_III_TECH
        ram = pipelined_memory_area(tech, 16, 256, 16).bits_mm2
        sr = shift_register_buffer_area_mm2(tech, 16, 256, 16)
        assert sr / ram == pytest.approx(4.0)


class TestPeripheralArea:
    def test_telegraphos3_peripheral_about_9mm2(self):
        dp = pipelined_peripheral_area(TELEGRAPHOS_III_TECH, 8, 16, 16)
        assert dp.area_mm2 == pytest.approx(9.0, rel=0.1)

    def test_grows_with_square_of_links(self):
        """§4.4: 'the peripheral circuit area grows with the square of the
        number of links'."""
        tech = TELEGRAPHOS_III_TECH
        a4 = pipelined_peripheral_area(tech, 4, 16).area_mm2
        a8 = pipelined_peripheral_area(tech, 8, 16).area_mm2
        assert a8 / a4 == pytest.approx(4.0, rel=0.05)

    def test_wide_peripheral_about_50pc_larger(self):
        """§5.2: wide-memory peripheral = 13 vs 9 mm^2 at Telegraphos III
        parameters (~30 % saving for the pipelined organization)."""
        tech = TELEGRAPHOS_III_TECH
        pipe = pipelined_peripheral_area(tech, 8, 16, 16).area_mm2
        wide = wide_peripheral_area(tech, 8, 16, 16).area_mm2
        assert 1 - pipe / wide == pytest.approx(1 / 3, abs=0.05)

    def test_input_buffer_crossbar_half_the_shared_datapath(self):
        """§5.1: input buffering needs one ~2nw x nw block, shared needs two."""
        tech = TELEGRAPHOS_III_TECH
        shared = pipelined_peripheral_area(tech, 8, 16).area_mm2
        inp = input_buffer_peripheral_area(tech, 8, 16).area_mm2
        assert inp == pytest.approx(shared / 2, rel=0.05)


class TestCrossbar:
    def test_validation(self):
        with pytest.raises(ValueError):
            crossbar_cost(TELEGRAPHOS_III_TECH, 0, 4, 16)

    def test_crosspoint_count(self):
        c = crossbar_cost(TELEGRAPHOS_III_TECH, 8, 16, 16)
        assert c.crosspoints == 8 * 16 * 16

    def test_prizma_ratio_is_16x(self):
        """§5.3: 'the shared-buffer crossbars would cost 16 times more in
        the PRIZMA architecture' (2n=16, M=256)."""
        assert prizma_vs_pipelined_ratio(8, 256) == pytest.approx(16.0)
