"""SeriesRing: bounded retention, export views, codec round-trip."""

from __future__ import annotations

import json

import pytest

from repro.obs.series import SeriesRing


def _fill(ring: SeriesRing, n: int, start: int = 0) -> None:
    for i in range(start, start + n):
        ring.record(i * 10, i % 7, 100 - i % 7, [i % 3, i % 5],
                    {"no_space": i // 2} if i else {})


class TestRing:
    def test_bounded_oldest_evicted(self):
        ring = SeriesRing(capacity=8)
        _fill(ring, 20)
        assert len(ring) == 8
        assert ring.recorded == 20
        assert ring.rows[0][0] == 12 * 10  # first retained row is #12
        assert ring.latest()[0] == 19 * 10

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SeriesRing(capacity=0)

    def test_latest_empty(self):
        assert SeriesRing().latest() is None

    def test_row_shape(self):
        ring = SeriesRing()
        ring.record(5, 3, 97, (1, 2, 0), {"b": 2, "a": 1})
        cycle, occ, free, depths, tax = ring.latest()
        assert (cycle, occ, free, depths) == (5, 3, 97, (1, 2, 0))
        assert tax == (("a", 1), ("b", 2))  # sorted, hashable


class TestExports:
    def test_jsonl_deterministic_without_rates(self):
        ring = SeriesRing()
        _fill(ring, 5)
        lines = ring.to_jsonl().splitlines()
        assert len(lines) == 5
        first = json.loads(lines[0])
        assert first == {"cycle": 0, "occupancy": 0, "free": 100,
                         "queue_depth": [0, 0], "drops": {}}
        assert "cycles_per_sec" not in first
        # deterministic view is reproducible verbatim
        assert ring.to_jsonl() == ring.to_jsonl()

    def test_jsonl_rates_derived_from_wall_deltas(self):
        ring = SeriesRing()
        _fill(ring, 3)
        rows = [json.loads(x) for x in
                ring.to_jsonl(include_rates=True).splitlines()]
        assert rows[0]["cycles_per_sec"] is None
        assert all(r["cycles_per_sec"] is None or r["cycles_per_sec"] > 0
                   for r in rows[1:])

    def test_csv_columns(self):
        ring = SeriesRing()
        _fill(ring, 4)
        lines = ring.to_csv().splitlines()
        assert lines[0] == "cycle,occupancy,free,qdepth_0,qdepth_1,drops_no_space"
        assert lines[1] == "0,0,100,0,0,0"
        assert lines[3].startswith("20,2,98,2,2,1")

    def test_summary(self):
        ring = SeriesRing(capacity=4)
        _fill(ring, 6)
        s = ring.summary()
        assert s["recorded"] == 6
        assert s["retained"] == 4
        assert s["capacity"] == 4
        assert s["last_cycle"] == 50
        assert s["occupancy_peak"] == max(r[1] for r in ring.rows)

    def test_summary_empty(self):
        assert SeriesRing(capacity=2).summary() == {
            "recorded": 0, "retained": 0, "capacity": 2}


class TestCodec:
    def test_state_round_trip_exact(self):
        ring = SeriesRing(capacity=16)
        _fill(ring, 10)
        doc = json.loads(json.dumps(ring.state()))  # survive JSON transport
        back = SeriesRing.from_state(doc)
        assert list(back.rows) == list(ring.rows)
        assert back.recorded == ring.recorded
        assert back.capacity == ring.capacity
        # the restored ring exports the same deterministic view
        assert back.to_jsonl() == ring.to_jsonl()
        assert back.to_csv() == ring.to_csv()
