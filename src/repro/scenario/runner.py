"""Multiprocess sweep runner for scenarios.

:class:`ScenarioRunner` takes a list of scenarios (typically from
:func:`repro.scenario.load_scenarios` or :meth:`Scenario.expand`), fans the
(scenario, seed) jobs across worker processes, and merges results
deterministically: the merged list is ordered by job submission order
(scenario order x seed order), never by completion order, so a
``jobs=8`` sweep is bit-identical to ``jobs=1``.  Each job resets the
global packet-uid counter (see :func:`repro.scenario.registry.prepare`),
so per-job results are independent of scheduling too.

With ``out_dir`` set, every job writes ``<name>-seed<seed>.json`` and the
merge writes ``results.json``; telemetry artifacts (events JSONL, metrics
text) are written by the worker that owns the bundle.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.scenario.registry import run_scenario, validate_scenario
from repro.scenario.spec import Scenario, ScenarioError


def _run_job(job: tuple[dict[str, Any], int, str | None, bool]) -> dict[str, Any]:
    """Worker entry point: job is (scenario dict, seed, out_dir or None,
    sanitize flag).

    Module-level (picklable) and dict-based so the parent's Scenario
    objects never need to cross the process boundary.
    """
    scenario_dict, seed, out_dir, sanitize = job
    scenario = Scenario.from_dict(scenario_dict)
    return run_scenario(scenario, seed, out_dir=out_dir, sanitize=sanitize)


class ScenarioRunner:
    """Run scenarios sequentially (``jobs=1``) or in parallel, same bits.

    ``sanitize=True`` attaches the :mod:`repro.drc` invariant sanitizer to
    every job (each worker gets its own — the sanitizer holds per-run
    state); a violation in any job raises out of :meth:`run`.
    """

    def __init__(self, jobs: int = 1, out_dir: str | Path | None = None,
                 sanitize: bool = False):
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ScenarioError(f"jobs must be an integer >= 1, got {jobs!r}")
        self.jobs = jobs
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.sanitize = sanitize

    def run(self, scenarios: Scenario | Iterable[Scenario]) -> list[dict[str, Any]]:
        """Validate everything up front, run all (scenario, seed) jobs.

        Returns one result dict per job in deterministic submission order.
        Raises :class:`ScenarioError` before running anything if any
        scenario is invalid or two jobs would collide on (name, seed).
        """
        if isinstance(scenarios, Scenario):
            scenarios = [scenarios]
        scenarios = list(scenarios)
        if not scenarios:
            raise ScenarioError("no scenarios to run")
        for sc in scenarios:
            adef = validate_scenario(sc)
            if self.sanitize and not adef.sanitize_ok:
                raise ScenarioError(
                    f"scenario {sc.name!r}: architecture {sc.arch!r} has no "
                    f"sanitizer hook sites; drop --sanitize or use a "
                    f"sanitize-capable architecture"
                )
        jobs = self._job_list(scenarios)
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
        out = str(self.out_dir) if self.out_dir is not None else None
        payload = [(sc.to_dict(), seed, out, self.sanitize) for sc, seed in jobs]
        if self.jobs == 1 or len(payload) == 1:
            results = [_run_job(job) for job in payload]
        else:
            workers = min(self.jobs, len(payload))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # executor.map preserves submission order — the merge is
                # order-independent regardless of completion order.
                results = list(pool.map(_run_job, payload))
        if self.out_dir is not None:
            self._write_artifacts(results)
        return results

    @staticmethod
    def _job_list(scenarios: Sequence[Scenario]) -> list[tuple[Scenario, int]]:
        jobs: list[tuple[Scenario, int]] = []
        seen: set[tuple[str, int]] = set()
        for sc in scenarios:
            for seed in sc.seeds:
                key = (sc.name, seed)
                if key in seen:
                    raise ScenarioError(
                        f"duplicate job: scenario {sc.name!r} with seed {seed} "
                        f"appears twice; give scenarios unique names (expand() "
                        f"does this for grids) or drop the repeated seed"
                    )
                seen.add(key)
                jobs.append((sc, seed))
        return jobs

    def _write_artifacts(self, results: list[dict[str, Any]]) -> None:
        assert self.out_dir is not None
        for result in results:
            path = self.out_dir / f"{result['scenario']}-seed{result['seed']}.json"
            path.write_text(json.dumps(result, indent=2, allow_nan=False) + "\n")
        merged = self.out_dir / "results.json"
        merged.write_text(json.dumps(results, indent=2, allow_nan=False) + "\n")
