"""Runtime half of the design-rule checker: per-cycle invariant sanitizer.

The paper's correctness argument rests on structural invariants that the
hardware satisfies *by construction* and the simulator satisfies *by
discipline*:

* **DRC201** — a single-ported bank never sees two accesses in one cycle
  (paper §3.2: the one-wave-per-cycle budget makes bank conflicts
  impossible);
* **DRC202** — no two waves initiate in the same cycle (§3.3/§3.4
  staggered initiation: only stage ``M0`` is arbitrated, one control word
  per clock);
* **DRC203** — all ``B`` words of a packet quantum live at the *same
  address in every bank* (§3.1/figure 4: a packet is one address across
  the bank row, which is what lets one control word drive the whole wave);
* **DRC204** — packet conservation: every injected packet is eventually
  delivered, still buffered/in flight, or accounted as dropped.

The checked :class:`~repro.core.switch.PipelinedSwitch` enforces most of
these through its component models (the bank port guard, the control
pipeline's one-initiation rule); the sanitizer is an *independent*
observer layered on top, so a bug in the component models themselves — or
in the wave-level fast kernel, which has no component models at all — is
still caught.  ``tests/core/test_failure_injection.py`` seeds each fault
deliberately and asserts the matching :class:`SanitizerError`.

Null-object pattern: kernels hold :data:`NULL_SANITIZER` by default and
gate every hook on one cached boolean (``self._san``), so a disabled
sanitizer costs nothing on the hot path — the E16 telemetry-overhead
guard covers this path too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.telemetry import Telemetry

#: sanitizer invariant codes (runtime half of the DRC catalog)
BANK_CONFLICT = "DRC201"
DOUBLE_INITIATION = "DRC202"
ADDRESS_MISMATCH = "DRC203"
CONSERVATION = "DRC204"

#: code -> one-line invariant statement (shared with docs and tests)
INVARIANTS: dict[str, str] = {
    BANK_CONFLICT: "single-ported bank accessed at most once per cycle (paper §3.2)",
    DOUBLE_INITIATION: "at most one wave initiation per cycle (paper §3.3)",
    ADDRESS_MISMATCH: "all words of a quantum share one address across banks (paper §3.1)",
    CONSERVATION: "injected = delivered + buffered + dropped",
}


class SanitizerError(RuntimeError):
    """A paper invariant was violated at runtime.

    Structured: ``code`` is the DRC catalog code, ``cycle`` the clock cycle
    of the violation, ``invariant`` the one-line statement being enforced,
    and ``context`` whatever identifies the offender (bank, packet uid,
    addresses, counts).
    """

    def __init__(self, code: str, cycle: int, message: str, **context: Any) -> None:
        self.code = code
        self.cycle = cycle
        self.invariant = INVARIANTS[code]
        self.context = context
        self._message = message
        detail = ", ".join(f"{k}={v}" for k, v in context.items())
        super().__init__(
            f"{code} at cycle {cycle}: {message}"
            f"{f' ({detail})' if detail else ''} — invariant: {self.invariant}"
        )

    def __reduce__(self) -> tuple[Any, ...]:
        # keyword-only context does not fit the default (type, args) pickle
        # protocol; sweeps ferry these across the process pool
        return (_rebuild_error, (self.code, self.cycle, self._message,
                                 self.context))


def _rebuild_error(code: str, cycle: int, message: str,
                   context: dict[str, Any]) -> "SanitizerError":
    return SanitizerError(code, cycle, message, **context)


class Sanitizer:
    """Collects per-cycle evidence from a kernel and checks the invariants.

    Kernels push events through the hook methods (``wave_initiated``,
    ``bank_access``, ``packet_injected`` / ``packet_delivered`` /
    ``packet_dropped``) and close each cycle with :meth:`end_cycle`.  A
    violation raises :class:`SanitizerError` immediately (``halt=True``,
    the default) or is recorded in :attr:`violations` and counted, so a
    sweep can report every violation instead of dying on the first.

    Pass the run's :class:`~repro.telemetry.Telemetry` bundle to export
    ``repro_sanitizer_cycles_total`` and per-code
    ``repro_sanitizer_violations_total`` counters alongside the kernel's
    own metrics.
    """

    enabled = True

    def __init__(self, telemetry: "Telemetry | None" = None, halt: bool = True) -> None:
        self.halt = halt
        self.violations: list[SanitizerError] = []
        self.cycles_checked = 0
        self.injected = 0
        self.delivered = 0
        self.dropped = 0
        self._metrics = (
            telemetry.metrics if telemetry is not None and telemetry.enabled else None
        )
        self._m_cycles = (
            self._metrics.counter("repro_sanitizer_cycles_total")
            if self._metrics is not None else None
        )
        self._m_violations: dict[str, Any] = {}
        # per-cycle bank occupancy: cycle stamp + bank -> packet uid
        self._bank_cycle = -1
        self._bank_uses: dict[int, int] = {}
        # last wave initiation seen (cycle, packet uid)
        self._init_cycle = -1
        self._init_uid = -1
        # packet uid -> quantum -> buffer address of its first bank access
        self._addr_of: dict[int, dict[int, int]] = {}

    # -- wave-level hooks ---------------------------------------------------
    def wave_initiated(self, cycle: int, uid: int) -> None:
        """A wave (new or chain continuation) starts at stage 0 this cycle."""
        if cycle == self._init_cycle:
            self._violation(
                DOUBLE_INITIATION, cycle,
                "two waves initiated in one cycle",
                first_packet=self._init_uid, second_packet=uid,
            )
            return
        self._init_cycle = cycle
        self._init_uid = uid

    def bank_access(self, cycle: int, bank: int, addr: int, uid: int,
                    quantum: int) -> None:
        """Bank ``bank`` executes one word of packet ``uid`` at ``addr``."""
        if cycle != self._bank_cycle:
            self._bank_cycle = cycle
            self._bank_uses.clear()
        other = self._bank_uses.get(bank)
        if other is not None:
            self._violation(
                BANK_CONFLICT, cycle,
                f"bank M{bank} accessed twice in one cycle",
                bank=bank, first_packet=other, second_packet=uid,
            )
            return
        self._bank_uses[bank] = uid
        quanta = self._addr_of.setdefault(uid, {})
        expected = quanta.get(quantum)
        if expected is None:
            quanta[quantum] = addr
        elif expected != addr:
            self._violation(
                ADDRESS_MISMATCH, cycle,
                f"packet {uid} quantum {quantum} hit bank M{bank} at address "
                f"{addr} but its wave was admitted at address {expected}",
                packet=uid, quantum=quantum, bank=bank,
                expected_addr=expected, actual_addr=addr,
            )

    # -- packet-lifecycle hooks ---------------------------------------------
    def packet_injected(self, cycle: int, uid: int) -> None:
        self.injected += 1

    def packet_delivered(self, cycle: int, uid: int) -> None:
        self.delivered += 1
        self._addr_of.pop(uid, None)

    def packet_dropped(self, cycle: int, uid: int) -> None:
        self.dropped += 1
        self._addr_of.pop(uid, None)

    # -- cycle close --------------------------------------------------------
    def end_cycle(self, cycle: int, in_flight: int) -> None:
        """Close cycle ``cycle``: check conservation against the kernel's
        own count of live (buffered or in-flight) packets."""
        self.cycles_checked += 1
        if self._m_cycles is not None:
            self._m_cycles.inc()
        expected = self.delivered + self.dropped + in_flight
        if self.injected != expected:
            self._violation(
                CONSERVATION, cycle,
                f"{self.injected} packets injected but "
                f"{self.delivered} delivered + {self.dropped} dropped + "
                f"{in_flight} in flight = {expected}",
                injected=self.injected, delivered=self.delivered,
                dropped=self.dropped, in_flight=in_flight,
            )

    # -- reporting ----------------------------------------------------------
    def summary(self) -> dict[str, int]:
        """JSON-ready account of what was checked and what fired."""
        return {
            "cycles_checked": self.cycles_checked,
            "injected": self.injected,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "violations": len(self.violations),
        }

    def _violation(self, code: str, cycle: int, message: str, **context: Any) -> None:
        err = SanitizerError(code, cycle, message, **context)
        self.violations.append(err)
        if self._metrics is not None:
            counter = self._m_violations.get(code)
            if counter is None:
                counter = self._metrics.counter(
                    "repro_sanitizer_violations_total", code=code
                )
                self._m_violations[code] = counter
            counter.inc()
        if self.halt:
            raise err


class NullSanitizer:
    """Disabled stand-in: every hook is a no-op (see module docstring)."""

    enabled = False
    halt = False
    violations: list[SanitizerError] = []
    cycles_checked = 0
    injected = 0
    delivered = 0
    dropped = 0

    def wave_initiated(self, cycle: int, uid: int) -> None:
        pass

    def bank_access(self, cycle: int, bank: int, addr: int, uid: int,
                    quantum: int) -> None:
        pass

    def packet_injected(self, cycle: int, uid: int) -> None:
        pass

    def packet_delivered(self, cycle: int, uid: int) -> None:
        pass

    def packet_dropped(self, cycle: int, uid: int) -> None:
        pass

    def end_cycle(self, cycle: int, in_flight: int) -> None:
        pass

    def summary(self) -> dict[str, int]:
        return {"cycles_checked": 0, "injected": 0, "delivered": 0,
                "dropped": 0, "violations": 0}


NULL_SANITIZER = NullSanitizer()
