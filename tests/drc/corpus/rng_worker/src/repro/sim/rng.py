import numpy as np


def make_rng(seed):
    if hasattr(seed, "integers"):
        return seed
    return np.random.default_rng(seed)


def spawn(rng, n):
    return [np.random.default_rng(int(rng.integers(2**32))) for _ in range(n)]
