#!/usr/bin/env python3
"""Architecture shootout: every §2 buffer organization on identical traffic.

The experiment itself lives in ``examples/scenarios/shootout.json`` — a
scenario grid sweeping the slot-level architectures (and three VOQ
schedulers) over offered load.  This driver just expands the grid, runs
it through the parallel :class:`~repro.scenario.ScenarioRunner`, and
renders the saturation ranking and mean-delay curves — the full cast of
paper figures 1 and 2.

Run:  python examples/architecture_shootout.py  [jobs]

Equivalent raw sweep:  python -m repro sweep examples/scenarios/shootout.json
"""

import sys
from pathlib import Path

from repro.scenario import ScenarioRunner, load_scenarios
from repro.switches.harness import format_table

SHOOTOUT = Path(__file__).parent / "scenarios" / "shootout.json"


def label(result) -> str:
    """'voq' alone is ambiguous across schedulers; qualify it."""
    if result["arch"] == "voq":
        return f"voq + {result['params']['scheduler']}"
    return result["arch"]


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    scenarios = load_scenarios(SHOOTOUT)
    results = ScenarioRunner(jobs=jobs).run(scenarios)

    loads = sorted({r["traffic"]["load"] for r in results})
    by_arch: dict[str, dict[float, dict]] = {}
    for r in results:
        by_arch.setdefault(label(r), {})[r["traffic"]["load"]] = r["stats"]

    n = results[0]["params"]["n"]
    sat_rows = [[name, round(curves[max(loads)]["throughput"], 4)]
                for name, curves in by_arch.items()]
    sat_rows.sort(key=lambda row: -row[1])
    print(format_table(
        ["architecture", "saturation throughput"], sat_rows,
        title=f"Saturation ranking, {n}x{n}, uniform Bernoulli traffic",
    ))

    delay_rows = []
    for name, curves in by_arch.items():
        row = [name]
        for load in loads:
            d = curves[load]["mean_delay"]
            row.append("sat" if d is None or d > 200 else f"{d:.2f}")
        delay_rows.append(row)
    print()
    print(format_table(
        ["architecture"] + [f"load {p}" for p in loads], delay_rows,
        title="Mean in-switch delay (slots); 'sat' = beyond saturation",
    ))
    print("\nReading: shared buffering == output queueing at the top; FIFO input")
    print("queueing saturates near 0.6 (HoL blocking); scheduled VOQ recovers")
    print("throughput but not the latency gap — the paper's §2 in one table.")


if __name__ == "__main__":
    main()
