"""The pipelined-memory shared-buffer switch — the paper's contribution.

This is a word/cycle-accurate functional model of the datapath in paper
figures 4 and 5:

* ``B`` single-ported memory banks (default ``B = 2n``), each ``w`` bits wide
  and ``A`` addresses deep — a shared buffer of ``A`` packets of ``B`` words;
* an input latch row per incoming link (no double buffering);
* one shared output register row;
* a control pipeline: bank ``k`` executes bank ``k-1``'s operation one cycle
  later, so only stage 0 is arbitrated;
* automatic cut-through: a departure wave may coincide with (``WRITE_CT``) or
  follow any cycle after the store wave of the same packet.

Every structural hazard the paper argues away is *checked*, not assumed:
single-ported bank conflicts, tristate bus contention, input-latch overruns,
output-register double loads, and the store-deadline invariant all raise if
violated.  Running this switch at full load for long horizons without a
raise is the reproduction of the paper's §3.2–§3.3 correctness argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.arbiter import (
    Decision,
    Priority,
    ReadCandidate,
    WaveArbiter,
    WriteRequest,
)
from repro.core.bank import MemoryBank
from repro.core.buffer_manager import BufferManager, PacketRecord
from repro.core.bus import Bus
from repro.core.control import ControlPipeline, ControlWord, WaveOp
from repro.core.errors import ConfigError
from repro.core.latches import InputLatchRow, OutputRegisterRow
from repro.core.sources import PacketSink, PacketSource, deterministic_payload
from repro.core.instrumentation import SwitchTelemetryMixin
from repro.drc.sanitizer import Sanitizer
from repro.policy import AdmissionPolicy, parse_policy
from repro.sim.packet import Packet, Word
from repro.sim.stats import Counter, Histogram, SwitchStats
from repro.telemetry import (
    ARRIVE,
    CUT_THROUGH,
    DEPART,
    DROP_HEAD_OVERRUN,
    DROP_POLICY,
    DROP_QUANTUM_OVERRUN,
    READ_WAVE,
    STORE_WAVE,
    Telemetry,
)


class DeadlineMissedError(Exception):
    """A store wave failed to initiate before its input latch was overrun
    while flow control promised that could not happen.

    The paper's one-wave-per-cycle budget (n stores + n departures per
    B = 2n cycles, section 3.2) makes this impossible under lossless
    operation; this exception existing — and never firing in the test suite —
    is the executable form of that argument.
    """


@dataclass(slots=True)
class PipelinedSwitchConfig:
    """Static configuration of a pipelined-memory switch.

    Defaults give the paper's canonical shape: ``B = n_in + n_out`` pipeline
    stages and packets of exactly ``B`` words.

    Telegraphos III is ``PipelinedSwitchConfig(n=8, addresses=256,
    width_bits=16)`` — 16 stages, 256 packets of 256 bits, 64 Kbit total.
    """

    n: int  # n x n switch
    addresses: int = 256  # buffer capacity in quanta (A)
    width_bits: int = 16  # link/word width w
    depth: int | None = None  # pipeline stages B (default 2n)
    quanta: int = 1  # packet size in buffer-width quanta (paper §3.5)
    priority: Priority = Priority.READS_FIRST
    cut_through: bool = True  # allow WRITE_CT / early READ waves
    credit_flow: bool = False  # lossless credit-based flow control
    credits_per_input: int | None = None  # default: addresses // n
    # Outgoing-link credit flow control (Telegraphos, §4.2: "the credit-based
    # flow control" lives in the outgoing-link logic): a departure wave for
    # output j may only start while j holds a downstream credit; the credit
    # returns ``downstream_rtt`` cycles after the packet's tail leaves.
    downstream_credits: int | None = None  # None = downstream never blocks
    downstream_rtt: int = 0
    # §4.3: in very fast technologies the long link wires are split into
    # pipeline stages ("the long lines carrying the input and output link
    # data can be split in two or more pipeline stages each ... all packet
    # data are delayed by an equal number of cycles ... the logic of the
    # switch operation remains unaffected").  Each extra stage adds one
    # cycle of constant latency on the input path and one on the output
    # path; throughput and function are untouched.
    link_pipeline_stages: int = 0
    # Shared-buffer admission policy (repro.policy): a spec string such as
    # "complete" / "static:cap=8" / "dynamic:alpha=1.0", an
    # AdmissionPolicy instance, or None; normalized to an instance here.
    policy: AdmissionPolicy | str | None = "complete"

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError(f"need n >= 1, got {self.n}")
        if self.depth is None:
            self.depth = 2 * self.n
        if self.depth < 2:
            raise ConfigError(f"pipeline depth must be >= 2, got {self.depth}")
        if self.addresses < 1:
            raise ConfigError(f"need >= 1 buffer address, got {self.addresses}")
        if self.quanta < 1:
            raise ConfigError(f"packets are >= 1 quantum, got {self.quanta}")
        if self.addresses < self.quanta:
            raise ConfigError("buffer must hold at least one whole packet")
        if self.credit_flow and self.credits_per_input is None:
            self.credits_per_input = max(self.addresses // (self.n * self.quanta), 1)
        if self.downstream_credits is not None and self.downstream_credits < 1:
            raise ConfigError("downstream links need >= 1 credit")
        if self.downstream_rtt < 0:
            raise ConfigError("downstream RTT cannot be negative")
        if self.link_pipeline_stages < 0:
            raise ConfigError("link pipeline stages cannot be negative")
        self.policy = parse_policy(self.policy)
        self.policy.validate(n=self.n, addresses=self.addresses,
                             quanta=self.quanta)
        if self.credit_flow and not self.policy.trivial:
            # Credit flow promises losslessness; a refusing policy drops
            # packets the credit protocol already admitted upstream.
            raise ConfigError(
                f"credit_flow cannot be combined with a dropping admission "
                f"policy ('{self.policy.spec}'); use policy='complete'"
            )

    @property
    def packet_words(self) -> int:
        """Packet size in words: ``quanta`` waves of ``depth`` words each.

        The §3.5 rule — "the size of each packet (cell) be an integer
        multiple of a basic quantum" — with the quantum being the buffer
        width (one wave's worth of words).
        """
        return self.depth * self.quanta

    @property
    def buffer_bits(self) -> int:
        return self.depth * self.addresses * self.width_bits


@dataclass(slots=True)
class _InputState:
    """Per-input-link streaming state."""

    incoming: Packet | None = None
    next_word: int = 0
    pending: WriteRequest | None = None
    discard_current: bool = False
    credits: int = 0


class PipelinedSwitch(SwitchTelemetryMixin):
    """Cycle-accurate pipelined-memory shared-buffer switch (paper §3)."""

    def __init__(
        self,
        config: PipelinedSwitchConfig,
        source: PacketSource,
        telemetry: Telemetry | None = None,
        sanitizer: Sanitizer | None = None,
    ) -> None:
        if source.n_out != config.n:
            raise ConfigError(
                f"source targets {source.n_out} outputs, switch has {config.n}"
            )
        if source.packet_words != config.packet_words:
            raise ConfigError(
                f"source packets are {source.packet_words} words, switch "
                f"needs {config.packet_words} (pipeline depth)"
            )
        self.config = config
        self.source = source
        n, b = config.n, config.depth
        self.banks = [
            MemoryBank(config.addresses, config.width_bits, name=f"M{k}")
            for k in range(b)
        ]
        # Bus drive/sample state never crosses a cycle boundary, so the
        # snapshot codec skips it; restore rebuilds the buses fresh.
        self.buses = [Bus(f"stage{k}.data") for k in range(b)]  # drc: checkpoint-exempt
        self.in_latches = [InputLatchRow(i, b) for i in range(n)]
        self.out_row = OutputRegisterRow(b)
        self.control = ControlPipeline(b)
        self.arbiter = WaveArbiter(n, n, b, priority=config.priority)
        self.buffer = BufferManager(config.addresses, n)
        self.sinks = [PacketSink(j, config.packet_words) for j in range(n)]
        self.cycle = 0
        self.next_wave_ok = [0] * n  # per-output earliest next departure wave
        self._inputs = [
            _InputState(credits=config.credits_per_input or 0) for _ in range(n)
        ]
        self._departing: dict[int, PacketRecord] = {}  # uid -> in-flight departures
        # Future wave-chain reservations (§3.5 multi-quantum packets): wave
        # q of a packet's chain initiates exactly q*B cycles after wave 0,
        # so chain starts reserve their follow-up initiation slots here.
        self._chain: dict[int, ControlWord] = {}
        self._sent: dict[int, Packet] = {}  # uid -> packet, for integrity checks
        # §4.3 wire pipelining: a FIFO of (due_cycle, stage_k, word, link)
        # representing the extra link registers (both directions folded in).
        self._wire_pipe: list[tuple[int, int, object, int]] = []
        self._out_credits = [
            config.downstream_credits if config.downstream_credits is not None else -1
        ] * n  # -1 = unlimited
        self._credit_returns: list[tuple[int, int]] = []  # (cycle, output)
        # -- statistics -------------------------------------------------------
        self.stats = SwitchStats(n_outputs=n)  # packet granularity, cycle base
        self.ct_latency = Counter()  # head-in -> head-out, cycles
        self.ct_latency_hist = Histogram()
        self.total_latency = Counter()  # head-in -> tail-out, cycles
        self.cut_through_waves = 0
        self.plain_read_waves = 0
        self.write_waves = 0
        self.idle_cycles = 0
        self.deadline_overrides = 0
        self.overrun_drops = 0  # packets dropped because buffer stayed full
        self.policy_drops = 0  # packets refused by the admission policy
        # Admission policy (normalized by the config): trivial policies
        # (complete sharing) skip the per-arrival consult entirely, so the
        # seed hot path is untouched.
        self.policy: AdmissionPolicy = config.policy  # type: ignore[assignment]
        self._policy_trivial = self.policy.trivial
        # §3.4 instrumentation: packets that found their output idle and its
        # queue empty on arrival would leave with the 2-cycle minimum latency
        # were it not for staggered initiation; their extra delay is the
        # quantity the paper's (p/4)(n-1)/n formula approximates.
        self.stagger_extra = Counter()
        self._unobstructed: set[int] = set()
        # Cycle at which a finite source (trace replay) ran dry with the
        # switch empty; ``None`` while the source can still produce packets.
        self.trace_ended_at: int | None = None
        self.attach_telemetry(telemetry)
        self.attach_sanitizer(sanitizer)

    def _telemetry_state(self) -> tuple[int, int, list[int]]:
        return (self.buffer.occupancy, self.buffer.free_count,
                [s.credits for s in self._inputs])

    def _queue_depths(self) -> list[int]:
        return [len(q) for q in self.buffer.queues]

    def _peak_occupancy(self) -> int:
        return self.buffer.peak_occupancy

    # -- public API -------------------------------------------------------------
    @property
    def warmup(self) -> int:
        return self.stats.warmup

    @warmup.setter
    def warmup(self, cycles: int) -> None:
        self.stats.warmup = cycles

    def run(self, cycles: int) -> SwitchStats:
        """Advance the switch by ``cycles`` clock cycles.

        Finite sources (trace replay) end the run early: once the source
        reports :meth:`~repro.core.sources.TracePacketSource.exhausted` and
        the switch has emptied, further cycles cannot change any statistic,
        so the loop stops and stamps :attr:`trace_ended_at`.  The check runs
        *before* each tick, so resuming a finished run burns zero cycles and
        checkpoint/restore stays bit-identical.
        """
        exhausted = getattr(self.source, "exhausted", None)
        if exhausted is None:
            for _ in range(cycles):
                self.tick()
            return self.stats
        stop = self.cycle + cycles
        while self.cycle < stop:
            if exhausted() and self.is_empty():
                if self.trace_ended_at is None:
                    self.trace_ended_at = self.cycle
                    if self._tel:
                        self._emit_trace_ended(self.cycle)
                break
            self.tick()
        return self.stats

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Run with the source muted until all in-flight packets depart.

        Returns the number of drain cycles used; raises if the switch does
        not empty (which would indicate a scheduling bug).
        """
        real_source = self.source
        try:
            self.source = _MuteSource(real_source)
            start = self.cycle
            while not self.is_empty():
                if self.cycle - start > max_cycles:
                    raise RuntimeError(
                        f"switch failed to drain within {max_cycles} cycles: "
                        f"{self.buffer.queued_packets()} packets still queued"
                    )
                self.tick()
            return self.cycle - start
        finally:
            self.source = real_source

    def is_empty(self) -> bool:
        return (
            self.buffer.occupancy == 0
            and self.control.idle()
            and not self._chain
            and not self._wire_pipe
            and all(s.incoming is None and s.pending is None for s in self._inputs)
            and not any(sink.mid_packet for sink in self.sinks)
        )

    @property
    def link_utilization(self) -> float:
        """Delivered words per output-link cycle (the paper's link load)."""
        cycles = self.stats.measured_slots
        if cycles <= 0:
            return math.nan
        return (
            self.stats.delivered * self.config.packet_words
            / (cycles * self.config.n)
        )

    # -- one clock cycle ----------------------------------------------------------
    def tick(self) -> None:
        """Advance one clock: outputs, control shift, arbitration, waves,
        arrivals, register commit — mirroring the hardware's evaluate order."""
        t = self.cycle
        if self._credit_returns:
            still_pending = []
            for when, j in self._credit_returns:
                if when <= t:
                    self._out_credits[j] += 1
                else:
                    still_pending.append((when, j))
            self._credit_returns = still_pending
        if self._tel:
            iv = self.telemetry.sample_interval
            if iv and t % iv == 0:
                self._sample_telemetry(t)
        self._deliver_outputs(t)
        self.control.advance()
        self._arbitrate(t)
        self._execute_waves(t)
        self._accept_arrivals(t)
        self.out_row.commit()
        if self._san:
            self.sanitizer.end_cycle(t, len(self._sent))
        self.cycle = t + 1
        self.stats.horizon = self.cycle

    # -- phase 1: output links ----------------------------------------------------
    def _deliver_outputs(self, t: int) -> None:
        extra = 2 * self.config.link_pipeline_stages
        for k in range(self.config.depth):
            driving = self.out_row.driving(k)
            if driving is None:
                continue
            word, link = driving
            if extra:
                self._wire_pipe.append((t + extra, k, word, link))
            else:
                self._emit(t, word, link)
        if extra and self._wire_pipe:
            remaining = []
            for due, k, word, link in self._wire_pipe:
                if due <= t:
                    self._emit(t, word, link)
                else:
                    remaining.append((due, k, word, link))
            self._wire_pipe = remaining

    def _emit(self, t: int, word: Word, link: int) -> None:
        self.sinks[link].deliver(t, word.packet_uid, word.index, word.payload)
        if word.index == self.config.packet_words - 1:
            self._complete_delivery(t, link, word.packet_uid)

    def _complete_delivery(self, t: int, link: int, uid: int) -> None:
        packet = self._sent.pop(uid, None)
        if packet is None:
            raise AssertionError(f"output {link}: unknown packet {uid} delivered")
        sent_uid, head_cycle, payload = self.sinks[link].delivered[-1]
        if sent_uid != uid or payload != packet.payload:
            raise AssertionError(
                f"output {link}: packet {uid} payload corrupted in transit"
            )
        if packet.dst != link:
            raise AssertionError(
                f"packet {uid} for output {packet.dst} delivered on {link}"
            )
        packet.depart_first_cycle = head_cycle
        packet.depart_last_cycle = t
        if self._san:
            self.sanitizer.packet_delivered(t, uid)
        self.stats.record_departure(link, packet.arrival_cycle, head_cycle)
        if packet.arrival_cycle >= self.stats.warmup:
            self.ct_latency.add(packet.cut_through_latency)
            self.ct_latency_hist.add(packet.cut_through_latency)
            self.total_latency.add(packet.total_latency)
            if uid in self._unobstructed:
                self.stagger_extra.add(packet.cut_through_latency - 2)
        self._unobstructed.discard(uid)
        if self._tel:
            self.telemetry.events.emit(
                t, DEPART, uid, src=packet.src, dst=link, aux=head_cycle
            )
            self._m_departures[link].inc()
            if packet.arrival_cycle >= self.stats.warmup:
                self._m_latency.observe(packet.cut_through_latency)

    # -- phase 2: wave arbitration --------------------------------------------------
    def _arbitrate(self, t: int) -> None:
        reserved = self._chain.pop(t, None)
        if reserved is not None:
            # A chain continuation owns this cycle's initiation slot.
            if self._san:
                self.sanitizer.wave_initiated(t, reserved.packet_uid)
            self.control.initiate(reserved)
            return
        reads = self._read_candidates(t)
        writes = self._write_candidates(t)
        decision = self.arbiter.decide(t, reads, writes)
        self._apply_decision(t, decision)

    def _chain_slots_free(self, t: int) -> bool:
        """May a new chain start at ``t``? Its follow-up slots must be free."""
        b = self.config.depth
        return all(t + q * b not in self._chain for q in range(1, self.config.quanta))

    def _reserve_chain(self, t: int, first: ControlWord, addrs: list[int]) -> None:
        """Reserve waves 1..quanta-1 of a chain starting at ``t``."""
        b = self.config.depth
        for q in range(1, self.config.quanta):
            slot = t + q * b
            if slot in self._chain:
                raise AssertionError(f"chain slot {slot} double-booked")
            self._chain[slot] = ControlWord(
                first.op, addrs[q], in_link=first.in_link,
                out_link=first.out_link, packet_uid=first.packet_uid, quantum=q,
            )

    def _read_candidates(self, t: int) -> list[ReadCandidate]:
        if not self._chain_slots_free(t):
            return []  # a new chain could not reserve its follow-up slots
        candidates: list[ReadCandidate] = []
        chain_len = self.config.packet_words
        for j in range(self.config.n):
            if self.next_wave_ok[j] > t:
                continue
            if self._out_credits[j] == 0:
                continue  # downstream buffer full: hold the packet here
            head = self.buffer.head(j)
            if head is not None:
                if not self.config.cut_through and head.write_init_cycle + chain_len > t:
                    continue  # store-and-forward ablation: wait for full store
                candidates.append(ReadCandidate(j, queued_since=head.arrival_cycle))
                continue
            if not self.config.cut_through:
                continue
            if self.buffer.free_count < self.config.quanta:
                continue
            # Cut-through chance: an arriving packet headed to this idle,
            # queue-empty output can store and depart in a single wave.
            best: WriteRequest | None = None
            for state in self._inputs:
                w = state.pending
                if w is not None and w.dst == j and w.earliest <= t:
                    if best is None or w.arrival_cycle < best.arrival_cycle:
                        best = w
            if best is not None:
                candidates.append(
                    ReadCandidate(
                        j, queued_since=best.arrival_cycle, cut_through_write=best
                    )
                )
        return candidates

    def _write_candidates(self, t: int) -> list[WriteRequest]:
        if self.buffer.free_count < self.config.quanta:
            return []
        if not self._chain_slots_free(t):
            return []
        return [
            s.pending
            for s in self._inputs
            if s.pending is not None and s.pending.earliest <= t
        ]

    def _apply_decision(self, t: int, decision: Decision) -> None:
        if decision.kind == "idle":
            self.idle_cycles += 1
            if self._tel:
                self._m_idle.inc()
            return
        chain_len = self.config.packet_words
        if decision.kind == "read":
            j = decision.out_link
            assert j is not None
            rec = self.buffer.start_departure(j, t)
            first = ControlWord(WaveOp.READ, rec.addrs[0], out_link=j, packet_uid=rec.uid)
            if self._san:
                self.sanitizer.wave_initiated(t, rec.uid)
            self.control.initiate(first)
            self._reserve_chain(t, first, rec.addrs)
            self._departing[rec.uid] = rec
            self.next_wave_ok[j] = t + chain_len
            self._consume_downstream_credit(t, j)
            self.plain_read_waves += 1
            if self._tel:
                self._emit_wave(t, READ_WAVE, rec.uid, rec.src, j)
            return

        w = decision.write
        assert w is not None
        if w.deadline(self.config.depth) <= t:
            self.deadline_overrides += 1
            if self._tel:
                self._m_deadline.inc()
        rec = self.buffer.allocate(
            w.uid, w.in_link, w.dst, w.arrival_cycle, t, quanta=self.config.quanta
        )
        self._inputs[w.in_link].pending = None
        self.stats.record_accept(w.arrival_cycle)
        if decision.kind == "write_ct":
            j = decision.out_link
            assert j == w.dst
            dequeued = self.buffer.start_departure(j, t)
            if dequeued is not rec:
                raise AssertionError("cut-through wave must depart the packet it stores")
            first = ControlWord(
                WaveOp.WRITE_CT, rec.addrs[0], in_link=w.in_link, out_link=j,
                packet_uid=rec.uid,
            )
            if self._san:
                self.sanitizer.wave_initiated(t, rec.uid)
            self.control.initiate(first)
            self._reserve_chain(t, first, rec.addrs)
            self._departing[rec.uid] = rec
            self.next_wave_ok[j] = t + chain_len
            self._consume_downstream_credit(t, j)
            self.cut_through_waves += 1
            if self._tel:
                self._emit_wave(t, CUT_THROUGH, rec.uid, w.in_link, j)
        else:
            first = ControlWord(
                WaveOp.WRITE, rec.addrs[0], in_link=w.in_link, packet_uid=rec.uid
            )
            if self._san:
                self.sanitizer.wave_initiated(t, rec.uid)
            self.control.initiate(first)
            self._reserve_chain(t, first, rec.addrs)
            self.write_waves += 1
            if self._tel:
                self._emit_wave(t, STORE_WAVE, rec.uid, w.in_link, w.dst)

    def _consume_downstream_credit(self, t: int, j: int) -> None:
        """Spend one downstream credit for output ``j``; schedule its return
        one RTT after the packet's tail leaves the link."""
        if self._out_credits[j] < 0:
            return  # unlimited
        self._out_credits[j] -= 1
        tail_out = t + self.config.packet_words  # last word on the wire
        self._credit_returns.append((tail_out + self.config.downstream_rtt, j))

    # -- phase 3: execute every active wave stage -------------------------------------
    def _execute_waves(self, t: int) -> None:
        last = self.config.depth - 1
        for k, cw in self.control.active():
            bank = self.banks[k]
            bus = self.buses[k]
            if self._san:
                self.sanitizer.bank_access(t, k, cw.addr, cw.packet_uid, cw.quantum)
            if cw.op in (WaveOp.WRITE, WaveOp.WRITE_CT):
                word = self.in_latches[cw.in_link].consume(k)
                expected_index = cw.quantum * self.config.depth + k
                if word.packet_uid != cw.packet_uid or word.index != expected_index:
                    raise AssertionError(
                        f"stage {k}: wave for packet {cw.packet_uid} quantum "
                        f"{cw.quantum} consumed {word!r} — latch overrun undetected"
                    )
                bus.drive(t, word, driver=f"in_latch[{cw.in_link}][{k}]")
                bank.write(t, cw.addr, word)
                if cw.op is WaveOp.WRITE_CT:
                    self.out_row.load(k, bus.sample(t), cw.out_link)
            else:  # READ
                word = bank.read(t, cw.addr)
                bus.drive(t, word, driver=f"{bank.name}.read")
                self.out_row.load(k, bus.sample(t), cw.out_link)
            if (
                k == last
                and cw.quantum == self.config.quanta - 1
                and cw.op in (WaveOp.READ, WaveOp.WRITE_CT)
            ):
                rec = self._departing.pop(cw.packet_uid)
                self.buffer.release(rec)
                if self.config.credit_flow:
                    self._inputs[rec.src].credits += 1

    # -- phase 4: word arrivals ----------------------------------------------------------
    def _accept_arrivals(self, t: int) -> None:
        b = self.config.packet_words
        for i, state in enumerate(self._inputs):
            if state.incoming is None:
                if self.config.credit_flow and state.credits <= 0:
                    continue
                dst = self.source.maybe_start(t, i)
                if dst is None:
                    continue
                if not 0 <= dst < self.config.n:
                    raise ValueError(f"source produced bad destination {dst}")
                self._start_packet(t, i, state, dst)
            packet = state.incoming
            assert packet is not None
            k = state.next_word
            depth = self.config.depth
            if k > 0 and k % depth == 0 and state.pending is not None:
                # The packet's own next quantum is about to reuse latch 0
                # while its store chain never started (buffer stayed full
                # for the whole first-quantum window): the packet is lost.
                self._drop_packet(t, i, state.pending, DROP_QUANTUM_OVERRUN)
                state.discard_current = True
            self.in_latches[i].load(
                k % depth, Word(packet.uid, k, packet.payload[k])
            )
            if state.discard_current:
                self.in_latches[i].discard(k % depth)
            state.next_word = k + 1
            if state.next_word == b:
                state.incoming = None
                state.next_word = 0
                state.discard_current = False

    def _start_packet(self, t: int, i: int, state: _InputState, dst: int) -> None:
        # A new head is about to reuse input latch 0.  If the previous
        # packet's store wave never initiated (buffer stayed full for its
        # whole 2n-cycle window), that packet is lost *now* — this is the
        # true overrun instant, not the conservative deadline.
        if state.pending is not None:
            if self.config.credit_flow:
                raise DeadlineMissedError(
                    f"input {i}: packet {state.pending.uid} overrun at cycle "
                    f"{t} despite credit flow control"
                )
            self._drop_packet(t, i, state.pending, DROP_HEAD_OVERRUN)
        packet = Packet(src=i, dst=dst, payload=(), arrival_cycle=t)
        packet.payload = deterministic_payload(packet.uid, self.config.packet_words,
                                               self.config.width_bits)
        state.incoming = packet
        state.next_word = 0
        state.discard_current = False
        admitted = self._policy_trivial or self._policy_admits(t, dst)
        if admitted:
            state.pending = WriteRequest(
                in_link=i, dst=dst, uid=packet.uid, arrival_cycle=t
            )
            self._sent[packet.uid] = packet
        if self._san:
            self.sanitizer.packet_injected(t, packet.uid)
        self.stats.record_offer(t)
        if self._tel:
            self.telemetry.events.emit(t, ARRIVE, packet.uid, src=i, dst=dst)
            self._m_arrivals[i].inc()
        if not admitted:
            # Refused at the door: no pending write is created, so the
            # packet competes for nothing — but its words still occupy the
            # input link for the full W cycles (the wire does not know
            # about the policy) and are discarded at the latch row.
            if self._san:
                self.sanitizer.packet_dropped(t, packet.uid)
            self.stats.record_drop(t)
            self.policy_drops += 1
            if self._tel:
                self._emit_drop(t, i, packet.uid, dst, DROP_POLICY)
            state.discard_current = True
            return
        if (
            t >= self.stats.warmup
            and self.next_wave_ok[dst] <= t + 1
            and self.buffer.head(dst) is None
            and not any(
                s.pending is not None and s.pending.dst == dst
                for k, s in enumerate(self._inputs)
                if k != i
            )
        ):
            # No competitor for the same output: absent the one-initiation-
            # per-cycle restriction this packet would cut through with the
            # 2-cycle minimum latency.  Its measured extra delay is the pure
            # staggered-initiation penalty of §3.4.  (A same-cycle head for
            # the *same* output is output contention — a packet-time stall —
            # which the paper's idealized analysis does not separate out.)
            self._unobstructed.add(packet.uid)
        if self.config.credit_flow:
            state.credits -= 1

    def _policy_admits(self, t: int, dst: int) -> bool:
        """Consult the admission policy with the canonical buffer view.

        ``held[j]`` counts queued packets plus the at-most-one departure
        chain still in flight for ``j`` (``next_wave_ok[j] > t``), and
        ``free`` is derived from it rather than from ``free_count``: the
        :class:`BufferManager` releases a departing packet's addresses one
        phase earlier on the chain's final cycle than the fast kernel's
        due-queue does, and the policy must see the same numbers in every
        kernel (see :mod:`repro.policy.admission`).
        """
        q = self.config.quanta
        held = [len(queue) for queue in self.buffer.queues]
        for j, ok in enumerate(self.next_wave_ok):
            if ok > t:
                held[j] += 1
        free = self.config.addresses - q * sum(held)
        return self.policy.admit(dst, free, held, q)

    def _drop_packet(self, t: int, i: int, w: WriteRequest, cause: str) -> None:
        state = self._inputs[i]
        state.pending = None
        if self._san:
            self.sanitizer.packet_dropped(t, w.uid)
        self.stats.record_drop(w.arrival_cycle)
        self.overrun_drops += 1
        if self._tel:
            self._emit_drop(t, i, w.uid, w.dst, cause)
        self._sent.pop(w.uid, None)
        row = self.in_latches[i]
        arrived = min(t - w.arrival_cycle, self.config.packet_words)
        for k in range(arrived):
            row.discard(k)
        if state.incoming is not None and state.incoming.uid == w.uid:
            state.discard_current = True


class _MuteSource(PacketSource):
    """Wrapper that stops injecting (used by :meth:`PipelinedSwitch.drain`)."""

    def __init__(self, inner: PacketSource) -> None:
        super().__init__(inner.n_out, inner.packet_words, inner.width_bits)

    def maybe_start(self, cycle: int, link: int) -> int | None:
        return None
