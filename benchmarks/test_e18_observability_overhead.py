"""E18 — Observability-off overhead guard (fast AND batch kernels).

The observability plane (sampled tracing, series ring, metrics endpoint)
must be free when it is off.  With no `trace_sample`, no `series` and no
endpoint, the Telemetry bundle is the same null object PR 6 guaranteed:
`_tel` is False, the batch kernel keeps its lean/array engines, and not
one extra branch runs per cycle.  This guard pins that claim to the
recorded BENCH_fastpath.json numbers for BOTH accelerated kernels.

Acceptance, per kernel:

* **fast** — E16's mechanics verbatim: best-of sampling with early exit,
  and EITHER the absolute cycles/sec floor OR the checked-relative
  speedup floor within 5% of BENCH_fastpath.json.
* **batch** — the recorded ``batch_cycles_per_sec`` is a best-of taken in
  a standalone process; under the pytest harness the identical code
  measures ~5-10% lower, so a 5% cross-environment floor would flake on
  noise, not regressions.  The 5% claim is instead held by a noise-paired
  in-process A/B: telemetry ``None`` vs a fresh present-but-disabled
  bundle (the exact null-object contract this PR extends) must agree
  within 5%.  Two backstops catch what the pairing cannot —
  a regression that slows both arms equally:

  - structural: the disabled bundle must keep ``_tel`` False and leave
    the lean/array engine gate selected (the realistic failure mode —
    observability leaking into ``enabled`` — demotes the kernel to the
    ~4x-slower general engine);
  - coarse throughput: best-of ≥ 60% of the recorded number, OR the
    batch/fast ratio ≥ 60% of the recorded ratio (a machine-wide
    slowdown divides out of the ratio).  The general engine sits at
    well under half of either floor — far outside harness noise.

Refresh baselines with ``PYTHONPATH=src python benchmarks/record.py``
when moving machines.
"""

import json
import time
from pathlib import Path

from conftest import show

from repro.core import (
    BatchRenewalSource,
    FastPipelinedSwitch,
    PipelinedSwitch,
    PipelinedSwitchConfig,
    RenewalPacketSource,
    make_pipelined_switch,
)
from repro.obs.sampling import SampledEventLog
from repro.obs.series import SeriesRing
from repro.sim.packet import reset_packet_ids
from repro.switches.harness import format_table
from repro.telemetry import (
    NullEventLog,
    NullMetricsRegistry,
    Telemetry,
)

BENCH_PATH = Path(__file__).parent / "BENCH_fastpath.json"
BASELINE_EXPERIMENT = "E15 8x8 load 0.6 drop-tail"
MAX_SLOWDOWN = 0.05  # observability fully off may cost at most 5%
# Coarse throughput backstop for the batch kernel: the general engine
# runs at roughly a quarter of the lean engine's throughput, so 60% of
# the recorded number (or of the recorded batch/fast ratio) cleanly
# separates "harness noise" from "engine demoted".
BATCH_BACKSTOP = 0.60
CYCLES = 150_000  # checked/fast: must match record.py's horizon
# The batch kernel clears 150k cycles in ~0.15s — short enough that
# scheduling noise swings single runs by 15%.  Throughput is measured over
# a longer run (cycles/sec is horizon-independent once window setup
# amortizes), which tightens the distribution well inside the 5% guard.
BATCH_CYCLES = 600_000
MAX_REPEATS = 6


def _build(kernel: str, telemetry=None):
    reset_packet_ids()
    cfg = PipelinedSwitchConfig(n=8, addresses=128)
    if kernel == "batch":
        # the batch baseline was recorded on the tape source
        src = BatchRenewalSource(n_out=8, packet_words=cfg.packet_words,
                                 load=0.6, seed=1)
        return make_pipelined_switch(cfg, src, telemetry=telemetry,
                                     kernel="batch", batch_cycles=65536)
    src = RenewalPacketSource(n_out=8, packet_words=cfg.packet_words,
                              load=0.6, seed=1)
    cls = PipelinedSwitch if kernel == "checked" else FastPipelinedSwitch
    return cls(cfg, src, telemetry=telemetry)


def _throughput(kernel: str, telemetry=None) -> float:
    sw = _build(kernel, telemetry)
    cycles = BATCH_CYCLES if kernel == "batch" else CYCLES
    t0 = time.perf_counter()
    sw.run(cycles)
    sw.drain()
    return sw.cycle / (time.perf_counter() - t0)


def _obs_on() -> Telemetry:
    return Telemetry.on(sample_interval=64,
                        events=SampledEventLog(0.05, seed=1),
                        series=SeriesRing(capacity=1024))


def _obs_off() -> Telemetry:
    """A *fresh* disabled bundle — not the shared ``NULL_TELEMETRY``
    singleton that ``telemetry=None`` resolves to — so the A/B proves the
    kernels gate on ``enabled``, not on bundle identity."""
    return Telemetry(NullMetricsRegistry(), NullEventLog(), 0)


def _experiment():
    stored = json.loads(BENCH_PATH.read_text())
    row = next(r for r in stored["results"]
               if r["experiment"] == BASELINE_EXPERIMENT)
    fast_floor = row["fast_cycles_per_sec"]
    fast_rel = row["speedup"]
    batch_floor = row["batch"]["batch_cycles_per_sec"]
    floor = 1.0 - MAX_SLOWDOWN

    # fast kernel: E16's best-of with early exit on either axis; the
    # ratio is taken per back-to-back pair so a noisy window that hits
    # both kernels cancels, and the best pair across repeats is kept
    checked = fast_best = fast_ratio = 0.0
    for _ in range(MAX_REPEATS):
        c = _throughput("checked")
        f = _throughput("fast")
        checked = max(checked, c)
        fast_best = max(fast_best, f)
        fast_ratio = max(fast_ratio, f / c)
        if fast_best >= floor * fast_floor or fast_ratio >= floor * fast_rel:
            break

    # batch kernel: structural gate — a present-but-disabled bundle must
    # leave the accelerated engines selected, exactly like telemetry=None
    disabled = _obs_off()
    probe = _build("batch", disabled)
    assert not disabled.enabled
    assert probe._tel is False, (
        "a disabled Telemetry bundle set the batch kernel's _tel gate; "
        "every per-window observability branch now runs"
    )
    assert probe._lean or probe._array_core, (
        "a disabled Telemetry bundle demoted the batch kernel to its "
        "general engine (~4x slower); the off path is no longer free"
    )

    # batch kernel: noise-paired A/B, interleaved so both arms see the
    # same machine state, plus the coarse throughput backstop (absolute
    # or fast-relative — a machine-wide slowdown divides out of the ratio)
    batch_rel = batch_floor / fast_floor
    batch_none = batch_dis = 0.0
    for _ in range(MAX_REPEATS):
        batch_none = max(batch_none, _throughput("batch"))
        batch_dis = max(batch_dis, _throughput("batch", _obs_off()))
        if (batch_dis >= floor * batch_none
                and (batch_none >= BATCH_BACKSTOP * batch_floor
                     or batch_none / fast_best >= BATCH_BACKSTOP * batch_rel)):
            break

    on = {k: _throughput(k, _obs_on()) for k in ("fast", "batch")}
    return {
        "fast_floor": fast_floor, "fast_rel": fast_rel,
        "batch_floor": batch_floor, "batch_rel": batch_rel,
        "checked": checked, "fast_best": fast_best,
        "fast_ratio": fast_ratio, "batch_none": batch_none,
        "batch_dis": batch_dis, "on": on,
    }


def test_e18_observability_off_overhead(run_once):
    m = run_once(_experiment)
    floor = 1.0 - MAX_SLOWDOWN
    pair = m["batch_dis"] / m["batch_none"]
    rows = [
        ["checked kernel (reference)", round(m["checked"]), "-"],
        ["fast, observability off (default)", round(m["fast_best"]),
         f"{m['fast_ratio']:.2f}x checked (recorded {m['fast_rel']:.2f}x "
         f"@ {m['fast_floor']} c/s)"],
        ["fast, tracing+series on", round(m["on"]["fast"]),
         f"{m['on']['fast'] / m['checked']:.2f}x checked"],
        ["batch, telemetry=None", round(m["batch_none"]),
         f"recorded {m['batch_floor']} c/s"],
        ["batch, disabled Telemetry()", round(m["batch_dis"]),
         f"{pair:.3f}x of telemetry=None"],
        ["batch, tracing+series on", round(m["on"]["batch"]),
         f"{m['on']['batch'] / m['checked']:.2f}x checked"],
    ]
    show(format_table(
        ["E15 8x8 load 0.6 drop-tail", "cycles/sec", "vs baseline"],
        rows,
        title="E18: observability overhead (off path guarded at "
              f"<{MAX_SLOWDOWN:.0%}, both accelerated kernels)",
    ))

    assert (m["fast_best"] >= floor * m["fast_floor"]
            or m["fast_ratio"] >= floor * m["fast_rel"]), (
        f"fast kernel with observability fully off reached "
        f"{m['fast_best']:.0f} cycles/sec ({m['fast_ratio']:.2f}x checked) "
        f"vs the recorded {m['fast_floor']} cycles/sec "
        f"({m['fast_rel']:.2f}x) — more than {MAX_SLOWDOWN:.0%} down on "
        "both axes; the disabled observability path is no longer free "
        "(re-run benchmarks/record.py if on a new machine)"
    )
    assert m["batch_dis"] >= floor * m["batch_none"], (
        f"batch kernel with a disabled Telemetry bundle reached "
        f"{m['batch_dis']:.0f} cycles/sec vs {m['batch_none']:.0f} with "
        f"telemetry=None ({pair:.3f}x) — the present-but-disabled "
        f"observability plane costs more than {MAX_SLOWDOWN:.0%}"
    )
    assert (m["batch_none"] >= BATCH_BACKSTOP * m["batch_floor"]
            or m["batch_none"] / m["fast_best"]
            >= BATCH_BACKSTOP * m["batch_rel"]), (
        f"batch kernel reached {m['batch_none']:.0f} cycles/sec "
        f"({m['batch_none'] / m['fast_best']:.2f}x fast) vs the recorded "
        f"{m['batch_floor']} ({m['batch_rel']:.2f}x fast) — below the "
        f"{BATCH_BACKSTOP:.0%} backstop on both axes, far outside "
        "harness noise (general-engine fallback? re-run "
        "benchmarks/record.py if on a new machine)"
    )
    # with tracing+series on the accelerated kernels still clearly beat
    # the checked kernel (the batch kernel falls back to its general
    # engine, so the bar is lower than its lean-engine ratio)
    for kernel in ("fast", "batch"):
        assert m["on"][kernel] > 2.0 * m["checked"]
