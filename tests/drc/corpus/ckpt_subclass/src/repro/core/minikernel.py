class MiniKernel:
    def __init__(self, n):
        self.cycle = 0
        self.backlog = []
        self.limit = n

    def run(self, cycles):
        for _ in range(cycles):
            self.cycle = self.cycle + 1
            self.backlog.append(self.cycle)


class TurboKernel(MiniKernel):
    def run(self, cycles):
        self.cycle = self.cycle + cycles
