"""Tests for the bursty (on/off) output-queue analysis."""

import pytest

from repro.analysis.bursty_queue import (
    bursty_loss,
    bursty_queue_solution,
    burstiness_penalty,
)


def test_validation():
    with pytest.raises(ValueError):
        bursty_loss(8, 1.2, 8.0, 16)
    with pytest.raises(ValueError):
        bursty_loss(8, 0.8, 0.5, 16)
    with pytest.raises(ValueError):
        bursty_loss(8, 0.8, 8.0, 0)
    with pytest.raises(ValueError):
        bursty_loss(0, 0.8, 8.0, 16)


def test_distributions_normalized():
    r = bursty_queue_solution(4, 0.6, 4.0, 16)
    assert r["queue_distribution"].sum() == pytest.approx(1.0)
    assert r["burst_distribution"].sum() == pytest.approx(1.0)
    assert 0.0 <= r["loss_probability"] <= 1.0


def test_mean_active_bursts_matches_load():
    """E[m] = load: the on/off calibration is exact."""
    import numpy as np

    r = bursty_queue_solution(8, 0.7, 6.0, 64)
    m = r["burst_distribution"]
    assert float(np.arange(len(m)) @ m) == pytest.approx(0.7, rel=0.02)


def test_loss_increases_with_burst_length():
    losses = [bursty_loss(8, 0.8, b, 24) for b in (1.0, 4.0, 16.0)]
    assert losses[0] < losses[1] < losses[2]


def test_loss_decreases_with_capacity():
    assert bursty_loss(8, 0.8, 8.0, 64) < bursty_loss(8, 0.8, 8.0, 16)


def test_burst_length_one_is_smoother_than_bernoulli():
    """mean_burst = 1: one-cell bursts with a one-slot refractory period
    (a source that just sent cannot start again immediately), so arrivals
    are slightly *smoother* than independent Bernoulli — loss comes out the
    same order of magnitude but below the Bernoulli chain."""
    penalty = burstiness_penalty(8, 0.7, 1.0, 12)
    assert 0.01 < penalty < 1.0


def test_matches_simulation():
    """The chain agrees with the BurstyOnOff + OutputQueued simulator.

    The analytic model treats sources bursting to *other* outputs as free
    to start toward this one (a mild decorrelation), so agreement is ~10 %,
    not exact.
    """
    from repro.switches import OutputQueued
    from repro.traffic import BurstyOnOff

    n, p, burst, cap = 8, 0.8, 8.0, 32
    ana = bursty_loss(n, p, burst, cap)
    sw = OutputQueued(n, n, capacity=cap, warmup=5000, seed=1)
    stats = sw.run(BurstyOnOff(n, n, p, burst, seed=2), 120_000)
    assert stats.loss_probability == pytest.approx(ana, rel=0.25)


def test_burstiness_penalty_is_dramatic():
    """The §2.1 warning, quantified: bursts of 8 cells raise loss by orders
    of magnitude at equal load and buffer."""
    assert burstiness_penalty(8, 0.8, 8.0, 32) > 1e3
