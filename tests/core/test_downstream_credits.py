"""Tests for outgoing-link credit flow control (Telegraphos, paper §4.2).

The outgoing-link logic of Telegraphos II holds "the credit-based flow
control [and] the list of ready to depart packets": a departure wave may only
start while the downstream hop has buffer space.  The model exposes a credit
count and a return RTT; blocked outputs hold their packets in the shared
buffer (backpressure) instead of dropping them.
"""

import pytest

from repro.core import (
    PipelinedSwitch,
    PipelinedSwitchConfig,
    RenewalPacketSource,
    SaturatingSource,
)


def test_validation():
    with pytest.raises(ValueError):
        PipelinedSwitchConfig(n=2, downstream_credits=0)
    with pytest.raises(ValueError):
        PipelinedSwitchConfig(n=2, downstream_rtt=-1)


def test_throughput_limited_to_credit_window():
    """1 credit, RTT r: each packet occupies B cycles + r idle cycles, so
    utilization = B / (B + r) — the classic credit-window formula."""
    for rtt in (2, 4, 8):
        cfg = PipelinedSwitchConfig(
            n=2, addresses=32, downstream_credits=1, downstream_rtt=rtt
        )
        src = SaturatingSource(n_out=2, packet_words=cfg.packet_words, seed=1)
        sw = PipelinedSwitch(cfg, src)
        sw.warmup = 1000
        sw.run(20_000)
        b = cfg.packet_words
        assert sw.link_utilization == pytest.approx(b / (b + rtt), abs=0.02)


def test_enough_credits_restore_full_rate():
    """credits >= 1 + ceil(rtt/B) covers the round trip: full line rate."""
    cfg = PipelinedSwitchConfig(
        n=2, addresses=32, downstream_credits=3, downstream_rtt=8
    )
    src = SaturatingSource(n_out=2, packet_words=cfg.packet_words, seed=2)
    sw = PipelinedSwitch(cfg, src)
    sw.warmup = 1000
    sw.run(20_000)
    assert sw.link_utilization > 0.9


def test_backpressure_fills_buffer_instead_of_dropping():
    """With end-to-end (input) credits AND a slow downstream, nothing is
    dropped — packets accumulate in the shared buffer, exactly the lossless
    Telegraphos behaviour."""
    cfg = PipelinedSwitchConfig(
        n=2, addresses=16, credit_flow=True,
        downstream_credits=1, downstream_rtt=16,
    )
    src = SaturatingSource(n_out=2, packet_words=cfg.packet_words, seed=3)
    sw = PipelinedSwitch(cfg, src)
    sw.run(10_000)
    assert sw.stats.dropped == 0
    assert sw.buffer.occupancy > 0  # held back by the downstream link


def test_light_load_unaffected():
    """Ample credits at light load: indistinguishable from no flow control."""
    results = []
    for credits in (None, 8):
        cfg = PipelinedSwitchConfig(
            n=4, addresses=64, downstream_credits=credits, downstream_rtt=4
        )
        src = RenewalPacketSource(
            n_out=4, packet_words=cfg.packet_words, load=0.3, seed=4
        )
        sw = PipelinedSwitch(cfg, src)
        sw.warmup = 1000
        sw.run(30_000)
        results.append(sw.ct_latency.mean)
    assert results[0] == pytest.approx(results[1], rel=0.05)


def test_credits_conserved():
    cfg = PipelinedSwitchConfig(
        n=2, addresses=32, downstream_credits=2, downstream_rtt=3
    )
    src = RenewalPacketSource(n_out=2, packet_words=cfg.packet_words, load=0.5, seed=5)
    sw = PipelinedSwitch(cfg, src)
    sw.run(10_000)
    sw.drain()
    sw.run(cfg.downstream_rtt + 1)  # let the last returns arrive
    assert all(c == 2 for c in sw._out_credits)
