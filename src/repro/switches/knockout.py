"""The Knockout switch [YeHA87] (cited in paper §3.1).

Output buffering where each output accepts at most ``l_paths`` cells per slot
through a knockout concentrator; cells beyond the L survivors are dropped
*even if buffer space remains*.  [YeHA87]'s observation: L = 8 keeps the
knockout loss below ~1e-6 at full load regardless of switch size, so the
n-input-per-slot output buffer (the expensive part) can be replaced by an
L-input one.

:func:`repro.analysis.knockout.knockout_loss` gives the analytic loss used to
cross-check this simulator.
"""

from __future__ import annotations

import numpy as np

from repro.sim.packet import Cell
from repro.switches.output_queued import OutputQueued
from repro.telemetry import DROP_KNOCKOUT


class KnockoutSwitch(OutputQueued):
    """Output queueing behind an L-path knockout concentrator per output."""

    def __init__(
        self,
        n_in: int,
        n_out: int,
        l_paths: int = 8,
        capacity: int | None = None,
        warmup: int = 0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_in, n_out, capacity=capacity, warmup=warmup, seed=seed)
        if l_paths < 1:
            raise ValueError(f"need >= 1 knockout path, got {l_paths}")
        self.l_paths = l_paths
        self.knockout_drops = 0

    def _select_departures(self) -> list[Cell | None]:
        # Apply the concentrator before the normal output-queue admission:
        # per output, keep at most l_paths random survivors of this slot.
        by_output: dict[int, list[Cell]] = {}
        for cell in self._pending:
            by_output.setdefault(cell.dst, []).append(cell)
        survivors: list[Cell] = []
        for cells in by_output.values():
            if len(cells) > self.l_paths:
                keep = self.rng.choice(len(cells), size=self.l_paths, replace=False)
                keep_set = {int(k) for k in keep}
                for k, cell in enumerate(cells):
                    if k in keep_set:
                        survivors.append(cell)
                    else:
                        self.knockout_drops += 1
                        self._record_late_drop(cell, cause=DROP_KNOCKOUT)
            else:
                survivors.extend(cells)
        self._pending = survivors
        return super()._select_departures()
