"""Nonuniform (hotspot) destination traffic.

Used by the ablation benches: shared buffering's memory-utilization advantage
over output queueing grows under nonuniform traffic because the hot output's
queue can borrow space from the cold ones.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.base import RandomTrafficSource


class Hotspot(RandomTrafficSource):
    """Bernoulli arrivals where output ``hot`` attracts extra traffic.

    A fraction ``hot_fraction`` of all cells goes to the hot output; the rest
    is uniform over all outputs (including the hot one).
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        load: float,
        hot: int = 0,
        hot_fraction: float = 0.3,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_in, n_out, seed)
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        if not 0 <= hot < n_out:
            raise ValueError(f"hot output {hot} out of range for {n_out} outputs")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        self.load = load
        self.hot = hot
        self.hot_fraction = hot_fraction

    def arrivals(self, slot: int) -> list[int | None]:
        out: list[int | None] = []
        for _ in range(self.n_in):
            if self.rng.random() >= self.load:
                out.append(None)
            elif self.rng.random() < self.hot_fraction:
                out.append(self.hot)
            else:
                out.append(int(self.rng.integers(0, self.n_out)))
        return out

    def arrivals_matrix(self, slots: int, start_slot: int = 0) -> np.ndarray:
        active = self.rng.random((slots, self.n_in)) < self.load
        to_hot = self.rng.random((slots, self.n_in)) < self.hot_fraction
        dests = self.rng.integers(0, self.n_out, size=(slots, self.n_in))
        out = np.where(to_hot, self.hot, dests)
        return np.where(active, out, self.NO_CELL)

    @property
    def offered_load(self) -> float:
        return self.load

    def output_load(self, j: int) -> float:
        """Analytic long-run cells/slot offered to output ``j``.

        Exceeding 1.0 for the hot output means that output saturates.
        """
        total = self.load * self.n_in
        base = total * (1.0 - self.hot_fraction) / self.n_out
        return base + (total * self.hot_fraction if j == self.hot else 0.0)
