"""Tests for the HoL saturation analysis."""

import math

import pytest

from repro.analysis.hol import (
    KAROL_TABLE,
    hol_saturation,
    hol_saturation_asymptotic,
    hol_saturation_montecarlo,
)


def test_asymptotic_value():
    assert hol_saturation_asymptotic() == pytest.approx(2 - math.sqrt(2))
    assert hol_saturation_asymptotic() == pytest.approx(0.5858, abs=1e-4)


@pytest.mark.parametrize("n", [2, 4, 8])
def test_montecarlo_matches_karol_table(n):
    est = hol_saturation_montecarlo(n, slots=60_000, seed=1)
    assert est == pytest.approx(KAROL_TABLE[n], abs=0.01)


def test_large_n_approaches_asymptote():
    est = hol_saturation_montecarlo(64, slots=20_000, seed=2)
    assert est == pytest.approx(hol_saturation_asymptotic(), abs=0.02)


def test_monotone_decreasing_in_n():
    values = [hol_saturation_montecarlo(n, slots=30_000, seed=3) for n in (2, 4, 16)]
    assert values[0] > values[1] > values[2]


def test_lookup_prefers_table():
    assert hol_saturation(4) == KAROL_TABLE[4]


def test_n1_is_trivially_one():
    assert hol_saturation_montecarlo(1, slots=2000, warmup=100, seed=4) == 1.0


def test_validation():
    with pytest.raises(ValueError):
        hol_saturation_montecarlo(0)
