"""Bursty (on/off) traffic with geometrically distributed burst lengths.

The paper (section 2.1) notes that input queueing degrades further "when the
traffic is bursty and the bursts are larger than the buffers".  This source
models each input as a two-state on/off Markov process; while *on*, a cell
arrives every slot, all cells of one burst sharing a single destination (the
classic correlated-train model used in the shared-buffer literature, e.g.
[HlKa88]'s companion analyses).
"""

from __future__ import annotations

import numpy as np

from repro.traffic.base import RandomTrafficSource


class BurstyOnOff(RandomTrafficSource):
    """On/off source: geometric burst of cells to one destination, then idle.

    Parameters
    ----------
    load:
        Long-run fraction of slots carrying a cell, per input.
    mean_burst:
        Mean burst length in cells (geometric, support >= 1).
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        load: float,
        mean_burst: float,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_in, n_out, seed)
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        if mean_burst < 1.0:
            raise ValueError(f"mean burst length must be >= 1 cell, got {mean_burst}")
        self.load = load
        self.mean_burst = mean_burst
        # Burst length ~ Geometric(p_end) with support >= 1 (mean 1/p_end);
        # idle gap ~ Geometric(p_start) with support >= 0 (a new burst may
        # start the very slot after the previous one ends), so the gap mean
        # is (1 - p_start)/p_start.  Choosing the means in ratio
        # (1 - load)/load makes the stationary on-fraction equal `load`.
        self.p_end = 1.0 / mean_burst
        if load >= 1.0:
            self.p_start = 1.0
        elif load <= 0.0:
            self.p_start = 0.0
        else:
            mean_idle = mean_burst * (1.0 - load) / load
            self.p_start = 1.0 / (mean_idle + 1.0)
        self._on = [False] * n_in
        self._dest = [0] * n_in

    def arrivals(self, slot: int) -> list[int | None]:
        out: list[int | None] = []
        for i in range(self.n_in):
            if not self._on[i]:
                if self.rng.random() < self.p_start:
                    self._on[i] = True
                    self._dest[i] = int(self.rng.integers(0, self.n_out))
            if self._on[i]:
                out.append(self._dest[i])
                if self.rng.random() < self.p_end:
                    self._on[i] = False
            else:
                out.append(None)
        return out

    def arrivals_matrix(self, slots: int, start_slot: int = 0) -> np.ndarray:
        """Run-length (burst/gap) generation: one geometric draw per burst
        and per idle gap instead of one Bernoulli draw per slot.

        Because both run lengths are geometric (memoryless), truncating a
        run at the horizon and resuming from the on/off state on the next
        call is distributionally exact.
        """
        out = np.full((slots, self.n_in), self.NO_CELL, dtype=np.int64)
        if slots == 0 or self.load <= 0.0:
            return out
        for i in range(self.n_in):
            pos = 0
            while pos < slots:
                if not self._on[i]:
                    # Idle gap ~ Geometric(p_start) - 1, support >= 0.
                    pos += int(self.rng.geometric(self.p_start)) - 1
                    if pos >= slots:
                        break  # still off at the horizon
                    self._on[i] = True
                    self._dest[i] = int(self.rng.integers(0, self.n_out))
                # Burst ~ Geometric(p_end), support >= 1, one destination.
                burst = int(self.rng.geometric(self.p_end))
                end = pos + burst
                out[pos:min(end, slots), i] = self._dest[i]
                if end > slots:
                    # Burst crosses the horizon: stay on; the remaining
                    # length is geometric again by memorylessness.
                    pos = slots
                else:
                    pos = end
                    self._on[i] = False
        return out

    @property
    def offered_load(self) -> float:
        return self.load
