"""Technology and layout-style parameters for the silicon cost models.

The paper's §4–§5 arguments are first-order VLSI arithmetic over a handful of
unit sizes: the SRAM bit cell, the address decoder versus the decoded-address
pipeline register, datapath wire pitch, and standard-cell versus full-custom
density.  This module pins those units down, **calibrated against the die
numbers printed in the paper**:

* Telegraphos II (0.7 um standard cell): a 256 x 16 compiled SRAM megacell is
  1.5 x 0.9 mm^2 (=> 330 um^2/bit, decoders included); buffer peripheral
  region 15 mm^2 + 5.5 mm^2 bus routing for a 4x4, 16-bit, 8-stage switch.
* Telegraphos III (1.0 um full custom): 64 Kbit of memory in ~36 mm^2
  (=> ~550 um^2/bit including the decoder column), peripheral datapath
  ~9 mm^2 for 8x8 x 16 bit; a decoded-address pipeline register is 2.3 x
  smaller than an address decoder; worst-case clock 16 ns, typical 10 ns.

Everything else in §4.2/§4.4/§5 (the 41 mm^2 standard-cell estimate, the
"factor of 22", the 18 x standard-cell blow-up at 8x8, the 13 vs 9 mm^2
wide-vs-pipelined comparison, the 16 x PRIZMA crossbar factor) must then
*come out* of the model — that is the reproduction, exercised by benches
E8-E12.

Areas scale with the square of the drawn feature size ``f`` (in um); all
unit constants below are normalized to ``f = 1 um``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Style(enum.Enum):
    """Layout style: full-custom datapaths pack ~4.3x tighter per dimension."""

    FULL_CUSTOM = "full_custom"
    STANDARD_CELL = "standard_cell"


@dataclass(frozen=True, slots=True)
class Technology:
    """A CMOS process + layout-style operating point.

    Unit constants (at f = 1 um, scale by f^2 for areas, f for pitches):

    bit_area_um2:
        SRAM bit-cell area excluding decoders (full-custom 6T + overhead).
    megacell_bit_area_um2:
        Compiled-SRAM effective area per bit, decoders amortized in
        (calibrated: 1.35 mm^2 / 4096 bits at 0.7 um => 330 um^2 => 673 f^2).
    datapath_wire_pitch_um:
        Pitch of one horizontal link wire over the peripheral datapath
        (calibrated from Telegraphos III: 9 mm^2 = buffer width x 256 wires).
    decoder_width_bits:
        Address-decoder column width in units of bit-cell widths.
    decoder_to_pipereg_ratio:
        Decoder width / decoded-address pipeline register width (paper: 2.3).
    std_cell_linear_factor:
        Linear density penalty of standard cells vs full custom for the
        peripheral datapath (4.06 => 16.5x in area; calibrated so that the
        4x4 peripheral at 1.0 um std cell is the paper's 41 mm^2 and the
        Telegraphos II peripheral+routing is its published 20.5 mm^2).
    clock_fc_worst_ns / clock_typ_ratio:
        Worst-case clock of the full-custom datapath at f = 1 um (16 ns) and
        worst/typical derating (1.6: 16 ns -> 10 ns).
    std_cell_clock_factor:
        Clock penalty of standard cells (calibrated: Telegraphos II runs at
        40 ns in 0.7 um std cell => 40 / (16 * 0.7) = 3.57).
    """

    name: str
    feature_um: float
    style: Style
    bit_area_um2: float = 500.0
    megacell_bit_area_um2: float = 673.0
    datapath_wire_pitch_um: float = 5.87
    decoder_width_bits: float = 3.0
    decoder_to_pipereg_ratio: float = 2.3
    std_cell_linear_factor: float = 4.06
    clock_fc_worst_ns: float = 16.0
    clock_typ_ratio: float = 1.6
    std_cell_clock_factor: float = 3.57
    # §5.3: one dynamic shift-register bit is 4x a 3T dynamic RAM bit.
    shift_register_bit_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.feature_um <= 0:
            raise ValueError(f"feature size must be positive, got {self.feature_um}")

    # -- scaled unit sizes -----------------------------------------------------
    @property
    def f2(self) -> float:
        return self.feature_um * self.feature_um

    def bit_area(self) -> float:
        """Storage bit area in um^2 for this style (decoders excluded)."""
        if self.style is Style.FULL_CUSTOM:
            return self.bit_area_um2 * self.f2
        return self.megacell_bit_area_um2 * self.f2

    def bit_width_um(self) -> float:
        """Bit-cell width (um); cells are modeled square."""
        return self.bit_area() ** 0.5

    def bit_height_um(self) -> float:
        return self.bit_area() ** 0.5

    def wire_pitch_um(self) -> float:
        """Peripheral datapath wire pitch (um), style-adjusted."""
        base = self.datapath_wire_pitch_um * self.feature_um
        if self.style is Style.STANDARD_CELL:
            return base * self.std_cell_linear_factor
        return base

    def datapath_bit_pitch_um(self) -> float:
        """Horizontal pitch of one datapath bit column, style-adjusted."""
        base = self.bit_width_um()
        if self.style is Style.STANDARD_CELL:
            return base * self.std_cell_linear_factor
        return base

    def clock_ns(self, worst_case: bool = True) -> float:
        """Datapath clock cycle for this technology/style."""
        t = self.clock_fc_worst_ns * self.feature_um
        if self.style is Style.STANDARD_CELL:
            t *= self.std_cell_clock_factor
        if not worst_case:
            t /= self.clock_typ_ratio
        return t


# -- the paper's three operating points ------------------------------------------
TELEGRAPHOS_II_TECH = Technology(
    name="ES2 0.7um standard cell (Telegraphos II)",
    feature_um=0.7,
    style=Style.STANDARD_CELL,
)

TELEGRAPHOS_III_TECH = Technology(
    name="ES2 1.0um full custom (Telegraphos III)",
    feature_um=1.0,
    style=Style.FULL_CUSTOM,
)


def scaled(tech: Technology, feature_um: float, style: Style | None = None) -> Technology:
    """The same unit constants at a different feature size / style."""
    from dataclasses import replace

    return replace(
        tech,
        name=f"{tech.name} scaled to {feature_um}um",
        feature_um=feature_um,
        style=tech.style if style is None else style,
    )
