"""Crossbar complexity/area (paper §5.3).

The PRIZMA interleaved shared buffer needs a "router" and a "selector", each
an ``n x M`` crossbar (``M`` = number of banks = buffer capacity in cells);
the pipelined memory's input and output datapaths are each ``n x 2n``
crossbars.  "Since usually the packet capacity of the buffer is much larger
than the total number of links, the PRIZMA circuits cost much more": with
Telegraphos III numbers, ``M / 2n = 256 / 16 = 16 x`` (bench E12).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vlsi.technology import Technology


@dataclass(frozen=True, slots=True)
class CrossbarCost:
    """Crosspoint count and wire-limited area of one crossbar."""

    rows: int
    cols: int
    width_bits: int
    crosspoints: int
    area_mm2: float


def crossbar_cost(tech: Technology, rows: int, cols: int, width_bits: int) -> CrossbarCost:
    """An ``rows x cols`` crossbar of ``width_bits``-bit buses.

    Area is wire-limited: ``rows*w`` horizontal wires crossing ``cols*w``
    vertical wires at the datapath wire pitch.
    """
    if rows < 1 or cols < 1 or width_bits < 1:
        raise ValueError("crossbar dimensions must be >= 1")
    pitch_mm = tech.wire_pitch_um() / 1e3
    h = rows * width_bits * pitch_mm
    v = cols * width_bits * pitch_mm
    return CrossbarCost(
        rows=rows,
        cols=cols,
        width_bits=width_bits,
        crosspoints=rows * cols * width_bits,
        area_mm2=h * v,
    )


def prizma_crossbars(tech: Technology, n: int, m_banks: int, width_bits: int) -> dict:
    """Router + selector cost of a PRIZMA shared buffer."""
    router = crossbar_cost(tech, n, m_banks, width_bits)
    selector = crossbar_cost(tech, n, m_banks, width_bits)
    return {
        "router": router,
        "selector": selector,
        "total_crosspoints": router.crosspoints + selector.crosspoints,
        "total_area_mm2": router.area_mm2 + selector.area_mm2,
    }


def pipelined_crossbars(tech: Technology, n: int, width_bits: int) -> dict:
    """Input + output datapath of the pipelined buffer as n x 2n crossbars."""
    inp = crossbar_cost(tech, n, 2 * n, width_bits)
    out = crossbar_cost(tech, n, 2 * n, width_bits)
    return {
        "input": inp,
        "output": out,
        "total_crosspoints": inp.crosspoints + out.crosspoints,
        "total_area_mm2": inp.area_mm2 + out.area_mm2,
    }


def prizma_vs_pipelined_ratio(n: int, m_banks: int) -> float:
    """The §5.3 complexity ratio ``M / 2n`` (16 for Telegraphos III sizes)."""
    if n < 1 or m_banks < 1:
        raise ValueError("n and m_banks must be >= 1")
    return m_banks / (2 * n)
