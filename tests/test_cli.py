"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.parametrize(
    "arch", ["fifo", "voq", "output", "shared", "crosspoint", "block",
             "speedup", "interleaved", "knockout"],
)
def test_simulate_every_architecture(arch, capsys):
    rc = main(["simulate", "--arch", arch, "-n", "4", "--load", "0.5",
               "--slots", "1500"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "4x4" in out


@pytest.mark.parametrize("sched", ["pim", "islip", "2drr", "greedy", "max"])
def test_simulate_voq_schedulers(sched, capsys):
    rc = main(["simulate", "--arch", "voq", "--scheduler", sched, "-n", "4",
               "--load", "0.5", "--slots", "800"])
    assert rc == 0


def test_simulate_bursty(capsys):
    rc = main(["simulate", "--arch", "shared", "-n", "4", "--load", "0.5",
               "--slots", "1500", "--burst", "6"])
    assert rc == 0


def test_pipelined_command(capsys):
    rc = main(["pipelined", "-n", "2", "--load", "0.4", "--cycles", "4000",
               "--addresses", "32"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "link utilization" in out
    assert "cut-through" in out


def test_pipelined_with_credits_and_quanta(capsys):
    rc = main(["pipelined", "-n", "2", "--load", "0.8", "--cycles", "4000",
               "--addresses", "32", "--quanta", "2", "--credits"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "dropped packets      0" in out.replace("  ", " ") or "0" in out


def test_wormhole_command(capsys):
    rc = main(["wormhole", "--k", "4", "--dims", "2", "--lanes", "2",
               "--load", "0.3", "--cycles", "2000", "--message", "8"])
    assert rc == 0
    assert "delivered_fraction" in capsys.readouterr().out


def test_wormhole_torus_dateline(capsys):
    rc = main(["wormhole", "--k", "4", "--dims", "2", "--lanes", "2",
               "--load", "0.3", "--cycles", "2000", "--message", "8",
               "--wrap", "--dateline"])
    assert rc == 0
    assert "torus" in capsys.readouterr().out


@pytest.mark.parametrize("chip", ["1", "2", "3"])
def test_vlsi_reports(chip, capsys):
    rc = main(["vlsi", "--chip", chip])
    assert rc == 0
    assert "paper" in capsys.readouterr().out


def test_vlsi_comparisons(capsys):
    rc = main(["vlsi", "--chip", "3", "--comparisons"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "PRIZMA" in out
    assert "16x" in out


def test_sizing_command(capsys):
    rc = main(["sizing", "-n", "8", "--load", "0.7", "--target", "1e-2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "shared buffering" in out
    assert "input smoothing" in out


@pytest.mark.parametrize("kernel", ["checked", "fast"])
def test_trace_command_writes_valid_chrome_trace(kernel, tmp_path, capsys):
    from repro.telemetry.export import validate_chrome_trace

    out = tmp_path / "trace.json"
    rc = main(["trace", kernel, "--cycles", "200", "-n", "4",
               "--addresses", "32", "--out", str(out)])
    assert rc == 0
    import json

    trace = json.loads(out.read_text())
    validate_chrome_trace(trace)
    names = {e["args"]["name"] for e in trace["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"M0", "in0", "out0"} <= names
    assert "perfetto" in capsys.readouterr().out


def test_trace_checked_and_fast_agree(tmp_path):
    import json

    outs = []
    for kernel in ("checked", "fast"):
        out = tmp_path / f"{kernel}.json"
        rc = main(["trace", kernel, "--cycles", "150", "-n", "2",
                   "--addresses", "16", "--out", str(out)])
        assert rc == 0
        outs.append(json.loads(out.read_text()))
    assert outs[0] == outs[1]


def test_pipelined_telemetry_outputs(tmp_path, capsys):
    import json

    metrics = tmp_path / "metrics.txt"
    events = tmp_path / "events.jsonl"
    rc = main(["pipelined", "-n", "2", "--load", "0.4", "--cycles", "2000",
               "--addresses", "32", "--metrics", str(metrics),
               "--events", str(events), "--sample-interval", "64"])
    assert rc == 0
    assert "occupancy:" in capsys.readouterr().out
    assert "repro_port_arrivals_total" in metrics.read_text()
    lines = events.read_text().strip().splitlines()
    assert lines and all(json.loads(l)["kind"] for l in lines)


def test_simulate_telemetry_outputs(tmp_path):
    events = tmp_path / "events.jsonl"
    rc = main(["simulate", "--arch", "shared", "-n", "4", "--load", "0.9",
               "--slots", "1000", "--capacity", "8", "--events", str(events)])
    assert rc == 0
    text = events.read_text()
    assert '"kind":"drop"' in text and '"cause":"buffer_full"' in text


def test_bench_json_artifact(tmp_path):
    import json

    out = tmp_path / "bench.json"
    rc = main(["bench", "--cycles", "400", "--json", str(out)])
    assert rc == 0
    artifact = json.loads(out.read_text())
    assert artifact["smoke"] is True
    assert len(artifact["results"]) == 1
    row = artifact["results"][0]
    # same row schema as benchmarks/BENCH_fastpath.json
    for key in ("experiment", "cycles", "checked_seconds", "fast_seconds",
                "checked_cycles_per_sec", "fast_cycles_per_sec", "speedup",
                "delivered", "dropped", "identical"):
        assert key in row
    assert row["identical"] is True
    assert row["speedup"] > 0


def test_pipelined_invalid_config_clean_error(capsys):
    rc = main(["pipelined", "-n", "0", "--cycles", "100"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "repro: error:" in err
    assert "n >= 1" in err
    assert "Traceback" not in err


def test_pipelined_invalid_quanta_clean_error(capsys):
    rc = main(["pipelined", "-n", "2", "--cycles", "100", "--quanta", "-1"])
    assert rc == 2
    assert "repro: error:" in capsys.readouterr().err


def test_run_scenario_file(tmp_path, capsys):
    from repro.scenario import Scenario

    path = tmp_path / "one.json"
    Scenario(name="one", arch="shared", horizon=800, params={"n": 4},
             traffic={"kind": "uniform", "load": 0.7}).dump(path)
    rc = main(["run", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "one" in out and "shared" in out


def test_run_missing_file_clean_error(capsys):
    rc = main(["run", "no-such-file.json"])
    assert rc == 2
    assert "cannot read scenario file" in capsys.readouterr().err


def test_run_horizon_override_and_artifacts(tmp_path, capsys):
    import json

    from repro.scenario import Scenario

    path = tmp_path / "one.json"
    Scenario(name="one", arch="shared", horizon=50_000, params={"n": 4},
             traffic={"kind": "uniform", "load": 0.7}).dump(path)
    out_dir = tmp_path / "out"
    rc = main(["run", str(path), "--horizon", "500", "--out", str(out_dir)])
    assert rc == 0
    merged = json.loads((out_dir / "results.json").read_text())
    assert merged[0]["horizon"] == 500
    assert merged[0]["warmup"] == 100


def test_run_policy_override(tmp_path, capsys):
    import json

    from repro.scenario import Scenario

    path = tmp_path / "one.json"
    Scenario(name="one", arch="pipelined_fast", horizon=2000,
             params={"n": 4, "addresses": 16},
             traffic={"kind": "renewal_tape", "load": 0.9}).dump(path)
    out_dir = tmp_path / "out"
    rc = main(["run", str(path), "--policy", "static:cap=2",
               "--out", str(out_dir)])
    assert rc == 0
    merged = json.loads((out_dir / "results.json").read_text())
    assert merged[0]["params"]["policy"] == "static:cap=2"
    assert merged[0]["stats"]["policy_drops"] > 0


def test_run_bad_policy_clean_error(tmp_path, capsys):
    from repro.scenario import Scenario

    path = tmp_path / "one.json"
    Scenario(name="one", arch="pipelined_fast", horizon=500,
             params={"n": 4, "addresses": 16},
             traffic={"kind": "renewal_tape", "load": 0.5}).dump(path)
    rc = main(["run", str(path), "--policy", "dynamc:alpha=1.0"])
    assert rc == 2
    assert "did you mean 'dynamic'" in capsys.readouterr().err


def test_bench_policy_flag(capsys):
    rc = main(["bench", "--cycles", "400", "--kernel", "all",
               "--policy", "dynamic:alpha=1.0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "batch" in out


def test_sweep_parallel_matches_sequential_artifacts(tmp_path):
    import json

    doc = {
        "base": {"name": "grid", "arch": "shared", "horizon": 600,
                 "params": {"n": 4},
                 "traffic": {"kind": "uniform", "load": 0.5}},
        "grid": {"arch": ["shared", "output"], "traffic.load": [0.5, 0.9]},
    }
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(doc))
    out_seq, out_par = tmp_path / "seq", tmp_path / "par"
    assert main(["run", str(path), "--jobs", "1", "--out", str(out_seq)]) == 0
    assert main(["sweep", str(path), "--jobs", "2", "--out", str(out_par)]) == 0
    seq = json.loads((out_seq / "results.json").read_text())
    par = json.loads((out_par / "results.json").read_text())
    assert seq == par
    assert len(seq) == 4


# -- repro lint (the repro.drc static half) -----------------------------------

def _lint_tree(tmp_path, source):
    bad = tmp_path / "src" / "repro" / "sim" / "clocky.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(source)
    return bad


def test_lint_reports_violation_and_exits_nonzero(tmp_path, capsys, monkeypatch):
    _lint_tree(tmp_path, "import time\nt = time.time()\n")
    monkeypatch.chdir(tmp_path)
    rc = main(["lint", "src"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "DRC101" in out
    assert "src/repro/sim/clocky.py:2" in out


def test_lint_clean_tree_exits_zero(tmp_path, capsys, monkeypatch):
    _lint_tree(tmp_path, "x = 1\n")
    monkeypatch.chdir(tmp_path)
    rc = main(["lint", "src"])
    assert rc == 0
    assert "No violations in 1 file" in capsys.readouterr().out


def test_lint_json_and_sarif_formats(tmp_path, capsys, monkeypatch):
    import json

    _lint_tree(tmp_path, "import time\nt = time.time()\n")
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "src", "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["violations"][0]["code"] == "DRC101"
    assert main(["lint", "src", "--format", "sarif"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    assert sarif["runs"][0]["results"][0]["ruleId"] == "DRC101"


def test_lint_output_file(tmp_path, capsys, monkeypatch):
    import json

    _lint_tree(tmp_path, "import time\nt = time.time()\n")
    monkeypatch.chdir(tmp_path)
    report = tmp_path / "drc.sarif"
    rc = main(["lint", "src", "--format", "sarif", "--output", str(report)])
    assert rc == 1
    assert json.loads(report.read_text())["version"] == "2.1.0"
    assert "1 violation" in capsys.readouterr().out


def test_lint_rules_catalog(capsys):
    rc = main(["lint", "--rules"])
    assert rc == 0
    out = capsys.readouterr().out
    for code in ("DRC101", "DRC104", "DRC112", "DRC121", "DRC131"):
        assert code in out


def test_lint_repository_is_clean(capsys):
    """The shipped tree lints clean through the real CLI entry point."""
    assert main(["lint", "src", "tests"]) == 0


# -- --sanitize plumbing through the CLI --------------------------------------

def test_run_scenario_with_sanitize(tmp_path, capsys):
    from repro.scenario import Scenario

    path = tmp_path / "one.json"
    Scenario(name="one", arch="pipelined", horizon=600,
             params={"n": 2, "addresses": 16},
             traffic={"kind": "renewal", "load": 0.7}).dump(path)
    rc = main(["run", str(path), "--sanitize"])
    assert rc == 0
    assert "one" in capsys.readouterr().out


def test_run_sanitize_rejects_uninstrumented_arch(tmp_path, capsys):
    from repro.scenario import Scenario

    path = tmp_path / "one.json"
    Scenario(name="one", arch="wide", horizon=600,
             params={"n": 2, "addresses": 16},
             traffic={"kind": "renewal", "load": 0.7}).dump(path)
    rc = main(["run", str(path), "--sanitize"])
    assert rc == 2
    assert "sanitize" in capsys.readouterr().err


def test_pipelined_command_with_sanitize(capsys):
    rc = main(["pipelined", "-n", "2", "--load", "0.6", "--cycles", "2000",
               "--addresses", "32", "--sanitize"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sanitizer:" in out
    assert "violations=0" in out.replace(" ", "")


def test_simulate_command_with_sanitize(capsys):
    rc = main(["simulate", "--arch", "shared", "-n", "4", "--load", "0.5",
               "--slots", "1000", "--sanitize"])
    assert rc == 0
    assert "sanitizer:" in capsys.readouterr().out
