"""Experiment drivers shared by tests, examples, and the benchmark suite.

These helpers standardize how throughput, latency, and loss curves are
measured so that every architecture is evaluated identically — same warmup,
same horizon, same saturation criterion.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.drc.sanitizer import Sanitizer
from repro.sim.stats import SwitchStats
from repro.switches.base import SlottedSwitch
from repro.telemetry import Telemetry
from repro.traffic.base import TrafficSource
from repro.traffic.bernoulli import BernoulliUniform

SwitchFactory = Callable[[], SlottedSwitch]
SourceFactory = Callable[[float, int], TrafficSource]  # (load, seed) -> source


def run_switch(
    switch: SlottedSwitch,
    source: TrafficSource,
    slots: int,
    fast: bool = False,
    telemetry: Telemetry | None = None,
    sanitizer: Sanitizer | None = None,
) -> SwitchStats:
    """Drive ``switch`` with ``source`` for ``slots`` slots; return stats.

    ``fast=True`` batches the traffic generation through
    :meth:`~repro.traffic.base.TrafficSource.arrivals_matrix` — same
    statistics, different (still seed-deterministic) sample path.
    ``telemetry`` attaches a collection bundle to the switch for this run
    only: the bundle is detached afterwards and cannot be passed to a
    second ``run_switch`` call — counters and event logs are cumulative,
    so a reused bundle would silently double-count the earlier run.
    ``sanitizer`` attaches a :class:`~repro.drc.Sanitizer` for this run
    only (the ``--sanitize`` path): the switch reports per-slot lifecycle
    evidence and the sanitizer raises a structured
    :class:`~repro.drc.SanitizerError` on any conservation violation.
    """
    if telemetry is not None:
        if getattr(telemetry, "_harness_consumed", False):
            raise ValueError(
                "this Telemetry bundle already collected a run_switch() run; "
                "create a fresh Telemetry.on() bundle per run (metrics and "
                "event logs are cumulative, so reuse would double-count)"
            )
        telemetry._harness_consumed = True
        switch.attach_telemetry(telemetry)
    if sanitizer is not None:
        switch.attach_sanitizer(sanitizer)
    try:
        if fast:
            return switch.run_fast(source, slots)
        return switch.run(source, slots)
    finally:
        if telemetry is not None:
            switch.attach_telemetry(None)
        if sanitizer is not None:
            switch.attach_sanitizer(None)


def uniform_source_factory(n_in: int, n_out: int) -> SourceFactory:
    """Standard Bernoulli-uniform source factory for sweeps."""

    def factory(load: float, seed: int) -> TrafficSource:
        return BernoulliUniform(n_in, n_out, load, seed=seed)

    return factory


def registry_switch_factory(arch: str, seed: int = 1, **params) -> SwitchFactory:
    """A :data:`SwitchFactory` for a scenario-registry architecture name.

    The sweep helpers below take factories; this is how callers get one
    without touching switch constructors:
    ``latency_vs_load(registry_switch_factory("voq", n=8, scheduler="pim"),
    uniform_source_factory(8, 8), loads)``.
    """
    from repro.scenario import slotted_factory

    return slotted_factory(arch, seed=seed, **params)


def throughput_at_load(
    make_switch: SwitchFactory,
    make_source: SourceFactory,
    load: float,
    slots: int = 20_000,
    warmup_fraction: float = 0.2,
    seed: int = 1,
    fast: bool = False,
) -> float:
    """Delivered throughput (cells/output/slot) at a given offered load."""
    switch = make_switch()
    switch.stats.warmup = int(slots * warmup_fraction)
    source = make_source(load, seed)
    stats = run_switch(switch, source, slots, fast=fast)
    return stats.throughput


def saturation_throughput(
    make_switch: SwitchFactory,
    make_source: SourceFactory,
    slots: int = 30_000,
    warmup_fraction: float = 0.2,
    seed: int = 1,
    fast: bool = False,
) -> float:
    """Saturation throughput: delivered rate under offered load 1.0.

    For work-conserving, non-blocking architectures this equals 1.0; for
    FIFO input queueing it converges to the [KaHM87] HoL limit.  Queues must
    be effectively infinite for this to measure *throughput* rather than loss.
    """
    return throughput_at_load(
        make_switch, make_source, 1.0, slots, warmup_fraction, seed, fast=fast
    )


def latency_vs_load(
    make_switch: SwitchFactory,
    make_source: SourceFactory,
    loads: list[float],
    slots: int = 20_000,
    warmup_fraction: float = 0.2,
    seed: int = 1,
    fast: bool = False,
) -> list[tuple[float, float]]:
    """(load, mean in-switch delay) series — the [AOST93 fig 3] axes."""
    series: list[tuple[float, float]] = []
    for load in loads:
        switch = make_switch()
        switch.stats.warmup = int(slots * warmup_fraction)
        stats = run_switch(switch, make_source(load, seed), slots, fast=fast)
        series.append((load, stats.mean_delay))
    return series


def loss_vs_capacity(
    make_switch: Callable[[int], SlottedSwitch],
    make_source: SourceFactory,
    capacities: list[int],
    load: float,
    slots: int = 100_000,
    warmup_fraction: float = 0.1,
    seed: int = 1,
    fast: bool = False,
) -> list[tuple[int, float]]:
    """(capacity, loss probability) series — the [HlKa88] axes (bench E3)."""
    series: list[tuple[int, float]] = []
    for cap in capacities:
        switch = make_switch(cap)
        switch.stats.warmup = int(slots * warmup_fraction)
        stats = run_switch(switch, make_source(load, seed), slots, fast=fast)
        series.append((cap, stats.loss_probability))
    return series


def capacity_for_loss(
    losses: list[tuple[int, float]], target: float
) -> int | None:
    """Smallest measured capacity whose loss is at or below ``target``."""
    for cap, loss in sorted(losses):
        if not math.isnan(loss) and loss <= target:
            return cap
    return None


def format_table(
    headers: list[str], rows: list[list[object]], title: str | None = None
) -> str:
    """Plain-text table used by every bench to print its paper-style output."""
    cells = [[str(h) for h in headers]] + [
        [f"{x:.4g}" if isinstance(x, float) else str(x) for x in row] for row in rows
    ]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
