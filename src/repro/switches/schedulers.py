"""Crossbar schedulers for non-FIFO input buffering (VOQ) switches.

The paper's section 2.1 notes that dropping the FIFO restriction removes
head-of-line blocking but requires "a more complicated scheduler, because now
the scheduling of each output depends on the scheduling of the other
outputs".  The schedulers studied in the papers it cites are implemented
here:

* :class:`PIM` — Parallel Iterative Matching of [AOST93] (the DEC AN2
  scheduler): rounds of random propose/grant/accept.
* :class:`Islip` — round-robin pointer variant (SLIP, also from the AN2 line
  of work); avoids PIM's randomness and unfairness.
* :class:`TwoDimRoundRobin` — the 2DRR scheduler of [LaSe95]: generalized
  diagonals of the request matrix scanned in a rotating order.
* :class:`GreedyMaximal` — sequential random-order maximal matching
  (an idealized, centralized contender).
* :class:`MaxSizeMatching` — exact maximum-size bipartite matching
  (Hopcroft–Karp); an upper bound no hardware scheduler achieves per-slot.

All schedulers consume a boolean request matrix ``requests[i][j]`` ("input i
has at least one cell for output j") and return a conflict-free matching as a
list of ``(input, output)`` pairs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.sim.rng import make_rng


class Scheduler(ABC):
    """Computes one crossbar matching per slot from a request matrix."""

    name = "abstract"

    @abstractmethod
    def match(self, requests: np.ndarray) -> list[tuple[int, int]]:
        """Return a matching (no input or output repeated) within ``requests``."""

    @staticmethod
    def _validate(requests: np.ndarray) -> tuple[int, int]:
        if requests.ndim != 2:
            raise ValueError(f"request matrix must be 2-D, got shape {requests.shape}")
        return requests.shape


def _check_matching(requests: np.ndarray, pairs: list[tuple[int, int]]) -> None:
    """Internal sanity check used by tests: pairs form a matching in requests."""
    ins = [i for i, _ in pairs]
    outs = [j for _, j in pairs]
    if len(set(ins)) != len(ins) or len(set(outs)) != len(outs):
        raise AssertionError(f"not a matching: {pairs}")
    for i, j in pairs:
        if not requests[i][j]:
            raise AssertionError(f"pair ({i},{j}) not requested")


class PIM(Scheduler):
    """Parallel Iterative Matching [AOST93].

    Each iteration: every unmatched input sends a request to every output it
    has traffic for; every unmatched output *grants* one request uniformly at
    random; every input *accepts* one grant uniformly at random.  [AOST93]
    showed that ``log2(n) + 3/4`` iterations resolve almost all requests;
    the default of 4 iterations matches the AN2 hardware.
    """

    def __init__(self, iterations: int = 4, seed=None) -> None:
        if iterations < 1:
            raise ValueError(f"need >= 1 iteration, got {iterations}")
        self.iterations = iterations
        self.rng = make_rng(seed)
        self.name = f"PIM-{iterations}"

    def match(self, requests: np.ndarray) -> list[tuple[int, int]]:
        n_in, n_out = self._validate(requests)
        free_in = np.ones(n_in, dtype=bool)
        free_out = np.ones(n_out, dtype=bool)
        pairs: list[tuple[int, int]] = []
        for _ in range(self.iterations):
            # Grant phase: each free output grants one free requesting input.
            grants: dict[int, list[int]] = {}
            progress = False
            for j in range(n_out):
                if not free_out[j]:
                    continue
                candidates = [i for i in range(n_in) if free_in[i] and requests[i][j]]
                if not candidates:
                    continue
                winner = candidates[int(self.rng.integers(0, len(candidates)))]
                grants.setdefault(winner, []).append(j)
            # Accept phase: each input accepts one grant.
            for i, granted in grants.items():
                j = granted[int(self.rng.integers(0, len(granted)))]
                pairs.append((i, j))
                free_in[i] = False
                free_out[j] = False
                progress = True
            if not progress:
                break
        return pairs


class Islip(Scheduler):
    """Round-robin iterative matching (iSLIP).

    Outputs grant the requesting input nearest (cyclically) to their grant
    pointer; inputs accept the granting output nearest to their accept
    pointer.  Pointers advance one past the chosen partner, only when the
    grant is accepted and only in the first iteration — the combination that
    gives iSLIP its 100 %-throughput-under-uniform-traffic behaviour.
    """

    def __init__(self, iterations: int = 4) -> None:
        if iterations < 1:
            raise ValueError(f"need >= 1 iteration, got {iterations}")
        self.iterations = iterations
        self._grant_ptr: np.ndarray | None = None
        self._accept_ptr: np.ndarray | None = None
        self.name = f"iSLIP-{iterations}"

    def _ensure_state(self, n_in: int, n_out: int) -> None:
        if self._grant_ptr is None or len(self._grant_ptr) != n_out:
            self._grant_ptr = np.zeros(n_out, dtype=int)
            self._accept_ptr = np.zeros(n_in, dtype=int)

    def match(self, requests: np.ndarray) -> list[tuple[int, int]]:
        n_in, n_out = self._validate(requests)
        self._ensure_state(n_in, n_out)
        free_in = np.ones(n_in, dtype=bool)
        free_out = np.ones(n_out, dtype=bool)
        pairs: list[tuple[int, int]] = []
        for it in range(self.iterations):
            grants: dict[int, list[int]] = {}
            for j in range(n_out):
                if not free_out[j]:
                    continue
                ptr = self._grant_ptr[j]
                order = [(ptr + k) % n_in for k in range(n_in)]
                for i in order:
                    if free_in[i] and requests[i][j]:
                        grants.setdefault(i, []).append(j)
                        break
            progress = False
            for i, granted in grants.items():
                ptr = self._accept_ptr[i]
                j = min(granted, key=lambda jj: (jj - ptr) % n_out)
                pairs.append((i, j))
                free_in[i] = False
                free_out[j] = False
                progress = True
                if it == 0:
                    self._grant_ptr[j] = (i + 1) % n_in
                    self._accept_ptr[i] = (j + 1) % n_out
            if not progress:
                break
        return pairs


class TwoDimRoundRobin(Scheduler):
    """Two-Dimensional Round-Robin scheduler [LaSe95].

    The request matrix's ``n`` generalized diagonals (pairs ``(i, (i+d) mod
    n)``) are scanned in an order that rotates from slot to slot, granting
    every requested pair on a diagonal whose input and output are still free.
    Fair and simple — implementable as ``n`` wired patterns — at some cost in
    matching quality versus PIM/iSLIP.
    """

    def __init__(self) -> None:
        self._slot = 0
        self.name = "2DRR"

    def match(self, requests: np.ndarray) -> list[tuple[int, int]]:
        n_in, n_out = self._validate(requests)
        n = max(n_in, n_out)
        free_in = np.ones(n_in, dtype=bool)
        free_out = np.ones(n_out, dtype=bool)
        pairs: list[tuple[int, int]] = []
        first = self._slot % n
        for step in range(n):
            d = (first + step) % n
            for i in range(n_in):
                j = (i + d) % n
                if j >= n_out:
                    continue
                if free_in[i] and free_out[j] and requests[i][j]:
                    pairs.append((i, j))
                    free_in[i] = False
                    free_out[j] = False
        self._slot += 1
        return pairs


class GreedyMaximal(Scheduler):
    """Sequential random-order maximal matching (centralized idealization)."""

    def __init__(self, seed=None) -> None:
        self.rng = make_rng(seed)
        self.name = "greedy-maximal"

    def match(self, requests: np.ndarray) -> list[tuple[int, int]]:
        n_in, n_out = self._validate(requests)
        edges = [(i, j) for i in range(n_in) for j in range(n_out) if requests[i][j]]
        self.rng.shuffle(edges)
        free_in = np.ones(n_in, dtype=bool)
        free_out = np.ones(n_out, dtype=bool)
        pairs: list[tuple[int, int]] = []
        for i, j in edges:
            if free_in[i] and free_out[j]:
                pairs.append((i, j))
                free_in[i] = False
                free_out[j] = False
        return pairs


class MaxSizeMatching(Scheduler):
    """Exact maximum-size bipartite matching via Hopcroft–Karp (networkx).

    A per-slot upper bound on any practical scheduler; used by tests to bound
    the others and by the E4 bench as the "perfect scheduler" series.
    """

    def __init__(self) -> None:
        self.name = "max-size"

    def match(self, requests: np.ndarray) -> list[tuple[int, int]]:
        import networkx as nx  # deferred: heavy import, only needed here

        n_in, n_out = self._validate(requests)
        g = nx.Graph()
        g.add_nodes_from(("in", i) for i in range(n_in))
        g.add_nodes_from(("out", j) for j in range(n_out))
        g.add_edges_from(
            (("in", i), ("out", j))
            for i in range(n_in)
            for j in range(n_out)
            if requests[i][j]
        )
        top = [("in", i) for i in range(n_in)]
        matching = nx.bipartite.hopcroft_karp_matching(g, top_nodes=top)
        return sorted(
            (node[1], partner[1])
            for node, partner in matching.items()
            if node[0] == "in"
        )
