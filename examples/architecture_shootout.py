#!/usr/bin/env python3
"""Architecture shootout: every §2 buffer organization on identical traffic.

Sweeps offered load and prints throughput and mean-delay curves for FIFO
input queueing, VOQ with three schedulers, crosspoint, block-crosspoint,
speedup-2, output queueing and shared buffering — the full cast of paper
figures 1 and 2 — then prints the saturation ranking.

Run:  python examples/architecture_shootout.py  [n]
"""

import sys

from repro.switches import (
    BlockCrosspoint,
    CrosspointQueued,
    FifoInputQueued,
    Islip,
    OutputQueued,
    PIM,
    SharedBuffer,
    SpeedupSwitch,
    TwoDimRoundRobin,
    VoqInputBuffered,
)
from repro.switches.harness import (
    format_table,
    saturation_throughput,
    uniform_source_factory,
)

LOADS = [0.4, 0.6, 0.8, 0.9, 0.95]
SLOTS = 20_000


def architectures(n):
    return {
        "FIFO input queue": lambda: FifoInputQueued(n, n, seed=1),
        "VOQ + PIM": lambda: VoqInputBuffered(n, n, PIM(iterations=4, seed=2)),
        "VOQ + iSLIP": lambda: VoqInputBuffered(n, n, Islip(iterations=4)),
        "VOQ + 2DRR": lambda: VoqInputBuffered(n, n, TwoDimRoundRobin()),
        "crosspoint": lambda: CrosspointQueued(n, n, seed=3),
        "block-crosspoint": lambda: BlockCrosspoint(n, n, block=max(n // 2, 1), seed=4),
        "speedup-2": lambda: SpeedupSwitch(n, n, speedup=2, seed=5),
        "output queueing": lambda: OutputQueued(n, n, seed=6),
        "shared buffer": lambda: SharedBuffer(n, n, seed=7),
    }


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    f = uniform_source_factory(n, n)
    archs = architectures(n)

    sat_rows = []
    for name, factory in archs.items():
        sat_rows.append([name, saturation_throughput(factory, f, slots=SLOTS)])
    sat_rows.sort(key=lambda r: -r[1])
    print(format_table(
        ["architecture", "saturation throughput"], sat_rows,
        title=f"Saturation ranking, {n}x{n}, uniform Bernoulli traffic",
    ))

    delay_rows = []
    for name, factory in archs.items():
        row = [name]
        for load in LOADS:
            sw = factory()
            sw.stats.warmup = SLOTS // 5
            stats = sw.run(f(load, 11), SLOTS)
            d = stats.mean_delay
            row.append("sat" if d != d or d > 200 else f"{d:.2f}")
        delay_rows.append(row)
    print()
    print(format_table(
        ["architecture"] + [f"load {p}" for p in LOADS], delay_rows,
        title="Mean in-switch delay (slots); 'sat' = beyond saturation",
    ))
    print("\nReading: shared buffering == output queueing at the top; FIFO input")
    print("queueing saturates near 0.6 (HoL blocking); scheduled VOQ recovers")
    print("throughput but not the latency gap — the paper's §2 in one table.")


if __name__ == "__main__":
    main()
