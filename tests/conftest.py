"""Shared test configuration: determinism and common fixtures."""

import pytest

from repro.sim.packet import reset_packet_ids


@pytest.fixture(autouse=True)
def _fresh_packet_ids():
    """Make packet uids deterministic within each test."""
    reset_packet_ids()
    yield
