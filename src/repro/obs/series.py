"""Bounded time-series ring: occupancy, queue depth, drops, cycles/s.

A :class:`SeriesRing` rides inside the :class:`~repro.telemetry.Telemetry`
bundle (its ``series`` field) and is fed by the kernels at the telemetry
sample instant — the start of a cycle, before any of the cycle's activity,
where all three kernel tiers' bookkeeping provably coincides.  Each row is

    ``(cycle, occupancy, free, queue_depths, drop_taxonomy_items)``

with cumulative drop counts per cause.  Rows are fully deterministic; the
ring *additionally* keeps a parallel wall-clock stamp per row (taken here,
outside the determinism-linted kernel tree) so live consumers can derive
cycles/s.  Wall stamps never enter exported simulation results or
checkpoint fingerprints — only the optional rate columns of the live
export views.

The ring is bounded (``capacity`` rows, oldest evicted first) so an
unbounded run cannot grow memory; ``recorded`` counts every row ever
written, which lets consumers detect eviction.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Iterable, Sequence

DEFAULT_CAPACITY = 4096

Row = tuple[int, int, int, tuple[int, ...], tuple[tuple[str, int], ...]]


class SeriesRing:
    """Bounded ring of deterministic sample rows plus wall stamps."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"series capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.rows: deque[Row] = deque(maxlen=self.capacity)
        self.walls: deque[float] = deque(maxlen=self.capacity)
        self.recorded = 0

    def record(self, cycle: int, occupancy: int, free: int,
               queue_depths: Sequence[int],
               drop_taxonomy: dict[str, int]) -> None:
        self.rows.append((cycle, occupancy, free, tuple(queue_depths),
                          tuple(sorted(drop_taxonomy.items()))))
        self.walls.append(time.perf_counter())
        self.recorded += 1

    def __len__(self) -> int:
        return len(self.rows)

    def latest(self) -> Row | None:
        return self.rows[-1] if self.rows else None

    # -- export views -------------------------------------------------------
    def _dicts(self, include_rates: bool) -> Iterable[dict[str, object]]:
        prev_cycle: int | None = None
        prev_wall = 0.0
        for row, wall in zip(self.rows, self.walls):
            cycle, occ, free, depths, tax = row
            d: dict[str, object] = {
                "cycle": cycle,
                "occupancy": occ,
                "free": free,
                "queue_depth": list(depths),
                "drops": dict(tax),
            }
            if include_rates:
                rate = None
                if prev_cycle is not None and wall > prev_wall:
                    rate = (cycle - prev_cycle) / (wall - prev_wall)
                d["cycles_per_sec"] = rate
            prev_cycle, prev_wall = cycle, wall
            yield d

    def to_jsonl(self, *, include_rates: bool = False) -> str:
        """One JSON object per retained row, oldest first.

        ``include_rates`` adds a wall-clock-derived ``cycles_per_sec``
        column — keep it off for artifacts that must be deterministic.
        """
        return "".join(
            json.dumps(d, separators=(",", ":")) + "\n"
            for d in self._dicts(include_rates)
        )

    def to_csv(self, *, include_rates: bool = False) -> str:
        """CSV with one column per port queue and per seen drop cause."""
        rows = list(self.rows)
        n_ports = max((len(r[3]) for r in rows), default=0)
        causes = sorted({c for r in rows for c, _ in r[4]})
        header = ["cycle", "occupancy", "free"]
        header += [f"qdepth_{i}" for i in range(n_ports)]
        header += [f"drops_{c}" for c in causes]
        if include_rates:
            header.append("cycles_per_sec")
        lines = [",".join(header)]
        for d in self._dicts(include_rates):
            depths = d["queue_depth"]
            tax = d["drops"]
            cells = [str(d["cycle"]), str(d["occupancy"]), str(d["free"])]
            cells += [str(depths[i]) if i < len(depths) else ""
                      for i in range(n_ports)]
            cells += [str(tax.get(c, 0)) for c in causes]
            if include_rates:
                rate = d["cycles_per_sec"]
                cells.append("" if rate is None else f"{rate:.3f}")
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def summary(self) -> dict[str, object]:
        """Deterministic roll-up for run reports."""
        if not self.rows:
            return {"recorded": self.recorded, "retained": 0,
                    "capacity": self.capacity}
        occs = [r[1] for r in self.rows]
        return {
            "recorded": self.recorded,
            "retained": len(self.rows),
            "capacity": self.capacity,
            "occupancy_mean": sum(occs) / len(occs),
            "occupancy_peak": max(occs),
            "last_cycle": self.rows[-1][0],
        }

    # -- checkpoint codec ---------------------------------------------------
    def state(self) -> dict[str, object]:
        """Snapshot document body (wall stamps kept so a restored ring
        exports the same retained rows; they stay out of fingerprints)."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "rows": [[c, occ, free, list(depths), [list(t) for t in tax]]
                     for c, occ, free, depths, tax in self.rows],
            "walls": list(self.walls),
        }

    @classmethod
    def from_state(cls, doc: dict) -> "SeriesRing":
        ring = cls(doc["capacity"])
        for (c, occ, free, depths, tax), wall in zip(doc["rows"],
                                                     doc["walls"]):
            ring.rows.append((c, occ, free, tuple(depths),
                              tuple((str(k), int(v)) for k, v in tax)))
            ring.walls.append(float(wall))
        ring.recorded = int(doc["recorded"])
        return ring
