"""Two-memory split pipelined buffer: half-quantum packets (paper §3.5).

The straightforward pipelined memory requires the packet size to equal the
total buffer width — ``2n`` words for an ``n x n`` switch.  Section 3.5 shows
how to handle packets of *half* that size: build the shared buffer as **two**
pipelined memories of ``n`` stages each.  Packets are ``n`` words; each packet
lives entirely in one memory.  In each cycle one departure wave may initiate
from whichever memory holds the wanted packet, and one store wave may
initiate *into the other memory* — so the aggregate initiation rate doubles,
exactly covering the doubled packet rate (one packet per ``n`` cycles per
link).

The model enforces the paper's discipline: at most one initiation per memory
per cycle, at most one departure overall, at most one store overall; a
cut-through wave (store + depart combined) fills both roles in one memory.
Bank-port guards and output-register double-load checks are inherited from
the single-memory components.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.core.arbiter import WriteRequest
from repro.core.bank import MemoryBank
from repro.core.control import ControlPipeline, ControlWord, WaveOp
from repro.core.latches import InputLatchRow, OutputRegisterRow
from repro.core.errors import ConfigError
from repro.core.sources import PacketSink, PacketSource, deterministic_payload
from repro.sim.packet import Packet, Word
from repro.sim.stats import Counter, SwitchStats


@dataclass(slots=True)
class SplitBufferConfig:
    """Configuration: ``n x n`` switch, packets of ``n`` words, two memories
    of ``addresses_each`` packets each."""

    n: int
    addresses_each: int = 128
    width_bits: int = 16

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigError(f"need n >= 2, got {self.n}")
        if self.addresses_each < 1:
            raise ConfigError(f"need >= 1 address per memory, got {self.addresses_each}")

    @property
    def packet_words(self) -> int:
        return self.n  # half the 2n quantum

    @property
    def buffer_bits(self) -> int:
        return 2 * self.n * self.addresses_each * self.width_bits


@dataclass(slots=True)
class _Record:
    uid: int
    src: int
    dst: int
    mem: int  # 0 or 1
    addr: int
    arrival_cycle: int
    write_init: int


@dataclass(slots=True)
class _SplitInput:
    incoming: Packet | None = None
    next_word: int = 0
    pending: WriteRequest | None = None
    discard_current: bool = False


class SplitPipelinedBuffer:
    """An ``n x n`` switch over two half-depth pipelined memories (§3.5)."""

    def __init__(self, config: SplitBufferConfig, source: PacketSource) -> None:
        if source.n_out != config.n or source.packet_words != config.packet_words:
            raise ConfigError("source/switch shape mismatch")
        self.config = config
        self.source = source
        n = config.n
        self.banks = [
            [
                MemoryBank(config.addresses_each, config.width_bits, name=f"M{m}.{k}")
                for k in range(n)
            ]
            for m in range(2)
        ]
        self.control = [ControlPipeline(n) for _ in range(2)]
        self.in_latches = [InputLatchRow(i, n) for i in range(n)]
        self.out_rows = [OutputRegisterRow(n) for _ in range(2)]
        self.free = [deque(range(config.addresses_each)) for _ in range(2)]
        self.queues: list[deque[_Record]] = [deque() for _ in range(n)]
        self.sinks = [PacketSink(j, n) for j in range(n)]
        self._departing: list[dict[int, _Record]] = [{}, {}]
        self._sent: dict[int, Packet] = {}
        self._inputs = [_SplitInput() for _ in range(n)]
        self.next_wave_ok = [0] * n
        self.cycle = 0
        self.stats = SwitchStats(n_outputs=n)
        self.ct_latency = Counter()
        self.cut_through_waves = 0
        self.plain_read_waves = 0
        self.write_waves = 0
        self.drops = 0

    # -- public API ---------------------------------------------------------
    @property
    def warmup(self) -> int:
        return self.stats.warmup

    @warmup.setter
    def warmup(self, cycles: int) -> None:
        self.stats.warmup = cycles

    def run(self, cycles: int) -> SwitchStats:
        for _ in range(cycles):
            self.tick()
        return self.stats

    def occupancy(self) -> int:
        return sum(
            self.config.addresses_each - len(f) for f in self.free
        )

    @property
    def link_utilization(self) -> float:
        cycles = self.stats.measured_slots
        if cycles <= 0:
            return math.nan
        return self.stats.delivered * self.config.n / (cycles * self.config.n)

    # -- one cycle ------------------------------------------------------------
    def tick(self) -> None:
        t = self.cycle
        self._deliver(t)
        for cp in self.control:
            cp.advance()
        self._arbitrate(t)
        self._execute(t)
        self._arrivals(t)
        for row in self.out_rows:
            row.commit()
        self.cycle = t + 1
        self.stats.horizon = self.cycle

    # -- phase 1: outputs -------------------------------------------------------
    def _deliver(self, t: int) -> None:
        n = self.config.n
        for row in self.out_rows:
            for k in range(n):
                driving = row.driving(k)
                if driving is None:
                    continue
                word, link = driving
                self.sinks[link].deliver(t, word.packet_uid, word.index, word.payload)
                if word.index == n - 1:
                    self._complete(t, link, word.packet_uid)

    def _complete(self, t: int, link: int, uid: int) -> None:
        packet = self._sent.pop(uid, None)
        if packet is None:
            raise AssertionError(f"unknown packet {uid} delivered")
        sent_uid, head_cycle, payload = self.sinks[link].delivered[-1]
        if sent_uid != uid or payload != packet.payload or packet.dst != link:
            raise AssertionError(f"split buffer corrupted packet {uid}")
        packet.depart_first_cycle = head_cycle
        packet.depart_last_cycle = t
        self.stats.record_departure(link, packet.arrival_cycle, head_cycle)
        if packet.arrival_cycle >= self.stats.warmup:
            self.ct_latency.add(packet.cut_through_latency)

    # -- phase 2: arbitration ------------------------------------------------------
    def _arbitrate(self, t: int) -> None:
        n = self.config.n
        used_mem = [False, False]
        departed = False
        stored: WriteRequest | None = None

        # Departure role: round-robin over free outputs with queued packets;
        # else a cut-through candidate (combined wave).
        for off in range(n):
            j = (t + off) % n
            if self.next_wave_ok[j] > t:
                continue
            if self.queues[j]:
                rec = self.queues[j].popleft()
                self.control[rec.mem].initiate(
                    ControlWord(WaveOp.READ, rec.addr, out_link=j, packet_uid=rec.uid)
                )
                self._departing[rec.mem][rec.addr] = rec
                used_mem[rec.mem] = True
                self.next_wave_ok[j] = t + n
                self.plain_read_waves += 1
                departed = True
                break
        if not departed:
            ct = self._ct_candidate(t)
            if ct is not None:
                w, mem = ct
                rec = self._allocate(mem, w, t)
                self.control[mem].initiate(
                    ControlWord(
                        WaveOp.WRITE_CT, rec.addr, in_link=w.in_link,
                        out_link=w.dst, packet_uid=w.uid,
                    )
                )
                self._departing[mem][rec.addr] = rec
                used_mem[mem] = True
                self.next_wave_ok[w.dst] = t + n
                self._inputs[w.in_link].pending = None
                self.stats.record_accept(w.arrival_cycle)
                self.cut_through_waves += 1
                stored = w  # fills the store role too

        # Store role: earliest-deadline pending write into a free memory.
        if stored is None:
            writes = [
                s.pending
                for s in self._inputs
                if s.pending is not None and s.pending.earliest <= t
            ]
            if writes:
                w = min(writes, key=lambda w: (w.arrival_cycle, w.in_link))
                mem = self._pick_store_memory(used_mem)
                if mem is not None:
                    rec = self._allocate(mem, w, t)
                    self.control[mem].initiate(
                        ControlWord(
                            WaveOp.WRITE, rec.addr, in_link=w.in_link,
                            packet_uid=w.uid,
                        )
                    )
                    self.queues[w.dst].append(rec)
                    self._inputs[w.in_link].pending = None
                    self.stats.record_accept(w.arrival_cycle)
                    self.write_waves += 1

    def _ct_candidate(self, t: int) -> tuple[WriteRequest, int] | None:
        best: WriteRequest | None = None
        for s in self._inputs:
            w = s.pending
            if w is None or w.earliest > t:
                continue
            if self.next_wave_ok[w.dst] > t or self.queues[w.dst]:
                continue
            if best is None or w.arrival_cycle < best.arrival_cycle:
                best = w
        if best is None:
            return None
        mem = self._pick_store_memory([False, False])
        if mem is None:
            return None
        return best, mem

    def _pick_store_memory(self, used: list[bool]) -> int | None:
        """Free memory with a spare address; prefer the emptier one."""
        options = [
            m for m in range(2) if not used[m] and self.free[m]
        ]
        if not options:
            return None
        return max(options, key=lambda m: len(self.free[m]))

    def _allocate(self, mem: int, w: WriteRequest, t: int) -> _Record:
        addr = self.free[mem].popleft()
        return _Record(
            uid=w.uid, src=w.in_link, dst=w.dst, mem=mem, addr=addr,
            arrival_cycle=w.arrival_cycle, write_init=t,
        )

    # -- phase 3: execute ------------------------------------------------------------
    def _execute(self, t: int) -> None:
        n = self.config.n
        for m in range(2):
            for k, cw in self.control[m].active():
                bank = self.banks[m][k]
                if cw.op in (WaveOp.WRITE, WaveOp.WRITE_CT):
                    word = self.in_latches[cw.in_link].consume(k)
                    if word.packet_uid != cw.packet_uid:
                        raise AssertionError(
                            f"memory {m} stage {k}: latch overrun undetected"
                        )
                    bank.write(t, cw.addr, word)
                    if cw.op is WaveOp.WRITE_CT:
                        self.out_rows[m].load(k, word, cw.out_link)
                else:
                    word = bank.read(t, cw.addr)
                    self.out_rows[m].load(k, word, cw.out_link)
                if k == n - 1:
                    if cw.op is WaveOp.WRITE:
                        # Store completed: the packet is now departure-ready.
                        pass
                    else:
                        rec = self._departing[m].pop(cw.addr)
                        self.free[m].append(rec.addr)

    # -- phase 4: arrivals --------------------------------------------------------------
    def _arrivals(self, t: int) -> None:
        n = self.config.n
        for i, state in enumerate(self._inputs):
            if state.incoming is None:
                dst = self.source.maybe_start(t, i)
                if dst is None:
                    continue
                if state.pending is not None:
                    self._drop(t, i, state.pending)
                pkt = Packet(src=i, dst=dst, payload=(), arrival_cycle=t)
                pkt.payload = deterministic_payload(pkt.uid, n, self.config.width_bits)
                state.incoming = pkt
                state.next_word = 0
                state.discard_current = False
                state.pending = WriteRequest(
                    in_link=i, dst=dst, uid=pkt.uid, arrival_cycle=t
                )
                self._sent[pkt.uid] = pkt
                self.stats.record_offer(t)
            pkt = state.incoming
            assert pkt is not None
            k = state.next_word
            self.in_latches[i].load(k, Word(pkt.uid, k, pkt.payload[k]))
            if state.discard_current:
                self.in_latches[i].discard(k)
            state.next_word = k + 1
            if state.next_word == n:
                state.incoming = None
                state.next_word = 0
                state.discard_current = False

    def _drop(self, t: int, i: int, w: WriteRequest) -> None:
        state = self._inputs[i]
        state.pending = None
        self.stats.record_drop(w.arrival_cycle)
        self.drops += 1
        self._sent.pop(w.uid, None)
        arrived = min(t - w.arrival_cycle, self.config.n)
        for k in range(arrived):
            self.in_latches[i].discard(k)
