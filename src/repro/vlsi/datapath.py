"""Peripheral-datapath area model (paper §4.4, figure 8, §5.2).

In the Telegraphos III floorplan the input/output link datapath lies *under*
the horizontal link wires: "the area of this block approaches the minimum
possible area of a crossbar, since every crossbar has to have at least the
data wires" (§4.4).  The model therefore prices the peripheral block as

    width  = (buffer width in bit columns) x bit pitch
    height = (number of horizontal link wires) x wire pitch

with the active circuits (input latches, output registers, tristate drivers,
control pipeline registers) hidden under the wires in full custom, and a
calibrated linear density penalty in standard cell.

Wire counts per organization:

* **pipelined** (figure 4): n incoming + n outgoing links of w wires each
  => ``2 n w`` wires.  Peripheral area grows with the *square* of the number
  of links (both dimensions are proportional to n w) — the paper's scaling
  remark, and the source of the 18x standard-cell blow-up at 8x8.
* **wide memory** (figure 3): the same 2 n w link wires *plus* a dedicated
  n w cut-through bus layer (the extra tristate drivers, bus wires and
  output crossbar), and a second row of input latches — modeled as a 3/2
  height factor.  This regenerates §5.2's 13 mm^2 vs 9 mm^2 (~30 % smaller).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vlsi.technology import Technology


@dataclass(frozen=True, slots=True)
class DatapathArea:
    """Peripheral datapath block dimensions and area."""

    width_mm: float
    height_mm: float
    area_mm2: float
    wire_count: int


def peripheral_width_mm(tech: Technology, total_width_bits: int) -> float:
    """Datapath width: it must span the full buffer width."""
    return total_width_bits * tech.datapath_bit_pitch_um() / 1e3


def pipelined_peripheral_area(
    tech: Technology, n: int, width_bits: int, depth: int | None = None
) -> DatapathArea:
    """Peripheral datapath of the pipelined shared buffer (figure 8)."""
    b = 2 * n if depth is None else depth
    wires = 2 * n * width_bits
    width = peripheral_width_mm(tech, b * width_bits)
    height = wires * tech.wire_pitch_um() / 1e3
    return DatapathArea(width, height, width * height, wires)


def wide_peripheral_area(
    tech: Technology, n: int, width_bits: int, depth: int | None = None
) -> DatapathArea:
    """Peripheral datapath of the wide-memory organization (figure 3).

    The extra cut-through buses/crossbar and the input double-buffering add
    one n*w wire layer: height factor 3/2 over the pipelined organization.
    """
    base = pipelined_peripheral_area(tech, n, width_bits, depth)
    wires = base.wire_count + n * width_bits
    height = base.height_mm * 1.5
    return DatapathArea(base.width_mm, height, base.width_mm * height, wires)


def input_buffer_peripheral_area(
    tech: Technology, n: int, width_bits: int
) -> DatapathArea:
    """§5.1: the single w-bit n x n crossbar of an input-buffered switch,
    pitch-matched to the input buffers (size ~ 2nw x nw)."""
    width = peripheral_width_mm(tech, 2 * n * width_bits)
    wires = n * width_bits
    height = wires * tech.wire_pitch_um() / 1e3
    return DatapathArea(width, height, width * height, wires)
