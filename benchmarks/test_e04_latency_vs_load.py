"""E4 — Latency: scheduled input buffering vs output/shared queueing
(paper §2.2, [AOST93 fig 3]).

Paper quote: "the simulations in [AOST93, fig. 3] showed output queueing (or
equivalently shared buffering) to be about twice faster than input buffering,
under the particular scheduling algorithm that that paper uses, for link
loads between 0.6 and 0.9."

We regenerate the latency-vs-load series for a 16x16 switch: VOQ + PIM (the
AN2 scheduler of [AOST93]) against output queueing and the shared buffer.
"""

from conftest import show

from repro.switches import OutputQueued, PIM, SharedBuffer, VoqInputBuffered
from repro.switches.harness import format_table, latency_vs_load, uniform_source_factory

LOADS = [0.5, 0.6, 0.7, 0.8, 0.9]


def _experiment():
    n = 16
    f = uniform_source_factory(n, n)
    slots = 25_000
    voq = latency_vs_load(
        lambda: VoqInputBuffered(n, n, PIM(iterations=4, seed=1)), f, LOADS, slots=slots
    )
    oq = latency_vs_load(lambda: OutputQueued(n, n, seed=2), f, LOADS, slots=slots)
    sh = latency_vs_load(lambda: SharedBuffer(n, n, seed=3), f, LOADS, slots=slots)
    return voq, oq, sh


def test_e04_latency_vs_load(run_once):
    voq, oq, sh = run_once(_experiment)
    rows = [
        [load, d_voq, d_oq, d_sh, d_voq / d_oq if d_oq else float("nan")]
        for (load, d_voq), (_, d_oq), (_, d_sh) in zip(voq, oq, sh)
    ]
    show(
        format_table(
            ["load", "VOQ+PIM delay", "output-queued", "shared", "ratio VOQ/OQ"],
            rows,
            title="E4: mean delay (slots) vs load, 16x16 [AOST93 fig 3]",
        )
    )
    # Output queueing and shared buffering are equivalent here:
    for (_, d_oq), (_, d_sh) in zip(oq, sh):
        assert abs(d_oq - d_sh) < max(0.3, 0.15 * d_oq)
    # The paper's "about twice faster" in the 0.6-0.9 band:
    band = [r for r in rows if 0.6 <= r[0] <= 0.9]
    ratios = [r[4] for r in band]
    assert all(ratio > 1.4 for ratio in ratios)
    assert any(ratio > 1.8 for ratio in ratios)
