"""Tests for the output-queue delay distribution model."""

import numpy as np
import pytest

from repro.analysis.delay_distribution import (
    batch_position_pmf,
    delay_pmf,
    delay_quantile,
    mean_delay,
)
from repro.analysis.queueing import output_queue_wait


def test_batch_position_pmf_normalized():
    u = batch_position_pmf(8, 0.7)
    assert u.sum() == pytest.approx(1.0)
    assert (u >= 0).all()
    # positions are more likely small (size-biased but front-loaded)
    assert u[0] == max(u)


def test_batch_position_requires_load():
    with pytest.raises(ValueError):
        batch_position_pmf(8, 0.0)


@pytest.mark.parametrize("n,p", [(4, 0.5), (8, 0.8), (16, 0.9)])
def test_mean_matches_closed_form(n, p):
    assert mean_delay(n, p) == pytest.approx(output_queue_wait(n, p), rel=1e-3)


def test_quantiles_monotone_in_load():
    p99 = [delay_quantile(8, p, 0.99) for p in (0.5, 0.7, 0.9)]
    assert p99 == sorted(p99)
    assert p99[0] < p99[-1]


def test_quantile_validation():
    with pytest.raises(ValueError):
        delay_quantile(8, 0.5, 0.0)


def test_distribution_matches_simulation():
    """Simulated delay histogram vs analytic PMF (same conventions)."""
    from repro.switches import OutputQueued
    from repro.traffic import BernoulliUniform

    n, p = 8, 0.8
    sw = OutputQueued(n, n, warmup=3000, seed=1)
    sw.run(BernoulliUniform(n, n, p, seed=2), 120_000)
    sim = sw.stats.delay_hist.pmf()
    ana = delay_pmf(n, p)
    for d in range(8):
        assert sim.get(d, 0.0) == pytest.approx(float(ana[d]), abs=0.02)
    assert sw.stats.delay_hist.quantile(0.99) == pytest.approx(
        delay_quantile(n, p, 0.99), abs=2
    )


def test_pmf_sums_to_one():
    d = delay_pmf(8, 0.6)
    assert d.sum() == pytest.approx(1.0)
    assert (np.diff(np.cumsum(d)) >= -1e-15).all()
