#!/usr/bin/env python3
"""Quickstart: build a pipelined-memory shared-buffer switch and drive it.

Creates the paper's flagship configuration (Telegraphos III: 8x8 links,
16-bit words, 16 pipeline stages, 256-packet shared buffer), offers uniform
random traffic at 60 % load, and prints the delivery/latency statistics.

Run:  python examples/quickstart.py
"""

from repro.core import PipelinedSwitch, PipelinedSwitchConfig, RenewalPacketSource

def main() -> None:
    # An 8x8 switch: 2n = 16 memory banks, packets of 16 x 16-bit words,
    # a shared buffer of 256 packets (= 64 Kbit), automatic cut-through.
    config = PipelinedSwitchConfig(n=8, addresses=256, width_bits=16)
    print(f"switch: {config.n}x{config.n}, {config.depth} pipeline stages, "
          f"{config.addresses} packets x {config.depth * config.width_bits} bits "
          f"({config.buffer_bits // 1024} Kbit shared buffer)")

    # Uniform random traffic at 60% link load, matching the paper's §3.4
    # traffic model (independent links, geometric gaps, uniform destinations).
    source = RenewalPacketSource(
        n_out=config.n,
        packet_words=config.packet_words,
        load=0.6,
        seed=42,
    )

    switch = PipelinedSwitch(config, source)
    switch.warmup = 5_000  # cycles excluded from the statistics
    switch.run(100_000)
    switch.drain()  # deliver everything still in flight

    stats = switch.stats
    print(f"\noffered packets:    {stats.offered}")
    print(f"delivered packets:  {stats.delivered}  (every payload verified)")
    print(f"dropped packets:    {stats.dropped}")
    print(f"link utilization:   {switch.link_utilization:.3f}")
    print(f"cut-through waves:  {switch.cut_through_waves} "
          f"({switch.cut_through_waves / stats.delivered:.0%} of departures)")
    print(f"mean cut-through latency: {switch.ct_latency.mean:.2f} cycles "
          f"(minimum possible: 2)")
    print(f"p99 cut-through latency:  {switch.ct_latency_hist.quantile(0.99)} cycles")


if __name__ == "__main__":
    main()
