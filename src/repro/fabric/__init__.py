"""Multistage fabrics built from single-chip switch elements (paper intro)."""

from repro.fabric.multistage import FabricCell, OmegaFabric, perfect_shuffle

__all__ = ["OmegaFabric", "FabricCell", "perfect_shuffle"]
