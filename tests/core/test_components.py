"""Unit tests for the RTL-flavoured core components: banks, buses, latches,
control pipeline."""

import pytest

from repro.core.bank import BankConflictError, MemoryBank
from repro.core.bus import Bus, BusContentionError
from repro.core.control import ControlPipeline, ControlWord, WaveOp
from repro.core.latches import InputLatchRow, LatchOverrunError, OutputRegisterRow
from repro.sim.packet import Word


class TestMemoryBank:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBank(0, 16)
        with pytest.raises(ValueError):
            MemoryBank(8, 0)

    def test_write_then_read(self):
        b = MemoryBank(4, 16)
        w = Word(1, 0, 0xBEEF)
        b.write(0, 2, w)
        assert b.read(1, 2) is w

    def test_single_port_guard(self):
        b = MemoryBank(4, 16)
        b.write(5, 0, Word(1, 0, 1))
        with pytest.raises(BankConflictError):
            b.read(5, 0)

    def test_time_must_be_monotonic(self):
        b = MemoryBank(4, 16)
        b.write(5, 0, Word(1, 0, 1))
        with pytest.raises(ValueError):
            b.write(4, 1, Word(1, 1, 2))

    def test_address_range_checked(self):
        b = MemoryBank(4, 16)
        with pytest.raises(IndexError):
            b.write(0, 4, Word(1, 0, 1))

    def test_read_of_unwritten_address_raises(self):
        b = MemoryBank(4, 16)
        with pytest.raises(ValueError):
            b.read(0, 1)

    def test_access_counters(self):
        b = MemoryBank(4, 16)
        b.write(0, 0, Word(1, 0, 1))
        b.read(1, 0)
        assert b.writes == 1 and b.reads == 1

    def test_capacity_bits(self):
        assert MemoryBank(256, 16).capacity_bits == 4096


class TestBus:
    def test_drive_and_sample(self):
        bus = Bus("b")
        w = Word(1, 0, 7)
        bus.drive(3, w, "latch")
        assert bus.sample(3) is w

    def test_contention_detected(self):
        bus = Bus("b")
        bus.drive(3, Word(1, 0, 7), "latch0")
        with pytest.raises(BusContentionError):
            bus.drive(3, Word(2, 0, 8), "latch1")

    def test_floating_bus_sample_raises(self):
        bus = Bus("b")
        with pytest.raises(BusContentionError):
            bus.sample(0)
        bus.drive(0, Word(1, 0, 7), "x")
        with pytest.raises(BusContentionError):
            bus.sample(1)  # stale value from cycle 0

    def test_new_cycle_new_driver_ok(self):
        bus = Bus("b")
        bus.drive(0, Word(1, 0, 7), "a")
        bus.drive(1, Word(2, 0, 8), "b")
        assert bus.sample(1).payload == 8


class TestControlWord:
    def test_write_needs_in_link(self):
        with pytest.raises(ValueError):
            ControlWord(WaveOp.WRITE, addr=0)

    def test_read_needs_out_link(self):
        with pytest.raises(ValueError):
            ControlWord(WaveOp.READ, addr=0)

    def test_read_must_not_name_in_link(self):
        with pytest.raises(ValueError):
            ControlWord(WaveOp.READ, addr=0, in_link=1, out_link=0)

    def test_write_ct_needs_both(self):
        cw = ControlWord(WaveOp.WRITE_CT, addr=3, in_link=1, out_link=2)
        assert cw.in_link == 1 and cw.out_link == 2


class TestControlPipeline:
    def test_stage_k_is_delayed_stage_0(self):
        """Figure 5's defining property: stage k control = stage 0 control
        delayed k cycles."""
        cp = ControlPipeline(4)
        words = [
            ControlWord(WaveOp.WRITE, addr=a, in_link=0, packet_uid=a)
            for a in range(6)
        ]
        history = []
        for t, w in enumerate(words):
            cp.advance()
            cp.initiate(w)
            history.append([cp.stage(k) for k in range(4)])
        for t in range(len(words)):
            for k in range(4):
                expected = words[t - k] if t - k >= 0 else None
                assert history[t][k] is expected

    def test_single_initiation_per_cycle(self):
        cp = ControlPipeline(2)
        cp.advance()
        cp.initiate(ControlWord(WaveOp.READ, addr=0, out_link=0))
        with pytest.raises(ValueError):
            cp.initiate(ControlWord(WaveOp.READ, addr=1, out_link=1))

    def test_idle_and_active(self):
        cp = ControlPipeline(3)
        assert cp.idle()
        cp.advance()
        cp.initiate(ControlWord(WaveOp.READ, addr=0, out_link=0))
        assert not cp.idle()
        assert [k for k, _ in cp.active()] == [0]
        for _ in range(3):
            cp.advance()
        assert cp.idle()


class TestInputLatchRow:
    def test_load_consume_cycle(self):
        row = InputLatchRow(0, 4)
        w = Word(1, 2, 5)
        row.load(2, w)
        assert row.live_words() == 1
        assert row.consume(2) is w
        assert row.live_words() == 0

    def test_overrun_detected(self):
        """The paper's §3.2 invariant: the write wave must consume a latch
        before the next packet's word overwrites it."""
        row = InputLatchRow(0, 4)
        row.load(0, Word(1, 0, 5))
        with pytest.raises(LatchOverrunError):
            row.load(0, Word(2, 0, 6))

    def test_reload_after_consume_ok(self):
        row = InputLatchRow(0, 4)
        row.load(0, Word(1, 0, 5))
        row.consume(0)
        row.load(0, Word(2, 0, 6))  # no raise

    def test_discard_clears_liveness(self):
        row = InputLatchRow(0, 2)
        row.load(1, Word(1, 1, 5))
        row.discard(1)
        row.load(1, Word(2, 1, 6))  # no raise

    def test_consume_empty_raises(self):
        with pytest.raises(ValueError):
            InputLatchRow(0, 2).consume(0)

    def test_bad_column_raises(self):
        with pytest.raises(IndexError):
            InputLatchRow(0, 2).load(5, Word(1, 0, 1))


class TestOutputRegisterRow:
    def test_one_cycle_skew(self):
        row = OutputRegisterRow(2)
        w = Word(1, 0, 9)
        row.load(0, w, out_link=1)
        assert row.driving(0) is None  # not yet committed
        row.commit()
        assert row.driving(0) == (w, 1)
        row.commit()
        assert row.driving(0) is None  # held one cycle only

    def test_double_load_detected(self):
        row = OutputRegisterRow(2)
        row.load(0, Word(1, 0, 1), 0)
        with pytest.raises(LatchOverrunError):
            row.load(0, Word(2, 0, 2), 1)
