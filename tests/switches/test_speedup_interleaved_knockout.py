"""Tests for speedup, interleaved (PRIZMA), and knockout architectures."""

import pytest

from repro.analysis.hol import KAROL_TABLE
from repro.analysis.knockout import knockout_loss
from repro.switches import (
    InterleavedSharedBuffer,
    KnockoutSwitch,
    SharedBuffer,
    SpeedupSwitch,
)
from repro.traffic import BernoulliUniform, TraceSource, record_trace


class TestSpeedup:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpeedupSwitch(4, 4, speedup=0)

    def test_speedup1_suffers_hol(self):
        sw = SpeedupSwitch(8, 8, speedup=1, warmup=2000, seed=1)
        stats = sw.run(BernoulliUniform(8, 8, 1.0, seed=2), 20_000)
        assert stats.throughput == pytest.approx(KAROL_TABLE[8], abs=0.02)

    def test_speedup2_near_full_throughput(self):
        """[PaBr93] / §2.1: a doubled internal fabric ~ eliminates HoL loss."""
        sw = SpeedupSwitch(8, 8, speedup=2, warmup=2000, seed=3)
        stats = sw.run(BernoulliUniform(8, 8, 1.0, seed=4), 20_000)
        assert stats.throughput > 0.95

    def test_throughput_monotonic_in_speedup(self):
        results = []
        for s in (1, 2, 4):
            sw = SpeedupSwitch(8, 8, speedup=s, warmup=1500, seed=5)
            stats = sw.run(BernoulliUniform(8, 8, 1.0, seed=6), 12_000)
            results.append(stats.throughput)
        assert results[0] < results[1] <= results[2] + 0.02

    def test_output_backpressure(self):
        sw = SpeedupSwitch(2, 2, speedup=2, output_capacity=1, seed=7)
        sw.run(BernoulliUniform(2, 2, 1.0, seed=8), 2000)
        for q in sw.out_queues:
            assert len(q) <= 1


class TestInterleaved:
    def test_validation(self):
        with pytest.raises(ValueError):
            InterleavedSharedBuffer(4, 4, m_banks=0)
        with pytest.raises(ValueError):
            InterleavedSharedBuffer(4, 4, m_banks=8, cells_per_bank=0)

    def test_small_bank_count_loses_more_than_ideal_sharing(self):
        """With few banks, single-ported-bank write blocking bites: a bank
        being read this slot cannot also accept a write, so the interleaved
        buffer loses *more* than an ideal shared pool of the same capacity —
        a real cost of the PRIZMA organization at small M."""
        n, m = 4, 12
        trace = record_trace(BernoulliUniform(n, n, 0.95, seed=9), 15_000)
        il = InterleavedSharedBuffer(n, n, m_banks=m, warmup=500, seed=10)
        sh = SharedBuffer(n, n, capacity=m, warmup=500, seed=10)
        loss_il = il.run(TraceSource(trace, n), 15_000).loss_probability
        loss_sh = sh.run(TraceSource(trace, n), 15_000).loss_probability
        assert loss_il > loss_sh
        assert il.read_conflicts == 0  # single-cell banks cannot read-conflict

    def test_large_bank_count_converges_to_ideal_sharing(self):
        """At M >> 2n (the PRIZMA/Telegraphos regime) the port-blocking
        effect vanishes and loss matches the ideal shared pool."""
        n, m = 4, 48
        trace = record_trace(BernoulliUniform(n, n, 1.0, seed=23), 15_000)
        il = InterleavedSharedBuffer(n, n, m_banks=m, warmup=500, seed=24)
        sh = SharedBuffer(n, n, capacity=m, warmup=500, seed=24)
        loss_il = il.run(TraceSource(trace, n), 15_000).loss_probability
        loss_sh = sh.run(TraceSource(trace, n), 15_000).loss_probability
        assert loss_il == pytest.approx(loss_sh, rel=0.25, abs=0.01)

    def test_full_throughput(self):
        sw = InterleavedSharedBuffer(8, 8, m_banks=128, warmup=1000, seed=11)
        stats = sw.run(BernoulliUniform(8, 8, 1.0, seed=12), 12_000)
        assert stats.throughput == pytest.approx(1.0, abs=0.03)

    def test_multi_cell_banks_cause_read_conflicts(self):
        """§5.3: 'more than one packets per bank ... may hurt performance'."""
        sw = InterleavedSharedBuffer(
            8, 8, m_banks=8, cells_per_bank=16, warmup=500, seed=13
        )
        sw.run(BernoulliUniform(8, 8, 1.0, seed=14), 8000)
        assert sw.read_conflicts > 0

    def test_bank_occupancy_bounds(self):
        sw = InterleavedSharedBuffer(4, 4, m_banks=6, cells_per_bank=2, seed=15)
        sw.run(BernoulliUniform(4, 4, 1.0, seed=16), 2000)
        assert all(0 <= occ <= 2 for occ in sw.bank_occ)


class TestKnockout:
    def test_validation(self):
        with pytest.raises(ValueError):
            KnockoutSwitch(4, 4, l_paths=0)

    def test_loss_matches_analysis(self):
        """Simulated knockout loss tracks E[(X-L)+]/E[X] from [YeHA87]."""
        n, p, l_paths = 16, 1.0, 2
        sw = KnockoutSwitch(n, n, l_paths=l_paths, warmup=500, seed=17)
        stats = sw.run(BernoulliUniform(n, n, p, seed=18), 30_000)
        assert stats.loss_probability == pytest.approx(
            knockout_loss(n, p, l_paths), rel=0.1
        )

    def test_l8_loss_negligible(self):
        """[YeHA87]: L = 8 keeps knockout loss ~1e-6 even at full load."""
        sw = KnockoutSwitch(16, 16, l_paths=8, warmup=500, seed=19)
        stats = sw.run(BernoulliUniform(16, 16, 1.0, seed=20), 30_000)
        assert stats.loss_probability < 1e-3  # sim resolution bound
        assert knockout_loss(16, 1.0, 8) < 2e-6

    def test_no_knockout_when_l_equals_n(self):
        sw = KnockoutSwitch(4, 4, l_paths=4, seed=21)
        sw.run(BernoulliUniform(4, 4, 1.0, seed=22), 3000)
        assert sw.knockout_drops == 0
