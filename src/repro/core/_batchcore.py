"""Array-resident batch core: the optional JIT tier of the batch kernel.

This module holds a numba-compilable reformulation of the batch kernel's
dominant shape — single-quantum cut-through with telemetry off — working
purely on ``int64`` scalars and numpy arrays: no tuples, dicts, deques or
sets in the hot loop, so :func:`numba.njit` can compile it unchanged.

Design contract (mirrors ``repro.core.batchpath``):

* ``advance_window(switch, stop, ...)`` is a drop-in replacement for the
  scalar engines.  It marshals the switch state into flat arrays, runs
  :func:`_kernel` over the window, and writes the state back.
* Consequences that involve Python containers are *logged*, not applied:
  departures append to ``switch._pending_departures`` (replayed by
  ``_flush`` in tail order, bit-identically), and unobstructed-set
  add/discard events are replayed onto ``switch._unobstructed`` in kernel
  order.  Equivalence with the scalar engines is therefore structural,
  not approximate.
* When numba is missing the same kernel runs uncompiled
  (``NUMBA_AVAILABLE`` is False and :func:`njit` degrades to the identity
  decorator): identical results, no hard dependency — just slower, which
  callers surface as the ``"unavailable"`` JIT state.

The kernel steps cycle by cycle (no idle skip): compiled, the plain loop
is far cheaper than interpreter dispatch; uncompiled it is only used for
equivalence testing and graceful fallback.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, TypeVar

import numpy as np

if TYPE_CHECKING:
    from repro.core.batchpath import BatchPipelinedSwitch

F = TypeVar("F", bound=Callable[..., Any])

try:
    from numba import njit as _numba_njit  # type: ignore[import-not-found]

    NUMBA_AVAILABLE = True

    def njit(func: F) -> F:
        return _numba_njit(cache=True)(func)  # type: ignore[no-any-return]

except ImportError:  # pragma: no cover - exercised when numba is absent

    NUMBA_AVAILABLE = False

    def njit(func: F) -> F:
        return func


@njit
def _kernel(  # noqa: PLR0913 - flat state is the point of the array core
    t0: int,
    stop: int,
    n: int,
    b: int,
    w: int,
    extra: int,
    rtt: int,
    free: int,
    warmup: int,
    policy_kind: int,
    policy_p1: int,
    policy_p2: int,
    next_uid: int,
    rr_out: int,
    rr_in: int,
    busy_until: int,
    due_mask: int,
    draining: bool,
    next_ok: np.ndarray,
    out_credits: np.ndarray,
    pend_uid: np.ndarray,
    pend_dst: np.ndarray,
    pend_arr: np.ndarray,
    stream_end: np.ndarray,
    q_uid: np.ndarray,
    q_arr: np.ndarray,
    q_winit: np.ndarray,
    q_src: np.ndarray,
    q_head: np.ndarray,
    q_len: np.ndarray,
    ret_cycle: np.ndarray,
    ret_out: np.ndarray,
    ret_n: int,
    arr_c: np.ndarray,
    arr_l: np.ndarray,
    arr_d: np.ndarray,
    dep_log: np.ndarray,
    unob_uid: np.ndarray,
    unob_op: np.ndarray,
) -> tuple[int, int, int, int, int, int, int, int, int, int, int, int, int,
           int, int, int, int, int, int, int, int]:
    """Advance the switch to ``stop`` (or the drain point) on flat arrays.

    Same phase order as the scalar engines: due consequences, arbitration
    (urgent store override, round-robin read/cut-through pick, EDF plain
    store), arrivals, drain check.  Departure-bearing waves and
    unobstructed-set events are appended to the log arrays in decision
    order; the Python wrapper replays them onto the canonical containers.

    ``policy_kind``/``policy_p1``/``policy_p2`` are the admission policy's
    integer kernel code (see ``repro.policy``): 0 = complete sharing
    (admit always), 1 = static per-output cap ``p1``, 2 = dynamic
    threshold with exact-rational alpha ``p1/p2``, 3 = per-port
    reservation of ``p1`` packets.  The arithmetic is pure int64, so the
    decisions are bit-identical compiled or not, and to the Python
    engines' ``AdmissionPolicy.admit``.
    """
    cap = q_uid.shape[1]
    t = t0
    ai = 0
    ret_i = 0
    n_arr = arr_c.shape[0]
    offered = 0
    accepted = 0
    dropped = 0
    idle = 0
    deadline = 0
    overruns = 0
    policy_drops = 0
    write_waves = 0
    ct_waves = 0
    read_waves = 0
    dep_n = 0
    unob_n = 0
    while t < stop:
        # -- phase 0: due consequences of past departures ----------------
        if due_mask:
            for j in range(n):
                if due_mask >> j & 1 and next_ok[j] <= t:
                    free += 1
                    due_mask &= ~(1 << j)
        while ret_i < ret_n and ret_cycle[ret_i] <= t:
            out_credits[ret_out[ret_i]] += 1
            ret_i += 1
        # -- phase 2: arbitration ----------------------------------------
        started = False
        wave = False
        uid = -1
        arr_q = 0
        src = -1
        pick = -1
        best_i = -1
        best_arr = 0
        ct_dsts = 0
        if free > 0:
            for i in range(n):
                if pend_uid[i] >= 0:
                    a = pend_arr[i]
                    if a < t:
                        if best_i < 0 or a < best_arr:
                            best_i = i
                            best_arr = a
                        ct_dsts |= 1 << pend_dst[i]
        if best_i >= 0 and best_arr + b <= t:
            # Urgent pending store: deadline override (§3.4).
            deadline += 1
            uid = pend_uid[best_i]
            free -= 1
            pend_uid[best_i] = -1
            if best_arr >= warmup:
                accepted += 1
            j = pend_dst[best_i]
            if next_ok[j] <= t and out_credits[j] != 0 and q_len[j] == 0:
                rr_out = j + 1 if j + 1 < n else 0
                arr_q = best_arr
                src = best_i
                ct_waves += 1
                pick = j
                wave = True
            else:
                rr_in = best_i + 1 if best_i + 1 < n else 0
                slot = (q_head[j] + q_len[j]) % cap
                q_uid[j, slot] = uid
                q_arr[j, slot] = best_arr
                q_winit[j, slot] = t
                q_src[j, slot] = best_i
                q_len[j] += 1
                write_waves += 1
                if t + w > busy_until:
                    busy_until = t + w
                started = True
        else:
            # Round-robin pick from rr_out: first output that is free and
            # credited with either a queued packet (plain read) or an
            # eligible cut-through candidate and an empty queue.
            for d in range(n):
                j = rr_out + d
                if j >= n:
                    j -= n
                if next_ok[j] <= t and out_credits[j] != 0:
                    if q_len[j] > 0:
                        pick = j
                        rr_out = j + 1 if j + 1 < n else 0
                        head = q_head[j]
                        uid = q_uid[j, head]
                        arr_q = q_arr[j, head]
                        src = q_src[j, head]
                        q_head[j] = (head + 1) % cap
                        q_len[j] -= 1
                        read_waves += 1
                        wave = True
                        break
                    if ct_dsts >> j & 1:
                        # Cut-through: minimum-arrival (lowest-input tie)
                        # eligible pend targeting j.
                        pick = j
                        rr_out = j + 1 if j + 1 < n else 0
                        ci = -1
                        ca = 0
                        for i in range(n):
                            if pend_uid[i] >= 0:
                                a = pend_arr[i]
                                if (a < t and pend_dst[i] == j
                                        and (ci < 0 or a < ca)):
                                    ci = i
                                    ca = a
                        uid = pend_uid[ci]
                        free -= 1
                        pend_uid[ci] = -1
                        if ca >= warmup:
                            accepted += 1
                        arr_q = ca
                        src = ci
                        ct_waves += 1
                        wave = True
                        break
            if not wave and best_i >= 0:
                # Plain store: earliest deadline first, round-robin
                # tie-break from rr_in.
                sel = -1
                sa = 0
                for d in range(n):
                    i = rr_in + d
                    if i >= n:
                        i -= n
                    if pend_uid[i] >= 0:
                        a = pend_arr[i]
                        if a < t and (sel < 0 or a < sa):
                            sel = i
                            sa = a
                rr_in = sel + 1 if sel + 1 < n else 0
                uid = pend_uid[sel]
                free -= 1
                pend_uid[sel] = -1
                if sa >= warmup:
                    accepted += 1
                j = pend_dst[sel]
                slot = (q_head[j] + q_len[j]) % cap
                q_uid[j, slot] = uid
                q_arr[j, slot] = sa
                q_winit[j, slot] = t
                q_src[j, slot] = sel
                q_len[j] += 1
                write_waves += 1
                if t + w > busy_until:
                    busy_until = t + w
                started = True
        if wave:
            # Shared consequence of a departure-bearing wave on ``pick``.
            j = pick
            tw = t + w
            next_ok[j] = tw
            due_mask |= 1 << j
            if out_credits[j] >= 0:
                out_credits[j] -= 1
                ret_cycle[ret_n] = tw + rtt
                ret_out[ret_n] = j
                ret_n += 1
            tail = tw + extra
            if tail > busy_until:
                busy_until = tail
            dep_log[dep_n, 0] = tail
            dep_log[dep_n, 1] = uid
            dep_log[dep_n, 2] = arr_q
            dep_log[dep_n, 3] = src
            dep_log[dep_n, 4] = j
            dep_log[dep_n, 5] = t
            dep_n += 1
            started = True
        # -- phase 4: arrivals -------------------------------------------
        while ai < n_arr and arr_c[ai] == t:
            i = arr_l[ai]
            d = arr_d[ai]
            ai += 1
            if pend_uid[i] >= 0:
                if pend_arr[i] >= warmup:
                    dropped += 1
                overruns += 1
                unob_uid[unob_n] = pend_uid[i]
                unob_op[unob_n] = -1
                unob_n += 1
            uid = next_uid
            next_uid += 1
            stream_end[i] = t + w
            if policy_kind == 0:
                admitted = True
            elif policy_kind == 1:
                # Static per-output cap of ``p1`` packets.
                held_d = q_len[d] + (1 if next_ok[d] > t else 0)
                admitted = held_d < policy_p1
            elif policy_kind == 2:
                # Dynamic threshold: held+1 <= alpha * free, alpha = p1/p2.
                held_d = q_len[d] + (1 if next_ok[d] > t else 0)
                admitted = (held_d + 1) * policy_p2 <= policy_p1 * free
            else:
                # Port reservation: keep enough free space to top every
                # other output up to ``p1`` packets.
                shortfall = 0
                for jj in range(n):
                    if jj == d:
                        continue
                    held_j = q_len[jj] + (1 if next_ok[jj] > t else 0)
                    if held_j < policy_p1:
                        shortfall += policy_p1 - held_j
                admitted = free >= 1 + shortfall
            if admitted:
                pend_uid[i] = uid
                pend_dst[i] = d
                pend_arr[i] = t
            else:
                # The head-overrun branch above relies on the new pend
                # overwriting the old; a refusal creates no pend, so clear
                # the overrun one explicitly.
                pend_uid[i] = -1
            if t >= warmup:
                offered += 1
                if admitted and next_ok[d] <= t + 1 and q_len[d] == 0:
                    clear = True
                    for k in range(n):
                        if k != i and pend_uid[k] >= 0 and pend_dst[k] == d:
                            clear = False
                            break
                    if clear:
                        unob_uid[unob_n] = uid
                        unob_op[unob_n] = 1
                        unob_n += 1
            if not admitted:
                if t >= warmup:
                    dropped += 1
                policy_drops += 1
        if draining:
            empty = True
            for j in range(n):
                if pend_uid[j] >= 0 or q_len[j] > 0:
                    empty = False
                    break
            if empty:
                t += 1
                break
        if not started:
            idle += 1
        t += 1
    return (t, free, next_uid, rr_out, rr_in, busy_until, due_mask, ret_i,
            ret_n, offered, accepted, dropped, idle, deadline, overruns,
            policy_drops, write_waves, ct_waves, read_waves, dep_n, unob_n)


def advance_window(
    switch: "BatchPipelinedSwitch",
    stop: int,
    arr_c: list[int],
    arr_l: list[int],
    arr_d: list[int],
    draining: bool = False,
) -> None:
    """Marshal switch state to arrays, run :func:`_kernel`, write back."""
    t0 = switch.cycle
    n = switch._n
    window = stop - t0
    if window <= 0:
        return
    addresses = switch.config.addresses
    next_ok = np.asarray(switch.next_wave_ok, dtype=np.int64)
    out_credits = np.asarray(switch._out_credits, dtype=np.int64)
    pend_uid = np.asarray(switch._pend_uid, dtype=np.int64)
    pend_dst = np.asarray(switch._pend_dst, dtype=np.int64)
    pend_arr = np.asarray(switch._pend_arr, dtype=np.int64)
    stream_end = np.asarray(switch._stream_end, dtype=np.int64)
    cap = max(addresses, 1)
    q_uid = np.zeros((n, cap), dtype=np.int64)
    q_arr = np.zeros((n, cap), dtype=np.int64)
    q_winit = np.zeros((n, cap), dtype=np.int64)
    q_src = np.zeros((n, cap), dtype=np.int64)
    q_head = np.zeros(n, dtype=np.int64)
    q_len = np.zeros(n, dtype=np.int64)
    for j, q in enumerate(switch._queues):
        for slot, (uid, arr, winit, src) in enumerate(q):
            q_uid[j, slot] = uid
            q_arr[j, slot] = arr
            q_winit[j, slot] = winit
            q_src[j, slot] = src
        q_len[j] = len(q)
    old_returns = len(switch._credit_returns)
    ret_cap = old_returns + window + 1
    ret_cycle = np.zeros(ret_cap, dtype=np.int64)
    ret_out = np.zeros(ret_cap, dtype=np.int64)
    for k, (cyc, j) in enumerate(switch._credit_returns):
        ret_cycle[k] = cyc
        ret_out[k] = j
    ac = np.asarray(arr_c, dtype=np.int64)
    al = np.asarray(arr_l, dtype=np.int64)
    ad = np.asarray(arr_d, dtype=np.int64)
    dep_log = np.zeros((window + 1, 6), dtype=np.int64)
    unob_cap = 2 * len(arr_c) + 1
    unob_uid = np.zeros(unob_cap, dtype=np.int64)
    unob_op = np.zeros(unob_cap, dtype=np.int64)
    pk, pp1, pp2 = switch._policy_code
    (t, free, next_uid, rr_out, rr_in, busy_until, due_mask, ret_i, ret_n,
     offered, accepted, dropped, idle, deadline, overruns, policy_drops,
     write_waves, ct_waves, read_waves, dep_n, unob_n) = _kernel(
        t0, stop, n, switch._b, switch._w, switch._extra,
        switch.config.downstream_rtt, switch._free, switch.stats.warmup,
        pk, pp1, pp2,
        switch._next_uid, switch._rr_out, switch._rr_in, switch._busy_until,
        switch._core_due_mask, draining, next_ok, out_credits, pend_uid,
        pend_dst, pend_arr, stream_end, q_uid, q_arr, q_winit, q_src,
        q_head, q_len, ret_cycle, ret_out, old_returns, ac, al, ad,
        dep_log, unob_uid, unob_op,
    )
    # -- write back ---------------------------------------------------------
    switch.next_wave_ok[:] = next_ok.tolist()
    switch._out_credits[:] = out_credits.tolist()
    switch._pend_uid[:] = pend_uid.tolist()
    switch._pend_dst[:] = pend_dst.tolist()
    switch._pend_arr[:] = pend_arr.tolist()
    switch._stream_end[:] = stream_end.tolist()
    for j in range(n):
        q = deque()
        head = int(q_head[j])
        for s in range(int(q_len[j])):
            slot = (head + s) % cap
            q.append((int(q_uid[j, slot]), int(q_arr[j, slot]),
                      int(q_winit[j, slot]), int(q_src[j, slot])))
        switch._queues[j] = q
    switch._credit_returns.clear()
    for k in range(ret_i, ret_n):
        switch._credit_returns.append((int(ret_cycle[k]), int(ret_out[k])))
    unobstructed = switch._unobstructed
    for k in range(unob_n):
        if unob_op[k] > 0:
            unobstructed.add(int(unob_uid[k]))
        else:
            unobstructed.discard(int(unob_uid[k]))
    pending_append = switch._pending_departures.append
    for k in range(dep_n):
        pending_append((int(dep_log[k, 0]), int(dep_log[k, 1]),
                        int(dep_log[k, 2]), int(dep_log[k, 3]),
                        int(dep_log[k, 4]), int(dep_log[k, 5])))
    switch._free = free
    switch._next_uid = next_uid
    switch._rr_out = rr_out
    switch._rr_in = rr_in
    switch._busy_until = busy_until
    switch._core_due_mask = due_mask
    switch.idle_cycles += idle
    switch.deadline_overrides += deadline
    switch.overrun_drops += overruns
    switch.policy_drops += policy_drops
    switch.write_waves += write_waves
    switch.cut_through_waves += ct_waves
    switch.plain_read_waves += read_waves
    stats = switch.stats
    stats.offered += offered
    stats.accepted += accepted
    stats.dropped += dropped
    switch.cycle = t
    stats.horizon = t
