"""Windowed input queueing — FIFO buffers with look-ahead scheduling.

An intermediate point on the §2.1 spectrum between FIFO input queueing and
full non-FIFO (VOQ) buffering, studied in the input-queueing literature
([KaHM87] §V discusses it as a HoL-blocking mitigation): each input keeps a
single FIFO, but the scheduler may pick any of the first ``window`` cells —
a cheap "look past the blocked head" that needs only ``window`` read
candidates per buffer instead of full random access.

``window = 1`` is exactly FIFO input queueing; ``window -> capacity``
approaches non-FIFO input buffering.  ``tests/switches/test_windowed.py``
verifies both limits and the monotone saturation improvement in between.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sim.packet import Cell
from repro.sim.rng import make_rng
from repro.switches.base import SlottedSwitch


class WindowedInputQueued(SlottedSwitch):
    """Input FIFOs with a ``window``-deep scheduling window.

    Each slot, outputs are matched greedily in random order: every output
    picks uniformly among the inputs whose window contains a cell for it
    (each input contributing at most one cell per slot).
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        window: int = 4,
        capacity: int | None = None,
        warmup: int = 0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_in, n_out, warmup)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if capacity is not None and capacity < window:
            raise ValueError("capacity must be at least the window size")
        self.window = window
        self.capacity = capacity
        self.queues: list[deque[Cell]] = [deque() for _ in range(n_in)]
        self.rng = make_rng(seed)

    def _admit(self, cell: Cell) -> bool:
        q = self.queues[cell.src]
        if self.capacity is not None and len(q) >= self.capacity:
            return False
        q.append(cell)
        return True

    def _select_departures(self) -> list[Cell | None]:
        departures: list[Cell | None] = [None] * self.n_out
        input_busy = [False] * self.n_in
        # Serve outputs in random order for fairness.
        for j in self.rng.permutation(self.n_out):
            j = int(j)
            candidates: list[tuple[int, int]] = []  # (input, position)
            for i, q in enumerate(self.queues):
                if input_busy[i]:
                    continue
                for pos, cell in enumerate(q):
                    if pos >= self.window:
                        break
                    if cell.dst == j:
                        candidates.append((i, pos))
                        break  # oldest eligible cell per input
            if not candidates:
                continue
            i, pos = candidates[int(self.rng.integers(0, len(candidates)))]
            q = self.queues[i]
            q.rotate(-pos)
            cell = q.popleft()
            q.rotate(pos)
            departures[j] = cell
            input_busy[i] = True
        return departures

    def occupancy(self) -> int:
        return sum(len(q) for q in self.queues)
