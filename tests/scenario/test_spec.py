"""Tests for the declarative Scenario spec: validation, serialization,
grid expansion, and document loading."""

import json

import pytest

from repro.scenario import Scenario, ScenarioError, TrafficSpec, load_scenarios


def pipelined_scenario(**overrides):
    base = dict(
        name="demo", arch="pipelined", horizon=2_000,
        params={"n": 4, "addresses": 64},
        traffic={"kind": "renewal", "load": 0.6},
        seeds=[1, 2], drain=True,
    )
    base.update(overrides)
    return Scenario(**base)


class TestValidation:
    def test_valid_scenario_passes(self):
        pipelined_scenario().validate()

    def test_name_with_path_separator_rejected(self):
        with pytest.raises(ScenarioError, match="path separator"):
            pipelined_scenario(name="a/b").validate()

    @pytest.mark.parametrize("horizon", [0, -5, 1.5, "1000", True])
    def test_bad_horizon_rejected(self, horizon):
        with pytest.raises(ScenarioError, match="horizon"):
            pipelined_scenario(horizon=horizon).validate()

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate seeds"):
            pipelined_scenario(seeds=[1, 1]).validate()

    def test_warmup_must_stay_below_horizon(self):
        with pytest.raises(ScenarioError, match="below"):
            pipelined_scenario(warmup=2_000).validate()

    def test_warmup_defaults_to_fifth_of_horizon(self):
        assert pipelined_scenario().effective_warmup == 400
        assert pipelined_scenario(warmup=7).effective_warmup == 7

    def test_load_out_of_range_rejected(self):
        with pytest.raises(ScenarioError, match=r"\[0, 1\]"):
            pipelined_scenario(traffic={"kind": "renewal", "load": 1.5}).validate()

    def test_int_seed_coerced_to_tuple(self):
        assert pipelined_scenario(seeds=3).seeds == (3,)

    def test_unknown_key_suggests_fix(self):
        with pytest.raises(ScenarioError, match="did you mean 'horizon'"):
            Scenario.from_dict({"name": "x", "arch": "pipelined",
                                "horizont": 100})

    def test_unknown_traffic_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown key 'lod'"):
            TrafficSpec.from_dict({"kind": "uniform", "lod": 0.5})


class TestSerialization:
    def test_json_round_trip(self):
        sc = pipelined_scenario(telemetry={"events": True, "sample_interval": 32})
        again = Scenario.from_dict(json.loads(sc.dumps()))
        assert again == sc

    def test_toml_round_trip(self, tmp_path):
        sc = pipelined_scenario(
            traffic={"kind": "renewal", "load": 0.6, "params": {"dests": [0, 1]}},
        )
        path = tmp_path / "demo.toml"
        sc.dump(path)
        assert Scenario.load(path) == sc

    def test_json_dump_load_file(self, tmp_path):
        sc = pipelined_scenario()
        path = tmp_path / "demo.json"
        sc.dump(path)
        assert Scenario.load(path) == sc

    def test_to_dict_omits_defaults(self):
        d = Scenario(name="x", arch="shared", horizon=10).to_dict()
        assert "drain" not in d and "warmup" not in d and "telemetry" not in d


class TestExpand:
    def test_grid_expansion_order_and_names(self):
        scs = pipelined_scenario().expand(
            {"traffic.load": [0.5, 0.9], "params.n": [2, 4]})
        assert [s.name for s in scs] == [
            "demo-load0.5-n2", "demo-load0.5-n4",
            "demo-load0.9-n2", "demo-load0.9-n4",
        ]
        assert scs[0].traffic.load == 0.5 and scs[0].params["n"] == 2
        assert scs[3].traffic.load == 0.9 and scs[3].params["n"] == 4

    def test_arch_axis_uses_bare_value_in_name(self):
        scs = Scenario(name="s", arch="shared", horizon=10).expand(
            {"arch": ["fifo", "voq"]})
        assert [s.name for s in scs] == ["s-fifo", "s-voq"]

    def test_expansion_does_not_mutate_base(self):
        base = pipelined_scenario()
        base.expand({"params.n": [2, 8], "traffic.load": [0.1]})
        assert base.params["n"] == 4
        assert base.traffic.load == 0.6

    def test_unknown_axis_rejected_with_advice(self):
        with pytest.raises(ScenarioError, match="valid axes"):
            pipelined_scenario().expand({"paramsn": [1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ScenarioError, match="non-empty list"):
            pipelined_scenario().expand({"params.n": []})


class TestLoadScenarios:
    def test_single_scenario_document(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(pipelined_scenario().dumps())
        assert [s.name for s in load_scenarios(path)] == ["demo"]

    def test_sweep_document(self, tmp_path):
        doc = {"base": pipelined_scenario().to_dict(),
               "grid": {"traffic.load": [0.4, 0.8]}}
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(doc))
        assert [s.name for s in load_scenarios(path)] == [
            "demo-load0.4", "demo-load0.8"]

    def test_list_document_mixing_shapes(self, tmp_path):
        doc = [
            pipelined_scenario(name="a").to_dict(),
            {"base": pipelined_scenario(name="b").to_dict(),
             "grid": {"params.n": [2, 4]}},
        ]
        path = tmp_path / "list.json"
        path.write_text(json.dumps(doc))
        assert [s.name for s in load_scenarios(path)] == ["a", "b-n2", "b-n4"]

    def test_not_a_scenario_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ScenarioError, match="no 'arch' key"):
            load_scenarios(path)

    def test_invalid_json_is_a_scenario_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_scenarios(path)

    def test_missing_file_is_a_scenario_error(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenarios(tmp_path / "absent.json")

    def test_example_files_all_load(self):
        from pathlib import Path

        examples = Path(__file__).resolve().parents[2] / "examples" / "scenarios"
        files = sorted(examples.glob("*.json"))
        assert files, "examples/scenarios/ should ship scenario files"
        for file in files:
            scenarios = load_scenarios(file)
            assert scenarios
