"""E5 — Staggered-initiation latency (paper §3.4).

Paper claim: the one-wave-per-cycle restriction adds expected cut-through
latency ``(p/4)(n-1)/n`` cycles — "for 40% load, this amounts to one tenth
of a clock cycle, i.e. negligible".

The word-level switch measures the extra delay of packets that found their
output idle (the population the formula describes) and compares to the
formula across loads and switch sizes.  An ablation row compares arbitration
policies: write-priority makes departures wait and inflates latency, which
is the paper's §3.3 rationale for read priority.
"""

from conftest import show

from repro.analysis.staggered import expected_extra_latency
from repro.core import (
    PipelinedSwitch,
    PipelinedSwitchConfig,
    Priority,
    RenewalPacketSource,
)
from repro.switches.harness import format_table


def _measure(n, p, priority=Priority.READS_FIRST, cycles=200_000, seed=7):
    cfg = PipelinedSwitchConfig(n=n, addresses=128, priority=priority)
    src = RenewalPacketSource(n_out=n, packet_words=cfg.packet_words, load=p, seed=seed)
    sw = PipelinedSwitch(cfg, src)
    sw.warmup = 2000
    sw.run(cycles)
    return sw


def _experiment():
    rows = []
    for n, p in [(4, 0.2), (4, 0.4), (8, 0.2), (8, 0.4), (8, 0.6), (16, 0.4)]:
        sw = _measure(n, p)
        rows.append([n, p, sw.stagger_extra.mean, expected_extra_latency(p, n),
                     sw.ct_latency.mean])
    ablation = {}
    for prio in (Priority.READS_FIRST, Priority.WRITES_FIRST):
        sw = _measure(8, 0.7, priority=prio, cycles=120_000)
        ablation[prio] = sw.ct_latency.mean
    return rows, ablation


def test_e05_staggered_latency(run_once):
    rows, ablation = run_once(_experiment)
    show(
        format_table(
            ["n", "load", "measured extra (cycles)", "formula (p/4)(n-1)/n", "mean CT latency"],
            rows,
            title="E5: staggered-initiation cut-through latency increase",
        )
    )
    for n, p, measured, formula, _ in rows:
        assert abs(measured - formula) <= max(0.35 * formula, 0.01), (n, p)
    # the headline claim: ~0.1 cycles at 40% load
    at_40 = [r for r in rows if r[1] == 0.4 and r[0] == 8][0]
    assert at_40[2] < 0.15
    # ablation: read priority is the right choice
    assert ablation[Priority.READS_FIRST] <= ablation[Priority.WRITES_FIRST]
    show(
        format_table(
            ["policy", "mean CT latency @ n=8, p=0.7"],
            [[k.value, v] for k, v in ablation.items()],
            title="E5 ablation: arbitration priority",
        )
    )
