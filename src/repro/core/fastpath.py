"""Wave-level fast kernel for the pipelined-memory switch.

:class:`~repro.core.switch.PipelinedSwitch` is the *checked* model: it moves
every one of the ``B`` words of every wave through Python latch, bus and bank
objects so that each structural hazard the paper argues away raises if it
ever occurs.  That is the right tool for verifying the §3.2–§3.3 correctness
argument — and the wrong tool for long-horizon and large-``n`` experiments,
where the per-word object traffic dominates wall clock.

:class:`FastPipelinedSwitch` simulates the *same machine* at wave
granularity: one arbiter decision per cycle, packets as integer records in
preallocated numpy arrays, and every word-level consequence of a wave
(delivery times, buffer release, credit returns, control/pipe occupancy)
computed arithmetically from the wave's initiation cycle.  It reproduces the
checked model's arbitration *exactly* — urgent-store deadline overrides,
READS_FIRST policy with the round-robin pointers, WRITE_CT cut-through
eligibility, §3.5 chain-slot reservations — and it polls the packet source
in the identical per-cycle pattern, so on the same seed its
:class:`~repro.sim.stats.SwitchStats`, wave counters and latency histograms
are **bit-identical** to the checked model's.  ``tests/core/test_fastpath.py``
enforces this over a config matrix and with property-based random configs.

What the fast path does *not* do is check invariants: no bank-conflict, bus
contention, latch-overrun or payload-integrity detection.  The checked model
remains the oracle; the fast kernel is for experiments whose shape the
oracle has already validated.  Configurations whose arbitration it does not
replicate (the E5 ablation policies ``WRITES_FIRST`` / ``OLDEST_FIRST``)
are refused with :class:`FastPathUnsupportedError` rather than silently
approximated.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.core.arbiter import Priority
from repro.core.errors import ConfigError
from repro.core.instrumentation import SwitchTelemetryMixin
from repro.core.sources import PacketSource
from repro.core.switch import (
    DeadlineMissedError,
    PipelinedSwitch,
    PipelinedSwitchConfig,
)
from repro.drc.sanitizer import Sanitizer
from repro.sim.stats import Counter, Histogram, SwitchStats
from repro.telemetry import (
    ARRIVE,
    CUT_THROUGH,
    DEPART,
    DROP_HEAD_OVERRUN,
    DROP_POLICY,
    DROP_QUANTUM_OVERRUN,
    READ_WAVE,
    STORE_WAVE,
    Telemetry,
)

if TYPE_CHECKING:
    from repro.core.batchpath import BatchPipelinedSwitch

# Column layout of the per-packet record array.
_ARRIVAL, _WRITE_INIT, _SRC, _DST = range(4)


class FastPathUnsupportedError(ConfigError):
    """The fast kernel does not model this configuration; use the checked
    :class:`~repro.core.switch.PipelinedSwitch` instead."""


def reject_unsupported(kernel: str, reason: str) -> FastPathUnsupportedError:
    """Uniform refuse-don't-approximate error for the derived kernels.

    Both the wave-level and the batch kernel trade generality for speed;
    any configuration they do not replicate *exactly* must be refused, not
    approximated.  Routing every refusal through this helper keeps the
    message shape (and the exception type tests rely on) identical across
    kernels and unsupported-config branches.
    """
    return FastPathUnsupportedError(
        f"{kernel} does not model this configuration: {reason} — "
        f"run it on the checked PipelinedSwitch"
    )


def ensure_wave_kernel_supported(
    kernel: str, config: PipelinedSwitchConfig, source: PacketSource
) -> None:
    """Unsupported-config branches shared by the wave and batch kernels."""
    if source.n_out != config.n:
        raise reject_unsupported(
            kernel,
            f"source targets {source.n_out} outputs, switch has {config.n}",
        )
    if source.packet_words != config.packet_words:
        raise reject_unsupported(
            kernel,
            f"source packets are {source.packet_words} words, switch needs "
            f"{config.packet_words} (pipeline depth)",
        )
    if config.priority is not Priority.READS_FIRST:
        raise reject_unsupported(
            kernel,
            f"only the paper's READS_FIRST arbitration is modelled; "
            f"{config.priority} is an ablation policy",
        )


class FastPipelinedSwitch(SwitchTelemetryMixin):
    """Wave-level kernel: bit-identical statistics, no per-word objects.

    Drop-in for :class:`~repro.core.switch.PipelinedSwitch` wherever only
    statistics are consumed: same constructor signature, same ``run`` /
    ``drain`` / ``is_empty`` / ``warmup`` API, same ``stats``, wave counters
    and latency collectors.  It does not expose banks, buses, latches,
    sinks or the tracer — there are no words to trace.  It *does* produce
    the full :mod:`repro.telemetry` event stream: every lifecycle event a
    packet would generate word by word is computed in closed form from its
    wave's admission cycle, and the equivalence tests pin the resulting
    stream to the checked model's event for event.
    """

    def __init__(
        self,
        config: PipelinedSwitchConfig,
        source: PacketSource,
        telemetry: Telemetry | None = None,
        sanitizer: Sanitizer | None = None,
    ) -> None:
        ensure_wave_kernel_supported("fast path", config, source)
        self.config = config
        self.source = source
        n = config.n
        self.cycle = 0
        self.next_wave_ok = [0] * n  # per-output earliest next departure wave
        # -- static shorthands -------------------------------------------------
        self._n = n
        self._b = config.depth
        self._w = config.packet_words  # quanta * depth: words per packet
        self._quanta = config.quanta
        self._extra = 2 * config.link_pipeline_stages  # §4.3 wire registers
        self._chain_offsets = [q * self._b for q in range(1, config.quanta)]
        # -- packet records: preallocated numpy ring, indexed by uid -----------
        # In-flight packets are bounded by the buffer plus the per-link
        # streaming/pending state; size the ring with slack and index uid&mask.
        cap = 1
        while cap < 4 * (config.addresses * config.quanta + 4 * n + 8):
            cap <<= 1
        self._mask = cap - 1
        self._rec = np.zeros((cap, 4), dtype=np.int64)
        self._next_uid = 0
        # -- buffer manager state: free-address count plus per-output FIFO
        # queues of (uid, arrival, write_init, src) int tuples ------------------
        self._free = config.addresses
        self._peak_occ = 0
        self._queues: list[deque[tuple[int, int, int, int]]] = [
            deque() for _ in range(n)
        ]
        # -- per-input streaming state (plain int lists; -1 = none) ------------
        self._in_uid = [-1] * n  # packet currently streaming in
        self._in_next = [0] * n  # its next word index
        self._pend_uid = [-1] * n  # pending store request
        self._pend_dst = [0] * n
        self._pend_arr = [0] * n
        self._credits = [config.credits_per_input or 0] * n
        # -- wave bookkeeping --------------------------------------------------
        self._chain: set[int] = set()  # reserved future initiation slots
        self._rr_out = 0
        self._rr_in = 0
        self._muted = False  # drain(): stop polling the source
        self._busy_until = -1  # control pipeline / output stream occupancy
        # Departure consequences, each a FIFO because initiation cycles are
        # strictly increasing (one wave per cycle):
        self._free_due: deque[int] = deque()  # cycle the addresses free up
        self._credit_due: deque[tuple[int, int]] = deque()  # (cycle, src input)
        self._stats_due: deque[tuple[int, int, int]] = deque()  # (tail, uid, t0)
        self._out_credits = [
            config.downstream_credits if config.downstream_credits is not None else -1
        ] * n
        self._credit_returns: deque[tuple[int, int]] = deque()  # (cycle, output)
        # -- statistics (identical collectors to the checked model) ------------
        self.stats = SwitchStats(n_outputs=n)
        self.ct_latency = Counter()
        self.ct_latency_hist = Histogram()
        self.total_latency = Counter()
        self.cut_through_waves = 0
        self.plain_read_waves = 0
        self.write_waves = 0
        self.idle_cycles = 0
        self.deadline_overrides = 0
        self.overrun_drops = 0
        self.policy_drops = 0
        # Admission policy (normalized by the config); trivial = complete
        # sharing, consulted never — the seed hot path is untouched.
        self.policy = config.policy
        self._policy_trivial = self.policy.trivial
        self.stagger_extra = Counter()
        self._unobstructed: set[int] = set()
        # Cycle at which a finite source (trace replay) ran dry with the
        # switch empty; ``None`` while the source can still produce packets.
        self.trace_ended_at: int | None = None
        self.attach_telemetry(telemetry)
        self.attach_sanitizer(sanitizer)

    def _telemetry_state(self) -> tuple[int, int, list[int]]:
        return (self.config.addresses - self._free, self._free,
                list(self._credits))

    def _queue_depths(self) -> list[int]:
        return [len(q) for q in self._queues]

    def _peak_occupancy(self) -> int:
        return self._peak_occ

    # -- public API -------------------------------------------------------------
    @property
    def warmup(self) -> int:
        return self.stats.warmup

    @warmup.setter
    def warmup(self, cycles: int) -> None:
        self.stats.warmup = cycles

    @property
    def link_utilization(self) -> float:
        """Delivered words per output-link cycle (the paper's link load)."""
        cycles = self.stats.measured_slots
        if cycles <= 0:
            return math.nan
        return self.stats.delivered * self._w / (cycles * self._n)

    def run(self, cycles: int) -> SwitchStats:
        """Advance the switch by ``cycles`` clock cycles.

        Mirrors the checked kernel: a finite source (trace replay) ends the
        run as soon as it is exhausted and the switch has emptied, stamping
        :attr:`trace_ended_at`.  The check runs before each tick so a
        resumed, already-finished run burns zero cycles.
        """
        tick = self.tick
        exhausted = getattr(self.source, "exhausted", None)
        if exhausted is None:
            for _ in range(cycles):
                tick()
            return self.stats
        stop = self.cycle + cycles
        while self.cycle < stop:
            if exhausted() and self.is_empty():
                if self.trace_ended_at is None:
                    self.trace_ended_at = self.cycle
                    if self._tel:
                        self._emit_trace_ended(self.cycle)
                break
            tick()
        return self.stats

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Run with the source muted until all in-flight packets depart."""
        self._muted = True
        try:
            start = self.cycle
            while not self.is_empty():
                if self.cycle - start > max_cycles:
                    raise RuntimeError(
                        f"switch failed to drain within {max_cycles} cycles: "
                        f"{sum(len(q) for q in self._queues)} packets still queued"
                    )
                self.tick()
            return self.cycle - start
        finally:
            self._muted = False

    def is_empty(self) -> bool:
        return (
            self._free == self.config.addresses
            and not self._stats_due
            and not self._free_due
            and not self._credit_due
            and not self._chain
            and self.cycle > self._busy_until
            and all(u < 0 for u in self._in_uid)
            and all(u < 0 for u in self._pend_uid)
            and all(not q for q in self._queues)
        )

    # -- one clock cycle ----------------------------------------------------------
    def tick(self) -> None:
        """One clock in the checked model's phase order: downstream credit
        returns, output deliveries, arbitration, (waves are implicit),
        arrivals."""
        t = self.cycle
        # Downstream credits whose RTT elapsed (checked model phase 0).
        returns = self._credit_returns
        while returns and returns[0][0] <= t:
            self._out_credits[returns.popleft()[1]] += 1
        # Buffer addresses released by a departure chain become visible to
        # arbitration the cycle after the chain's last stage executed —
        # i.e. at t0 + quanta*B (the checked model frees them in its phase 3
        # of cycle t0 + quanta*B - 1, after that cycle's arbitration).
        free_due = self._free_due
        while free_due and free_due[0] <= t:
            free_due.popleft()
            self._free += self._quanta
        # Start-of-cycle sampling instant: downstream credits and buffer
        # releases due by now are visible, this cycle's waves/arrivals are
        # not — exactly the state the checked model samples at.
        if self._tel:
            iv = self.telemetry.sample_interval
            if iv and t % iv == 0:
                self._sample_telemetry(t)
        # Tail words reaching the output links this cycle (phase 1): all the
        # per-word delivery/latency accounting collapses to one completion
        # event at t0 + quanta*B + wire_delay.
        stats_due = self._stats_due
        while stats_due and stats_due[0][0] <= t:
            tail, uid, t0 = stats_due.popleft()
            rec = self._rec[uid & self._mask]
            arrival = int(rec[_ARRIVAL])
            head = t0 + 1 + self._extra
            if self._san:
                self.sanitizer.packet_delivered(t, uid)
            self.stats.record_departure(int(rec[_DST]), arrival, head)
            if arrival >= self.stats.warmup:
                ct = head - arrival
                self.ct_latency.add(ct)
                self.ct_latency_hist.add(ct)
                self.total_latency.add(tail - arrival)
                if uid in self._unobstructed:
                    self.stagger_extra.add(ct - 2)
            self._unobstructed.discard(uid)
            if self._tel:
                dst = int(rec[_DST])
                self.telemetry.events.emit(
                    tail, DEPART, uid, src=int(rec[_SRC]), dst=dst, aux=head
                )
                self._m_departures[dst].inc()
                if arrival >= self.stats.warmup:
                    self._m_latency.observe(head - arrival)
        # Phase 2: wave arbitration (a reserved chain slot owns the cycle).
        if t in self._chain:
            self._chain.discard(t)
            if self._san:
                self.sanitizer.wave_initiated(t, -1)  # chain continuation
        else:
            self._arbitrate(t)
        # Input credits return when the departure chain's last stage executes
        # (checked model phase 3 of t0 + quanta*B - 1), which is *before*
        # the same cycle's arrival phase.
        credit_due = self._credit_due
        while credit_due and credit_due[0][0] <= t:
            self._credits[credit_due.popleft()[1]] += 1
        # Phase 4: word arrivals.
        self._accept_arrivals(t)
        if self._san:
            in_flight = (
                sum(1 for u in self._pend_uid if u >= 0)
                + sum(len(q) for q in self._queues)
                + len(self._stats_due)
            )
            self.sanitizer.end_cycle(t, in_flight)
        self.cycle = t + 1
        self.stats.horizon = self.cycle

    # -- arbitration ------------------------------------------------------------
    def _arbitrate(self, t: int) -> None:
        n = self._n
        b = self._b
        chain = self._chain
        chain_free = True
        if chain:
            for off in self._chain_offsets:
                if t + off in chain:
                    chain_free = False
                    break
        pend_uid = self._pend_uid
        pend_arr = self._pend_arr
        pend_dst = self._pend_dst
        cut_through = self.config.cut_through
        room = self._free >= self._quanta

        # One pass over the pending stores: open-window inputs, the urgent
        # (deadline-reached) store, and the per-output best cut-through
        # candidate (min arrival, lowest input index breaking ties).
        have_writes = False
        urgent_i = -1
        urgent_arr = 0
        ct_best: dict[int, tuple[int, int]] | None = None  # dst -> (arr, input)
        if chain_free and room:
            for i in range(n):
                if pend_uid[i] < 0 or pend_arr[i] >= t:
                    continue
                arr = pend_arr[i]
                have_writes = True
                if arr + b <= t and (urgent_i < 0 or arr < urgent_arr):
                    urgent_i = i  # earliest deadline; ties fall to lowest i
                    urgent_arr = arr
                if cut_through:
                    d = pend_dst[i]
                    if ct_best is None:
                        ct_best = {d: (arr, i)}
                    elif d not in ct_best or arr < ct_best[d][0]:
                        ct_best[d] = (arr, i)

        next_ok = self.next_wave_ok
        out_credits = self._out_credits
        queues = self._queues

        # Urgent stores override everything; an urgent store still cuts
        # through when its own output would have accepted it as a candidate.
        if urgent_i >= 0:
            j = pend_dst[urgent_i]
            if (
                ct_best is not None
                and ct_best.get(j, (0, -1))[1] == urgent_i
                and not queues[j]
                and next_ok[j] <= t
                and out_credits[j] != 0
            ):
                self._rr_out = (j + 1) % n
                self._start_write(t, urgent_i, ct_out=j)
            else:
                self._rr_in = (urgent_i + 1) % n
                self._start_write(t, urgent_i, ct_out=-1)
            return

        # READS_FIRST: the first departure-eligible output in round-robin
        # order from the pointer (that *is* the arbiter's min over
        # (j - ptr) % n), else the preferred store.
        if chain_free:
            ptr = self._rr_out
            w = self._w
            for off in range(n):
                j = ptr + off
                if j >= n:
                    j -= n
                if next_ok[j] > t or out_credits[j] == 0:
                    continue
                q = queues[j]
                if q:
                    if not cut_through and q[0][2] + w > t:
                        continue  # store-and-forward ablation: store not done
                    self._rr_out = (j + 1) % n
                    self._start_read(t, j)
                    return
                if ct_best is not None and j in ct_best:
                    self._rr_out = (j + 1) % n
                    self._start_write(t, ct_best[j][1], ct_out=j)
                    return
        if have_writes:
            # Earliest deadline (= arrival) first, round-robin tie-break.
            ptr = self._rr_in
            best = -1
            best_arr = 0
            for off in range(n):
                i = ptr + off
                if i >= n:
                    i -= n
                if pend_uid[i] >= 0 and pend_arr[i] < t:
                    if best < 0 or pend_arr[i] < best_arr:
                        best = i
                        best_arr = pend_arr[i]
            self._rr_in = (best + 1) % n
            self._start_write(t, best, ct_out=-1)
            return
        self.idle_cycles += 1
        if self._tel:
            self._m_idle.inc()

    # -- wave initiations --------------------------------------------------------
    def _reserve_chain(self, t: int) -> None:
        for off in self._chain_offsets:
            self._chain.add(t + off)

    def _start_departure_chain(self, t: int, j: int, uid: int, src: int) -> None:
        """Consequences shared by READ and WRITE_CT initiations at ``t``."""
        w = self._w
        self.next_wave_ok[j] = t + w
        if self._out_credits[j] >= 0:
            self._out_credits[j] -= 1
            self._credit_returns.append((t + w + self.config.downstream_rtt, j))
        self._free_due.append(t + w)
        if self.config.credit_flow:
            self._credit_due.append((t + w - 1, src))
        tail = t + w + self._extra
        self._stats_due.append((tail, uid, t))
        if tail > self._busy_until:
            self._busy_until = tail

    def _start_read(self, t: int, j: int) -> None:
        uid, _arrival, _winit, src = self._queues[j].popleft()
        if self._san:
            self.sanitizer.wave_initiated(t, uid)
        self._reserve_chain(t)
        self._start_departure_chain(t, j, uid, src)
        self.plain_read_waves += 1
        if self._tel:
            self._emit_wave(t, READ_WAVE, uid, src, j)

    def _start_write(self, t: int, i: int, ct_out: int) -> None:
        uid = self._pend_uid[i]
        arrival = self._pend_arr[i]
        dst = self._pend_dst[i]
        if arrival + self._b <= t:
            self.deadline_overrides += 1
            if self._tel:
                self._m_deadline.inc()
        if self._san:
            self.sanitizer.wave_initiated(t, uid)
        self._free -= self._quanta
        occ = self.config.addresses - self._free
        if occ > self._peak_occ:
            self._peak_occ = occ
        self._rec[uid & self._mask][_WRITE_INIT] = t
        self._pend_uid[i] = -1
        self.stats.record_accept(arrival)
        self._reserve_chain(t)
        if ct_out >= 0:  # WRITE_CT: store and depart in the same chain
            self._start_departure_chain(t, ct_out, uid, i)
            self.cut_through_waves += 1
            if self._tel:
                self._emit_wave(t, CUT_THROUGH, uid, i, ct_out)
        else:
            self._queues[dst].append((uid, arrival, t, i))
            self.write_waves += 1
            if self._tel:
                self._emit_wave(t, STORE_WAVE, uid, i, dst)
            busy = t + self._w  # control occupied through the chain's last stage
            if busy > self._busy_until:
                self._busy_until = busy

    # -- arrivals ----------------------------------------------------------------
    def _accept_arrivals(self, t: int) -> None:
        b = self._b
        w = self._w
        n = self._n
        in_uid = self._in_uid
        in_next = self._in_next
        pend_uid = self._pend_uid
        credit_flow = self.config.credit_flow
        for i in range(n):
            if in_uid[i] < 0:
                if credit_flow and self._credits[i] <= 0:
                    continue
                if self._muted:
                    continue
                dst = self.source.maybe_start(t, i)
                if dst is None:
                    continue
                if not 0 <= dst < n:
                    raise ValueError(f"source produced bad destination {dst}")
                self._start_packet(t, i, dst)
            k = in_next[i]
            if k > 0 and k % b == 0 and pend_uid[i] >= 0:
                # The packet's next quantum reuses input latch 0 while its
                # store chain never started: the packet is lost.
                self._drop_pending(t, i, DROP_QUANTUM_OVERRUN)
            k += 1
            if k == w:
                in_uid[i] = -1
                in_next[i] = 0
            else:
                in_next[i] = k

    def _start_packet(self, t: int, i: int, dst: int) -> None:
        if self._pend_uid[i] >= 0:
            if self.config.credit_flow:
                raise DeadlineMissedError(
                    f"input {i}: packet {self._pend_uid[i]} overrun at cycle "
                    f"{t} despite credit flow control"
                )
            self._drop_pending(t, i, DROP_HEAD_OVERRUN)
        uid = self._next_uid
        self._next_uid = uid + 1
        rec = self._rec[uid & self._mask]
        rec[_ARRIVAL] = t
        rec[_WRITE_INIT] = -1
        rec[_SRC] = i
        rec[_DST] = dst
        self._in_uid[i] = uid
        self._in_next[i] = 0
        admitted = self._policy_trivial or self._policy_admits(t, dst)
        if admitted:
            self._pend_uid[i] = uid
            self._pend_dst[i] = dst
            self._pend_arr[i] = t
        if self._san:
            self.sanitizer.packet_injected(t, uid)
        self.stats.record_offer(t)
        if self._tel:
            self.telemetry.events.emit(t, ARRIVE, uid, src=i, dst=dst)
            self._m_arrivals[i].inc()
        if not admitted:
            # Refused at the door: no pending store exists, so the packet
            # competes for nothing; its words still stream (and are
            # discarded) for the full W cycles, exactly as in the checked
            # kernel.
            if self._san:
                self.sanitizer.packet_dropped(t, uid)
            self.stats.record_drop(t)
            self.policy_drops += 1
            if self._tel:
                self._emit_drop(t, i, uid, dst, DROP_POLICY)
            return
        if (
            t >= self.stats.warmup
            and self.next_wave_ok[dst] <= t + 1
            and not self._queues[dst]
            and not any(
                self._pend_uid[k] >= 0 and self._pend_dst[k] == dst
                for k in range(self._n)
                if k != i
            )
        ):
            # §3.4 staggered-initiation instrumentation (see the checked model).
            self._unobstructed.add(uid)
        if self.config.credit_flow:
            self._credits[i] -= 1

    def _policy_admits(self, t: int, dst: int) -> bool:
        """Consult the admission policy.  ``self._free`` at the arrival
        phase *is* the canonical free count (phase-0 releases and this
        cycle's write already applied); ``held`` adds the at-most-one
        departure chain in flight per output to the queue depths."""
        next_ok = self.next_wave_ok
        held = [
            len(q) + (1 if next_ok[j] > t else 0)
            for j, q in enumerate(self._queues)
        ]
        return self.policy.admit(dst, self._free, held, self._quanta)

    def _drop_pending(self, t: int, i: int, cause: str) -> None:
        uid = self._pend_uid[i]
        if self._san:
            self.sanitizer.packet_dropped(t, uid)
        self.stats.record_drop(self._pend_arr[i])
        self.overrun_drops += 1
        self._unobstructed.discard(uid)
        if self._tel:
            self._emit_drop(t, i, uid, self._pend_dst[i], cause)
        self._pend_uid[i] = -1


def make_pipelined_switch(
    config: PipelinedSwitchConfig,
    source: PacketSource,
    fast: bool = False,
    telemetry: Telemetry | None = None,
    sanitizer: Sanitizer | None = None,
    kernel: str | None = None,
    batch_cycles: int | None = None,
    jit: bool | None = None,
) -> "PipelinedSwitch | FastPipelinedSwitch | BatchPipelinedSwitch":
    """Build one of the three kernels: checked, wave-level fast, or batch.

    Select with ``kernel`` (``"checked"`` / ``"fast"`` / ``"batch"``); the
    legacy ``fast=True`` flag is equivalent to ``kernel="fast"``.  All
    three produce bit-identical statistics on the same seed; the fast
    kernel skips every structural-invariant check (see module docstring)
    and the batch kernel additionally advances in cycle batches over an
    arrival tape (``batch_cycles`` sets the window; ``jit`` opts into the
    numba array core when available).  Pass a
    :class:`~repro.telemetry.Telemetry` bundle to collect metrics and
    lifecycle events — the streams are equivalent between kernels.

    Every invalid configuration — bad :class:`PipelinedSwitchConfig`
    fields, a source whose shape does not match the switch, or an
    arbitration policy the fast kernel does not model — raises
    :class:`~repro.core.errors.ConfigError` (a ``ValueError``), never a
    bare assertion or type-specific exception, so callers can surface one
    clean error instead of a traceback.
    """
    if kernel is None:
        kernel = "fast" if fast else "checked"
    if kernel == "batch":
        from repro.core.batchpath import BatchPipelinedSwitch, DEFAULT_BATCH_CYCLES

        return BatchPipelinedSwitch(
            config, source, telemetry=telemetry, sanitizer=sanitizer,
            batch_cycles=DEFAULT_BATCH_CYCLES if batch_cycles is None
            else batch_cycles,
            jit=jit,
        )
    if batch_cycles is not None:
        raise ConfigError(
            f"batch_cycles only applies to the batch kernel, not {kernel!r}"
        )
    if jit:
        raise ConfigError(
            f"jit only applies to the batch kernel, not {kernel!r}"
        )
    if kernel == "fast":
        return FastPipelinedSwitch(config, source, telemetry=telemetry,
                                   sanitizer=sanitizer)
    if kernel != "checked":
        raise ConfigError(
            f"unknown kernel {kernel!r}: expected 'checked', 'fast' or 'batch'"
        )
    return PipelinedSwitch(config, source, telemetry=telemetry,
                           sanitizer=sanitizer)
