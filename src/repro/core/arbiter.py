"""Per-cycle wave-initiation arbitration (paper §3.3).

Every cycle at most one wave may start at bank ``M0``.  The arbiter chooses
among:

* **departures** — a READ wave for an output link whose queue has a packet,
  or a combined WRITE_CT wave when the head of an *arriving* packet can cut
  through to an idle output whose queue is empty;
* **stores** — a plain WRITE wave for an arriving packet.

Following the paper, departures normally win ("higher priority is given to
the outgoing links, because any delay to supply data to an outgoing link
leads to idle time on that link, while delays to store incoming packets ...
have no direct consequence").  A store whose *deadline* has arrived — the
next packet's head is about to overwrite input latch 0 — overrides
everything; the simulator's invariant checks prove this override suffices
(no deadline is ever missed, see ``tests/core/test_invariants.py``).

Round-robin pointers provide fairness among outputs and among inputs, as in
the Telegraphos I arbitration FPGA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Priority(enum.Enum):
    """Arbitration policy knob (ablation bench E5 compares these)."""

    READS_FIRST = "reads_first"  # the paper's choice
    WRITES_FIRST = "writes_first"  # ablation: stores win over departures
    OLDEST_FIRST = "oldest_first"  # ablation: global FCFS over request times


@dataclass(slots=True)
class WriteRequest:
    """A fully-described pending store: packet arriving on ``in_link``."""

    in_link: int
    dst: int
    uid: int
    arrival_cycle: int  # head word latched at end of this cycle

    @property
    def earliest(self) -> int:
        return self.arrival_cycle + 1

    def deadline(self, depth: int) -> int:
        """Last cycle the store wave may initiate (inclusive)."""
        return self.arrival_cycle + depth


@dataclass(slots=True)
class ReadCandidate:
    """A departure-eligible output: ``queued_since`` orders OLDEST_FIRST."""

    out_link: int
    queued_since: int
    cut_through_write: WriteRequest | None = None  # WRITE_CT when set


@dataclass(slots=True)
class Decision:
    """Arbiter verdict for one cycle."""

    kind: str  # "read", "write_ct", "write", or "idle"
    out_link: int | None = None
    write: WriteRequest | None = None


class WaveArbiter:
    """Chooses the (at most one) wave initiated each cycle."""

    def __init__(
        self, n_in: int, n_out: int, depth: int, priority: Priority = Priority.READS_FIRST
    ) -> None:
        self.n_in = n_in
        self.n_out = n_out
        self.depth = depth
        self.priority = priority
        self._out_rr = 0
        self._in_rr = 0

    def decide(
        self,
        cycle: int,
        reads: list[ReadCandidate],
        writes: list[WriteRequest],
    ) -> Decision:
        """Pick this cycle's wave.

        ``reads`` must only contain outputs that are currently idle (wave
        spacing respected); ``writes`` only stores whose window is open
        (``earliest <= cycle <= deadline``).  Both preconditions are the
        switch's responsibility; the arbiter enforces the policy.
        """
        # Deadline stores override everything regardless of policy: missing
        # one would corrupt an input latch.  Earliest deadline first.
        urgent = [w for w in writes if w.deadline(self.depth) <= cycle]
        if urgent:
            w = min(urgent, key=lambda w: (w.deadline(self.depth), w.in_link))
            return self._as_write_decision(w, reads)

        choice_read = self._pick_read(reads)
        choice_write = self._pick_write(writes)

        if self.priority is Priority.READS_FIRST:
            ordered = (choice_read, choice_write)
        elif self.priority is Priority.WRITES_FIRST:
            ordered = (choice_write, choice_read)
        else:  # OLDEST_FIRST: compare request ages
            r_age = choice_read.queued_since if choice_read else None
            w_age = choice_write.arrival_cycle if choice_write else None
            if r_age is not None and (w_age is None or r_age <= w_age):
                ordered = (choice_read, choice_write)
            else:
                ordered = (choice_write, choice_read)

        for choice in ordered:
            if choice is None:
                continue
            if isinstance(choice, ReadCandidate):
                self._out_rr = (choice.out_link + 1) % self.n_out
                if choice.cut_through_write is not None:
                    return Decision(
                        kind="write_ct",
                        out_link=choice.out_link,
                        write=choice.cut_through_write,
                    )
                return Decision(kind="read", out_link=choice.out_link)
            self._in_rr = (choice.in_link + 1) % self.n_in
            return Decision(kind="write", write=choice)
        return Decision(kind="idle")

    # -- helpers ---------------------------------------------------------------
    def _pick_read(self, reads: list[ReadCandidate]) -> ReadCandidate | None:
        if not reads:
            return None
        ptr = self._out_rr
        return min(reads, key=lambda r: (r.out_link - ptr) % self.n_out)

    def _pick_write(self, writes: list[WriteRequest]) -> WriteRequest | None:
        if not writes:
            return None
        # Earliest deadline first; round-robin pointer breaks ties fairly.
        ptr = self._in_rr
        return min(
            writes,
            key=lambda w: (w.deadline(self.depth), (w.in_link - ptr) % self.n_in),
        )

    def _as_write_decision(
        self, w: WriteRequest, reads: list[ReadCandidate]
    ) -> Decision:
        """An urgent store still cuts through if its output happens to be free."""
        for r in reads:
            if r.cut_through_write is w:
                self._out_rr = (r.out_link + 1) % self.n_out
                return Decision(kind="write_ct", out_link=r.out_link, write=w)
        self._in_rr = (w.in_link + 1) % self.n_in
        return Decision(kind="write", write=w)
