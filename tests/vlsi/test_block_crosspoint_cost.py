"""Tests for the block-crosspoint silicon model (paper §3.5's scaling path)."""

import pytest

from repro.vlsi import block_crosspoint_cost, block_size_sweep


def test_validation():
    with pytest.raises(ValueError):
        block_crosspoint_cost(n=16, g=3)  # 3 does not divide 16


def test_full_block_is_single_shared_buffer():
    c = block_crosspoint_cost(n=16, g=16)
    assert c.blocks == 1
    assert c.quantum_bits == 2 * 16 * 16
    # consistent with the E3/[HlKa88] shared sizing at the same point
    assert 40 <= c.capacity_per_block <= 90


def test_quantum_shrinks_with_block_size():
    """The §3.5 escape hatch: smaller blocks -> smaller packet quantum."""
    sweep = block_size_sweep(n=16)
    quanta = [c.quantum_bits for c in sweep]
    assert quanta == sorted(quanta, reverse=True)
    assert sweep[0].quantum_bits == 8 * sweep[-1].quantum_bits  # g 16 -> 2


def test_total_capacity_grows_as_sharing_shrinks():
    """Partitioned pools cannot share: the memory bill rises steeply."""
    sweep = block_size_sweep(n=16)
    totals = [c.total_capacity for c in sweep]
    assert totals == sorted(totals)
    assert totals[-1] > 10 * totals[0]


def test_datapath_area_roughly_constant():
    """(n/g)^2 blocks x (2gw)^2 wires each = (2nw)^2 regardless of g."""
    sweep = block_size_sweep(n=16)
    areas = [c.datapath_mm2 for c in sweep]
    assert max(areas) / min(areas) < 1.05


def test_memory_area_dominates_at_small_blocks():
    small = block_crosspoint_cost(n=16, g=2)
    assert small.memory_mm2 > small.datapath_mm2


def test_sizing_validated_by_simulation():
    """The analytic per-block capacity achieves the loss target in the
    behavioural block-crosspoint simulator."""
    from repro.switches import BlockCrosspoint
    from repro.traffic import BernoulliUniform

    n, g, load, target = 8, 4, 0.8, 1e-2
    c = block_crosspoint_cost(n=n, g=g, load=load, loss_target=target)
    sw = BlockCrosspoint(
        n, n, block=g, capacity_per_block=c.capacity_per_block,
        warmup=3000, seed=1,
    )
    stats = sw.run(BernoulliUniform(n, n, load, seed=2), 60_000)
    assert stats.loss_probability <= target * 2
