"""The admission policy as a first-class scenario parameter.

``params.policy`` must round-trip through scenario files, expand as a
sweep axis, surface did-you-mean errors at validation time (not mid-run),
be rejected by architectures that have no policy knob, and show up in
executed results as the ``policy_drops`` statistic.
"""

import json

import pytest

from repro.scenario import (
    Scenario,
    ScenarioError,
    load_scenarios,
    run_scenario,
    validate_scenario,
)


def _pipelined(policy=None, arch="pipelined_fast", **over):
    params = {"n": 4, "addresses": 16}
    if policy is not None:
        params["policy"] = policy
    spec = dict(
        name="pol", arch=arch, horizon=2000, warmup=200, params=params,
        traffic={"kind": "renewal_tape", "load": 0.9}, seeds=[3],
    )
    spec.update(over)
    return Scenario.from_dict(spec)


class TestSpecPlane:
    def test_policy_param_round_trips_through_json(self, tmp_path):
        sc = _pipelined("dynamic:alpha=1.0")
        path = tmp_path / "pol.json"
        path.write_text(json.dumps(sc.to_dict()))
        (loaded,) = load_scenarios(path)
        assert loaded == sc
        assert loaded.params["policy"] == "dynamic:alpha=1.0"

    def test_policy_param_loads_from_toml(self, tmp_path):
        path = tmp_path / "pol.toml"
        path.write_text(
            'name = "pol"\narch = "pipelined_fast"\nhorizon = 1000\n'
            '[params]\nn = 4\naddresses = 16\npolicy = "static:cap=4"\n'
            '[traffic]\nkind = "renewal_tape"\nload = 0.9\n'
        )
        (sc,) = load_scenarios(path)
        assert sc.params["policy"] == "static:cap=4"
        validate_scenario(sc)

    def test_policy_is_a_sweep_axis(self):
        base = _pipelined("complete")
        grid = {"params.policy": ["complete", "dynamic:alpha=1.0"]}
        cells = base.expand(grid)
        assert [sc.params["policy"] for sc in cells] == [
            "complete", "dynamic:alpha=1.0",
        ]
        assert len({sc.name for sc in cells}) == 2  # distinct cell names

    def test_bad_policy_rejected_at_validation(self):
        with pytest.raises(ScenarioError, match="did you mean 'dynamic'"):
            validate_scenario(_pipelined("dynamc:alpha=1.0"))
        with pytest.raises(ScenarioError, match="missing parameter"):
            validate_scenario(_pipelined("static"))

    def test_arch_without_policy_knob_rejects_it(self):
        sc = Scenario.from_dict(dict(
            name="pol", arch="wide", horizon=1000,
            params={"n": 4, "policy": "complete"},
            traffic={"kind": "renewal", "load": 0.5},
        ))
        with pytest.raises(ScenarioError, match="policy"):
            validate_scenario(sc)


class TestExecution:
    def test_policy_drops_in_results(self):
        result = run_scenario(_pipelined("static:cap=2"), seed=3)
        assert result["stats"]["policy_drops"] > 0

    def test_complete_sharing_reports_zero_policy_drops(self):
        result = run_scenario(_pipelined("complete"), seed=3)
        assert result["stats"]["policy_drops"] == 0
        # ... and is bit-identical to a spec with no policy at all
        seed_result = run_scenario(_pipelined(), seed=3)
        assert result["stats"] == seed_result["stats"]

    def test_shared_arch_threads_policy(self):
        sc = Scenario.from_dict(dict(
            name="pol-slotted", arch="shared", horizon=3000,
            params={"n": 4, "capacity": 12, "policy": "dynamic:alpha=0.5"},
            traffic={"kind": "hotspot", "load": 0.9}, seeds=[1],
        ))
        result = run_scenario(sc, seed=1)
        assert result["stats"]["policy_drops"] > 0

    def test_shared_arch_infinite_pool_refuses_policy(self):
        sc = Scenario.from_dict(dict(
            name="pol-slotted", arch="shared", horizon=1000,
            params={"n": 4, "policy": "dynamic:alpha=0.5"},
            traffic={"kind": "uniform", "load": 0.5},
        ))
        with pytest.raises(Exception, match="finite"):
            run_scenario(sc, seed=1)
