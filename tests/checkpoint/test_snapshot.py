"""Bit-identical checkpoint/restore across all three kernel tiers.

The contract: ``run(N)`` equals ``run(k); save; restore; run(N - k)`` in
every statistic, latency histogram, drop-taxonomy entry and telemetry
event — for the checked, fast and batch kernels, through a real JSON
round trip, including k inside a batch window and mid-packet-chain.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    CheckpointError,
    CheckpointUnsupportedError,
    fingerprint,
    fingerprint_doc,
    load,
    restore,
    restore_switch,
    save,
    snapshot_switch,
)
from repro.core import (
    BatchRenewalSource,
    FastPipelinedSwitch,
    PipelinedSwitch,
    PipelinedSwitchConfig,
    RenewalPacketSource,
    SaturatingSource,
    TracePacketSource,
    make_pipelined_switch,
)
from repro.drc.sanitizer import Sanitizer
from repro.sim.packet import reset_packet_ids
from repro.telemetry import Telemetry


def _build(kernel, *, n=4, addresses=32, quanta=1, load=0.7, seed=42,
           telemetry=False, sanitize=False, batch_cycles=64, traffic="renewal"):
    """One (kernel, config, source) simulation, deterministically."""
    reset_packet_ids()
    cfg = PipelinedSwitchConfig(n=n, addresses=addresses, quanta=quanta)
    if kernel == "batch":
        if traffic == "saturating":
            src = SaturatingSource(n, cfg.packet_words, seed=seed)
        else:
            src = BatchRenewalSource(n, cfg.packet_words, load=load, seed=seed)
    elif traffic == "saturating":
        src = SaturatingSource(n, cfg.packet_words, seed=seed)
    else:
        src = RenewalPacketSource(n, cfg.packet_words, load=load, seed=seed)
    tel = Telemetry.on(16) if telemetry else None
    san = Sanitizer(telemetry=tel) if sanitize else None
    if kernel == "checked":
        return PipelinedSwitch(cfg, src, telemetry=tel, sanitizer=san)
    if kernel == "fast":
        return FastPipelinedSwitch(cfg, src, telemetry=tel, sanitizer=san)
    return make_pipelined_switch(cfg, src, telemetry=tel, kernel="batch",
                                 batch_cycles=batch_cycles)


def _assert_resume_identical(build, n_total, k):
    """run(N) fingerprint == run(k) + JSON round trip + run(N-k)."""
    ref = build()
    ref.run(n_total)
    sw = build()
    sw.run(k)
    doc = json.loads(json.dumps(snapshot_switch(sw)))
    resumed = restore_switch(doc)
    resumed.run(n_total - k)
    assert fingerprint_doc(resumed) == fingerprint_doc(ref)
    assert fingerprint(resumed) == fingerprint(ref)


# -- property test over random configs, kernels and split points -------------

@settings(max_examples=25, deadline=None)
@given(
    kernel=st.sampled_from(["checked", "fast", "batch"]),
    n=st.sampled_from([2, 4]),
    addresses=st.sampled_from([16, 32]),
    quanta=st.sampled_from([1, 2]),
    load=st.sampled_from([0.5, 0.9]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    k=st.integers(min_value=1, max_value=499),
    telemetry=st.booleans(),
    batch_cycles=st.sampled_from([1, 64, 333]),
)
def test_resume_is_bit_identical(kernel, n, addresses, quanta, load, seed, k,
                                 telemetry, batch_cycles):
    n_total = 500

    def build():
        return _build(kernel, n=n, addresses=addresses, quanta=quanta,
                      load=load, seed=seed, telemetry=telemetry,
                      batch_cycles=batch_cycles)

    _assert_resume_identical(build, n_total, k)


# -- deterministic corner cases ----------------------------------------------

def test_k_inside_batch_window():
    """k far from any window boundary (window 64, k 37): the batch kernel
    must land its straddler state (pending departures, lean due bits)
    exactly where the uninterrupted run has it."""
    _assert_resume_identical(lambda: _build("batch", batch_cycles=64),
                             n_total=1000, k=37)


def test_k_mid_packet_chain():
    """quanta=2 saturating traffic keeps multi-quantum chains in flight at
    every cycle, so k=251 necessarily splits packets mid-chain."""
    for kernel in ("checked", "fast"):
        _assert_resume_identical(
            lambda: _build(kernel, quanta=2, traffic="saturating", seed=7),
            n_total=600, k=251)


def test_checked_with_sanitizer_resumes():
    _assert_resume_identical(
        lambda: _build("checked", telemetry=True, sanitize=True, seed=5),
        n_total=500, k=203)


def test_batch_saturating_tape_cursor_restored():
    _assert_resume_identical(
        lambda: _build("batch", traffic="saturating", batch_cycles=32, seed=11),
        n_total=800, k=333)


def test_trace_source_resume_and_exhaustion():
    schedule = {0: [(0, 1), (10, 2)], 1: [(5, 3)], 2: [], 3: [(40, 0)]}

    def build(cls):
        reset_packet_ids()
        cfg = PipelinedSwitchConfig(n=4, addresses=32)
        src = TracePacketSource(4, cfg.packet_words,
                                {k: list(v) for k, v in schedule.items()})
        return cls(cfg, src)

    for cls in (PipelinedSwitch, FastPipelinedSwitch):
        ref = build(cls)
        ref.run(10_000)
        assert ref.trace_ended_at is not None
        assert ref.cycle == ref.trace_ended_at < 10_000  # early termination
        assert ref.stats.delivered == 4
        sw = build(cls)
        sw.run(30)
        resumed = restore_switch(snapshot_switch(sw))
        resumed.run(10_000 - 30)
        assert fingerprint(resumed) == fingerprint(ref)
        # resuming a finished run burns zero cycles (stable fixed point)
        before = ref.cycle
        ref.run(100)
        assert ref.cycle == before


# -- save/load plumbing -------------------------------------------------------

def test_save_load_restore_roundtrip(tmp_path):
    sw = _build("fast", seed=9)
    sw.run(250)
    path = tmp_path / "deep" / "state.ckpt.json"
    doc = save(sw, path)
    assert path.exists() and not path.with_name(path.name + ".tmp").exists()
    assert doc["format"] == SNAPSHOT_FORMAT
    assert doc["version"] == SNAPSHOT_VERSION
    assert load(path) == json.loads(json.dumps(doc))
    resumed = restore(path)
    assert fingerprint(resumed) == fingerprint(sw)


def test_bad_format_and_version_are_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": "something-else", "version": 1}))
    with pytest.raises(CheckpointError):
        load(path)
    path.write_text(json.dumps({"format": SNAPSHOT_FORMAT,
                                "version": SNAPSHOT_VERSION + 1}))
    with pytest.raises(CheckpointError):
        load(path)
    with pytest.raises(CheckpointError):
        load(tmp_path / "missing.json")


def test_unsupported_kernel_refused():
    class NotASwitch:
        pass

    with pytest.raises(CheckpointUnsupportedError):
        snapshot_switch(NotASwitch())


def test_unsupported_source_refused():
    reset_packet_ids()
    cfg = PipelinedSwitchConfig(n=2, addresses=16)

    class WeirdSource(RenewalPacketSource):
        pass

    sw = PipelinedSwitch(cfg, WeirdSource(2, cfg.packet_words, load=0.5, seed=1))
    with pytest.raises(CheckpointUnsupportedError):
        snapshot_switch(sw)


def test_restored_doc_survives_fresh_process_semantics():
    """Restore resets the global packet-uid counter, so state restored
    after unrelated simulations behaves like a fresh process."""
    sw = _build("checked", seed=13)
    sw.run(123)
    doc = snapshot_switch(sw)
    ref = _build("checked", seed=13)
    ref.run(400)
    # pollute the process: run something unrelated, moving the uid counter
    other = _build("checked", seed=99)
    other.run(200)
    resumed = restore_switch(doc)
    resumed.run(400 - 123)
    assert fingerprint(resumed) == fingerprint(ref)
