"""Tests reproducing every §4/§5 number from the calibrated model."""

import pytest

from repro.vlsi import (
    factor_of_22_report,
    pipelined_vs_prizma,
    pipelined_vs_wide,
    shared_vs_input_buffering,
    telegraphos1_report,
    telegraphos2_report,
    telegraphos3_report,
)


class TestTelegraphos1:
    def test_config_figures(self):
        r = telegraphos1_report()
        assert r["model"]["links"] == r["published"]["links"]
        assert r["model"]["link_mbps"] == pytest.approx(
            r["published"]["link_mbps"], rel=0.01
        )
        assert r["model"]["packet_bytes"] == r["published"]["packet_bytes"]
        assert r["model"]["stages"] == r["published"]["stages"]
        assert r["model"]["sram_chips"] == r["published"]["sram_chips"]

    def test_gate_counts_same_ballpark(self):
        r = telegraphos1_report()
        assert r["model"]["datapath_gates"] == pytest.approx(
            r["published"]["datapath_gates"], rel=0.35
        )
        assert r["model"]["control_gates"] == pytest.approx(
            r["published"]["control_gates"], rel=0.35
        )


class TestTelegraphos2:
    def test_all_die_numbers(self):
        r = telegraphos2_report()
        pub, mod = r["published"], r["model"]
        assert mod["megacell_mm2"] == pytest.approx(pub["megacell_mm2"], rel=0.02)
        assert mod["sram_total_mm2"] == pytest.approx(pub["sram_total_mm2"], rel=0.05)
        assert mod["peripheral_cells_mm2"] == pytest.approx(
            pub["peripheral_cells_mm2"], rel=0.1
        )
        assert mod["bus_routing_mm2"] == pytest.approx(pub["bus_routing_mm2"], rel=0.1)
        assert mod["buffer_total_mm2"] == pytest.approx(pub["buffer_total_mm2"], rel=0.07)
        assert mod["clock_ns"] == pytest.approx(pub["clock_ns"], rel=0.01)
        assert mod["link_mbps"] == pytest.approx(pub["link_mbps"], rel=0.01)


class TestTelegraphos3:
    def test_all_buffer_numbers(self):
        r = telegraphos3_report()
        pub, mod = r["published"], r["model"]
        for key in ("links", "stages", "packets", "packet_bits"):
            assert mod[key] == pub[key]
        assert mod["buffer_kbit"] == pub["buffer_kbit"]
        assert mod["clock_worst_ns"] == pytest.approx(pub["clock_worst_ns"])
        assert mod["clock_typical_ns"] == pytest.approx(pub["clock_typical_ns"])
        assert mod["link_gbps_worst"] == pytest.approx(pub["link_gbps_worst"])
        assert mod["aggregate_gbps"] == pytest.approx(pub["aggregate_gbps"])
        assert mod["peripheral_mm2"] == pytest.approx(pub["peripheral_mm2"], rel=0.1)
        assert mod["buffer_total_mm2"] == pytest.approx(
            pub["buffer_total_mm2"], rel=0.05
        )
        assert mod["stdcell_peripheral_4x4_mm2"] == pytest.approx(
            pub["stdcell_peripheral_4x4_mm2"], rel=0.1
        )

    def test_factor_of_22(self):
        """§4.4: 2x links x 2.5x clock x 4.5x area ~ 22."""
        r = factor_of_22_report()
        assert r["model"]["links"] == pytest.approx(2.0)
        assert r["model"]["clock"] == pytest.approx(2.5, rel=0.01)
        assert r["model"]["area"] == pytest.approx(4.5, rel=0.15)
        assert r["model"]["product"] == pytest.approx(22.0, rel=0.2)

    def test_8x8_stdcell_18x_larger(self):
        """§4.4: an 8x8 standard-cell peripheral would be ~18x the
        full-custom one (square-of-links scaling from the 41 mm^2 figure)."""
        from repro.vlsi import (
            Style,
            Technology,
            pipelined_peripheral_area,
        )

        std = Technology(name="1um std", feature_um=1.0, style=Style.STANDARD_CELL)
        fc = pipelined_peripheral_area(
            __import__("repro.vlsi", fromlist=["TELEGRAPHOS_III_TECH"]).TELEGRAPHOS_III_TECH,
            8, 16, 16,
        ).area_mm2
        big = pipelined_peripheral_area(std, 8, 16, 16).area_mm2
        assert big / fc == pytest.approx(18.0, rel=0.1)


class TestSection5:
    def test_pipelined_vs_wide(self):
        """§5.2: 9 vs 13 mm^2, ~30 % smaller peripheral."""
        r = pipelined_vs_wide()
        assert r["pipelined_peripheral_mm2"] == pytest.approx(9.0, rel=0.1)
        assert r["wide_peripheral_mm2"] == pytest.approx(13.0, rel=0.1)
        assert r["peripheral_saving"] == pytest.approx(0.30, abs=0.05)
        assert r["pipelined_total_mm2"] < r["wide_total_mm2"]

    def test_pipelined_vs_prizma(self):
        """§5.3: crossbars 16x, shift registers 4x."""
        r = pipelined_vs_prizma()
        assert r["crosspoint_ratio"] == pytest.approx(16.0)
        assert r["analytic_ratio"] == pytest.approx(16.0)
        assert r["prizma_crossbar_mm2"] > 10 * r["pipelined_crossbar_mm2"]
        assert r["shift_register_penalty"] == pytest.approx(4.0)

    def test_shared_vs_input(self):
        """§5.1: H_s << H_i at equal performance, so the shared storage
        array is much smaller; datapath blocks are comparable (2 vs 1+sched)."""
        r = shared_vs_input_buffering()
        assert r.height_ratio > 5
        assert r.shared_storage_mm2 < r.input_storage_mm2 / 5
        assert r.shared_datapath_mm2 == pytest.approx(
            2 * r.input_datapath_mm2, rel=0.1
        )
