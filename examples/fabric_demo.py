#!/usr/bin/env python3
"""Multistage fabric demo: single-chip switches as building blocks.

The paper's introduction positions the switch chip as a building block "for
larger, multi-stage switches and networks".  This demo assembles a 64-port
omega fabric from two ranks of 8x8 elements and shows how the element's
buffer architecture — the paper's whole subject — determines fabric-level
performance: FIFO input-queued elements tree-saturate, shared-buffer
elements keep the fabric near line rate.

Run:  python examples/fabric_demo.py
"""

from repro.fabric import OmegaFabric
from repro.switches import FifoInputQueued, Islip, OutputQueued, SharedBuffer, VoqInputBuffered
from repro.switches.harness import format_table
from repro.traffic import BernoulliUniform

K, STAGES = 8, 2
N = K**STAGES
SLOTS = 6000


def main() -> None:
    print(f"omega fabric: {N} ports = {STAGES} ranks of {N // K} {K}x{K} elements\n")
    elements = {
        "FIFO input-queued": lambda: FifoInputQueued(K, K, seed=1),
        "VOQ + iSLIP": lambda: VoqInputBuffered(K, K, Islip(iterations=4)),
        "output-queued": lambda: OutputQueued(K, K, seed=2),
        "shared-buffer (pipelined memory)": lambda: SharedBuffer(K, K, seed=3),
    }
    rows = []
    for name, factory in elements.items():
        fab = OmegaFabric(K, STAGES, factory)
        fab.warmup = SLOTS // 5
        fab.run(BernoulliUniform(N, N, 1.0, seed=4), SLOTS)
        s = fab.summary()
        rows.append([name, round(s["throughput"], 3), round(s["mean_delay"], 1),
                     int(s["misrouted"])])
    print(format_table(
        ["element architecture", "fabric saturation", "mean delay (slots)", "misrouted"],
        rows,
        title="Element architecture vs fabric performance (offered load 1.0)",
    ))
    print("\nThe single-switch ranking (paper §2) amplifies at fabric scale:")
    print("a blocked FIFO element back-pressures entire subtrees, while the")
    print("shared buffer absorbs transient contention inside each element.")


if __name__ == "__main__":
    main()
