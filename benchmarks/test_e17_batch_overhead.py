"""E17 — Batch-kernel degenerate-window overhead guard.

``batch_cycles`` is a throughput knob, never a semantics knob: at
``batch_cycles=1`` the batch kernel degenerates to one window per cycle,
paying its per-window costs (tape slicing, log flushing, engine dispatch)
with none of the amortization that makes large windows fast.  That
worst case must stay cheap — within 2x of the wave-level fast kernel on
the same workload — or the per-window overhead has grown and every batch
size is paying it.

Wall time on a shared machine is noisy, so the guard samples fast+batch
pairs (best-of, early exit) and compares *ratios* measured in the same
process on the same arrival tape; a scheduling stall hits both kernels
and cancels.  Bit-identity of the statistics is asserted on the side —
a fast degenerate window that diverges is worthless.
"""

import time

from conftest import show

from repro.core import (
    BatchRenewalSource,
    FastPipelinedSwitch,
    PipelinedSwitchConfig,
    make_pipelined_switch,
)
from repro.sim.packet import reset_packet_ids
from repro.switches.harness import format_table

CYCLES = 60_000  # relative guard: both kernels run the same horizon
MAX_OVERHEAD = 2.0  # batch_cycles=1 may cost at most 2x the fast kernel
MAX_REPEATS = 6


def _build(kernel: str, batch_cycles: int | None = None):
    reset_packet_ids()
    cfg = PipelinedSwitchConfig(n=8, addresses=128)
    src = BatchRenewalSource(n_out=8, packet_words=cfg.packet_words,
                             load=0.6, seed=1)
    if kernel == "fast":
        return FastPipelinedSwitch(cfg, src)
    return make_pipelined_switch(cfg, src, kernel="batch",
                                 batch_cycles=batch_cycles)


def _throughput(kernel: str, batch_cycles: int | None = None):
    sw = _build(kernel, batch_cycles)
    t0 = time.perf_counter()
    sw.run(CYCLES)
    sw.drain()
    elapsed = time.perf_counter() - t0
    return sw.cycle / elapsed, sw


def _fingerprint(sw) -> tuple:
    return (sw.stats, sw.ct_latency, sw.total_latency, sw.cycle,
            sw.write_waves, sw.cut_through_waves, sw.plain_read_waves,
            sw.idle_cycles, sw.overrun_drops)


def _experiment():
    best_fast = best_b1 = best_ratio = 0.0
    fp_fast = fp_b1 = None
    for _ in range(MAX_REPEATS):
        fast, sw_fast = _throughput("fast")
        b1, sw_b1 = _throughput("batch", batch_cycles=1)
        fp_fast, fp_b1 = _fingerprint(sw_fast), _fingerprint(sw_b1)
        best_fast = max(best_fast, fast)
        best_b1 = max(best_b1, b1)
        best_ratio = max(best_ratio, best_b1 / best_fast)
        if best_ratio >= 1.0 / MAX_OVERHEAD:
            break
    big, sw_big = _throughput("batch", batch_cycles=4096)
    assert _fingerprint(sw_big) == fp_fast
    return best_fast, best_b1, best_ratio, big, fp_fast, fp_b1


def test_e17_batch_window_overhead(run_once):
    fast, b1, ratio, big, fp_fast, fp_b1 = run_once(_experiment)
    assert fp_b1 == fp_fast, (
        "batch_cycles=1 statistics diverge from the fast kernel")
    rows = [
        ["fast (wave-level reference)", round(fast), "1.00x"],
        ["batch, batch_cycles=1 (degenerate)", round(b1),
         f"{ratio:.2f}x"],
        ["batch, batch_cycles=4096", round(big), f"{big / fast:.2f}x"],
    ]
    show(format_table(
        ["E15 8x8 load 0.6 drop-tail (tape)", "cycles/sec", "vs fast"],
        rows,
        title="E17: batch-window overhead (batch_cycles=1 guarded at "
              f"<{MAX_OVERHEAD:.0f}x the fast kernel)",
    ))
    assert ratio >= 1.0 / MAX_OVERHEAD, (
        f"batch kernel at batch_cycles=1 reached {b1:.0f} cycles/sec, "
        f"{1 / ratio:.2f}x slower than the fast kernel ({fast:.0f}) — "
        "per-window overhead exceeds the 2x budget"
    )
