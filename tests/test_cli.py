"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.parametrize(
    "arch", ["fifo", "voq", "output", "shared", "crosspoint", "block",
             "speedup", "interleaved", "knockout"],
)
def test_simulate_every_architecture(arch, capsys):
    rc = main(["simulate", "--arch", arch, "-n", "4", "--load", "0.5",
               "--slots", "1500"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "4x4" in out


@pytest.mark.parametrize("sched", ["pim", "islip", "2drr", "greedy", "max"])
def test_simulate_voq_schedulers(sched, capsys):
    rc = main(["simulate", "--arch", "voq", "--scheduler", sched, "-n", "4",
               "--load", "0.5", "--slots", "800"])
    assert rc == 0


def test_simulate_bursty(capsys):
    rc = main(["simulate", "--arch", "shared", "-n", "4", "--load", "0.5",
               "--slots", "1500", "--burst", "6"])
    assert rc == 0


def test_pipelined_command(capsys):
    rc = main(["pipelined", "-n", "2", "--load", "0.4", "--cycles", "4000",
               "--addresses", "32"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "link utilization" in out
    assert "cut-through" in out


def test_pipelined_with_credits_and_quanta(capsys):
    rc = main(["pipelined", "-n", "2", "--load", "0.8", "--cycles", "4000",
               "--addresses", "32", "--quanta", "2", "--credits"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "dropped packets      0" in out.replace("  ", " ") or "0" in out


def test_wormhole_command(capsys):
    rc = main(["wormhole", "--k", "4", "--dims", "2", "--lanes", "2",
               "--load", "0.3", "--cycles", "2000", "--message", "8"])
    assert rc == 0
    assert "delivered_fraction" in capsys.readouterr().out


def test_wormhole_torus_dateline(capsys):
    rc = main(["wormhole", "--k", "4", "--dims", "2", "--lanes", "2",
               "--load", "0.3", "--cycles", "2000", "--message", "8",
               "--wrap", "--dateline"])
    assert rc == 0
    assert "torus" in capsys.readouterr().out


@pytest.mark.parametrize("chip", ["1", "2", "3"])
def test_vlsi_reports(chip, capsys):
    rc = main(["vlsi", "--chip", chip])
    assert rc == 0
    assert "paper" in capsys.readouterr().out


def test_vlsi_comparisons(capsys):
    rc = main(["vlsi", "--chip", "3", "--comparisons"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "PRIZMA" in out
    assert "16x" in out


def test_sizing_command(capsys):
    rc = main(["sizing", "-n", "8", "--load", "0.7", "--target", "1e-2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "shared buffering" in out
    assert "input smoothing" in out
