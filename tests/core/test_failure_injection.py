"""Failure injection: prove the structural checks actually catch faults.

A checker that never fires is indistinguishable from no checker.  These
tests *break* the hardware model deliberately — corrupt a memory cell, force
bus contention, double-book the initiation slot — and assert the matching
exception fires.  This is the test suite testing itself.
"""

import pytest

from repro.core import (
    BusContentionError,
    LatchOverrunError,
    PipelinedSwitch,
    PipelinedSwitchConfig,
    TracePacketSource,
)
from repro.core.bank import BankConflictError
from repro.core.control import ControlWord, WaveOp
from repro.drc import (
    ADDRESS_MISMATCH,
    BANK_CONFLICT,
    CONSERVATION,
    DOUBLE_INITIATION,
    INVARIANTS,
    Sanitizer,
    SanitizerError,
)
from repro.sim.packet import Word


def _switch_with_one_packet(n=2, **cfg_kwargs):
    cfg = PipelinedSwitchConfig(n=n, addresses=8, **cfg_kwargs)
    src = TracePacketSource(
        n_out=n, packet_words=cfg.packet_words, schedule={0: [(0, 1)]}
    )
    return PipelinedSwitch(cfg, src), cfg


def _sanitized_switch(schedule, n=2, **cfg_kwargs):
    cfg = PipelinedSwitchConfig(n=n, addresses=8, **cfg_kwargs)
    src = TracePacketSource(n_out=n, packet_words=cfg.packet_words,
                            schedule=schedule)
    san = Sanitizer()
    return PipelinedSwitch(cfg, src, sanitizer=san), cfg, san


def test_corrupted_memory_cell_detected():
    """Flip stored bits mid-flight: payload verification must catch it."""
    sw, cfg = _switch_with_one_packet(cut_through=False)
    # Let the store wave complete, then corrupt bank 0's copy.
    sw.run(cfg.depth + 2)
    addr = next(iter(sw._departing.values())).addr if sw._departing else 0
    victim = sw.banks[0]._cells[addr] or next(
        c for c in sw.banks[0]._cells if c is not None
    )
    victim.payload ^= 0x1  # single-bit upset
    with pytest.raises(AssertionError, match="corrupted|consumed"):
        sw.run(cfg.packet_words * 6)


def test_double_wave_initiation_rejected():
    sw, cfg = _switch_with_one_packet()
    sw.control.advance()
    sw.control.initiate(ControlWord(WaveOp.READ, 0, out_link=0))
    with pytest.raises(ValueError, match="one initiation per cycle"):
        sw.control.initiate(ControlWord(WaveOp.READ, 1, out_link=1))


def test_forced_bus_contention_detected():
    sw, cfg = _switch_with_one_packet()
    sw.buses[0].drive(5, Word(1, 0, 1), "ghost-driver")
    sw.cycle = 5
    # Any wave trying to use stage-0's bus in cycle 5 now collides.
    with pytest.raises(BusContentionError):
        sw.buses[0].drive(5, Word(2, 0, 2), "real-driver")


def test_forced_bank_conflict_detected():
    sw, _ = _switch_with_one_packet()
    bank = sw.banks[0]
    bank.write(3, 0, Word(1, 0, 1))
    with pytest.raises(BankConflictError):
        bank.read(3, 0)


def test_latch_overrun_detected_without_consume():
    sw, cfg = _switch_with_one_packet()
    row = sw.in_latches[0]
    row.load(0, Word(1, 0, 1))
    with pytest.raises(LatchOverrunError):
        row.load(0, Word(2, 0, 2))


def test_sink_catches_reordered_words():
    sw, cfg = _switch_with_one_packet()
    sink = sw.sinks[0]
    sink.deliver(0, packet_uid=1, index=0, payload=0)
    with pytest.raises(AssertionError, match="out of order"):
        sink.deliver(1, packet_uid=1, index=2, payload=2)


def test_misdelivered_packet_detected():
    """Force a wave to the wrong output link: the dst check must fire."""
    sw, cfg = _switch_with_one_packet()
    real_initiate = sw.control.initiate

    def sabotage(cw):
        if cw.op is WaveOp.WRITE_CT:
            cw = ControlWord(
                cw.op, cw.addr, in_link=cw.in_link,
                out_link=(cw.out_link + 1) % cfg.n, packet_uid=cw.packet_uid,
            )
        real_initiate(cw)

    sw.control.initiate = sabotage
    with pytest.raises(AssertionError):
        sw.run(cfg.packet_words * 6)


def test_stolen_buffer_address_detected():
    """Free an address while a packet still occupies it: the manager's
    double-release check fires."""
    sw, cfg = _switch_with_one_packet(cut_through=False)
    sw.run(cfg.depth)  # store wave in flight; packet queued, not yet departing
    rec = sw.buffer.head(1)
    assert rec is not None
    sw.buffer.release(rec)  # sabotage: steal the address
    with pytest.raises(ValueError, match="double release|no queued"):
        sw.buffer.release(rec)


# -- seeded faults against the repro.drc runtime sanitizer ---------------------
#
# The sanitizer is an *independent* observer: the faults below are injected
# in ways the component models either cannot see (a duplicated control-word
# readout, a corrupted in-flight address) or would only report with their
# own unstructured exceptions.  Each test asserts the structured
# SanitizerError: the DRC code, the exact cycle, and the invariant text.


def test_sanitizer_catches_forced_double_bank_access():
    """DRC201: replay the active control words so one bank is driven twice
    in a single cycle — the single-ported-bank invariant of paper §3.2."""
    sw, cfg, san = _sanitized_switch({0: [(0, 1)]})
    real_active = sw.control.active
    sw.control.active = lambda: (lambda entries: entries + entries[:1])(real_active())
    with pytest.raises(SanitizerError) as ei:
        sw.run(cfg.packet_words * 4)
    err = ei.value
    assert err.code == BANK_CONFLICT
    # The packet arrives at cycle 0; its cut-through wave initiates — and its
    # stage-0 bank access replays — at cycle 1.
    assert err.cycle == 1
    assert err.context["bank"] == 0
    assert err.invariant == INVARIANTS[BANK_CONFLICT]
    assert san.violations == [err]


def test_sanitizer_catches_two_waves_started_same_cycle():
    """DRC202: run arbitration twice in one cycle with two pending packets —
    the one-initiation-per-cycle budget of paper §3.3."""
    sw, cfg, san = _sanitized_switch({0: [(0, 1)], 1: [(0, 0)]})
    orig = sw._arbitrate
    def arbitrate_twice(t):
        orig(t)
        orig(t)
    sw._arbitrate = arbitrate_twice
    with pytest.raises(SanitizerError) as ei:
        sw.run(cfg.packet_words * 4)
    err = ei.value
    assert err.code == DOUBLE_INITIATION
    # Both packets arrive at cycle 0 and contend at cycle 1: the first
    # arbitration pass initiates one wave, the replayed pass the other.
    assert err.cycle == 1
    assert err.context["first_packet"] != err.context["second_packet"]
    assert err.invariant == INVARIANTS[DOUBLE_INITIATION]


def test_sanitizer_catches_corrupted_bank_address():
    """DRC203: corrupt an in-flight control word's buffer address so later
    banks write a different row than stage 0 — violating the one-address-
    across-all-banks layout of paper §3.1 / figure 4."""
    sw, cfg, san = _sanitized_switch({0: [(0, 1)]}, cut_through=False)
    for _ in range(cfg.packet_words * 2):
        sw.tick()
        active = sw.control.active()
        if active:
            break
    assert active, "store wave never initiated"
    k, cw = active[0]
    sw.control._stages[k] = ControlWord(
        cw.op, cw.addr ^ 1, in_link=cw.in_link, out_link=cw.out_link,
        packet_uid=cw.packet_uid, quantum=cw.quantum,
    )
    corrupted_at = sw.cycle  # the very next tick replays the bad address
    with pytest.raises(SanitizerError) as ei:
        sw.run(2)
    err = ei.value
    assert err.code == ADDRESS_MISMATCH
    assert err.cycle == corrupted_at
    assert err.context["expected_addr"] == cw.addr
    assert err.context["actual_addr"] == cw.addr ^ 1
    assert err.context["packet"] == cw.packet_uid
    assert err.invariant == INVARIANTS[ADDRESS_MISMATCH]


def test_sanitizer_catches_lost_packet():
    """DRC204: drop a packet from the in-flight ledger without delivering
    it — conservation (injected = delivered + dropped + in flight) breaks
    at the end of that same cycle."""
    sw, cfg, san = _sanitized_switch({0: [(0, 1)]})
    sw.run(2)
    assert sw._sent, "packet should be in flight"
    del sw._sent[next(iter(sw._sent))]
    lost_at = sw.cycle
    with pytest.raises(SanitizerError) as ei:
        sw.run(1)
    err = ei.value
    assert err.code == CONSERVATION
    assert err.cycle == lost_at
    assert err.context["injected"] == 1
    assert err.context["in_flight"] == 0
    assert err.invariant == INVARIANTS[CONSERVATION]


def test_sanitizer_halt_false_records_instead_of_raising():
    """With halt=False the sweep-friendly mode records every violation."""
    cfg = PipelinedSwitchConfig(n=2, addresses=8)
    src = TracePacketSource(n_out=2, packet_words=cfg.packet_words,
                            schedule={0: [(0, 1)]})
    san = Sanitizer(halt=False)
    sw = PipelinedSwitch(cfg, src, sanitizer=san)
    sw.run(2)
    del sw._sent[next(iter(sw._sent))]  # conservation breaks every cycle now
    sw.run(3)  # no raise
    assert len(san.violations) == 3
    assert all(v.code == CONSERVATION for v in san.violations)
    assert san.summary()["violations"] == 3


def test_sanitizer_clean_run_stays_silent():
    """The checked kernel at full pressure never trips the sanitizer — the
    executable form of the paper's §3.2-§3.3 correctness argument."""
    sw, cfg, san = _sanitized_switch(
        {0: [(0, 1), (2, 1), (4, 0)], 1: [(0, 0), (1, 1)]}
    )
    sw.run(cfg.packet_words * 8)
    sw.drain()
    assert san.violations == []
    assert san.injected == 5
    assert san.injected == san.delivered + san.dropped
