"""Pipeline-stage spans assembled in closed form from lifecycle events.

A sampled packet's life decomposes into the stages the paper's figure 5
draws:

========== =========================================================
stage      interval (cycles, end-exclusive)
========== =========================================================
latch      head arrival -> first write-wave admission
store_wave admission t0 -> t0 + quanta*depth (the WR staircase)
cut_through admission t0 -> t0 + quanta*depth (WRITE_CT staircase)
resident   store admission -> read admission (buffered dwell)
read_wave  admission t0 -> t0 + quanta*depth (the RD staircase)
link       head departure -> tail departure + 1
drop       the drop cycle (width 1), with the taxonomy cause
========== =========================================================

Wave extents use the figure-5 law (a wave admitted at ``t0`` occupies bank
``k`` of quantum ``q`` at ``t0 + q*depth + k``), so spans need only the
admission events — exactly the stream every kernel tier emits identically.
Stages still open when the run stopped are clipped at ``horizon`` (pass
the switch's current cycle); with no horizon, open stages are omitted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

from repro.telemetry.events import (
    ARRIVE,
    CUT_THROUGH,
    DEPART,
    DROP,
    READ_WAVE,
    STORE_WAVE,
    Event,
)

#: Chrome-trace process id for per-packet span tracks (inputs/banks/links
#: are 0/1/2 in repro.telemetry.export).
PID_PACKETS = 3

#: Stage names in rendering order within one start cycle.
STAGES = ("latch", "store_wave", "cut_through", "resident", "read_wave",
          "link", "drop")
_STAGE_ORDER = {s: i for i, s in enumerate(STAGES)}


@dataclass(frozen=True, slots=True)
class Span:
    """One stage of one packet: ``[start, end)`` in cycles."""

    uid: int
    stage: str
    start: int
    end: int
    src: int = -1
    dst: int = -1
    cause: str = ""

    def as_dict(self) -> dict[str, object]:
        d: dict[str, object] = {"uid": self.uid, "stage": self.stage,
                                "start": self.start, "end": self.end}
        if self.src >= 0:
            d["src"] = self.src
        if self.dst >= 0:
            d["dst"] = self.dst
        if self.cause:
            d["cause"] = self.cause
        return d


def spans_from_events(
    events: Iterable[Event], *, depth: int, quanta: int = 1,
    horizon: int | None = None,
) -> list[Span]:
    """Assemble per-packet stage spans from a (possibly sampled) stream.

    Deterministic: output is sorted by ``(uid, start, stage)``.  Feeding
    the sorted event streams of the checked, fast and batch kernels yields
    identical span lists because the streams themselves are identical.
    """
    wave_len = quanta * depth
    by_uid: dict[int, list[Event]] = {}
    for e in events:
        by_uid.setdefault(e.uid, []).append(e)

    def clipped(start: int, end: int | None) -> tuple[int, int] | None:
        # None end = stage still open; needs a horizon to close.
        if end is None:
            if horizon is None:
                return None
            end = horizon
        if horizon is not None:
            end = min(end, horizon)
        if end <= start:
            end = start + 1
        return start, end

    spans: list[Span] = []
    for uid, evs in by_uid.items():
        arrive = store = ct = read = depart = drop = None
        for e in evs:
            if e.kind == ARRIVE:
                arrive = e
            elif e.kind == STORE_WAVE:
                store = e
            elif e.kind == CUT_THROUGH:
                ct = e
            elif e.kind == READ_WAVE:
                read = e
            elif e.kind == DEPART:
                depart = e
            elif e.kind == DROP:
                drop = e
        admission = store or ct
        if arrive is not None:
            if drop is not None:
                latch_end: int | None = drop.cycle
            elif admission is not None:
                latch_end = admission.cycle
            else:
                latch_end = None
            iv = clipped(arrive.cycle, latch_end)
            if iv is not None:
                spans.append(Span(uid, "latch", iv[0], iv[1],
                                  src=arrive.src, dst=arrive.dst))
        for wave, stage in ((store, "store_wave"), (ct, "cut_through"),
                            (read, "read_wave")):
            if wave is None:
                continue
            iv = clipped(wave.cycle, wave.cycle + wave_len)
            if iv is not None:
                spans.append(Span(uid, stage, iv[0], iv[1],
                                  src=wave.src, dst=wave.dst))
        if store is not None:
            iv = clipped(store.cycle,
                         read.cycle if read is not None else None)
            if iv is not None:
                spans.append(Span(uid, "resident", iv[0], iv[1],
                                  src=store.src, dst=store.dst))
        if depart is not None:
            head = depart.aux if depart.aux >= 0 else depart.cycle
            iv = clipped(head, depart.cycle + 1)
            if iv is not None:
                spans.append(Span(uid, "link", iv[0], iv[1],
                                  src=depart.src, dst=depart.dst))
        if drop is not None:
            iv = clipped(drop.cycle, drop.cycle + 1)
            if iv is not None:
                spans.append(Span(uid, "drop", iv[0], iv[1], src=drop.src,
                                  dst=drop.dst, cause=drop.cause))

    spans.sort(key=lambda s: (s.uid, s.start, _STAGE_ORDER[s.stage]))
    return spans


def spans_jsonl(spans: Iterable[Span]) -> str:
    """One compact JSON object per line, in the canonical span order."""
    return "".join(
        json.dumps(s.as_dict(), separators=(",", ":")) + "\n" for s in spans
    )


def write_spans_jsonl(spans: Iterable[Span], path) -> None:
    with open(path, "w") as fh:
        fh.write(spans_jsonl(spans))


def chrome_trace_from_spans(spans: Iterable[Span]) -> dict:
    """Chrome/Perfetto trace: one thread per sampled packet, one slice per
    stage.  Complements the bank-centric view from
    :func:`repro.telemetry.export.chrome_trace_from_events` — same file
    format, different pivot (packets instead of memory banks)."""
    spans = list(spans)
    trace: list[dict] = [
        {"ph": "M", "pid": PID_PACKETS, "tid": 0, "name": "process_name",
         "args": {"name": "sampled packets (lifecycle spans)"}},
        {"ph": "M", "pid": PID_PACKETS, "tid": 0, "name": "process_sort_index",
         "args": {"sort_index": 3}},
    ]
    for uid in sorted({s.uid for s in spans}):
        trace.append({"ph": "M", "pid": PID_PACKETS, "tid": uid,
                      "name": "thread_name", "args": {"name": f"p{uid}"}})
    for s in spans:
        if s.stage == "drop":
            trace.append({
                "ph": "i", "pid": PID_PACKETS, "tid": s.uid, "ts": s.start,
                "s": "t", "name": f"drop p{s.uid} ({s.cause})", "cat": "drop",
                "args": {"uid": s.uid, "cause": s.cause, "dst": s.dst},
            })
            continue
        trace.append({
            "ph": "X", "pid": PID_PACKETS, "tid": s.uid, "ts": s.start,
            "dur": s.end - s.start, "name": s.stage, "cat": "span",
            "args": {"uid": s.uid, "src": s.src, "dst": s.dst},
        })
    trace.sort(key=lambda ev: (ev["ph"] != "M", ev.get("ts", 0),
                               ev["pid"], ev["tid"]))
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs.spans", "time_unit": "cycles"},
    }
