"""The three Telegraphos prototypes (paper §4) as model configurations.

Each function returns a ``{"published": ..., "model": ...}`` report so that
tests and benches can assert the cost model reproduces every number printed
in the paper:

* **Telegraphos I** (§4.1): FPGA prototype — 4x4, 8-bit links, 13.3 MHz
  (107 Mb/s/link), 8-byte packets, 8 pipeline stages; ~500 gates of
  arbitration/control, 4 x 1500 gates of datapath slices.
* **Telegraphos II** (§4.2): 0.7 um standard cell — 4x4 at 400 Mb/s/link
  (16 bit / 40 ns on chip), 16-byte packets, 8 stages of 256x16 compiled
  SRAM (1.5 x 0.9 mm^2 each; 11 mm^2 total), peripheral 15 mm^2, bus routing
  5.5 mm^2, buffer total 32 mm^2 on an 8.5 x 8.5 mm die.
* **Telegraphos III** (§4.4): 1.0 um full custom — 8x8 at 1 Gb/s/link worst
  case (16 Gb/s aggregate), 16 stages x 256 addresses x 16 bits (64 Kbit),
  16 ns worst / 10 ns typical clock, peripheral ~9 mm^2, buffer ~45 mm^2
  including crossbar and cut-through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.switch import PipelinedSwitchConfig
from repro.vlsi.datapath import pipelined_peripheral_area
from repro.vlsi.memory import megacell_area_mm2, pipelined_memory_area
from repro.vlsi.technology import (
    TELEGRAPHOS_II_TECH,
    TELEGRAPHOS_III_TECH,
    Style,
    Technology,
)
from repro.vlsi.timing import (
    aggregate_buffer_throughput_gbps,
    clock_cycle_ns,
    link_throughput_gbps,
)

# FPGA gate-equivalent coefficients (Xilinx XC3000-era counting).
_GATES_PER_FF = 10.0
_GATES_PER_MUX_DRIVER = 6.0
_CONTROL_GATES_PER_LINK_PAIR = 60.0


@dataclass(frozen=True, slots=True)
class TelegraphosConfig:
    """Shape parameters of one prototype."""

    name: str
    n: int
    width_bits: int
    depth: int
    addresses: int
    clock_mhz: float

    @property
    def packet_bytes(self) -> int:
        return self.depth * self.width_bits // 8

    @property
    def buffer_kbit(self) -> float:
        return self.depth * self.addresses * self.width_bits / 1024

    @property
    def link_mbps(self) -> float:
        return self.width_bits * self.clock_mhz

    def switch_config(self, **kwargs) -> PipelinedSwitchConfig:
        """A functional :class:`PipelinedSwitchConfig` with this shape."""
        return PipelinedSwitchConfig(
            n=self.n,
            addresses=self.addresses,
            width_bits=self.width_bits,
            depth=self.depth,
            **kwargs,
        )


TELEGRAPHOS_I = TelegraphosConfig(
    name="Telegraphos I (FPGA)", n=4, width_bits=8, depth=8,
    addresses=1024, clock_mhz=13.3,
)
TELEGRAPHOS_II = TelegraphosConfig(
    name="Telegraphos II (0.7um std cell)", n=4, width_bits=16, depth=8,
    addresses=256, clock_mhz=25.0,  # 16 bits / 40 ns on-chip
)
TELEGRAPHOS_III = TelegraphosConfig(
    name="Telegraphos III (1.0um full custom)", n=8, width_bits=16, depth=16,
    addresses=256, clock_mhz=62.5,  # 16 ns worst case
)


def telegraphos1_report() -> dict:
    """§4.1: FPGA prototype figures vs the gate-count model."""
    c = TELEGRAPHOS_I
    datapath_ffs = (
        c.n * c.depth * c.width_bits  # input latch matrix
        + c.depth * c.width_bits  # shared output register row
        + c.depth * 12  # control pipeline registers (~12 control bits)
    )
    driver_bits = c.n * c.depth * c.width_bits  # tristate/mux structures
    model_datapath = datapath_ffs * _GATES_PER_FF + driver_bits * _GATES_PER_MUX_DRIVER
    model_control = 2 * c.n * _CONTROL_GATES_PER_LINK_PAIR
    return {
        "published": {
            "links": 4,
            "link_mbps": 107.0,
            "packet_bytes": 8,
            "stages": 8,
            "control_gates": 500,
            "datapath_gates": 4 * 1500,
            "sram_chips": 8,
        },
        "model": {
            "links": c.n,
            "link_mbps": c.link_mbps,
            "packet_bytes": c.packet_bytes,
            "stages": c.depth,
            "control_gates": model_control,
            "datapath_gates": model_datapath,
            "sram_chips": c.depth,  # one single-ported SRAM per stage
        },
    }


def telegraphos2_report(tech: Technology = TELEGRAPHOS_II_TECH) -> dict:
    """§4.2: standard-cell die budget vs the area model."""
    c = TELEGRAPHOS_II
    megacell = megacell_area_mm2(tech, c.addresses, c.width_bits)
    sram_total = c.depth * megacell
    periph = pipelined_peripheral_area(tech, c.n, c.width_bits, c.depth)
    # The paper reports the standard-cell regions (15 mm^2) and the bus
    # routing (5.5 mm^2) separately; our wire-over-datapath model prices
    # their union.  The published split is 73 % / 27 %.
    cells_mm2 = periph.area_mm2 * (15.0 / 20.5)
    routing_mm2 = periph.area_mm2 * (5.5 / 20.5)
    return {
        "published": {
            "megacell_mm2": 1.5 * 0.9,
            "sram_total_mm2": 11.0,
            "peripheral_cells_mm2": 15.0,
            "bus_routing_mm2": 5.5,
            "buffer_total_mm2": 32.0,
            "die_mm": (8.5, 8.5),
            "clock_ns": 40.0,
            "link_mbps": 400.0,
            "packet_bytes": 16,
        },
        "model": {
            "megacell_mm2": megacell,
            "sram_total_mm2": sram_total,
            "peripheral_cells_mm2": cells_mm2,
            "bus_routing_mm2": routing_mm2,
            "buffer_total_mm2": sram_total + periph.area_mm2,
            "die_mm": (8.5, 8.5),
            "clock_ns": clock_cycle_ns(tech),
            "link_mbps": link_throughput_gbps(tech, c.width_bits) * 1e3,
            "packet_bytes": c.packet_bytes,
        },
    }


def telegraphos3_report(tech: Technology = TELEGRAPHOS_III_TECH) -> dict:
    """§4.4: full-custom buffer figures vs the area/timing model."""
    c = TELEGRAPHOS_III
    mem = pipelined_memory_area(tech, c.depth, c.addresses, c.width_bits)
    periph = pipelined_peripheral_area(tech, c.n, c.width_bits, c.depth)
    return {
        "published": {
            "links": 8,
            "stages": 16,
            "buffer_kbit": 64.0,
            "packets": 256,
            "packet_bits": 256,
            "clock_worst_ns": 16.0,
            "clock_typical_ns": 10.0,
            "link_gbps_worst": 1.0,
            "link_gbps_typical": 1.6,
            "aggregate_gbps": 16.0,
            "peripheral_mm2": 9.0,
            "buffer_total_mm2": 45.0,
            "stdcell_peripheral_4x4_mm2": 41.0,
            "decoder_to_pipereg": 2.3,
        },
        "model": {
            "links": c.n,
            "stages": c.depth,
            "buffer_kbit": c.buffer_kbit,
            "packets": c.addresses,
            "packet_bits": c.depth * c.width_bits,
            "clock_worst_ns": clock_cycle_ns(tech, worst_case=True),
            "clock_typical_ns": clock_cycle_ns(tech, worst_case=False),
            "link_gbps_worst": link_throughput_gbps(tech, c.width_bits, True),
            "link_gbps_typical": link_throughput_gbps(tech, c.width_bits, False),
            # One wave per cycle touches all 16 banks: 256 bits / 16 ns =
            # 16 Gb/s, covering 8 incoming + 8 outgoing links at 1 Gb/s.
            "aggregate_gbps": aggregate_buffer_throughput_gbps(
                tech, c.depth, c.width_bits
            ),
            "peripheral_mm2": periph.area_mm2,
            "buffer_total_mm2": mem.total_mm2 + periph.area_mm2,
            "stdcell_peripheral_4x4_mm2": pipelined_peripheral_area(
                Technology(
                    name="1.0um std cell (hypothetical)",
                    feature_um=1.0,
                    style=Style.STANDARD_CELL,
                ),
                4,
                c.width_bits,
                8,
            ).area_mm2,
            "decoder_to_pipereg": tech.decoder_to_pipereg_ratio,
        },
    }


def factor_of_22_report(tech: Technology = TELEGRAPHOS_III_TECH) -> dict:
    """§4.4: "the datapath of the shared buffer gains approximately a factor
    of 22 in speed, capacity, and area" going standard cell -> full custom:
    2x links, 2.5x clock, 4.5x smaller peripheral area."""
    std = Technology(
        name="1.0um std cell (hypothetical)", feature_um=1.0, style=Style.STANDARD_CELL
    )
    links_gain = TELEGRAPHOS_III.n / TELEGRAPHOS_II.n
    # The paper compares the built chips: Telegraphos II's 40 ns (0.7 um
    # standard cell) against Telegraphos III's 16 ns (1.0 um full custom).
    clock_gain = clock_cycle_ns(TELEGRAPHOS_II_TECH) / clock_cycle_ns(tech)
    area_gain = (
        pipelined_peripheral_area(std, 4, 16, 8).area_mm2
        / pipelined_peripheral_area(tech, 8, 16, 16).area_mm2
    )
    return {
        "published": {"links": 2.0, "clock": 2.5, "area": 4.5, "product": 22.0},
        "model": {
            "links": links_gain,
            "clock": clock_gain,
            "area": area_gain,
            "product": links_gain * clock_gain * area_gain,
        },
    }
