"""Prometheus ``/metrics`` HTTP endpoint for runs and sweeps.

:class:`MetricsServer` is a tiny threaded HTTP server exposing one
``/metrics`` route in the text exposition format.  It renders by merging
*providers* — callables returning exposition text — through the
:mod:`repro.obs.promparse` family model, which is what makes aggregation
correct: the format forbids duplicate ``# TYPE`` lines per family, so
provider outputs are parsed and re-rendered as one family set rather than
concatenated.

:class:`SweepMetricsObserver` adapts a
:class:`~repro.scenario.runner.ScenarioRunner` to the endpoint.  It is
both the runner's observer (progress callbacks) and a provider:

* sweep progress gauges (cells total/done/resumed/inflight) straight from
  the callbacks — visible at any ``--jobs``;
* per-cell metric registries, labelled ``cell="<name>-seed<seed>"``:
  for in-process execution (``--jobs 1``) the *live* registry is scraped
  mid-run; pool workers' registries arrive through the per-cell
  ``.metrics.txt`` artifacts the moment each cell finishes.

Reading a live registry races with the simulating thread (new metrics can
appear mid-iteration); rendering retries a few times and falls back to
the last good snapshot — the endpoint must never take locks the hot path
would feel.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable

from repro.obs import promparse
from repro.telemetry.export import render_prometheus

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_RENDER_RETRIES = 5


def _render_registry(registry: Any) -> str:
    """Render a possibly-live registry, retrying on mutation races."""
    for attempt in range(_RENDER_RETRIES):
        try:
            return render_prometheus(registry)
        except RuntimeError:  # dict changed size during iteration
            if attempt == _RENDER_RETRIES - 1:
                raise
    raise AssertionError("unreachable")


class MetricsServer:
    """Threaded HTTP server for ``GET /metrics``.

    ``port=0`` binds an ephemeral port (tests); the bound port is
    available as :attr:`port` after :meth:`start`.  Binds loopback by
    default — this is an observability endpoint, not a public service.
    """

    def __init__(self, port: int, host: str = "127.0.0.1") -> None:
        self._requested = (host, port)
        self._providers: list[Callable[[], str]] = []
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._last_good = ""

    def add_provider(self, provider: Callable[[], str]) -> None:
        """Register a callable returning exposition text to merge in."""
        self._providers.append(provider)

    def render(self) -> str:
        """Merge all providers into one valid exposition document."""
        groups: list[list[promparse.Family]] = []
        for provider in self._providers:
            try:
                groups.append(promparse.parse(provider()))
            except (RuntimeError, promparse.PromParseError):
                continue  # a racing provider drops out of this scrape only
        try:
            text = promparse.render(promparse.merge(groups))
        except promparse.PromParseError:
            return self._last_good
        self._last_good = text
        return text

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404, "only /metrics is served here")
                    return
                body = server.render().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # scrapes are not stdout's business

        self._httpd = ThreadingHTTPServer(self._requested, _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
            self._thread = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested[1]
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._requested[0]}:{self.port}/metrics"

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


class SweepMetricsObserver:
    """ScenarioRunner observer + MetricsServer provider (module docstring)."""

    def __init__(self, out_dir: str | Path | None = None) -> None:
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self._lock = threading.Lock()
        self._total = 0
        self._resumed = 0
        self._done = 0
        self._live: dict[str, Any] = {}           # cell -> live Telemetry
        self._cells: dict[str, list[promparse.Family]] = {}

    # -- runner callbacks ---------------------------------------------------
    def sweep_started(self, total: int, resumed: int) -> None:
        with self._lock:
            self._total = total
            self._resumed = resumed
            self._done = resumed

    def job_live(self, name: str, seed: int, telemetry: Any) -> None:
        cell = f"{name}-seed{seed}"
        with self._lock:
            if telemetry is None:
                self._live.pop(cell, None)
            elif telemetry.metrics.enabled:
                self._live[cell] = telemetry

    def job_finished(self, name: str, seed: int, result: dict) -> None:
        cell = f"{name}-seed{seed}"
        families: list[promparse.Family] | None = None
        artifact = (result.get("telemetry") or {}).get("artifacts", {})
        if self.out_dir is not None and "metrics" in artifact:
            path = self.out_dir / artifact["metrics"]
            try:
                families = promparse.parse(path.read_text())
            except (OSError, promparse.PromParseError):
                families = None
        with self._lock:
            self._done += 1
            if families is not None:
                self._cells[cell] = promparse.add_labels(families, cell=cell)

    def sweep_finished(self) -> None:
        pass

    # -- provider -----------------------------------------------------------
    def progress(self) -> dict[str, int]:
        with self._lock:
            return {"total": self._total, "done": self._done,
                    "resumed": self._resumed, "inflight": len(self._live)}

    def render(self) -> str:
        with self._lock:
            live = dict(self._live)
            cell_groups = [list(fams) for fams in self._cells.values()]
            total, done, resumed = self._total, self._done, self._resumed
            inflight = len(live)
        lines = [
            "# HELP repro_sweep_cells_total Jobs (scenario, seed cells) in "
            "this sweep.",
            "# TYPE repro_sweep_cells_total gauge",
            f"repro_sweep_cells_total {total}",
            "# HELP repro_sweep_cells_done Cells finished, including cells "
            "reloaded by --resume.",
            "# TYPE repro_sweep_cells_done gauge",
            f"repro_sweep_cells_done {done}",
            "# HELP repro_sweep_cells_resumed Cells reloaded from a previous "
            "interrupted sweep.",
            "# TYPE repro_sweep_cells_resumed gauge",
            f"repro_sweep_cells_resumed {resumed}",
            "# HELP repro_sweep_cells_inflight Cells currently executing "
            "in-process with a live registry.",
            "# TYPE repro_sweep_cells_inflight gauge",
            f"repro_sweep_cells_inflight {inflight}",
        ]
        groups = [promparse.parse("\n".join(lines) + "\n")]
        for cell, telemetry in sorted(live.items()):
            try:
                families = promparse.parse(_render_registry(telemetry.metrics))
            except (RuntimeError, promparse.PromParseError):
                continue
            groups.append(promparse.add_labels(families, cell=cell))
        groups.extend(cell_groups)
        return promparse.render(promparse.merge(groups))


def serve_run_metrics(port: int,
                      out_dir: str | Path | None = None,
                      ) -> tuple[MetricsServer, SweepMetricsObserver]:
    """Start a metrics endpoint wired to a fresh sweep observer.

    The caller passes the observer to :class:`ScenarioRunner` and stops the
    server when the run ends.  Separated from the CLI so tests drive it
    directly.
    """
    observer = SweepMetricsObserver(out_dir=out_dir)
    server = MetricsServer(port)
    server.add_provider(observer.render)
    server.start()
    return server, observer
