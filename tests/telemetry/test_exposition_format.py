"""Promtool-style validation of what the repo actually exports.

`tests/obs/test_promparse.py` pins the parser on synthetic documents; this
file points the same parser at *real* registry output — a full switch run,
the checkpoint-carried registry, pathological label values — so a format
regression in `render_prometheus` (or a new metric that breaks family
contiguity) fails here before any external scraper sees it.
"""

from __future__ import annotations

import math

from repro.core import (
    PipelinedSwitchConfig,
    PipelinedSwitch,
    RenewalPacketSource,
    SaturatingSource,
)
from repro.core.instrumentation import METRIC_HELP
from repro.obs.promparse import parse
from repro.sim.packet import reset_packet_ids
from repro.telemetry import Telemetry
from repro.telemetry.export import render_prometheus
from repro.telemetry.metrics import MetricsRegistry, escape_label_value


def _run_registry(droppy=False, cycles=800):
    reset_packet_ids()
    if droppy:
        cfg = PipelinedSwitchConfig(n=4, addresses=8)
        src = SaturatingSource(n_out=4, packet_words=cfg.packet_words, seed=3)
    else:
        cfg = PipelinedSwitchConfig(n=4, addresses=64)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words,
                                  load=0.7, seed=1)
    tel = Telemetry.on(sample_interval=32)
    sw = PipelinedSwitch(cfg, src, telemetry=tel)
    sw.run(cycles)
    sw.drain()
    return tel.metrics


class TestRealRunOutput:
    def test_full_run_export_validates(self):
        text = render_prometheus(_run_registry(droppy=True))
        families = {f.name: f for f in parse(text)}
        # the parser checked: escaping, HELP-before-TYPE, one TYPE per
        # family, contiguity, histogram structure (+Inf, cumulative,
        # _count == +Inf bucket, _sum present)
        hist = families["repro_ct_latency_cycles"]
        assert hist.type == "histogram"
        assert any(s.labels.get("le") == "+Inf" for s in hist.samples)
        assert families["repro_port_drops_total"].type == "counter"
        assert families["repro_buffer_occupancy"].type == "gauge"

    def test_help_emitted_for_core_families(self):
        text = render_prometheus(_run_registry())
        families = {f.name: f for f in parse(text)}
        for name, help_text in METRIC_HELP.items():
            if name in families:
                assert families[name].help == help_text
        assert any(f.help for f in families.values())

    def test_trace_ended_gauge_surfaces(self):
        """trace_ended_at (finite-source early stop) must be scrapeable."""
        from repro.core.sources import TracePacketSource

        reset_packet_ids()
        cfg = PipelinedSwitchConfig(n=4, addresses=64)
        src = TracePacketSource(
            n_out=4, packet_words=cfg.packet_words,
            schedule={0: [(0, 1), (3, 2)], 1: [(1, 3)]},
        )
        tel = Telemetry.on()
        sw = PipelinedSwitch(cfg, src, telemetry=tel)
        sw.run(400)
        assert sw.trace_ended_at is not None
        families = {f.name: f for f in parse(render_prometheus(tel.metrics))}
        gauge = families["repro_trace_ended_cycle"]
        assert gauge.samples[0].value == sw.trace_ended_at

    def test_trace_ended_gauge_absent_without_trace(self):
        text = render_prometheus(_run_registry())
        assert "repro_trace_ended_cycle" not in {f.name for f in parse(text)}


class TestEscaping:
    def test_pathological_label_values_round_trip(self):
        m = MetricsRegistry()
        ugly = 'C:\\path\\"quoted"\nnext\\nline'
        m.counter("weird_total", path=ugly).inc()
        fams = parse(render_prometheus(m))
        assert fams[0].samples[0].labels["path"] == ugly

    def test_escape_order_backslash_first(self):
        # escaping \ after " would double the quote's escape
        assert escape_label_value('\\"') == '\\\\\\"'
        assert escape_label_value("a\nb") == "a\\nb"

    def test_value_text_integers_stay_integers(self):
        m = MetricsRegistry()
        m.counter("c_total").inc(7)
        fams = parse(render_prometheus(m))
        s = fams[0].samples[0]
        assert s.value == 7 and "." not in s.value_text

    def test_inf_renders_as_plus_inf(self):
        m = MetricsRegistry()
        m.gauge("g").set(math.inf)
        fams = parse(render_prometheus(m))
        assert fams[0].samples[0].value == math.inf
