"""Seeded-defect corpus: every new rule family demonstrated exactly.

Each fixture under ``tests/drc/corpus/`` carries one defect class and an
``expected.json`` freezing the ``(code, path, line)`` triples the engine
must produce — compared exactly, so a rule that drifts (extra findings,
moved anchors, lost findings) fails here first.
"""

import json
from pathlib import Path

import pytest

from repro.drc import discover_files, run_lint

CORPUS = Path(__file__).parent / "corpus"
FIXTURES = sorted(p.name for p in CORPUS.iterdir()
                  if p.is_dir() and (p / "expected.json").exists())


def test_corpus_has_every_new_code():
    seen = set()
    for name in FIXTURES:
        for row in json.loads((CORPUS / name / "expected.json").read_text()):
            seen.add(row["code"])
    assert seen == {"DRC141", "DRC142", "DRC143",
                    "DRC151", "DRC152", "DRC153",
                    "DRC161", "DRC162"}


@pytest.mark.parametrize("name", FIXTURES)
def test_fixture_findings_exact(name):
    fixture = CORPUS / name
    expected = [(row["code"], row["path"], row["line"])
                for row in json.loads((fixture / "expected.json").read_text())]
    result = run_lint(["src"], root=fixture)
    got = [(v.code, v.path, v.line) for v in result.all_findings()]
    assert sorted(got) == sorted(expected)


def test_sentinel_hides_corpus_from_repo_self_lint():
    repo = Path(__file__).resolve().parents[2]
    found = discover_files(["tests"], root=repo)
    assert not any("corpus" in f.parts for f in found), (
        "the .drc-skip sentinel must prune the corpus from recursive "
        "discovery")
    # an explicitly passed fixture directory still lints
    explicit = discover_files([CORPUS / FIXTURES[0]], root=repo)
    assert explicit, "explicit fixture paths must bypass the sentinel"
