"""Failure injection: prove the structural checks actually catch faults.

A checker that never fires is indistinguishable from no checker.  These
tests *break* the hardware model deliberately — corrupt a memory cell, force
bus contention, double-book the initiation slot — and assert the matching
exception fires.  This is the test suite testing itself.
"""

import pytest

from repro.core import (
    BusContentionError,
    LatchOverrunError,
    PipelinedSwitch,
    PipelinedSwitchConfig,
    TracePacketSource,
)
from repro.core.bank import BankConflictError
from repro.core.control import ControlWord, WaveOp
from repro.sim.packet import Word


def _switch_with_one_packet(n=2, **cfg_kwargs):
    cfg = PipelinedSwitchConfig(n=n, addresses=8, **cfg_kwargs)
    src = TracePacketSource(
        n_out=n, packet_words=cfg.packet_words, schedule={0: [(0, 1)]}
    )
    return PipelinedSwitch(cfg, src), cfg


def test_corrupted_memory_cell_detected():
    """Flip stored bits mid-flight: payload verification must catch it."""
    sw, cfg = _switch_with_one_packet(cut_through=False)
    # Let the store wave complete, then corrupt bank 0's copy.
    sw.run(cfg.depth + 2)
    addr = next(iter(sw._departing.values())).addr if sw._departing else 0
    victim = sw.banks[0]._cells[addr] or next(
        c for c in sw.banks[0]._cells if c is not None
    )
    victim.payload ^= 0x1  # single-bit upset
    with pytest.raises(AssertionError, match="corrupted|consumed"):
        sw.run(cfg.packet_words * 6)


def test_double_wave_initiation_rejected():
    sw, cfg = _switch_with_one_packet()
    sw.control.advance()
    sw.control.initiate(ControlWord(WaveOp.READ, 0, out_link=0))
    with pytest.raises(ValueError, match="one initiation per cycle"):
        sw.control.initiate(ControlWord(WaveOp.READ, 1, out_link=1))


def test_forced_bus_contention_detected():
    sw, cfg = _switch_with_one_packet()
    sw.buses[0].drive(5, Word(1, 0, 1), "ghost-driver")
    sw.cycle = 5
    # Any wave trying to use stage-0's bus in cycle 5 now collides.
    with pytest.raises(BusContentionError):
        sw.buses[0].drive(5, Word(2, 0, 2), "real-driver")


def test_forced_bank_conflict_detected():
    sw, _ = _switch_with_one_packet()
    bank = sw.banks[0]
    bank.write(3, 0, Word(1, 0, 1))
    with pytest.raises(BankConflictError):
        bank.read(3, 0)


def test_latch_overrun_detected_without_consume():
    sw, cfg = _switch_with_one_packet()
    row = sw.in_latches[0]
    row.load(0, Word(1, 0, 1))
    with pytest.raises(LatchOverrunError):
        row.load(0, Word(2, 0, 2))


def test_sink_catches_reordered_words():
    sw, cfg = _switch_with_one_packet()
    sink = sw.sinks[0]
    sink.deliver(0, packet_uid=1, index=0, payload=0)
    with pytest.raises(AssertionError, match="out of order"):
        sink.deliver(1, packet_uid=1, index=2, payload=2)


def test_misdelivered_packet_detected():
    """Force a wave to the wrong output link: the dst check must fire."""
    sw, cfg = _switch_with_one_packet()
    real_initiate = sw.control.initiate

    def sabotage(cw):
        if cw.op is WaveOp.WRITE_CT:
            cw = ControlWord(
                cw.op, cw.addr, in_link=cw.in_link,
                out_link=(cw.out_link + 1) % cfg.n, packet_uid=cw.packet_uid,
            )
        real_initiate(cw)

    sw.control.initiate = sabotage
    with pytest.raises(AssertionError):
        sw.run(cfg.packet_words * 6)


def test_stolen_buffer_address_detected():
    """Free an address while a packet still occupies it: the manager's
    double-release check fires."""
    sw, cfg = _switch_with_one_packet(cut_through=False)
    sw.run(cfg.depth)  # store wave in flight; packet queued, not yet departing
    rec = sw.buffer.head(1)
    assert rec is not None
    sw.buffer.release(rec)  # sabotage: steal the address
    with pytest.raises(ValueError, match="double release|no queued"):
        sw.buffer.release(rec)
