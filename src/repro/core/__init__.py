"""Word/cycle-accurate models of the paper's shared-buffer organizations.

* :class:`PipelinedSwitch` — the paper's contribution (pipelined memory).
* :class:`~repro.core.wide.WideMemorySwitch` — the wide-memory baseline of
  paper figure 3 ([KaSC91]).
* :class:`~repro.core.split_buffer.SplitPipelinedBuffer` — the two-memory
  half-quantum organization of §3.5.
"""

from repro.core.arbiter import Priority, WaveArbiter, WriteRequest
from repro.core.bank import BankConflictError, MemoryBank
from repro.core.batchpath import (
    DEFAULT_BATCH_CYCLES,
    BatchPipelinedSwitch,
    resolve_jit,
)
from repro.core.buffer_manager import BufferFullError, BufferManager
from repro.core.bus import Bus, BusContentionError
from repro.core.control import ControlPipeline, ControlWord, WaveOp
from repro.core.errors import ConfigError
from repro.core.fastpath import (
    FastPathUnsupportedError,
    FastPipelinedSwitch,
    make_pipelined_switch,
)
from repro.core.latches import InputLatchRow, LatchOverrunError, OutputRegisterRow
from repro.core.sources import (
    BatchRenewalSource,
    PacketSink,
    PacketSource,
    RenewalPacketSource,
    SaturatingSource,
    SlotAdapterSource,
    TracePacketSource,
    deterministic_payload,
)
from repro.core.split_buffer import SplitBufferConfig, SplitPipelinedBuffer
from repro.core.switch import (
    DeadlineMissedError,
    PipelinedSwitch,
    PipelinedSwitchConfig,
)
from repro.core.tracing import WaveTracer
from repro.core.wide import WideMemorySwitch, WideSwitchConfig

__all__ = [
    "PipelinedSwitch",
    "PipelinedSwitchConfig",
    "ConfigError",
    "DeadlineMissedError",
    "FastPipelinedSwitch",
    "FastPathUnsupportedError",
    "BatchPipelinedSwitch",
    "BatchRenewalSource",
    "DEFAULT_BATCH_CYCLES",
    "resolve_jit",
    "make_pipelined_switch",
    "WaveTracer",
    "WideMemorySwitch",
    "WideSwitchConfig",
    "SplitPipelinedBuffer",
    "SplitBufferConfig",
    "Priority",
    "WaveArbiter",
    "WriteRequest",
    "MemoryBank",
    "BankConflictError",
    "BufferManager",
    "BufferFullError",
    "Bus",
    "BusContentionError",
    "ControlPipeline",
    "ControlWord",
    "WaveOp",
    "InputLatchRow",
    "OutputRegisterRow",
    "LatchOverrunError",
    "PacketSource",
    "PacketSink",
    "RenewalPacketSource",
    "SaturatingSource",
    "SlotAdapterSource",
    "TracePacketSource",
    "deterministic_payload",
]
