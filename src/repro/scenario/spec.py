"""Declarative experiment specifications.

A :class:`Scenario` names one simulation completely: which architecture
(by registry name), its configuration parameters, the traffic offered to
it, the horizon, the seeds, and the telemetry to collect.  Scenarios are
plain data — they serialize to JSON (and load from TOML), they expand
into grids, and the :mod:`repro.scenario.runner` executes them, so "run
the E13 sweep" is a file, not four hand-rolled call sites.

Every validation failure raises :class:`ScenarioError` with a message
that says what was wrong *and* what would have been accepted — these
errors are surfaced verbatim by the CLI, so they must read like advice,
not like a stack frame.
"""

from __future__ import annotations

import difflib
import json
import math
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Iterable, Mapping


class ScenarioError(ValueError):
    """An invalid scenario specification (message is user-facing advice)."""


def _suggest(word: str, options: Iterable[str]) -> str:
    close = difflib.get_close_matches(word, list(options), n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


@dataclass
class TrafficSpec:
    """What arrives at the switch.

    ``kind`` names a traffic model understood by the architecture's kind
    (see :data:`repro.scenario.registry.TRAFFIC_KINDS`); ``load`` is the
    offered load; model-specific knobs (burst length, hotspot fraction)
    go in ``params``.  ``batched=True`` draws slotted traffic through the
    vectorized :meth:`~repro.traffic.base.TrafficSource.arrivals_matrix`
    path — deterministic per seed, statistically identical, different
    sample path (slotted architectures only).
    """

    kind: str = "uniform"
    load: float = 0.8
    params: dict[str, Any] = field(default_factory=dict)
    batched: bool = False

    def validate(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise ScenarioError(f"traffic.kind must be a non-empty string, got {self.kind!r}")
        if not isinstance(self.load, (int, float)) or isinstance(self.load, bool):
            raise ScenarioError(f"traffic.load must be a number, got {self.load!r}")
        if math.isnan(self.load) or self.load < 0.0 or self.load > 1.0:
            raise ScenarioError(f"traffic.load must be in [0, 1], got {self.load}")
        if not isinstance(self.params, dict):
            raise ScenarioError(f"traffic.params must be a table/dict, got {type(self.params).__name__}")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "load": self.load}
        if self.params:
            out["params"] = dict(self.params)
        if self.batched:
            out["batched"] = True
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrafficSpec":
        return _from_mapping(cls, data, where="traffic")


@dataclass
class TelemetrySpec:
    """Which telemetry channels a run collects (and exports as artifacts).

    The observability-plane fields: ``trace_sample`` switches the event
    channel to deterministic packet-lifecycle sampling at that rate (a
    seed-stable hash of the packet uid selects the same packets on every
    kernel tier, at any ``--jobs``, across checkpoint/resume) and exports
    per-stage spans; ``series`` attaches a bounded time-series ring of
    that many rows, fed at every ``sample_interval`` (which must then be
    set).
    """

    metrics: bool = False
    events: bool = False
    sample_interval: int = 0
    trace_sample: float = 0.0  # 0 = off, else (0, 1]: sampled span tracing
    trace_seed: int = 0        # salt for the sampling hash
    series: int = 0            # 0 = off, else ring capacity in rows

    @property
    def enabled(self) -> bool:
        return bool(self.metrics or self.events or self.sample_interval
                    or self.trace_sample or self.series)

    def validate(self) -> None:
        for flag in ("metrics", "events"):
            if not isinstance(getattr(self, flag), bool):
                raise ScenarioError(f"telemetry.{flag} must be true or false")
        if not isinstance(self.sample_interval, int) or isinstance(self.sample_interval, bool) \
                or self.sample_interval < 0:
            raise ScenarioError(
                f"telemetry.sample_interval must be an integer >= 0 (cycles "
                f"between occupancy samples; 0 = off), got {self.sample_interval!r}"
            )
        if not isinstance(self.trace_sample, (int, float)) \
                or isinstance(self.trace_sample, bool) \
                or not 0.0 <= self.trace_sample <= 1.0:
            raise ScenarioError(
                f"telemetry.trace_sample must be a sampling rate in [0, 1] "
                f"(0 = off), got {self.trace_sample!r}"
            )
        if not isinstance(self.trace_seed, int) or isinstance(self.trace_seed, bool):
            raise ScenarioError(
                f"telemetry.trace_seed must be an integer, got {self.trace_seed!r}"
            )
        if not isinstance(self.series, int) or isinstance(self.series, bool) \
                or self.series < 0:
            raise ScenarioError(
                f"telemetry.series must be an integer >= 0 (ring capacity in "
                f"rows; 0 = off), got {self.series!r}"
            )
        if self.series and not self.sample_interval:
            raise ScenarioError(
                "telemetry.series needs telemetry.sample_interval > 0 — the "
                "ring records at the occupancy sampling instant"
            )
        if self.trace_sample and self.events:
            raise ScenarioError(
                "telemetry.trace_sample and telemetry.events are mutually "
                "exclusive: sampled tracing replaces the full event log"
            )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.metrics:
            out["metrics"] = True
        if self.events:
            out["events"] = True
        if self.sample_interval:
            out["sample_interval"] = self.sample_interval
        if self.trace_sample:
            out["trace_sample"] = self.trace_sample
        if self.trace_seed:
            out["trace_seed"] = self.trace_seed
        if self.series:
            out["series"] = self.series
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetrySpec":
        return _from_mapping(cls, data, where="telemetry")


@dataclass
class Scenario:
    """One named, fully-specified simulation (see module docstring).

    ``horizon`` is in the architecture's native time unit: slots for the
    slot-level models and fabrics, clock cycles for the word-level kernels
    and the wormhole network.  ``warmup`` defaults to ``horizon // 5``.
    ``seeds`` lists independent replications; each (scenario, seed) pair is
    one job for the :class:`~repro.scenario.runner.ScenarioRunner`.
    """

    name: str
    arch: str
    horizon: int
    params: dict[str, Any] = field(default_factory=dict)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    seeds: tuple[int, ...] = (1,)
    warmup: int | None = None
    drain: bool = False
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)

    def __post_init__(self) -> None:
        if isinstance(self.traffic, Mapping):
            self.traffic = TrafficSpec.from_dict(self.traffic)
        if isinstance(self.telemetry, Mapping):
            self.telemetry = TelemetrySpec.from_dict(self.telemetry)
        if isinstance(self.seeds, (int,)) and not isinstance(self.seeds, bool):
            self.seeds = (self.seeds,)
        else:
            self.seeds = tuple(self.seeds)

    # -- validation ---------------------------------------------------------
    def validate(self) -> None:
        """Structural validation (architecture-independent).

        The registry's :func:`~repro.scenario.registry.validate_scenario`
        additionally checks ``arch``, ``params`` and ``traffic.kind``
        against the named architecture.
        """
        if not isinstance(self.name, str) or not self.name:
            raise ScenarioError("scenario needs a non-empty 'name'")
        if any(c in self.name for c in "/\\\0"):
            raise ScenarioError(
                f"scenario name {self.name!r} must not contain path separators "
                f"(it becomes the artifact file name)"
            )
        if not isinstance(self.arch, str) or not self.arch:
            raise ScenarioError(f"scenario {self.name!r} needs an 'arch' (architecture name)")
        if not isinstance(self.horizon, int) or isinstance(self.horizon, bool) or self.horizon < 1:
            raise ScenarioError(
                f"scenario {self.name!r}: horizon must be a positive integer "
                f"(slots or cycles), got {self.horizon!r}"
            )
        if not isinstance(self.params, dict):
            raise ScenarioError(f"scenario {self.name!r}: params must be a table/dict")
        if not self.seeds:
            raise ScenarioError(f"scenario {self.name!r}: needs at least one seed")
        for s in self.seeds:
            if not isinstance(s, int) or isinstance(s, bool) or s < 0:
                raise ScenarioError(
                    f"scenario {self.name!r}: seeds must be non-negative integers, got {s!r}"
                )
        if len(set(self.seeds)) != len(self.seeds):
            raise ScenarioError(f"scenario {self.name!r}: duplicate seeds {list(self.seeds)}")
        if self.warmup is not None and (
            not isinstance(self.warmup, int) or isinstance(self.warmup, bool) or self.warmup < 0
        ):
            raise ScenarioError(
                f"scenario {self.name!r}: warmup must be an integer >= 0, got {self.warmup!r}"
            )
        if self.warmup is not None and self.warmup >= self.horizon:
            raise ScenarioError(
                f"scenario {self.name!r}: warmup ({self.warmup}) must be below "
                f"the horizon ({self.horizon}) or no statistics are measured"
            )
        if not isinstance(self.drain, bool):
            raise ScenarioError(f"scenario {self.name!r}: drain must be true or false")
        self.traffic.validate()
        self.telemetry.validate()

    @property
    def effective_warmup(self) -> int:
        return self.horizon // 5 if self.warmup is None else self.warmup

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "arch": self.arch,
            "horizon": self.horizon,
        }
        if self.params:
            out["params"] = dict(self.params)
        out["traffic"] = self.traffic.to_dict()
        out["seeds"] = list(self.seeds)
        if self.warmup is not None:
            out["warmup"] = self.warmup
        if self.drain:
            out["drain"] = True
        tel = self.telemetry.to_dict()
        if tel:
            out["telemetry"] = tel
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        sc = _from_mapping(cls, data, where="scenario")
        sc.validate()
        return sc

    def dumps(self) -> str:
        """The scenario as a JSON document (round-trips via :meth:`load`)."""
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def dumps_toml(self) -> str:
        """The scenario as a TOML document (round-trips via :meth:`load`)."""
        return _to_toml(self.to_dict())

    def dump(self, path: str | Path) -> None:
        path = Path(path)
        text = self.dumps_toml() if path.suffix == ".toml" else self.dumps()
        path.write_text(text)

    @classmethod
    def load(cls, path: str | Path) -> "Scenario":
        """Load exactly one scenario from a JSON or TOML file."""
        scenarios = load_scenarios(path)
        if len(scenarios) != 1:
            raise ScenarioError(
                f"{path} holds {len(scenarios)} scenarios; use "
                f"repro.scenario.load_scenarios() (or 'repro sweep') for grids"
            )
        return scenarios[0]

    # -- grid expansion -----------------------------------------------------
    def expand(self, grid: Mapping[str, list[Any]]) -> list["Scenario"]:
        """Cartesian expansion of this scenario over a sweep grid.

        Grid keys are dotted paths into the spec — ``"traffic.load"``,
        ``"params.n"``, ``"arch"``, ``"horizon"``, ``"traffic.params.burst"``
        — each mapped to the list of values to sweep.  ``{"traffic.load":
        [0.5, 0.7, 0.9]}`` yields three scenarios named
        ``{name}-load0.5`` … in deterministic (insertion-then-product)
        order.
        """
        if not isinstance(grid, Mapping) or not grid:
            raise ScenarioError("sweep grid must be a non-empty table of axis -> list of values")
        axes: list[tuple[str, list[Any]]] = []
        for key, values in grid.items():
            if not isinstance(values, list) or not values:
                raise ScenarioError(
                    f"sweep axis {key!r} must map to a non-empty list of values, "
                    f"got {values!r}"
                )
            axes.append((key, values))
        expanded = [self]
        for key, values in axes:
            expanded = [
                _with_path(sc, key, value) for sc in expanded for value in values
            ]
        for sc in expanded:
            sc.validate()
        names = [sc.name for sc in expanded]
        if len(set(names)) != len(names):
            raise ScenarioError(
                f"sweep expansion produced duplicate scenario names (e.g. "
                f"{names[0]!r}); vary the base name or the grid axes"
            )
        return expanded


_SETTABLE_ROOTS = ("arch", "horizon", "warmup", "drain")


def _with_path(sc: Scenario, path: str, value: Any) -> Scenario:
    """A copy of ``sc`` with the dotted ``path`` set to ``value`` and the
    axis appended to its name."""
    leaf = path.rsplit(".", 1)[-1]
    if isinstance(value, str):
        # "fifo" reads better than "arch-fifo"; other string axes keep
        # their key ("scheduler-pim") so mixed grids stay unambiguous.
        suffix = value if leaf in ("arch", "kind") else f"{leaf}-{value}"
    else:
        suffix = f"{leaf}{value}"
    new = replace(
        sc,
        params=dict(sc.params),
        traffic=replace(sc.traffic, params=dict(sc.traffic.params)),
        telemetry=replace(sc.telemetry),
        name=f"{sc.name}-{suffix}",
    )
    parts = path.split(".")
    if parts[0] == "params" and len(parts) == 2:
        new.params[parts[1]] = value
    elif parts[0] == "traffic" and len(parts) == 2 and parts[1] != "params":
        if parts[1] not in {f.name for f in fields(TrafficSpec)}:
            raise ScenarioError(
                f"unknown sweep axis {path!r}"
                f"{_suggest(parts[1], [f'traffic.{f.name}' for f in fields(TrafficSpec)])}"
            )
        setattr(new.traffic, parts[1], value)
    elif parts[0] == "traffic" and len(parts) == 3 and parts[1] == "params":
        new.traffic.params[parts[2]] = value
    elif len(parts) == 1 and parts[0] in _SETTABLE_ROOTS:
        setattr(new, parts[0], value)
    else:
        valid = list(_SETTABLE_ROOTS) + ["params.<key>", "traffic.load",
                                         "traffic.kind", "traffic.params.<key>"]
        raise ScenarioError(
            f"unknown sweep axis {path!r}; valid axes: {', '.join(valid)}"
            f"{_suggest(path, _SETTABLE_ROOTS)}"
        )
    return new


# -- file loading (scenario, list, or sweep documents) ----------------------

def load_scenarios(path: str | Path) -> list[Scenario]:
    """Load a JSON/TOML file into a list of validated scenarios.

    Accepted document shapes:

    * one scenario object (has an ``arch`` key);
    * a sweep: ``{"base": {scenario...}, "grid": {axis: [values...]}}``;
    * a list of either (JSON only; TOML has no top-level arrays).
    """
    path = Path(path)
    try:
        raw = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path}: {exc}") from exc
    if path.suffix == ".toml":
        import tomllib

        try:
            doc: Any = tomllib.loads(raw)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"{path} is not valid TOML: {exc}") from exc
    else:
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{path} is not valid JSON: {exc}") from exc
    return _scenarios_from_document(doc, where=str(path))


def _scenarios_from_document(doc: Any, where: str) -> list[Scenario]:
    if isinstance(doc, list):
        out: list[Scenario] = []
        for i, item in enumerate(doc):
            out.extend(_scenarios_from_document(item, where=f"{where}[{i}]"))
        if not out:
            raise ScenarioError(f"{where}: empty scenario list")
        return out
    if not isinstance(doc, Mapping):
        raise ScenarioError(
            f"{where}: expected a scenario object, a sweep "
            f"({{'base': ..., 'grid': ...}}), or a list of those"
        )
    if "grid" in doc or "base" in doc:
        extra = set(doc) - {"base", "grid"}
        if extra or "base" not in doc or "grid" not in doc:
            raise ScenarioError(
                f"{where}: a sweep document needs exactly 'base' and 'grid' "
                f"keys, got {sorted(doc)}"
            )
        base = Scenario.from_dict(doc["base"])
        return base.expand(doc["grid"])
    if "arch" not in doc:
        raise ScenarioError(
            f"{where}: not a scenario (no 'arch' key) and not a sweep (no "
            f"'base'/'grid' keys); keys present: {sorted(doc)}"
        )
    return [Scenario.from_dict(doc)]


# -- shared helpers ----------------------------------------------------------

def _from_mapping(cls, data: Mapping[str, Any], where: str):
    if not isinstance(data, Mapping):
        raise ScenarioError(f"{where} must be a table/dict, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        bad = sorted(unknown)[0]
        raise ScenarioError(
            f"{where} has unknown key {bad!r}{_suggest(bad, known)}; "
            f"valid keys: {', '.join(sorted(known))}"
        )
    try:
        return cls(**dict(data))
    except TypeError as exc:
        raise ScenarioError(f"invalid {where}: {exc}") from exc


def _to_toml(data: Mapping[str, Any], prefix: str = "") -> str:
    """Minimal TOML writer for scenario documents (scalars, lists, nested
    tables — exactly the shapes :meth:`Scenario.to_dict` produces).
    ``tomllib`` is read-only, so round-tripping needs this emitter."""
    scalars: list[str] = []
    tables: list[str] = []
    for key, value in data.items():
        if isinstance(value, Mapping):
            inner = _to_toml(value, prefix=f"{prefix}{key}.")
            header = f"[{prefix}{key}]\n"
            tables.append(header + inner if inner else header)
        else:
            scalars.append(f"{key} = {_toml_value(value)}\n")
    return "".join(scalars) + ("\n" if scalars and tables else "") + "\n".join(tables)


def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # JSON string escaping is valid TOML
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise ScenarioError(f"cannot serialize {value!r} to TOML")
