"""``repro top``: a live terminal dashboard over the ``/metrics`` endpoint.

Scrapes a Prometheus endpoint (ours or any other serving the families
:mod:`repro.core.instrumentation` registers), derives rates from scrape
deltas, and renders:

* throughput — cycles/s and departures/s per cell, from counter/gauge
  deltas between consecutive scrapes;
* an occupancy + per-port queue-depth heatmap (unicode block ramp);
* the drop taxonomy (per-cause totals and rates);
* sweep progress (cells done/total/resumed/inflight) when present.

Plain-refresh rendering (clear + redraw with ANSI when the output is a
tty) rather than curses: it works over ssh, in CI logs and under pipes,
and ``--once`` turns it into a scrape-and-print for scripting/tests.
The module is pure data-in/text-out apart from the scrape and the clock,
so tests feed it canned family sets.
"""

from __future__ import annotations

import sys
import time
import urllib.error
import urllib.request

from repro.obs import promparse

BLOCKS = " ▁▂▃▄▅▆▇█"


def scrape(url: str, timeout: float = 5.0) -> list[promparse.Family]:
    """Fetch and parse one exposition document."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return promparse.parse(resp.read().decode("utf-8", "replace"))


def _bar(value: float, peak: float, width: int = 1) -> str:
    """Map value/peak onto the block ramp (peak<=0 renders empty)."""
    if peak <= 0 or value <= 0:
        return BLOCKS[0] * width
    frac = min(value / peak, 1.0)
    return BLOCKS[round(frac * (len(BLOCKS) - 1))] * width


class _Snapshot:
    """One scrape, indexed for the renderer."""

    def __init__(self, families: list[promparse.Family], wall: float) -> None:
        self.wall = wall
        self.by_name = {f.name: f for f in families}

    def value(self, family: str, default: float | None = None,
              **labels: str) -> float | None:
        fam = self.by_name.get(family)
        if fam is None:
            return default
        for s in fam.samples:
            if all(s.labels.get(k) == v for k, v in labels.items()):
                return s.value
        return default

    def grouped(self, family: str, key: str) -> dict[tuple[str, str], float]:
        """(cell, key-label) -> value; cell '' when unlabelled."""
        fam = self.by_name.get(family)
        out: dict[tuple[str, str], float] = {}
        if fam is None:
            return out
        for s in fam.samples:
            out[(s.labels.get("cell", ""), s.labels.get(key, ""))] = s.value
        return out

    def cells(self) -> list[str]:
        seen: dict[str, None] = {}
        for fam in self.by_name.values():
            for s in fam.samples:
                if "cell" in s.labels:
                    seen.setdefault(s.labels["cell"], None)
        return list(seen) or [""]


def render_dashboard(now: _Snapshot, prev: _Snapshot | None) -> str:
    """The dashboard text for one scrape (pure function of two snapshots)."""
    lines: list[str] = []
    dt = (now.wall - prev.wall) if prev is not None else 0.0

    total = now.value("repro_sweep_cells_total")
    if total is not None:
        done = now.value("repro_sweep_cells_done", 0.0) or 0.0
        resumed = now.value("repro_sweep_cells_resumed", 0.0) or 0.0
        inflight = now.value("repro_sweep_cells_inflight", 0.0) or 0.0
        width = 30
        filled = round(width * done / total) if total else 0
        lines.append(
            f"sweep  [{'#' * filled}{'.' * (width - filled)}] "
            f"{done:.0f}/{total:.0f} cells"
            f"  ({resumed:.0f} resumed, {inflight:.0f} in flight)"
        )
        lines.append("")

    header = (f"{'cell':<28} {'cycle':>12} {'cycles/s':>10} "
              f"{'departs/s':>10} {'occ':>6} {'peak':>6} {'drops':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    for cell in now.cells():
        sel = {"cell": cell} if cell else {}
        cycle = now.value("repro_cycle", **sel)
        if cycle is None:
            continue
        occ = now.value("repro_buffer_occupancy", 0.0, **sel) or 0.0
        peak_occ = now.value("repro_buffer_peak_occupancy", 0.0, **sel) or 0.0
        departs = sum(v for (c, _), v in
                      now.grouped("repro_port_departures_total", "port").items()
                      if c == cell)
        drops = sum(v for (c, _), v in
                    now.grouped("repro_port_drops_total", "cause").items()
                    if c == cell)
        cps = dps = float("nan")
        if prev is not None and dt > 0:
            pcycle = prev.value("repro_cycle", **sel)
            if pcycle is not None:
                cps = (cycle - pcycle) / dt
            pdeparts = sum(v for (c, _), v in
                           prev.grouped("repro_port_departures_total",
                                        "port").items() if c == cell)
            dps = (departs - pdeparts) / dt
        name = cell or "(run)"
        cps_txt = f"{cps:,.0f}" if cps == cps else "-"
        dps_txt = f"{dps:,.0f}" if dps == dps else "-"
        lines.append(f"{name:<28.28} {cycle:>12,.0f} {cps_txt:>10} "
                     f"{dps_txt:>10} {occ:>6.0f} {peak_occ:>6.0f} "
                     f"{drops:>8.0f}")

        depths = now.grouped("repro_port_queue_depth", "port")
        ports = sorted(((p, v) for (c, p), v in depths.items() if c == cell),
                       key=lambda kv: int(kv[0]) if kv[0].isdigit() else 0)
        if ports:
            peak = max(v for _, v in ports)
            heat = "".join(_bar(v, peak) for _, v in ports)
            lines.append(f"  queue depth [{heat}] peak {peak:.0f} "
                         f"across {len(ports)} ports")
    lines.append("")

    taxonomy: dict[str, float] = {}
    for (cell, cause), v in now.grouped("repro_port_drops_total",
                                        "cause").items():
        taxonomy[cause] = taxonomy.get(cause, 0.0) + v
    if taxonomy:
        lines.append("drop taxonomy")
        for cause, v in sorted(taxonomy.items()):
            lines.append(f"  {cause:<20} {v:>10,.0f}")
    else:
        lines.append("drop taxonomy: no drops")
    return "\n".join(lines) + "\n"


def run_top(url: str, *, interval: float = 1.0, once: bool = False,
            iterations: int | None = None, out=None) -> int:
    """The ``repro top`` loop; returns a process exit code.

    ``once`` prints a single dashboard (no clearing).  ``iterations``
    bounds the loop for tests; interactive use runs until Ctrl-C.
    """
    out = out if out is not None else sys.stdout
    prev: _Snapshot | None = None
    count = 0
    clear = "\x1b[2J\x1b[H" if (not once and getattr(out, "isatty",
                                                    lambda: False)()) else ""
    while True:
        try:
            snap = _Snapshot(scrape(url), time.monotonic())
        except (urllib.error.URLError, OSError, ValueError,
                promparse.PromParseError) as exc:
            print(f"repro top: cannot scrape {url}: {exc}", file=sys.stderr)
            return 1
        text = render_dashboard(snap, prev)
        if clear:
            out.write(clear)
        out.write(text)
        out.flush()
        prev = snap
        count += 1
        if once or (iterations is not None and count >= iterations):
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0


__all__ = ["scrape", "render_dashboard", "run_top"]
