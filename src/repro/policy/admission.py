"""Pluggable shared-buffer admission policies.

The paper (§3.3) deliberately separates buffer (address) management from
the pipelined memory; admission — *should this arriving packet be granted
buffer space at all?* — is the part of that management layer worth varying.
The seed kernels hard-code complete sharing ("admit iff enough free
addresses", the drop-tail discipline of the paper's Telegraphos context);
the datacenter buffer-sharing literature (Choudhury–Hahne dynamic
thresholds, the BShare baseline) studies alternatives on exactly this
shared-memory architecture.

Every kernel consults the policy at the same instant: the cycle the
packet's head word reaches the input latch (the ``arrive`` event).  A
refusal drops the packet immediately with the ``DROP_POLICY`` cause — it
never becomes a pending write, so it competes for nothing.  The packet
still occupies its input link for the full ``W`` cycles (the wire does not
know about the policy), which keeps source cadence and drain timing
bit-identical across the checked, fast and batch kernels.

The policy sees one **canonical view** of buffer state, identical in every
kernel at the arrival instant:

* ``free`` — free buffer addresses, counting an address as held from its
  packet's write-wave admission until the cycle *after* its read chain
  completes (the fast kernel's natural accounting; the checked kernel's
  :class:`~repro.core.buffer_manager.BufferManager` releases one phase
  earlier on the final cycle, so it derives this view from its queues and
  per-output wave horizons rather than from ``free_count``).
* ``held[j]`` — packets currently holding addresses for output ``j``:
  the queued packets plus the at-most-one departure chain in flight.

Policies are pure functions of that view, so the decision stream is
reproducible and the four built-ins compile to scalar integer arithmetic
for the numba array core (:meth:`AdmissionPolicy.kernel_code`).  A policy
that cannot compile returns ``None`` there and the array core refuses
loudly (``FastPathUnsupportedError``) instead of approximating.
"""

from __future__ import annotations

import difflib
from fractions import Fraction
from typing import Mapping, Sequence

from repro.core.errors import ConfigError

__all__ = [
    "AdmissionPolicy",
    "CompleteSharing",
    "StaticThreshold",
    "DynamicThreshold",
    "PortReservation",
    "POLICIES",
    "parse_policy",
    "K_COMPLETE",
    "K_STATIC",
    "K_DYNAMIC",
    "K_RESERVATION",
]

# Integer policy codes understood by the batch array core
# (repro.core._batchcore).  Stable: checkpoints never store them (they
# store spec strings), but the lean/batch engines share them too.
K_COMPLETE = 0
K_STATIC = 1
K_DYNAMIC = 2
K_RESERVATION = 3

# Denominator bound for the dynamic threshold's exact-rational alpha.
# Keeps every intermediate product of the admission test inside int64 so
# the numba core and the Python engines compute bit-identical decisions.
_ALPHA_DENOMINATOR_LIMIT = 1 << 16


class AdmissionPolicy:
    """Admission decision for one arriving packet (see module docstring).

    Implementations are stateless value objects; two instances with the
    same :attr:`spec` behave identically, which is what checkpoint
    restore relies on.  Subclasses that *do* carry evolving state must
    override :meth:`state`/:meth:`restore_state` so snapshots stay
    bit-identical on resume.
    """

    #: registry key; also the first token of the spec string
    kind = "abstract"
    #: trivial policies admit every packet — kernels skip the per-arrival
    #: consult entirely, so CompleteSharing has zero hot-path cost and the
    #: seed behaviour is preserved structurally, not just numerically.
    trivial = False
    #: declared constructor parameters: name -> type (int or float)
    _params: dict[str, type] = {}

    @property
    def spec(self) -> str:
        """Canonical round-trippable spec string (``kind:key=value,...``)."""
        raise NotImplementedError

    def admit(self, dst: int, free: int, held: Sequence[int], quanta: int) -> bool:
        """Admit a ``quanta``-quantum packet for output ``dst``?

        ``free`` is in buffer addresses, ``held[j]`` in packets (see the
        module docstring for the canonical view both are taken from).
        """
        raise NotImplementedError

    def validate(self, *, n: int, addresses: int, quanta: int) -> None:
        """Raise :class:`ConfigError` if this policy cannot govern the
        given switch geometry."""

    def kernel_code(self) -> tuple[int, int, int] | None:
        """``(kind, p1, p2)`` integer triple for the batch array core, or
        ``None`` if this policy does not compile (the core then refuses)."""
        return None

    # -- checkpoint hooks ---------------------------------------------------
    def state(self) -> object | None:
        """Opaque JSON-able evolving state for checkpoints; ``None`` means
        stateless (all four built-ins)."""
        return None

    def restore_state(self, doc: object | None) -> None:
        if doc is not None:
            raise ConfigError(
                f"policy '{self.spec}' is stateless but the snapshot "
                f"carries policy state {doc!r}"
            )

    # -- value semantics ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.spec == self.spec

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.spec))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec!r})"


class CompleteSharing(AdmissionPolicy):
    """The seed discipline: every packet is admitted; the only losses are
    the structural drop-tail overruns (buffer full for the whole store
    window).  Bit-identical to pre-policy behaviour by construction."""

    kind = "complete"
    trivial = True

    @property
    def spec(self) -> str:
        return "complete"

    def admit(self, dst: int, free: int, held: Sequence[int], quanta: int) -> bool:
        return True

    def kernel_code(self) -> tuple[int, int, int]:
        return (K_COMPLETE, 0, 0)


class StaticThreshold(AdmissionPolicy):
    """Per-output static cap: refuse when output ``dst`` already holds
    ``cap`` packets.  The classic partitioned-threshold baseline."""

    kind = "static"
    _params = {"cap": int}

    def __init__(self, cap: int) -> None:
        cap = int(cap)
        if cap < 1:
            raise ConfigError(f"static threshold cap must be >= 1, got {cap}")
        self.cap = cap

    @property
    def spec(self) -> str:
        return f"static:cap={self.cap}"

    def admit(self, dst: int, free: int, held: Sequence[int], quanta: int) -> bool:
        return held[dst] < self.cap

    def kernel_code(self) -> tuple[int, int, int]:
        return (K_STATIC, self.cap, 0)


class DynamicThreshold(AdmissionPolicy):
    """Choudhury–Hahne dynamic threshold (the BShare baseline): admit while
    the output's occupancy stays below ``alpha`` times the *free* space.

    The test is evaluated in exact integer arithmetic —
    ``quanta * (held[dst] + 1) * den <= num * free`` with
    ``num/den ≈ alpha`` (denominator bounded so every product fits int64)
    — so the Python engines and the numba array core take bit-identical
    decisions.
    """

    kind = "dynamic"
    _params = {"alpha": float}

    def __init__(self, alpha: float) -> None:
        alpha = float(alpha)
        if not alpha > 0.0:
            raise ConfigError(f"dynamic threshold alpha must be > 0, got {alpha}")
        self.alpha = alpha
        frac = Fraction(alpha).limit_denominator(_ALPHA_DENOMINATOR_LIMIT)
        self.alpha_num = frac.numerator
        self.alpha_den = frac.denominator

    @property
    def spec(self) -> str:
        return f"dynamic:alpha={self.alpha!r}"

    def admit(self, dst: int, free: int, held: Sequence[int], quanta: int) -> bool:
        return (
            quanta * (held[dst] + 1) * self.alpha_den
            <= self.alpha_num * free
        )

    def kernel_code(self) -> tuple[int, int, int]:
        return (K_DYNAMIC, self.alpha_num, self.alpha_den)


class PortReservation(AdmissionPolicy):
    """Guaranteed per-port minimum: refuse an admission that would dip
    into the addresses still owed to outputs below their ``reserve``."""

    kind = "reservation"
    _params = {"reserve": int}

    def __init__(self, reserve: int) -> None:
        reserve = int(reserve)
        if reserve < 1:
            raise ConfigError(
                f"port reservation must be >= 1 packet, got {reserve}"
            )
        self.reserve = reserve

    @property
    def spec(self) -> str:
        return f"reservation:reserve={self.reserve}"

    def validate(self, *, n: int, addresses: int, quanta: int) -> None:
        need = n * self.reserve * quanta
        if need > addresses:
            raise ConfigError(
                f"reservation:reserve={self.reserve} needs "
                f"{n} x {self.reserve} x {quanta} = {need} addresses but the "
                f"buffer has only {addresses}"
            )

    def admit(self, dst: int, free: int, held: Sequence[int], quanta: int) -> bool:
        shortfall = 0
        reserve = self.reserve
        for j, h in enumerate(held):
            if j != dst and h < reserve:
                shortfall += reserve - h
        return free >= quanta * (1 + shortfall)

    def kernel_code(self) -> tuple[int, int, int]:
        return (K_RESERVATION, self.reserve, 0)


#: Registry of every admission policy, keyed by spec kind.  The scenario
#: layer and the CLI resolve ``--policy`` strings through this table, so a
#: policy listed here is reachable from every entry point (DRC122 lints
#: that no implementation is missing from it).
POLICIES: dict[str, type[AdmissionPolicy]] = {
    "complete": CompleteSharing,
    "static": StaticThreshold,
    "dynamic": DynamicThreshold,
    "reservation": PortReservation,
}


def _suggest(word: str, options: Sequence[str]) -> str:
    close = difflib.get_close_matches(word, options, n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


def _convert(kind: str, name: str, value: object, typ: type) -> object:
    try:
        return typ(value)  # type: ignore[call-arg]
    except (TypeError, ValueError):
        raise ConfigError(
            f"policy '{kind}' parameter '{name}' expects "
            f"{typ.__name__}, got {value!r}"
        ) from None


def _build(kind: str, raw: Mapping[str, object]) -> AdmissionPolicy:
    cls = POLICIES.get(kind)
    if cls is None:
        raise ConfigError(
            f"unknown admission policy '{kind}'"
            f"{_suggest(kind, list(POLICIES))}; "
            f"known policies: {', '.join(sorted(POLICIES))}"
        )
    params = cls._params
    kwargs: dict[str, object] = {}
    for name, value in raw.items():
        typ = params.get(name)
        if typ is None:
            raise ConfigError(
                f"policy '{kind}' got unknown parameter '{name}'"
                f"{_suggest(name, list(params))}; "
                f"expected: {', '.join(sorted(params)) or '(none)'}"
            )
        kwargs[name] = _convert(kind, name, value, typ)
    missing = sorted(set(params) - set(kwargs))
    if missing:
        raise ConfigError(
            f"policy '{kind}' is missing parameter(s): {', '.join(missing)} "
            f"(e.g. '--policy {kind}:" + ",".join(f"{p}=..." for p in missing)
            + "')"
        )
    return cls(**kwargs)  # type: ignore[arg-type]


def parse_policy(
    spec: "str | Mapping[str, object] | AdmissionPolicy | None",
) -> AdmissionPolicy:
    """Resolve a policy spec to an :class:`AdmissionPolicy` instance.

    Accepts ``None`` (complete sharing), an existing policy instance, a
    spec string (``"complete"``, ``"static:cap=8"``,
    ``"dynamic:alpha=1.0"``, ``"reservation:reserve=4"``) or a mapping
    (``{"kind": "dynamic", "alpha": 1.0}``).  Raises :class:`ConfigError`
    with a did-you-mean hint on anything else.
    """
    if spec is None:
        return CompleteSharing()
    if isinstance(spec, AdmissionPolicy):
        return spec
    if isinstance(spec, Mapping):
        raw = dict(spec)
        kind = raw.pop("kind", None)
        if not isinstance(kind, str):
            raise ConfigError(
                f"policy mapping needs a string 'kind' entry, got {spec!r}"
            )
        return _build(kind, raw)
    if not isinstance(spec, str):
        raise ConfigError(
            f"policy spec must be a string, mapping or AdmissionPolicy, "
            f"got {type(spec).__name__}: {spec!r}"
        )
    text = spec.strip()
    if not text:
        raise ConfigError("policy spec must not be empty")
    kind, _, arg_text = text.partition(":")
    kind = kind.strip()
    raw2: dict[str, object] = {}
    if arg_text.strip():
        for item in arg_text.split(","):
            name, eq, value = item.partition("=")
            name = name.strip()
            if not eq or not name or not value.strip():
                raise ConfigError(
                    f"malformed policy parameter {item!r} in spec {text!r}; "
                    f"expected 'name=value'"
                )
            raw2[name] = value.strip()
    return _build(kind, raw2)
