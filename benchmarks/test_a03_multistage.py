"""Ablation A3 — the architecture ranking at multistage-fabric scale.

The paper's introduction positions single-chip switches as "building blocks
for larger, multi-stage switches and networks".  This bench reruns the §2
comparison with the switch as an *element*: a 64-port omega fabric (two ranks
of 8x8 elements) under uniform traffic, with FIFO-input-queued, VOQ+iSLIP,
output-queued and shared-buffer elements.  Internal-stage contention makes
element architecture matter even more than in isolation: blocked FIFO
elements propagate head-of-line blocking backward through the fabric.
"""

from conftest import show

from repro.fabric import OmegaFabric
from repro.switches import FifoInputQueued, Islip, OutputQueued, SharedBuffer, VoqInputBuffered
from repro.switches.harness import format_table
from repro.traffic import BernoulliUniform

K, STAGES = 8, 2
N = K**STAGES
SLOTS = 6_000


def _element_factories():
    return {
        "FIFO input-queued elements": lambda: FifoInputQueued(K, K, seed=1),
        "VOQ + iSLIP elements": lambda: VoqInputBuffered(K, K, Islip(iterations=4)),
        "output-queued elements": lambda: OutputQueued(K, K, seed=2),
        "shared-buffer elements": lambda: SharedBuffer(K, K, seed=3),
    }


def _experiment():
    rows = []
    for name, factory in _element_factories().items():
        fab = OmegaFabric(K, STAGES, factory)
        fab.warmup = SLOTS // 5
        fab.run(BernoulliUniform(N, N, 1.0, seed=4), SLOTS)
        rows.append([name, fab.throughput, fab.delay.mean, fab.misrouted])
    return rows


def test_a03_multistage(run_once):
    rows = run_once(_experiment)
    show(format_table(
        ["element architecture", "fabric saturation", "mean delay (slots)", "misrouted"],
        rows,
        title=f"A3 ablation: {N}-port omega fabric ({STAGES} ranks of {K}x{K} elements)",
    ))
    by_name = {r[0]: r for r in rows}
    assert all(r[3] == 0 for r in rows)  # routing always correct
    # ranking preserved at fabric scale:
    fifo = by_name["FIFO input-queued elements"][1]
    shared = by_name["shared-buffer elements"][1]
    oq = by_name["output-queued elements"][1]
    assert fifo < 0.62
    assert shared > fifo + 0.1
    assert abs(shared - oq) < 0.05  # shared == output queueing, as always
