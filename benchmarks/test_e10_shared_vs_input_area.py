"""E10 — Shared vs input buffering silicon cost at equal performance
(paper §5.1, figure 9).

The paper's argument: both organizations have total storage width 2nw; at
equal loss performance the shared buffer's height H_s is much smaller than
the input buffers' H_i, while the crossbar/datapath blocks are comparable
(one crossbar + scheduler vs two wire blocks).  Hence shared buffering wins
on cost-performance.
"""

from conftest import show

from repro.switches.harness import format_table
from repro.vlsi.comparisons import shared_vs_input_buffering


def test_e10_shared_vs_input_area(run_once):
    r = run_once(shared_vs_input_buffering)
    rows = [
        ["buffer height (cells/port)", r.h_shared_cells, r.h_input_cells],
        ["storage area (mm^2)", round(r.shared_storage_mm2, 2), round(r.input_storage_mm2, 2)],
        ["datapath/crossbar area (mm^2)", round(r.shared_datapath_mm2, 2),
         f"{r.input_datapath_mm2:.2f} (+ scheduler)"],
    ]
    show(format_table(
        ["quantity", "shared buffering", "input buffering"],
        rows,
        title=f"E10: §5.1 cost at equal loss (16x16, load 0.8, 1e-3); H_i/H_s = {r.height_ratio:.1f}",
    ))
    # H_s << H_i — the paper's inequality, with a wide margin:
    assert r.height_ratio > 5
    assert r.shared_storage_mm2 < r.input_storage_mm2 / 5
    # Datapath blocks comparable: shared needs 2 blocks vs 1 (+ scheduler):
    assert r.shared_datapath_mm2 < 3 * r.input_datapath_mm2
    # Net: total shared cost below total input-buffering cost
    shared_total = r.shared_storage_mm2 + r.shared_datapath_mm2
    input_total = r.input_storage_mm2 + r.input_datapath_mm2
    assert shared_total < input_total
