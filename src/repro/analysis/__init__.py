"""Analytical models reproducing the queueing results the paper builds on."""

from repro.analysis.buffer_sizing import (
    hlka88_comparison,
    input_smoothing_capacity_for_loss,
    input_smoothing_loss,
    output_queue_capacity_for_loss,
    output_queue_loss,
    shared_buffer_capacity_for_loss,
    shared_buffer_overflow,
)
from repro.analysis.bursty_queue import (
    burstiness_penalty,
    bursty_loss,
    bursty_queue_solution,
)
from repro.analysis.delay_distribution import (
    batch_position_pmf,
    delay_pmf,
    delay_quantile,
    mean_delay,
)
from repro.analysis.hol import (
    KAROL_TABLE,
    hol_saturation,
    hol_saturation_asymptotic,
    hol_saturation_montecarlo,
)
from repro.analysis.knockout import (
    effective_load,
    knockout_loss,
    knockout_loss_poisson,
    paths_for_loss,
)
from repro.analysis.littles_law import (
    LittlesLawReport,
    conservation_check,
    littles_law_check,
)
from repro.analysis.queueing import (
    batch_pmf,
    convolve_queues,
    md1_wait,
    mean_queue_length,
    output_queue_wait,
    stationary_queue_distribution,
    tail_probability,
)
from repro.analysis.quantum import (
    QuantumPoint,
    aggregate_throughput_gbps,
    quantum_table,
    required_width_bits,
    telegraphos3_throughput_check,
)
from repro.analysis.staggered import (
    derivation_table,
    expected_competing_heads,
    expected_extra_latency,
    head_probability,
)

__all__ = [
    "burstiness_penalty",
    "bursty_loss",
    "bursty_queue_solution",
    "batch_position_pmf",
    "delay_pmf",
    "delay_quantile",
    "mean_delay",
    "hlka88_comparison",
    "input_smoothing_capacity_for_loss",
    "input_smoothing_loss",
    "output_queue_capacity_for_loss",
    "output_queue_loss",
    "shared_buffer_capacity_for_loss",
    "shared_buffer_overflow",
    "KAROL_TABLE",
    "hol_saturation",
    "hol_saturation_asymptotic",
    "hol_saturation_montecarlo",
    "effective_load",
    "knockout_loss",
    "knockout_loss_poisson",
    "paths_for_loss",
    "LittlesLawReport",
    "conservation_check",
    "littles_law_check",
    "batch_pmf",
    "convolve_queues",
    "md1_wait",
    "mean_queue_length",
    "output_queue_wait",
    "stationary_queue_distribution",
    "tail_probability",
    "QuantumPoint",
    "aggregate_throughput_gbps",
    "quantum_table",
    "required_width_bits",
    "telegraphos3_throughput_check",
    "derivation_table",
    "expected_competing_heads",
    "expected_extra_latency",
    "head_probability",
]
