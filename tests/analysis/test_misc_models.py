"""Tests for staggered-latency, quantum, knockout, and Little's-law helpers."""

import math

import pytest

from repro.analysis.knockout import (
    effective_load,
    knockout_loss,
    knockout_loss_poisson,
    paths_for_loss,
    survivors_pmf,
)
from repro.analysis.littles_law import (
    conservation_check,
    littles_law_check,
    throughput_delay_consistency,
)
from repro.analysis.quantum import (
    aggregate_throughput_gbps,
    quantum_table,
    required_width_bits,
    telegraphos3_throughput_check,
)
from repro.analysis.staggered import (
    derivation_table,
    expected_competing_heads,
    expected_extra_latency,
    head_probability,
)


class TestStaggered:
    def test_formula_value_at_40_percent(self):
        """The paper: 'For 40% load, this amounts to one tenth of a clock
        cycle, i.e. negligible.'"""
        assert expected_extra_latency(0.4, 8) == pytest.approx(0.0875, abs=1e-4)
        assert expected_extra_latency(0.4, 1000) == pytest.approx(0.1, abs=1e-3)

    def test_head_probability(self):
        assert head_probability(0.4, 8) == pytest.approx(0.4 / 16)

    def test_consistency_of_derivation(self):
        p, n = 0.6, 8
        assert expected_extra_latency(p, n) == pytest.approx(
            expected_competing_heads(p, n) / 2
        )

    def test_table(self):
        rows = derivation_table(8, [0.2, 0.4])
        assert len(rows) == 2
        assert rows[1]["extra_cycles"] > rows[0]["extra_cycles"]

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_extra_latency(1.5, 8)
        with pytest.raises(ValueError):
            expected_extra_latency(0.5, 0)


class TestQuantum:
    def test_paper_range(self):
        """§3.5: 256-1024 bit widths at 5 ns -> 50-200 Gb/s aggregate."""
        assert aggregate_throughput_gbps(256, 5.0) == pytest.approx(51.2)
        assert aggregate_throughput_gbps(1024, 5.0) == pytest.approx(204.8)

    def test_table_rows(self):
        rows = quantum_table([32, 64], cycle_ns=5.0, n_links=16)
        assert rows[0].aggregate_gbps == pytest.approx(51.2)
        assert rows[1].aggregate_gbps == pytest.approx(102.4)
        assert rows[0].aggregate_gbytes == pytest.approx(6.4)

    def test_half_quantum_doubles_width(self):
        full = quantum_table([32], half_quantum=False)[0]
        half = quantum_table([32], half_quantum=True)[0]
        assert half.width_bits == 2 * full.width_bits

    def test_required_width(self):
        # 16+16 links at 1 Gb/s with 5 ns cycle: 32 Gb/s * 5 = 160 bits.
        assert required_width_bits(16, 1.0, 5.0) == 160

    def test_telegraphos3_check(self):
        r = telegraphos3_throughput_check()
        assert r["per_link_worst_gbps"] == pytest.approx(1.0)
        assert r["per_link_typical_gbps"] == pytest.approx(1.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            aggregate_throughput_gbps(0, 5.0)
        with pytest.raises(ValueError):
            aggregate_throughput_gbps(256, 0.0)


class TestKnockout:
    def test_l8_design_point(self):
        """[YeHA87]: L=8 keeps loss < ~1e-6 at full load, any size."""
        assert knockout_loss(16, 1.0, 8) < 2e-6
        assert knockout_loss_poisson(1.0, 8) < 2e-6

    def test_loss_decreases_with_paths(self):
        losses = [knockout_loss(16, 1.0, l) for l in (1, 2, 4, 8)]
        assert losses == sorted(losses, reverse=True)

    def test_paths_for_loss(self):
        assert paths_for_loss(16, 1.0, 1e-6) <= 8

    def test_survivors_pmf_normalized(self):
        pmf = survivors_pmf(16, 0.9, 4)
        assert pmf.sum() == pytest.approx(1.0)
        assert len(pmf) == 5

    def test_effective_load(self):
        assert effective_load(16, 1.0, 8) == pytest.approx(1.0, abs=1e-5)
        assert effective_load(16, 1.0, 1) < 0.7

    def test_zero_load(self):
        assert knockout_loss(16, 0.0, 4) == 0.0


class TestLittlesLaw:
    def test_holds_for_output_queued_switch(self):
        from repro.switches import OutputQueued
        from repro.traffic import BernoulliUniform

        sw = OutputQueued(8, 8, warmup=2000, seed=1)
        sw.sample_occupancy = True
        sw.run(BernoulliUniform(8, 8, 0.7, seed=2), 40_000)
        report = littles_law_check(sw)
        assert report.holds, report

    def test_requires_samples(self):
        from repro.switches import OutputQueued

        with pytest.raises(ValueError):
            littles_law_check(OutputQueued(2, 2))

    def test_conservation(self):
        from repro.switches import SharedBuffer
        from repro.traffic import BernoulliUniform

        sw = SharedBuffer(4, 4, seed=3)
        sw.run(BernoulliUniform(4, 4, 0.8, seed=4), 3000)
        assert conservation_check(sw.stats, sw.occupancy())

    def test_conservation_requires_no_warmup(self):
        from repro.switches import SharedBuffer

        sw = SharedBuffer(2, 2, warmup=10)
        with pytest.raises(ValueError):
            conservation_check(sw.stats, 0)

    def test_throughput_delay_consistency_nan_when_empty(self):
        from repro.sim.stats import SwitchStats

        assert math.isnan(throughput_delay_consistency(SwitchStats(n_outputs=1)))
