"""Tests for FIFO input queueing (HoL blocking)."""

import pytest

from repro.analysis.hol import KAROL_TABLE
from repro.switches import FifoInputQueued
from repro.traffic import BernoulliUniform, FixedPermutation


def test_validation():
    with pytest.raises(ValueError):
        FifoInputQueued(4, 4, capacity=0)
    with pytest.raises(ValueError):
        FifoInputQueued(4, 4, arbitration="magic")
    with pytest.raises(ValueError):
        FifoInputQueued(0, 4)


def test_permutation_traffic_full_throughput():
    """Conflict-free traffic: HoL blocking never triggers."""
    sw = FifoInputQueued(4, 4, seed=1)
    stats = sw.run(FixedPermutation([1, 2, 3, 0]), 500)
    assert stats.throughput == pytest.approx(1.0, abs=0.01)
    assert stats.mean_delay == pytest.approx(0.0)


def test_single_input_never_blocks():
    sw = FifoInputQueued(1, 1, seed=1)
    stats = sw.run(BernoulliUniform(1, 1, 1.0, seed=2), 1000)
    assert stats.throughput == pytest.approx(1.0, abs=0.01)


@pytest.mark.parametrize("n,expected", [(2, KAROL_TABLE[2]), (4, KAROL_TABLE[4]), (8, KAROL_TABLE[8])])
def test_hol_saturation_matches_karol(n, expected):
    """The headline §2.1 number: saturation at the [KaHM87] values."""
    sw = FifoInputQueued(n, n, warmup=2000, seed=3)
    stats = sw.run(BernoulliUniform(n, n, 1.0, seed=4), 25_000)
    assert stats.throughput == pytest.approx(expected, abs=0.015)


def test_round_robin_arbitration_also_saturates():
    sw = FifoInputQueued(4, 4, arbitration="round_robin", warmup=2000, seed=5)
    stats = sw.run(BernoulliUniform(4, 4, 1.0, seed=6), 20_000)
    assert stats.throughput == pytest.approx(KAROL_TABLE[4], abs=0.03)


def test_finite_capacity_drops():
    sw = FifoInputQueued(2, 2, capacity=2, seed=7)
    stats = sw.run(BernoulliUniform(2, 2, 1.0, seed=8), 5000)
    assert stats.dropped > 0
    assert stats.loss_probability > 0


def test_fifo_order_preserved_per_input():
    """Cells from one input depart in arrival order."""
    sw = FifoInputQueued(2, 2, seed=9)
    src = BernoulliUniform(2, 2, 0.9, seed=10)
    departures = []
    for t in range(2000):
        for cell in sw.step(src.arrivals(t)):
            if cell is not None and cell.src == 0:
                departures.append(cell.uid)
    assert departures == sorted(departures)


def test_occupancy_consistency():
    sw = FifoInputQueued(4, 4, seed=11)
    src = BernoulliUniform(4, 4, 0.9, seed=12)
    sw.run(src, 2000)
    assert sw.occupancy() == sw.stats.accepted - sw.stats.delivered
